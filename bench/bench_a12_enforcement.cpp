// A12 (ablation, paper §7): enforcement backends — BGP injection vs
// Espresso-style host routing. Same allocator, different operational
// behaviour: update-message overhead while running, and revert latency
// when the controller crashes at peak.
#include "bench/common.h"
#include "workload/demand.h"

int main() {
  using namespace ef;
  using net::SimTime;
  bench::print_title(
      "A12", "enforcement ablation: BGP injection vs host routing");

  const topology::World& world = bench::standard_world();

  analysis::TablePrinter table({"backend", "overload(48h)", "bgp-updates",
                                "crash-revert", "stale-risk"},
                               {16, 14, 13, 14, 34});
  table.print_header();

  for (const core::Enforcement enforcement :
       {core::Enforcement::kBgpInjection, core::Enforcement::kHostRouting}) {
    // Part 1: normal 48 h operation — residual overload and BGP chatter.
    double overload_gbit = 0;
    std::uint64_t controller_updates = 0;
    {
      topology::Pop pop(world, 0);
      sim::SimulationConfig config = bench::standard_sim_config(true);
      config.controller.enforcement = enforcement;
      sim::Simulation simulation(pop, config);
      simulation.run([&](const sim::StepRecord& record) {
        overload_gbit += record.overload.bits_per_sec() * 60 / 1e9;
      });
      // Count UPDATE messages the controller's speaker sent (0 for host
      // routing, which programs hosts directly).
      for (bgp::PeerId peer :
           simulation.controller()->speaker().peer_ids()) {
        const bgp::BgpSession* session =
            simulation.controller()->speaker().session(peer);
        if (session) controller_updates += session->stats().updates_sent;
      }
    }

    // Part 2: crash at peak — how long until the overrides are gone
    // (BGP: immediately with the session; host routing: lease expiry).
    double revert_seconds = 0;
    {
      topology::Pop pop(world, 0);
      workload::DemandConfig quiet;
      quiet.enable_events = false;
      quiet.noise_sigma = 0;
      workload::DemandGenerator gen(world, 0, quiet);
      const telemetry::DemandMatrix peak = gen.baseline(SimTime::hours(0));

      core::ControllerConfig config;
      config.enforcement = enforcement;
      core::Controller controller(pop, config);
      controller.connect();
      controller.run_cycle(peak, SimTime::seconds(0));
      controller.shutdown(SimTime::seconds(0));  // crash

      auto overrides_active = [&]() {
        if (enforcement == core::Enforcement::kHostRouting) {
          return pop.host_override_count() > 0;
        }
        bool any = false;
        pop.collector().rib().for_each(
            [&](const net::Prefix&, std::span<const bgp::Route> routes) {
              for (const bgp::Route& route : routes) {
                any = any ||
                      route.peer_type == bgp::PeerType::kController;
              }
            });
        return any;
      };

      for (int t = 1; t <= 300 && overrides_active(); ++t) {
        pop.tick(SimTime::seconds(t));
        revert_seconds = t;
      }
    }

    const bool bgp = enforcement == core::Enforcement::kBgpInjection;
    table.print_row(
        {bgp ? "bgp-injection" : "host-routing",
         analysis::TablePrinter::fmt(overload_gbit, 3) + " Gbit",
         std::to_string(controller_updates),
         analysis::TablePrinter::fmt(revert_seconds, 0) + " s",
         bgp ? "none (session-scoped state)"
             : "stale entries until lease expiry"});
  }

  std::printf(
      "\nShape check (paper §7): both backends absorb the same overload.\n"
      "BGP injection self-reverts the instant the controller dies but\n"
      "pays continuous UPDATE chatter; host routing is silent on the BGP\n"
      "plane yet leaves lease-bounded stale state after a crash.\n");
  return 0;
}
