// F2 (Fig. 2): route multiplicity — how many distinct egress routes each
// prefix has, per PoP, both by prefix count and weighted by traffic.
//
// The paper's motivation: nearly every prefix has several usable egress
// options (median ~4), which is what gives the allocator room to detour.
#include "bench/common.h"
#include "workload/demand.h"

int main() {
  using namespace ef;
  bench::print_title("F2", "distinct egress routes per prefix (per PoP)");

  const topology::World& world = bench::standard_world();
  analysis::TablePrinter table({"pop", "routes", "prefixes", "prefix-frac",
                                "traffic-frac"},
                               {8, 8, 10, 13, 13});
  table.print_header();

  for (std::size_t p = 0; p < world.pops().size(); ++p) {
    topology::Pop pop(world, p);
    workload::DemandGenerator gen(world, p, {});
    const telemetry::DemandMatrix peak = gen.baseline(net::SimTime::hours(0));

    std::map<std::size_t, std::size_t> count_by_multiplicity;
    std::map<std::size_t, double> traffic_by_multiplicity;
    std::size_t total = 0;
    double total_bps = 0;
    net::CdfBuilder multiplicity;

    pop.collector().rib().for_each([&](const net::Prefix& prefix,
                                       std::span<const bgp::Route> routes) {
      const std::size_t bucket = std::min<std::size_t>(routes.size(), 6);
      ++count_by_multiplicity[bucket];
      ++total;
      const double bps = peak.rate(prefix).bits_per_sec();
      traffic_by_multiplicity[bucket] += bps;
      total_bps += bps;
      multiplicity.add(static_cast<double>(routes.size()));
    });

    for (const auto& [bucket, count] : count_by_multiplicity) {
      const std::string label =
          bucket == 6 ? "6+" : std::to_string(bucket);
      table.print_row(
          {world.pops()[p].name, label, std::to_string(count),
           analysis::TablePrinter::pct(static_cast<double>(count) /
                                       static_cast<double>(total)),
           analysis::TablePrinter::pct(traffic_by_multiplicity[bucket] /
                                       total_bps)});
    }
    std::printf("  %s: median %.0f routes/prefix, p10 %.0f, max %.0f\n",
                world.pops()[p].name.c_str(), multiplicity.percentile(50),
                multiplicity.percentile(10), multiplicity.percentile(100));
  }

  std::printf(
      "\nShape check (paper): virtually all prefixes have >= 2 routes and\n"
      "the traffic-weighted multiplicity is higher still (heavy eyeballs\n"
      "multihome), so detour capacity exists for the prefixes that matter.\n");
  return 0;
}
