// T1 (Table 1): egress route mix under default BGP.
//
// For each PoP: how many BGP sessions of each type it has, what share of
// prefixes prefer each route type, and what share of peak traffic each
// type would carry with no controller. Reproduces the paper's framing
// that peers (PNI/public/RS) attract most prefixes and bytes while
// transit exists mainly as fallback.
#include "bench/common.h"
#include "workload/demand.h"

int main() {
  using namespace ef;
  bench::print_title("T1",
                     "egress route-type mix under default BGP (per PoP)");

  const topology::World& world = bench::standard_world();
  analysis::TablePrinter table(
      {"pop", "type", "sessions", "prefixes", "prefix-share", "traffic-share"},
      {8, 14, 10, 10, 14, 14});
  table.print_header();

  for (std::size_t p = 0; p < world.pops().size(); ++p) {
    topology::Pop pop(world, p);
    workload::DemandGenerator gen(world, p, {});
    const telemetry::DemandMatrix peak =
        gen.baseline(net::SimTime::hours(6.0 * static_cast<double>(p)));

    std::map<bgp::PeerType, int> sessions;
    for (const topology::PeeringDef& peering : pop.def().peerings) {
      ++sessions[peering.type];
    }

    std::map<bgp::PeerType, std::size_t> prefixes;
    std::map<bgp::PeerType, double> traffic_bps;
    double total_bps = 0;
    std::size_t total_prefixes = 0;
    for (const net::Prefix& prefix : pop.reachable_prefixes()) {
      const auto egress = pop.egress_of(prefix);
      if (!egress) continue;
      ++prefixes[egress->type];
      ++total_prefixes;
      const double bps = peak.rate(prefix).bits_per_sec();
      traffic_bps[egress->type] += bps;
      total_bps += bps;
    }

    for (bgp::PeerType type :
         {bgp::PeerType::kPrivatePeer, bgp::PeerType::kPublicPeer,
          bgp::PeerType::kRouteServer, bgp::PeerType::kTransit}) {
      table.print_row(
          {pop.def().name, bgp::peer_type_name(type),
           std::to_string(sessions[type]), std::to_string(prefixes[type]),
           analysis::TablePrinter::pct(
               static_cast<double>(prefixes[type]) /
               static_cast<double>(total_prefixes)),
           analysis::TablePrinter::pct(traffic_bps[type] / total_bps)});
    }
  }

  std::printf(
      "\nShape check (paper): peer routes (private+public+RS) carry the\n"
      "large majority of bytes; transit is a small share of traffic but\n"
      "available for every prefix as detour headroom.\n");
  return 0;
}
