// A13 (ablation): the cost side of the ledger. Edge Fabric absorbs peak
// overload partly by detouring onto paid transit; 95th-percentile billing
// means those peak-hour detours are exactly the samples that set the
// bill. Compares the monthly-equivalent egress bill and the dropped
// traffic with and without the controller.
#include "bench/common.h"
#include "analysis/cost.h"

int main() {
  using namespace ef;
  bench::print_title(
      "A13", "transit bill (95th percentile) vs dropped traffic (48 h)");

  const topology::World& world = bench::standard_world();
  analysis::TablePrinter table({"pop", "regime", "transit-p95", "bill/month",
                                "drop-frac"},
                               {8, 12, 13, 13, 12});
  table.print_header();

  for (std::size_t p = 0; p < world.pops().size(); ++p) {
    for (const bool controller : {false, true}) {
      topology::Pop pop(world, p);
      std::map<telemetry::InterfaceId, bgp::PeerType> roles;
      for (std::size_t i = 0; i < pop.def().interfaces.size(); ++i) {
        roles[telemetry::InterfaceId(static_cast<std::uint32_t>(i))] =
            pop.def().interfaces[i].role;
      }
      analysis::CostModel cost({}, roles);
      analysis::UtilizationTracker tracker(pop.interfaces());

      sim::SimulationConfig config = bench::standard_sim_config(controller);
      sim::Simulation simulation(pop, config);
      int step = 0;
      simulation.run([&](const sim::StepRecord& record) {
        tracker.record(record.when, record.load);
        if (step++ % 5 == 0) cost.sample(record.load);  // 5-min billing
      });

      const auto bill = cost.bill();
      table.print_row(
          {world.pops()[p].name, controller ? "edge-fabric" : "bgp-only",
           analysis::TablePrinter::fmt(bill.transit_p95_mbps / 1000.0, 2) +
               " Gbps",
           "$" + analysis::TablePrinter::fmt(bill.total_dollars(), 0),
           analysis::TablePrinter::pct(tracker.excess_traffic_fraction(),
                                       3)});
    }
  }

  std::printf(
      "\nShape check: Edge Fabric raises the transit 95th percentile (the\n"
      "detoured peaks are billable) in exchange for eliminating drops —\n"
      "the paper's operators judged that trade worth making; this bench\n"
      "prices it.\n");
  return 0;
}
