// F10 (Fig. 10): performance-aware overrides — run the full pipeline
// (measure -> advise -> inject) at daily peak and report the distribution
// of RTT improvement for steered prefixes, plus the traffic share steered.
#include "bench/common.h"
#include "altpath/advisor.h"
#include "altpath/measurer.h"
#include "altpath/perf_model.h"
#include "core/controller.h"
#include "workload/demand.h"

int main() {
  using namespace ef;
  bench::print_title("F10",
                     "performance-aware steering: RTT improvement at peak");

  const topology::World& world = bench::standard_world();
  analysis::TablePrinter table({"pop", "steered", "traffic-share",
                                "p50-improve", "p90-improve", "max-improve"},
                               {8, 9, 14, 13, 13, 12});
  table.print_header();

  net::CdfBuilder all_improvements;
  for (std::size_t p = 0; p < world.pops().size(); ++p) {
    topology::Pop pop(world, p);
    workload::DemandConfig quiet;
    quiet.enable_events = false;
    quiet.noise_sigma = 0;
    workload::DemandGenerator gen(world, p, quiet);
    // Each PoP peaks at its own phase; measure at the local peak where
    // under-provisioned ports congest.
    const telemetry::DemandMatrix demand =
        gen.baseline(net::SimTime::hours(6.0 * static_cast<double>(p)));

    altpath::PerfModel model(pop);
    model.set_interface_load(pop.project_load(demand));
    altpath::MeasurerConfig measurer_config;
    measurer_config.noise_ms = 1.5;
    altpath::AltPathMeasurer measurer(pop, model, measurer_config);
    for (int round = 0; round < 10; ++round) {
      measurer.run_round(demand, net::SimTime::seconds(round * 30));
    }

    altpath::PolicyRouter policy(pop);
    altpath::PerfAwareAdvisor advisor(pop, measurer, {});
    core::Controller controller(pop, {});
    controller.connect();
    controller.set_advisor([&](const core::AllocationResult&) {
      return advisor.advise(demand);
    });
    const core::CycleStats stats =
        controller.run_cycle(demand, net::SimTime::seconds(300));

    // Ground-truth improvement per steered prefix: natural preferred path
    // RTT minus the now-forwarding path RTT (both at pre-steering load).
    net::CdfBuilder improvements;
    net::Bandwidth steered_rate;
    for (const auto& [prefix, override_entry] :
         controller.active_overrides()) {
      const bgp::Route* natural = policy.natural_route(prefix, 0);
      const bgp::Route* now = pop.collector().rib().best(prefix);
      if (!natural || !now) continue;
      const auto before = model.rtt_ms(prefix, *natural);
      const auto after = model.rtt_ms(prefix, *now);
      if (!before || !after) continue;
      improvements.add(*before - *after);
      all_improvements.add(*before - *after);
      steered_rate += override_entry.rate;
    }

    table.print_row(
        {world.pops()[p].name, std::to_string(stats.overrides_active),
         analysis::TablePrinter::pct(steered_rate / demand.total(), 1),
         improvements.empty()
             ? "-"
             : analysis::TablePrinter::fmt(improvements.percentile(50), 1) +
                   " ms",
         improvements.empty()
             ? "-"
             : analysis::TablePrinter::fmt(improvements.percentile(90), 1) +
                   " ms",
         improvements.empty()
             ? "-"
             : analysis::TablePrinter::fmt(improvements.percentile(100), 1) +
                   " ms"});
  }

  std::printf("\n  RTT improvement across all steered prefixes:\n");
  bench::print_cdf(all_improvements, "improvement(ms)");

  std::printf(
      "\nShape check (paper): steering a small share of traffic off\n"
      "congested preferred paths yields tens of milliseconds of median\n"
      "improvement for the affected prefixes (capacity overrides also\n"
      "land in the count — they relieve the same congestion).\n");
  return 0;
}
