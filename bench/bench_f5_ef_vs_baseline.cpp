// F5 (Fig. 5): Edge Fabric vs baselines over the same 48 hours — the
// headline result. Identical demand trajectories (same seeds) under:
//   * vanilla BGP,
//   * static TE (allocator run once against 85%-of-peak planning demand),
//   * Edge Fabric (stateless controller every cycle).
#include "bench/common.h"
#include "baseline/baselines.h"
#include "workload/demand.h"

namespace {

struct RegimeResult {
  double overloaded_sample_fraction = 0;
  double dropped_traffic_fraction = 0;   // projected (fluid excess)
  double measured_drop_fraction = 0;     // dataplane queue tail-drops
  std::uint64_t reorder_events = 0;      // flows re-pathed mid-life
  std::size_t episodes = 0;
  double peak_utilization = 0;
};

}  // namespace

int main() {
  using namespace ef;
  bench::print_title("F5", "Edge Fabric vs vanilla BGP vs static TE (48 h)");

  const topology::World& world = bench::standard_world();
  analysis::TablePrinter table({"pop", "regime", "samples>100%", "drop-frac",
                                "measured-drop", "reorders", "episodes",
                                "peak-util"},
                               {8, 12, 14, 12, 14, 10, 10, 10});
  table.print_header();

  for (std::size_t p = 0; p < world.pops().size(); ++p) {
    auto run_regime = [&](bool controller, bool static_te) {
      topology::Pop pop(world, p);
      std::unique_ptr<baseline::StaticTe> static_controller;
      if (static_te) {
        // Plan against 85% of clean peak demand — generous but frozen.
        workload::DemandConfig quiet;
        quiet.enable_events = false;
        quiet.noise_sigma = 0;
        workload::DemandGenerator gen(world, p, quiet);
        telemetry::DemandMatrix planning;
        gen.baseline(net::SimTime::hours(6.0 * static_cast<double>(p)))
            .for_each([&](const net::Prefix& prefix, net::Bandwidth rate) {
              planning.set(prefix, rate * 0.85);
            });
        static_controller = std::make_unique<baseline::StaticTe>(pop);
        static_controller->install(planning, net::SimTime::seconds(0));
      }

      analysis::UtilizationTracker tracker(pop.interfaces());
      sim::Simulation simulation(pop, bench::measured_sim_config(controller));
      simulation.run([&](const sim::StepRecord& record) {
        // The static controller's session needs keepalives like any BGP
        // speaker, or its overrides would be flushed by the hold timer.
        if (static_controller) static_controller->tick(record.when);
        tracker.record(record.when, record.load);
      });

      RegimeResult result;
      result.overloaded_sample_fraction = tracker.overloaded_fraction(1.0);
      result.dropped_traffic_fraction = tracker.excess_traffic_fraction();
      const auto& totals = simulation.dataplane()->totals();
      result.measured_drop_fraction =
          totals.offered_bytes == 0
              ? 0.0
              : static_cast<double>(totals.dropped_bytes) /
                    static_cast<double>(totals.offered_bytes);
      result.reorder_events = totals.reorder_events;
      result.episodes = tracker.episodes(1.0).size();
      for (const auto& [iface, peak] : tracker.peak_utilization()) {
        result.peak_utilization = std::max(result.peak_utilization, peak);
      }
      return result;
    };

    const RegimeResult bgp = run_regime(false, false);
    const RegimeResult static_te = run_regime(false, true);
    const RegimeResult edge_fabric = run_regime(true, false);

    auto row = [&](const char* regime, const RegimeResult& r) {
      table.print_row({world.pops()[p].name, regime,
                       analysis::TablePrinter::pct(
                           r.overloaded_sample_fraction, 2),
                       analysis::TablePrinter::pct(r.dropped_traffic_fraction,
                                                   3),
                       analysis::TablePrinter::pct(r.measured_drop_fraction,
                                                   3),
                       std::to_string(r.reorder_events),
                       std::to_string(r.episodes),
                       analysis::TablePrinter::fmt(r.peak_utilization, 2)});
    };
    row("bgp-only", bgp);
    row("static-te", static_te);
    row("edge-fabric", edge_fabric);
  }

  std::printf(
      "\nShape check (paper): Edge Fabric eliminates overload entirely\n"
      "(0 episodes, ~0 measured drops, peak utilization capped near the\n"
      "threshold) at the cost of a bounded amount of flow reordering from\n"
      "detours, while BGP-only drops traffic at every daily peak (measured\n"
      "tail-drops track the projection) and a frozen static configuration\n"
      "helps only at its planning point.\n");
  return 0;
}
