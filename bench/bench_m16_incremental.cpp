// M16 (perf): incremental (delta) cycles vs full warm recomputes.
//
// The steady-state a production controller actually lives in is ~1%
// route/demand churn between ~30s cycles, over a full-table RIB. The
// full warm path (bench_m13) still walks all 1M demand rows every
// cycle; the delta engine replays the Rib/DemandMatrix change logs,
// subtracts each dirty prefix's old contribution from its persistent
// per-interface ledger and adds the new one, then re-runs detour
// placement only where it matters. Decisions are bitwise identical by
// contract — cross-checked here before any timing is trusted — so the
// speedup can never come from a behaviour change.
//
// Rows sweep churn at 0.1%, 1%, and 10% of prefixes per cycle at
// full-table scale (plus a 32k sanity row). scripts/bench.sh records
// the JSON in BENCH_alloc.json and derives the steady_state_target
// summary (>=50x at 1% churn) from the 1M-row pair.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "core/allocator.h"
#include "net/log.h"
#include "net/rng.h"

namespace {

using namespace ef;

/// bench_m13's synthetic environment shape — `prefixes` prefixes with
/// `routes_per` candidates over 40 interfaces — tuned to the paper's
/// steady state rather than an outage: rates are heavy-tailed (1% of
/// prefixes are 100x elephants, chosen by seeded coin flip so they
/// spread over every egress), and capacities are CALIBRATED against the
/// pre-detour load a full cycle projects, putting every 10th interface
/// at 97% (just over the 95% threshold) and the rest at 50%. Phase 2
/// then sheds a few percent from each hot port into real headroom —
/// ~100 overrides per cycle of mostly elephants, the regime Edge Fabric
/// actually operates in — instead of draining a 7x-oversubscribed
/// fleet. Churn is fractional: each cycle rewrites a rotating window of
/// `permille`/1000 of the rates in place, so the change log carries
/// exactly the steady-state dirty set.
struct SyntheticEnv {
  bgp::Rib rib;
  telemetry::InterfaceRegistry interfaces;
  telemetry::DemandMatrix demand;
  std::vector<std::pair<net::Prefix, net::Bandwidth>> base;
  std::map<net::IpAddr, core::EgressView> egress;

  SyntheticEnv(int prefixes, int routes_per, int interface_count = 40) {
    std::vector<net::IpAddr> peers;
    for (int i = 0; i < interface_count; ++i) {
      const net::IpAddr addr =
          net::IpAddr::v4(0xac100000u + static_cast<std::uint32_t>(i));
      const bgp::PeerType type = i % 4 == 3 ? bgp::PeerType::kTransit
                                            : bgp::PeerType::kPrivatePeer;
      egress[addr] = core::EgressView{
          telemetry::InterfaceId(static_cast<std::uint32_t>(i)), type, addr};
      peers.push_back(addr);
    }

    net::Rng rng(7);
    for (int p = 0; p < prefixes; ++p) {
      const net::Prefix prefix(
          net::IpAddr::v4(0x64000000u + (static_cast<std::uint32_t>(p) << 8)),
          24);
      for (int r = 0; r < routes_per; ++r) {
        const std::size_t peer_index =
            static_cast<std::size_t>((p + r * 7) % interface_count);
        bgp::Route route;
        route.prefix = prefix;
        route.learned_from = bgp::PeerId(static_cast<std::uint32_t>(
            peer_index * 100000 + static_cast<std::size_t>(r)));
        const core::EgressView& view = egress.at(peers[peer_index]);
        route.peer_type = view.type;
        route.neighbor_as =
            bgp::AsNumber(60000 + static_cast<std::uint32_t>(peer_index));
        route.neighbor_router_id =
            bgp::RouterId(static_cast<std::uint32_t>(peer_index));
        route.attrs.next_hop = peers[peer_index];
        route.attrs.local_pref = bgp::LocalPref(
            view.type == bgp::PeerType::kTransit ? 200 : 340 - r);
        route.attrs.has_local_pref = true;
        route.attrs.as_path =
            bgp::AsPath{route.neighbor_as, bgp::AsNumber(30000)};
        rib.announce(route);
      }
      const double elephant = rng.bernoulli(0.01) ? 100.0 : 1.0;
      const net::Bandwidth rate = net::Bandwidth::mbps(
          rng.uniform(5.0, 50.0) * elephant * (32000.0 / prefixes));
      base.emplace_back(prefix, rate);
      demand.set(prefix, rate);
    }

    // Calibrate capacities against the natural (pre-detour) loads: those
    // depend only on BGP preference, never on capacity, so one full
    // cycle on a provisional registry yields them exactly.
    telemetry::InterfaceRegistry provisional;
    for (int i = 0; i < interface_count; ++i) {
      provisional.add(telemetry::InterfaceId(static_cast<std::uint32_t>(i)),
                      net::Bandwidth::gbps(40.0));
    }
    core::Allocator cal_allocator{core::AllocatorConfig{}};
    core::Allocator::Workspace cal_workspace;
    const auto natural = cal_allocator.allocate(rib, demand, provisional,
                                                resolver(), cal_workspace);
    for (int i = 0; i < interface_count; ++i) {
      const telemetry::InterfaceId id(static_cast<std::uint32_t>(i));
      const net::Bandwidth load = natural.projected_load.at(id);
      net::Bandwidth capacity;
      if (!(load > net::Bandwidth::zero())) {
        capacity = net::Bandwidth::gbps(40.0);
      } else if (i % 10 == 0) {
        capacity = load * (1.0 / 0.97);  // hot: just over the threshold
      } else {
        capacity = load * (1.0 / 0.50);  // headroom for detours
      }
      interfaces.add(id, capacity);
    }
  }

  /// Rewrites `permille`/1000 of the rates: a rotating window so every
  /// prefix eventually churns, scaled by a factor cycling through
  /// [1.001, 1.007]. The factor is never 1.0 and consecutive visits to
  /// the same window land on different factors (the window revisit
  /// periods share no divisor with 7), so every touch is a genuine
  /// change — the matrix suppresses no-op set() calls from its change
  /// log, and a benchmark that silently mutated nothing would measure
  /// quiescent cycles, not churn.
  void mutate_fraction(std::int64_t cycle, int permille) {
    const std::size_t count = base.size();
    const std::size_t touched =
        std::max<std::size_t>(1, count * static_cast<std::size_t>(permille) /
                                     1000);
    const double factor = 1.0 + 0.001 * static_cast<double>(1 + cycle % 7);
    const std::size_t start =
        (static_cast<std::size_t>(cycle) * touched) % count;
    for (std::size_t k = 0; k < touched; ++k) {
      const auto& [prefix, rate] = base[(start + k) % count];
      demand.set(prefix, rate * factor);
    }
  }

  core::EgressResolver resolver() const {
    return [this](const bgp::Route& route) -> std::optional<core::EgressView> {
      auto it = egress.find(route.attrs.next_hop);
      if (it == egress.end()) return std::nullopt;
      return it->second;
    };
  }
};

/// The 1M-prefix environment takes tens of seconds to build; build each
/// (prefixes, routes) shape once and share it across rows. Safe for the
/// same reason as bench_m13 — demand rewrites are pure functions of the
/// cycle index, and every benchmark warms its own ledger/workspace.
SyntheticEnv& cached_env(int prefixes, int routes_per) {
  static std::map<std::tuple<int, int>, std::unique_ptr<SyntheticEnv>> cache;
  auto& slot = cache[{prefixes, routes_per}];
  if (!slot) slot = std::make_unique<SyntheticEnv>(prefixes, routes_per);
  return *slot;
}

constexpr double kDirtyCeiling = 0.25;  // the production default

/// Bitwise identity before timing: a few churned cycles, each computed
/// both ways.
void cross_check(SyntheticEnv& env, int permille) {
  core::Allocator allocator{core::AllocatorConfig{}};
  core::Allocator::Workspace full_ws, inc_ws;
  core::Allocator::Ledger ledger;
  const auto resolver = env.resolver();
  for (std::int64_t cycle = 0; cycle < 3; ++cycle) {
    env.mutate_fraction(cycle, permille);
    const auto full = allocator.allocate(env.rib, env.demand, env.interfaces,
                                         resolver, full_ws);
    const auto inc = allocator.allocate_incremental(
        env.rib, env.demand, env.interfaces, resolver, inc_ws, ledger,
        kDirtyCeiling);
    EF_CHECK(full == inc,
             "incremental diverged from full recompute (cycle " << cycle
                                                                << ")");
  }
}

void BM_FullRecomputeAtChurn(benchmark::State& state) {
  const int prefixes = static_cast<int>(state.range(0));
  const int routes_per = static_cast<int>(state.range(1));
  const int permille = static_cast<int>(state.range(2));
  SyntheticEnv& env = cached_env(prefixes, routes_per);
  core::Allocator allocator{core::AllocatorConfig{}};
  core::Allocator::Workspace workspace;
  const auto resolver = env.resolver();
  env.mutate_fraction(0, 1000);  // cold cycle: rank cache + workspace
  benchmark::DoNotOptimize(allocator.allocate(env.rib, env.demand,
                                              env.interfaces, resolver,
                                              workspace));
  std::int64_t cycle = 1;
  std::size_t override_total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    env.mutate_fraction(cycle, permille);
    state.ResumeTiming();
    auto result = allocator.allocate(env.rib, env.demand, env.interfaces,
                                     resolver, workspace);
    benchmark::DoNotOptimize(result);
    override_total += result.overrides.size();
    ++cycle;
  }
  state.SetItemsProcessed(state.iterations() * prefixes);
  state.counters["prefixes"] = prefixes;
  state.counters["churn_permille"] = permille;
  state.counters["overrides_per_cycle"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(override_total) /
                static_cast<double>(state.iterations());
}
BENCHMARK(BM_FullRecomputeAtChurn)
    ->Args({32000, 3, 10})
    ->Args({1000000, 3, 1})
    ->Args({1000000, 3, 10})
    ->Args({1000000, 3, 100})
    ->Unit(benchmark::kMillisecond);

void BM_IncrementalAtChurn(benchmark::State& state) {
  const int prefixes = static_cast<int>(state.range(0));
  const int routes_per = static_cast<int>(state.range(1));
  const int permille = static_cast<int>(state.range(2));
  SyntheticEnv& env = cached_env(prefixes, routes_per);
  cross_check(env, permille);
  core::Allocator allocator{core::AllocatorConfig{}};
  core::Allocator::Workspace workspace;
  core::Allocator::Ledger ledger;
  const auto resolver = env.resolver();
  // Warm cycle: builds the ledger (full fallback), the cost a restarted
  // controller pays once.
  env.mutate_fraction(0, 1000);
  benchmark::DoNotOptimize(allocator.allocate_incremental(
      env.rib, env.demand, env.interfaces, resolver, workspace, ledger,
      kDirtyCeiling));
  std::int64_t cycle = 1;
  std::size_t fallbacks = 0;
  std::size_t dirty_total = 0;
  std::size_t override_total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    env.mutate_fraction(cycle, permille);
    state.ResumeTiming();
    core::Allocator::IncrementalOutcome outcome;
    auto result = allocator.allocate_incremental(
        env.rib, env.demand, env.interfaces, resolver, workspace, ledger,
        kDirtyCeiling, &outcome);
    benchmark::DoNotOptimize(result);
    if (outcome.full_fallback) ++fallbacks;
    dirty_total += outcome.dirty_prefixes;
    override_total += result.overrides.size();
    ++cycle;
  }
  // A fallback inside the timed loop would mean the row quietly measured
  // full recomputes; surface it in the JSON instead of hiding it.
  state.SetItemsProcessed(state.iterations() * prefixes);
  state.counters["prefixes"] = prefixes;
  state.counters["churn_permille"] = permille;
  state.counters["full_fallbacks"] = static_cast<double>(fallbacks);
  state.counters["dirty_per_cycle"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(dirty_total) /
                static_cast<double>(state.iterations());
  state.counters["overrides_per_cycle"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(override_total) /
                static_cast<double>(state.iterations());
}
BENCHMARK(BM_IncrementalAtChurn)
    ->Args({32000, 3, 10})
    ->Args({1000000, 3, 1})
    ->Args({1000000, 3, 10})
    ->Args({1000000, 3, 100})
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Proof-of-build-mode for the recording script: our bench TUs must be
// compiled with NDEBUG (Release). The vendored libbenchmark reports its
// OWN build mode in library_build_type, which on distro packages is
// often "debug" even in a Release tree; ef_bench_build is about THIS
// binary's translation units, which is what the timings depend on.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("ef_bench_build", "release");
#else
  benchmark::AddCustomContext("ef_bench_build", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
