// M17 (perf): flow-level dataplane emulation throughput and drop-model
// accuracy.
//
// Three suites:
//  - BM_FlowHashPick: the per-flow hot path alone (FNV-1a 5-tuple hash +
//    weighted-rendezvous pick over 8 candidates), flows/sec.
//  - BM_DataplaneStep: the full per-step pipeline — FlowMix churn, hash,
//    flow-table stickiness, queue service — over a synthetic PoP, with
//    items/sec = flows processed. Rows sweep the prefix count.
//  - BM_QueueDropAccuracy: the fluid tail-drop queue against the
//    analytic sustained-overload drop fraction (rho-1)/rho. The measured
//    fraction is cross-checked to within 0.5% BEFORE timing (EF_CHECK),
//    so a recorded number can never come from a broken model; the error
//    is also exported as a counter for the regression gate.
//
// scripts/bench.sh records the JSON in BENCH_dataplane.json and derives
// the dataplane_target summary (>=1M flows/sec through the step
// pipeline, drop-model error <= 0.5%).
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "dataplane/dataplane.h"
#include "net/log.h"
#include "net/rng.h"

namespace {

using namespace ef;

telemetry::InterfaceRegistry make_registry(int interfaces) {
  telemetry::InterfaceRegistry registry;
  for (int i = 0; i < interfaces; ++i) {
    registry.add(telemetry::InterfaceId(static_cast<std::uint32_t>(i + 1)),
                 net::Bandwidth::gbps(10.0));
  }
  return registry;
}

telemetry::DemandMatrix make_demand(int prefixes, double total_gbps) {
  telemetry::DemandMatrix demand;
  net::Rng rng(7);
  double weight_sum = 0.0;
  std::vector<double> weights(static_cast<std::size_t>(prefixes));
  for (double& w : weights) {
    w = rng.pareto(1.0, 1.2);
    weight_sum += w;
  }
  for (int p = 0; p < prefixes; ++p) {
    const net::Prefix prefix(
        net::IpAddr::v4(0x64000000u + (static_cast<std::uint32_t>(p) << 8)),
        24);
    demand.set(prefix, net::Bandwidth::gbps(
                           total_gbps * weights[static_cast<std::size_t>(p)] /
                           weight_sum));
  }
  return demand;
}

void BM_FlowHashPick(benchmark::State& state) {
  std::vector<dataplane::WcmpEgress> candidates;
  for (std::uint32_t i = 1; i <= 8; ++i) {
    candidates.push_back({telemetry::InterfaceId(i), i <= 4 ? 2.0 : 1.0});
  }
  const dataplane::EcmpHasher hasher(16, 42);
  net::Rng rng(1);
  std::vector<dataplane::FlowKey> keys(4096);
  for (dataplane::FlowKey& key : keys) {
    key.src = net::IpAddr::v4(static_cast<std::uint32_t>(rng.next_u64()));
    key.dst = net::IpAddr::v4(static_cast<std::uint32_t>(rng.next_u64()));
    key.src_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    key.dst_port = 443;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const std::uint64_t hash = dataplane::flow_hash(keys[i % keys.size()]);
    benchmark::DoNotOptimize(hasher.pick(hash, candidates));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlowHashPick);

void BM_DataplaneStep(benchmark::State& state) {
  const int prefixes = static_cast<int>(state.range(0));
  const telemetry::InterfaceRegistry registry = make_registry(40);
  // ~70% aggregate utilization: queues work but mostly keep up, the
  // steady state the emulation runs in under the controller.
  const telemetry::DemandMatrix demand =
      make_demand(prefixes, 40 * 10.0 * 0.7);
  dataplane::DataplaneConfig config;
  config.enabled = true;
  dataplane::Dataplane plane(registry, config);
  const auto resolve = [&](const net::Prefix& prefix,
                           std::vector<dataplane::WcmpEgress>& out) {
    // Deterministic prefix->interface spread, like a BGP best path.
    const std::uint32_t iface =
        1 + static_cast<std::uint32_t>(
                std::hash<net::Prefix>{}(prefix) % registry.size());
    out.push_back({telemetry::InterfaceId(iface), 1.0});
  };
  std::int64_t step = 0;
  std::uint64_t flows_total = 0;
  for (auto _ : state) {
    const dataplane::DataplaneStepStats stats = plane.step(
        demand, net::SimTime::seconds(step), net::SimTime::seconds(1),
        resolve);
    benchmark::DoNotOptimize(stats.delivered_bytes);
    flows_total += stats.flows_active;
    ++step;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(flows_total));
  state.counters["prefixes"] = prefixes;
  state.counters["flows_per_step"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(flows_total) /
                static_cast<double>(state.iterations());
}
BENCHMARK(BM_DataplaneStep)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

/// Measured sustained-overload drop fraction over `steps` seconds at
/// offered load rho * capacity.
double measured_drop_fraction(double rho, int steps) {
  dataplane::InterfaceQueue queue(net::Bandwidth::gbps(10.0),
                                  net::SimTime::millis(50));
  const auto per_step = static_cast<std::uint64_t>(
      rho * net::Bandwidth::gbps(10.0).bits_per_sec() / 8.0);
  std::uint64_t offered = 0;
  std::uint64_t dropped = 0;
  for (int s = 0; s < steps; ++s) {
    queue.offer(per_step);
    const dataplane::QueueStats stats = queue.advance(net::SimTime::seconds(1));
    offered += stats.offered_bytes;
    dropped += stats.dropped_bytes;
  }
  return static_cast<double>(dropped) / static_cast<double>(offered);
}

void BM_QueueDropAccuracy(benchmark::State& state) {
  const double rho = static_cast<double>(state.range(0)) / 1000.0;
  // Fluid model under sustained overload: once the bounded queue fills,
  // exactly the excess (rho-1)/rho of offered bytes drops. The 50 ms of
  // buffering absorbed at ramp-up amortizes to <0.1% over 120 steps.
  const double analytic = rho > 1.0 ? (rho - 1.0) / rho : 0.0;
  const double measured = measured_drop_fraction(rho, 120);
  EF_CHECK(std::abs(measured - analytic) < 0.005,
           "drop model diverged from analytic fluid fraction: rho="
               << rho << " measured=" << measured << " analytic=" << analytic);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measured_drop_fraction(rho, 120));
  }
  state.counters["rho"] = rho;
  state.counters["drop_frac_measured"] = measured;
  state.counters["drop_frac_analytic"] = analytic;
  state.counters["drop_model_abs_error"] = std::abs(measured - analytic);
}
BENCHMARK(BM_QueueDropAccuracy)
    ->Arg(800)    // under capacity: zero drops
    ->Arg(1100)
    ->Arg(1500)
    ->Arg(2000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

// Proof-of-build-mode for the recording script (see bench_m16): the
// JSON is only trusted when our own TUs were compiled Release.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("ef_bench_build", "release");
#else
  benchmark::AddCustomContext("ef_bench_build", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
