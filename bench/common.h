// Shared setup for the experiment benches: one standard world and
// simulation configuration so every exhibit is computed over the same
// environment (as the paper's figures are drawn from one deployment).
#pragma once

#include <cstdio>
#include <string>

#include "analysis/metrics.h"
#include "sim/simulation.h"
#include "topology/pop.h"
#include "topology/world.h"

namespace ef::bench {

inline topology::WorldConfig standard_world_config() {
  topology::WorldConfig config;
  config.seed = 42;
  config.num_clients = 56;
  config.num_pops = 4;
  return config;
}

inline const topology::World& standard_world() {
  static const topology::World world =
      topology::World::generate(standard_world_config());
  return world;
}

inline sim::SimulationConfig standard_sim_config(bool controller) {
  sim::SimulationConfig config;
  config.duration = net::SimTime::hours(48);
  config.step = net::SimTime::seconds(60);
  config.controller_enabled = controller;
  config.controller.cycle_period = net::SimTime::seconds(60);
  return config;
}

/// standard_sim_config + flow-level dataplane emulation: the F3–F6
/// exhibits report *measured* drops/reordering next to the projected
/// numbers. Measurement-only, so the projected columns are unchanged.
inline sim::SimulationConfig measured_sim_config(bool controller) {
  sim::SimulationConfig config = standard_sim_config(controller);
  config.dataplane.enabled = true;
  return config;
}

/// One-line summary of a finished measured run's dataplane totals.
inline void print_dataplane_line(const std::string& label,
                                 const sim::Simulation& simulation) {
  const dataplane::Dataplane* plane = simulation.dataplane();
  if (!plane) return;
  const dataplane::DataplaneTotals& totals = plane->totals();
  const double drop_frac =
      totals.offered_bytes == 0
          ? 0.0
          : static_cast<double>(totals.dropped_bytes) /
                static_cast<double>(totals.offered_bytes);
  std::printf(
      "  measured dataplane [%s]: offered %.1f GB, dropped %.4f%%, "
      "flows moved %llu, reorder events %llu\n",
      label.c_str(), static_cast<double>(totals.offered_bytes) / 1e9,
      drop_frac * 100.0,
      static_cast<unsigned long long>(totals.flows_moved),
      static_cast<unsigned long long>(totals.reorder_events));
}

inline void print_title(const std::string& id, const std::string& caption) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), caption.c_str());
  std::printf("==============================================================\n");
}

/// Renders a CDF as "value fraction" rows for plotting.
inline void print_cdf(const net::CdfBuilder& cdf, const char* value_label,
                      std::size_t points = 12) {
  if (cdf.empty()) {
    std::printf("  (no samples)\n");
    return;
  }
  std::printf("  %-14s %s\n", value_label, "CDF");
  for (const auto& [value, fraction] : cdf.cdf_points(points)) {
    std::printf("  %-14.3f %.3f\n", value, fraction);
  }
}

}  // namespace ef::bench
