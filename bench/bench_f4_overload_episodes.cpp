// F4 (Fig. 4): overload episodes without Edge Fabric — how long
// interfaces stay above capacity and how much traffic each episode
// would shed.
#include "bench/common.h"

int main() {
  using namespace ef;
  bench::print_title("F4",
                     "overload episode durations & excess volume (no EF)");

  const topology::World& world = bench::standard_world();
  net::CdfBuilder durations_minutes;
  net::CdfBuilder excess_gbit;
  net::CdfBuilder peak_util;
  std::size_t episodes_total = 0;
  double projected_excess_gbit = 0;
  double measured_dropped_gbit = 0;

  for (std::size_t p = 0; p < world.pops().size(); ++p) {
    topology::Pop pop(world, p);
    analysis::UtilizationTracker tracker(pop.interfaces());
    sim::Simulation simulation(pop, bench::measured_sim_config(false));
    simulation.run([&](const sim::StepRecord& record) {
      tracker.record(record.when, record.load);
    });
    measured_dropped_gbit +=
        static_cast<double>(simulation.dataplane()->totals().dropped_bytes) *
        8.0 / 1e9;

    const auto episodes = tracker.episodes(1.0);
    episodes_total += episodes.size();
    for (const auto& episode : episodes) {
      durations_minutes.add((episode.end - episode.start).seconds_value() /
                            60.0);
      excess_gbit.add(episode.excess_bits / 1e9);
      projected_excess_gbit += episode.excess_bits / 1e9;
      peak_util.add(episode.peak_utilization);
    }
  }

  std::printf("  episodes across 4 PoPs x 48 h: %zu\n\n", episodes_total);
  std::printf("  Episode duration (minutes):\n");
  bench::print_cdf(durations_minutes, "minutes");
  std::printf("\n  Episode excess volume (Gbit that would drop):\n");
  bench::print_cdf(excess_gbit, "Gbit");
  std::printf("\n  Episode peak utilization:\n");
  bench::print_cdf(peak_util, "peak-util");
  std::printf(
      "\n  Excess volume, projection vs measurement:\n"
      "  projected episode excess: %.1f Gbit\n"
      "  measured queue tail-drops: %.1f Gbit (dataplane emulation)\n",
      projected_excess_gbit, measured_dropped_gbit);

  std::printf(
      "\nShape check (paper): overload is not a blip — episodes last tens\n"
      "of minutes to hours (diurnal peaks), which is why static capacity\n"
      "planning cannot simply absorb them and detouring is required.\n");
  return 0;
}
