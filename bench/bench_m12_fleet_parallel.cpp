// M12 (runtime): parallel fleet throughput — steps/sec and speedup of
// Fleet::run at 1/2/4/8/16 threads over 64–512-PoP fleets, plus a
// bitwise-determinism cross-check of the observer stream at every thread
// count. One controller per PoP with no cross-PoP coordination is the
// paper's deployment shape, which makes the fleet step embarrassingly
// parallel; this bench measures how much of that parallelism the
// runtime::ThreadPool actually banks on the host it runs on.
// Methodology and a result-table template live in EXPERIMENTS.md §M12.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"
#include "sim/fleet.h"

namespace {

using namespace ef;

/// FNV-1a over the observer stream: pop index, step time, and the
/// bit pattern of the demand/overload totals. Equal across thread counts
/// iff the parallel run is bitwise-identical to serial.
struct TraceHash {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void observe(std::size_t pop, const sim::StepRecord& record) {
    mix(pop);
    mix(static_cast<std::uint64_t>(record.when.millis_value()));
    double demand = record.total_demand.bits_per_sec();
    double overload = record.overload.bits_per_sec();
    std::uint64_t bits;
    __builtin_memcpy(&bits, &demand, 8);
    mix(bits);
    __builtin_memcpy(&bits, &overload, 8);
    mix(bits);
  }
};

struct RunStats {
  double seconds = 0;
  std::size_t pop_steps = 0;
  std::uint64_t trace_hash = 0;
};

RunStats run_fleet(const topology::World& world, int steps, unsigned threads) {
  sim::SimulationConfig config;
  // `steps` one-minute steps: t=0 .. t=(steps-1) minutes.
  config.duration = net::SimTime::minutes(steps - 1);
  config.step = net::SimTime::seconds(60);
  config.controller.cycle_period = net::SimTime::seconds(60);

  sim::Fleet fleet(world, config);  // construction excluded from timing
  RunStats stats;
  TraceHash hash;
  const auto start = std::chrono::steady_clock::now();
  fleet.run(
      [&](std::size_t pop, const sim::StepRecord& record) {
        ++stats.pop_steps;
        hash.observe(pop, record);
      },
      sim::RunOptions{threads});
  const auto stop = std::chrono::steady_clock::now();
  stats.seconds = std::chrono::duration<double>(stop - start).count();
  stats.trace_hash = hash.h;
  return stats;
}

}  // namespace

int main() {
  bench::print_title("M12", "parallel fleet executor: steps/sec and speedup");

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("host: %u hardware thread(s); speedup is bounded by the host,\n"
              "determinism is not (every row hashes the same stream).\n",
              hw);

  // EF_M12_STEPS=N overrides the per-run step count (CI keeps it small).
  int steps = 16;
  if (const char* env = std::getenv("EF_M12_STEPS")) {
    steps = std::max(2, std::atoi(env));
  }

  const std::vector<int> pop_counts{64, 256, 512};
  const std::vector<unsigned> thread_counts{1, 2, 4, 8, 16};

  for (int pops : pop_counts) {
    topology::WorldConfig config;
    config.num_clients = 40;
    config.num_pops = pops;
    const topology::World world = topology::World::generate(config);

    std::printf("\n%d PoPs x %d steps (one controller cycle per PoP per "
                "step):\n",
                pops, steps);
    analysis::TablePrinter table(
        {"threads", "wall-sec", "pop-steps/s", "speedup", "identical"},
        {8, 10, 12, 8, 10});
    table.print_header();

    double serial_seconds = 0;
    std::uint64_t serial_hash = 0;
    for (unsigned threads : thread_counts) {
      const RunStats stats = run_fleet(world, steps, threads);
      if (threads == 1) {
        serial_seconds = stats.seconds;
        serial_hash = stats.trace_hash;
      }
      table.print_row(
          {std::to_string(threads),
           analysis::TablePrinter::fmt(stats.seconds, 2),
           analysis::TablePrinter::fmt(
               static_cast<double>(stats.pop_steps) / stats.seconds, 0),
           analysis::TablePrinter::fmt(serial_seconds / stats.seconds, 2) +
               "x",
           stats.trace_hash == serial_hash ? "yes" : "NO"});
      if (stats.trace_hash != serial_hash) {
        std::printf("DETERMINISM VIOLATION at %u threads\n", threads);
        return 1;
      }
    }
  }

  std::printf(
      "\nshape check: per-PoP cycles share no mutable state, so pop-steps/s\n"
      "should scale near-linearly until the thread count reaches the\n"
      "hardware width (>=3x at 8 threads on 256 PoPs on an 8-way host),\n"
      "then flatten; the 'identical' column must read yes in every row —\n"
      "the barrier design makes thread count a pure performance knob.\n");
  return 0;
}
