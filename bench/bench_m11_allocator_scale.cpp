// M11 (§ scalability): allocator cycle cost vs problem size — how long
// one warm allocation takes as prefixes, egress options, and worker
// threads grow (up to the full-Internet-table 1M-prefix scale) — plus
// the end-to-end controller cycle (allocation + BGP injection) on a
// live PoP. scripts/bench.sh turns the BM_AllocatorCycle/<prefixes>/
// <routes>/<threads> rows into BENCH_alloc.json's alloc_scaling curve
// and the full_table_target verdict; docs/SCALING.md §5 documents the
// methodology. Uses google-benchmark.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <tuple>

#include "core/allocator.h"
#include "core/controller.h"
#include "runtime/thread_pool.h"
#include "topology/pop.h"
#include "workload/demand.h"

namespace {

using namespace ef;

/// Synthetic environment: `prefixes` prefixes, each with `routes_per`
/// candidate routes spread over `interfaces` interfaces; demand sized so
/// that ~10% of interfaces are overloaded.
struct SyntheticEnv {
  bgp::Rib rib;
  telemetry::InterfaceRegistry interfaces;
  telemetry::DemandMatrix demand;
  std::map<net::IpAddr, core::EgressView> egress;

  SyntheticEnv(int prefixes, int routes_per, int interface_count) {
    for (int i = 0; i < interface_count; ++i) {
      // Every 10th interface is under-provisioned.
      const double gbps = (i % 10 == 0) ? 4.0 : 40.0;
      interfaces.add(telemetry::InterfaceId(static_cast<std::uint32_t>(i)),
                     net::Bandwidth::gbps(gbps));
    }
    std::vector<net::IpAddr> peers;
    for (int i = 0; i < interface_count; ++i) {
      const net::IpAddr addr =
          net::IpAddr::v4(0xac100000u + static_cast<std::uint32_t>(i));
      const bgp::PeerType type = i % 4 == 3 ? bgp::PeerType::kTransit
                                            : bgp::PeerType::kPrivatePeer;
      egress[addr] = core::EgressView{
          telemetry::InterfaceId(static_cast<std::uint32_t>(i)), type, addr};
      peers.push_back(addr);
    }

    net::Rng rng(7);
    for (int p = 0; p < prefixes; ++p) {
      const net::Prefix prefix(
          net::IpAddr::v4(0x64000000u + (static_cast<std::uint32_t>(p) << 8)),
          24);
      for (int r = 0; r < routes_per; ++r) {
        const std::size_t peer_index = static_cast<std::size_t>(
            (p + r * 7) % interface_count);
        bgp::Route route;
        route.prefix = prefix;
        route.learned_from = bgp::PeerId(static_cast<std::uint32_t>(
            peer_index * 100000 + static_cast<std::size_t>(r)));
        const core::EgressView& view = egress.at(peers[peer_index]);
        route.peer_type = view.type;
        route.neighbor_as = bgp::AsNumber(60000 + static_cast<std::uint32_t>(peer_index));
        route.neighbor_router_id =
            bgp::RouterId(static_cast<std::uint32_t>(peer_index));
        route.attrs.next_hop = peers[peer_index];
        route.attrs.local_pref = bgp::LocalPref(
            view.type == bgp::PeerType::kTransit ? 200 : 340 - r);
        route.attrs.has_local_pref = true;
        route.attrs.as_path =
            bgp::AsPath{route.neighbor_as, bgp::AsNumber(30000)};
        rib.announce(route);
      }
      demand.set(prefix,
                 net::Bandwidth::mbps(rng.uniform(5.0, 400.0)));
    }
  }

  core::EgressResolver resolver() const {
    return [this](const bgp::Route& route) -> std::optional<core::EgressView> {
      auto it = egress.find(route.attrs.next_hop);
      if (it == egress.end()) return std::nullopt;
      return it->second;
    };
  }
};

/// The 1M-prefix environment takes tens of seconds (and ~GBs) to build,
/// so each (prefixes, routes, interfaces) environment is built once and
/// shared across every benchmark instance that asks for it. Safe because
/// no benchmark mutates the env: demand is fixed and the RIB only gains
/// ranking-cache entries (which allocation decisions never depend on).
SyntheticEnv& cached_env(int prefixes, int routes_per, int interfaces) {
  static std::map<std::tuple<int, int, int>, std::unique_ptr<SyntheticEnv>>
      cache;
  auto& slot = cache[{prefixes, routes_per, interfaces}];
  if (!slot) {
    slot = std::make_unique<SyntheticEnv>(prefixes, routes_per, interfaces);
  }
  return *slot;
}

void BM_AllocatorCycle(benchmark::State& state) {
  const int prefixes = static_cast<int>(state.range(0));
  const int routes_per = static_cast<int>(state.range(1));
  const unsigned threads = static_cast<unsigned>(state.range(2));
  SyntheticEnv& env = cached_env(prefixes, routes_per, 40);
  core::Allocator allocator{core::AllocatorConfig{}};
  core::Allocator::Workspace workspace;
  std::unique_ptr<runtime::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<runtime::ThreadPool>(threads);
  const auto resolver = env.resolver();
  // One untimed cycle warms the workspace and the ranking cache: the
  // timed loop then measures the warm steady-state cycle a controller
  // pays every ~30s. The pool is an execution resource only — decisions
  // are bitwise identical for every thread count (ShardedAllocProperty
  // locks that in), so rows differ only in wall-clock.
  benchmark::DoNotOptimize(allocator.allocate(
      env.rib, env.demand, env.interfaces, resolver, workspace, pool.get()));
  for (auto _ : state) {
    auto result = allocator.allocate(env.rib, env.demand, env.interfaces,
                                     resolver, workspace, pool.get());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * prefixes);
  state.counters["prefixes"] = prefixes;
  state.counters["routes/prefix"] = routes_per;
  state.counters["threads"] = threads;
}
BENCHMARK(BM_AllocatorCycle)
    ->Args({500, 3, 1})
    ->Args({2000, 3, 1})
    ->Args({8000, 3, 1})
    ->Args({32000, 3, 1})
    ->Args({8000, 6, 1})
    ->Args({8000, 12, 1})
    // The prefix×thread scaling curve (docs/SCALING.md §3, §5): the same
    // warm cycle at quarter- and full-Internet-table scale fanned over
    // 1/2/4/8 workers. scripts/bench.sh derives alloc_scaling and the
    // full_table_target verdict (1M × 3 routes ≤ 2 s) from these rows.
    ->Args({250000, 3, 1})
    ->Args({250000, 3, 2})
    ->Args({250000, 3, 4})
    ->Args({250000, 3, 8})
    ->Args({1000000, 3, 1})
    ->Args({1000000, 3, 2})
    ->Args({1000000, 3, 4})
    ->Args({1000000, 3, 8})
    ->Unit(benchmark::kMillisecond);

void BM_ControllerCycleEndToEnd(benchmark::State& state) {
  topology::WorldConfig config;
  config.num_clients = 56;
  config.num_pops = 1;
  static const topology::World world = topology::World::generate(config);
  topology::Pop pop(world, 0);
  core::Controller controller(pop, {});
  controller.connect();
  workload::DemandGenerator gen(world, 0, {});

  // Alternate between peak and 90%-of-peak demand so each cycle changes
  // the override set (worst case: allocation + announce + withdraw).
  const telemetry::DemandMatrix peak = gen.baseline(net::SimTime::hours(0));
  telemetry::DemandMatrix dipped;
  peak.for_each([&](const net::Prefix& prefix, net::Bandwidth rate) {
    dipped.set(prefix, rate * 0.9);
  });

  std::int64_t t = 0;
  for (auto _ : state) {
    const auto& demand = (t % 2 == 0) ? peak : dipped;
    auto stats =
        controller.run_cycle(demand, net::SimTime::seconds(30.0 * static_cast<double>(t)));
    benchmark::DoNotOptimize(stats);
    ++t;
  }
  state.counters["prefixes"] =
      static_cast<double>(pop.collector().rib().prefix_count());
}
BENCHMARK(BM_ControllerCycleEndToEnd)->Unit(benchmark::kMillisecond);

void BM_RibBestLookup(benchmark::State& state) {
  SyntheticEnv& env = cached_env(10000, 4, 40);
  std::vector<net::Prefix> probes;
  env.demand.for_each([&](const net::Prefix& prefix, net::Bandwidth) {
    probes.push_back(prefix);
  });
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.rib.best(probes[i % probes.size()]));
    ++i;
  }
}
BENCHMARK(BM_RibBestLookup);

}  // namespace

// Proof-of-build-mode for the recording script: our bench TUs must be
// compiled with NDEBUG (Release). The vendored libbenchmark reports its
// OWN build mode in library_build_type, which on distro packages is
// often "debug" even in a Release tree; ef_bench_build is about THIS
// binary's translation units, which is what the timings depend on.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("ef_bench_build", "release");
#else
  benchmark::AddCustomContext("ef_bench_build", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
