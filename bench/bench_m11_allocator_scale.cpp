// M11 (§ scalability): allocator cycle cost vs problem size — how long
// one stateless allocation takes as prefixes and egress options grow —
// plus the end-to-end controller cycle (allocation + BGP injection) on a
// live PoP. Uses google-benchmark.
#include <benchmark/benchmark.h>

#include "core/allocator.h"
#include "core/controller.h"
#include "topology/pop.h"
#include "workload/demand.h"

namespace {

using namespace ef;

/// Synthetic environment: `prefixes` prefixes, each with `routes_per`
/// candidate routes spread over `interfaces` interfaces; demand sized so
/// that ~10% of interfaces are overloaded.
struct SyntheticEnv {
  bgp::Rib rib;
  telemetry::InterfaceRegistry interfaces;
  telemetry::DemandMatrix demand;
  std::map<net::IpAddr, core::EgressView> egress;

  SyntheticEnv(int prefixes, int routes_per, int interface_count) {
    for (int i = 0; i < interface_count; ++i) {
      // Every 10th interface is under-provisioned.
      const double gbps = (i % 10 == 0) ? 4.0 : 40.0;
      interfaces.add(telemetry::InterfaceId(static_cast<std::uint32_t>(i)),
                     net::Bandwidth::gbps(gbps));
    }
    std::vector<net::IpAddr> peers;
    for (int i = 0; i < interface_count; ++i) {
      const net::IpAddr addr =
          net::IpAddr::v4(0xac100000u + static_cast<std::uint32_t>(i));
      const bgp::PeerType type = i % 4 == 3 ? bgp::PeerType::kTransit
                                            : bgp::PeerType::kPrivatePeer;
      egress[addr] = core::EgressView{
          telemetry::InterfaceId(static_cast<std::uint32_t>(i)), type, addr};
      peers.push_back(addr);
    }

    net::Rng rng(7);
    for (int p = 0; p < prefixes; ++p) {
      const net::Prefix prefix(
          net::IpAddr::v4(0x64000000u + (static_cast<std::uint32_t>(p) << 8)),
          24);
      for (int r = 0; r < routes_per; ++r) {
        const std::size_t peer_index = static_cast<std::size_t>(
            (p + r * 7) % interface_count);
        bgp::Route route;
        route.prefix = prefix;
        route.learned_from = bgp::PeerId(static_cast<std::uint32_t>(
            peer_index * 100000 + static_cast<std::size_t>(r)));
        const core::EgressView& view = egress.at(peers[peer_index]);
        route.peer_type = view.type;
        route.neighbor_as = bgp::AsNumber(60000 + static_cast<std::uint32_t>(peer_index));
        route.neighbor_router_id =
            bgp::RouterId(static_cast<std::uint32_t>(peer_index));
        route.attrs.next_hop = peers[peer_index];
        route.attrs.local_pref = bgp::LocalPref(
            view.type == bgp::PeerType::kTransit ? 200 : 340 - r);
        route.attrs.has_local_pref = true;
        route.attrs.as_path =
            bgp::AsPath{route.neighbor_as, bgp::AsNumber(30000)};
        rib.announce(route);
      }
      demand.set(prefix,
                 net::Bandwidth::mbps(rng.uniform(5.0, 400.0)));
    }
  }

  core::EgressResolver resolver() const {
    return [this](const bgp::Route& route) -> std::optional<core::EgressView> {
      auto it = egress.find(route.attrs.next_hop);
      if (it == egress.end()) return std::nullopt;
      return it->second;
    };
  }
};

void BM_AllocatorCycle(benchmark::State& state) {
  const int prefixes = static_cast<int>(state.range(0));
  const int routes_per = static_cast<int>(state.range(1));
  SyntheticEnv env(prefixes, routes_per, 40);
  core::Allocator allocator{core::AllocatorConfig{}};
  const auto resolver = env.resolver();
  for (auto _ : state) {
    auto result =
        allocator.allocate(env.rib, env.demand, env.interfaces, resolver);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * prefixes);
  state.counters["prefixes"] = prefixes;
  state.counters["routes/prefix"] = routes_per;
}
BENCHMARK(BM_AllocatorCycle)
    ->Args({500, 3})
    ->Args({2000, 3})
    ->Args({8000, 3})
    ->Args({32000, 3})
    ->Args({8000, 6})
    ->Args({8000, 12})
    ->Unit(benchmark::kMillisecond);

void BM_ControllerCycleEndToEnd(benchmark::State& state) {
  topology::WorldConfig config;
  config.num_clients = 56;
  config.num_pops = 1;
  static const topology::World world = topology::World::generate(config);
  topology::Pop pop(world, 0);
  core::Controller controller(pop, {});
  controller.connect();
  workload::DemandGenerator gen(world, 0, {});

  // Alternate between peak and 90%-of-peak demand so each cycle changes
  // the override set (worst case: allocation + announce + withdraw).
  const telemetry::DemandMatrix peak = gen.baseline(net::SimTime::hours(0));
  telemetry::DemandMatrix dipped;
  peak.for_each([&](const net::Prefix& prefix, net::Bandwidth rate) {
    dipped.set(prefix, rate * 0.9);
  });

  std::int64_t t = 0;
  for (auto _ : state) {
    const auto& demand = (t % 2 == 0) ? peak : dipped;
    auto stats =
        controller.run_cycle(demand, net::SimTime::seconds(30.0 * static_cast<double>(t)));
    benchmark::DoNotOptimize(stats);
    ++t;
  }
  state.counters["prefixes"] =
      static_cast<double>(pop.collector().rib().prefix_count());
}
BENCHMARK(BM_ControllerCycleEndToEnd)->Unit(benchmark::kMillisecond);

void BM_RibBestLookup(benchmark::State& state) {
  SyntheticEnv env(10000, 4, 40);
  std::vector<net::Prefix> probes;
  env.demand.for_each([&](const net::Prefix& prefix, net::Bandwidth) {
    probes.push_back(prefix);
  });
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.rib.best(probes[i % probes.size()]));
    ++i;
  }
}
BENCHMARK(BM_RibBestLookup);

}  // namespace

BENCHMARK_MAIN();
