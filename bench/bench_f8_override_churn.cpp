// F8 (Fig. 8): override churn — lifetimes, flaps, and announce/withdraw
// rates for the pure stateless controller vs the hysteresis ablation,
// swept over the restore threshold.
#include "bench/common.h"

int main() {
  using namespace ef;
  bench::print_title("F8",
                     "override lifetimes & flap rate vs hysteresis (48 h)");

  const topology::World& world = bench::standard_world();
  analysis::TablePrinter table(
      {"restore-threshold", "p50-life(min)", "p90-life(min)", "flapping",
       "adds+removes", "p99-overrides", "residual-overload"},
      {18, 14, 14, 10, 13, 14, 18});
  table.print_header();

  for (const double restore : {0.0, 0.5, 0.75, 0.9}) {
    analysis::DetourTracker detours;
    std::size_t churn_events = 0;
    double residual_overload = 0;
    net::CdfBuilder override_counts;

    for (std::size_t p = 0; p < world.pops().size(); ++p) {
      topology::Pop pop(world, p);
      sim::SimulationConfig config = bench::standard_sim_config(true);
      config.controller.restore_threshold = restore;
      sim::Simulation simulation(pop, config);
      simulation.run([&](const sim::StepRecord& record) {
        if (!record.controller) return;
        detours.record_cycle(*record.controller,
                             simulation.controller()->active_overrides(),
                             record.total_demand);
        churn_events += record.controller->added + record.controller->removed;
        override_counts.add(
            static_cast<double>(record.controller->overrides_active));
        residual_overload += record.overload.bits_per_sec() * 60;
      });
    }

    const auto& lifetimes = detours.override_lifetime_cycles();
    table.print_row(
        {restore == 0 ? "0 (stateless/paper)"
                      : analysis::TablePrinter::fmt(restore, 2),
         lifetimes.empty()
             ? "-"
             : analysis::TablePrinter::fmt(lifetimes.percentile(50), 0),
         lifetimes.empty()
             ? "-"
             : analysis::TablePrinter::fmt(lifetimes.percentile(90), 0),
         std::to_string(detours.flapping_prefixes()) + "/" +
             std::to_string(detours.total_overridden_prefixes()),
         std::to_string(churn_events),
         analysis::TablePrinter::fmt(override_counts.percentile(99), 0),
         analysis::TablePrinter::fmt(residual_overload / 1e9, 3) + " Gbit"});
  }

  std::printf(
      "\nShape check (paper): the stateless design keeps overrides exactly\n"
      "as long as the overload lasts but churns at the boundary; a modest\n"
      "restore band lengthens lifetimes and cuts announce/withdraw load at\n"
      "the cost of keeping some traffic detoured slightly longer.\n");
  return 0;
}
