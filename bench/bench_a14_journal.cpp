// A14 (audit subsystem cost): what recording and replaying cycles costs —
// snapshot serialize/deserialize throughput, journal append throughput,
// and replay cycles/sec — so the overhead of always-on auditing can be
// judged against the 30s production cycle budget. Uses google-benchmark.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "audit/journal.h"
#include "audit/replay.h"
#include "audit/snapshot.h"
#include "core/controller.h"
#include "net/bytes.h"
#include "topology/pop.h"
#include "topology/world.h"
#include "workload/demand.h"

namespace {

using namespace ef;

/// One real captured cycle: the busiest baseline hour on a standard
/// single-PoP world, so serialize/replay costs reflect a loaded cycle.
const audit::CycleSnapshot& captured_cycle() {
  static const audit::CycleSnapshot snapshot = [] {
    topology::WorldConfig config;
    config.num_clients = 56;
    config.num_pops = 1;
    const topology::World world = topology::World::generate(config);
    topology::Pop pop(world, 0);
    core::Controller controller(pop, {});
    controller.connect();
    std::vector<audit::CycleSnapshot> captured;
    controller.set_cycle_observer(
        [&](const core::Controller::CycleRecord& record) {
          captured.push_back(audit::capture_cycle(record));
        });
    workload::DemandGenerator gen(world, 0, {});
    for (int hour = 0; hour < 24; ++hour) {
      controller.run_cycle(gen.baseline(net::SimTime::hours(hour)),
                           net::SimTime::hours(hour));
    }
    return *std::max_element(
        captured.begin(), captured.end(),
        [](const audit::CycleSnapshot& a, const audit::CycleSnapshot& b) {
          return a.allocated.size() < b.allocated.size();
        });
  }();
  return snapshot;
}

void BM_SnapshotSerialize(benchmark::State& state) {
  const audit::CycleSnapshot& snapshot = captured_cycle();
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto wire = snapshot.serialize();
    bytes = wire.size();
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
  state.counters["routes"] = static_cast<double>(snapshot.routes.size());
  state.counters["prefixes"] = static_cast<double>(snapshot.demand.size());
}
BENCHMARK(BM_SnapshotSerialize)->Unit(benchmark::kMicrosecond);

void BM_SnapshotDeserialize(benchmark::State& state) {
  const auto wire = captured_cycle().serialize();
  for (auto _ : state) {
    auto decoded = audit::CycleSnapshot::deserialize(wire);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_SnapshotDeserialize)->Unit(benchmark::kMicrosecond);

void BM_JournalAppend(benchmark::State& state) {
  const auto wire = captured_cycle().serialize();
  const char* path = "bench_a14_journal.tmp.efj";
  audit::JournalWriter writer(path);
  for (auto _ : state) {
    writer.append(wire);
  }
  writer.flush();
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.size()));
  std::remove(path);
}
BENCHMARK(BM_JournalAppend)->Unit(benchmark::kMicrosecond);

void BM_JournalScan(benchmark::State& state) {
  // A journal image with 64 frames; measures framing + CRC verification.
  const auto wire = captured_cycle().serialize();
  net::BufWriter header;
  header.u32(audit::kJournalMagic);
  std::vector<std::uint8_t> image = header.take();
  for (int i = 0; i < 64; ++i) {
    const auto frame = audit::encode_frame(wire);
    image.insert(image.end(), frame.begin(), frame.end());
  }
  for (auto _ : state) {
    audit::JournalReader reader(image);
    std::size_t records = 0;
    while (reader.next()) ++records;
    benchmark::DoNotOptimize(records);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(image.size()));
  state.counters["frames"] = 64;
}
BENCHMARK(BM_JournalScan)->Unit(benchmark::kMillisecond);

void BM_ReplayCycle(benchmark::State& state) {
  const audit::CycleSnapshot& snapshot = captured_cycle();
  for (auto _ : state) {
    auto diff = audit::replay(snapshot);
    benchmark::DoNotOptimize(diff);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["overrides"] =
      static_cast<double>(snapshot.allocated.size());
}
BENCHMARK(BM_ReplayCycle)->Unit(benchmark::kMillisecond);

void BM_WhatIfDrain(benchmark::State& state) {
  const audit::CycleSnapshot& snapshot = captured_cycle();
  audit::Mutation drain;
  drain.kind = audit::Mutation::Kind::kDrain;
  drain.interface = snapshot.interfaces.front().id;
  for (auto _ : state) {
    auto report = audit::what_if(snapshot, {drain});
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WhatIfDrain)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
