// M13 (perf): the allocation fast path vs the seed allocator.
//
// The warm-cycle scenario is the paper's steady state: the RIB barely
// changes between ~30s controller cycles while demand moves every cycle.
// BM_SeedAllocator re-implements the pre-fast-path allocator verbatim
// (fresh ranking per prefix, std::function egress resolution, std::map
// load accounting, no reusable scratch); BM_FastPath runs the production
// path (epoch-cached rankings, per-cycle egress memo, dense load tables,
// persistent workspace). Both are checked against each other for
// bitwise-identical decisions before timing starts, so the speedup can
// never come from a behaviour change. Uses google-benchmark;
// scripts/bench.sh records the JSON in BENCH_alloc.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "bgp/decision.h"
#include "core/allocator.h"
#include "net/log.h"
#include "net/rng.h"

namespace {

using namespace ef;

/// Synthetic environment matching bench_m11: `prefixes` prefixes with
/// `routes_per` candidates over 40 interfaces, every 10th interface
/// under-provisioned, plus one persistent demand matrix whose rates are
/// rewritten in place each cycle (the DemandSmoother pipeline shape) so
/// demand moves every cycle while the RIB stays put.
struct SyntheticEnv {
  bgp::Rib rib;
  telemetry::InterfaceRegistry interfaces;
  telemetry::DemandMatrix demand;
  std::vector<std::pair<net::Prefix, net::Bandwidth>> base;
  std::map<net::IpAddr, core::EgressView> egress;

  SyntheticEnv(int prefixes, int routes_per, int interface_count = 40) {
    for (int i = 0; i < interface_count; ++i) {
      const double gbps = (i % 10 == 0) ? 4.0 : 40.0;
      interfaces.add(telemetry::InterfaceId(static_cast<std::uint32_t>(i)),
                     net::Bandwidth::gbps(gbps));
    }
    std::vector<net::IpAddr> peers;
    for (int i = 0; i < interface_count; ++i) {
      const net::IpAddr addr =
          net::IpAddr::v4(0xac100000u + static_cast<std::uint32_t>(i));
      const bgp::PeerType type = i % 4 == 3 ? bgp::PeerType::kTransit
                                            : bgp::PeerType::kPrivatePeer;
      egress[addr] = core::EgressView{
          telemetry::InterfaceId(static_cast<std::uint32_t>(i)), type, addr};
      peers.push_back(addr);
    }

    net::Rng rng(7);
    for (int p = 0; p < prefixes; ++p) {
      const net::Prefix prefix(
          net::IpAddr::v4(0x64000000u + (static_cast<std::uint32_t>(p) << 8)),
          24);
      for (int r = 0; r < routes_per; ++r) {
        const std::size_t peer_index = static_cast<std::size_t>(
            (p + r * 7) % interface_count);
        bgp::Route route;
        route.prefix = prefix;
        route.learned_from = bgp::PeerId(static_cast<std::uint32_t>(
            peer_index * 100000 + static_cast<std::size_t>(r)));
        const core::EgressView& view = egress.at(peers[peer_index]);
        route.peer_type = view.type;
        route.neighbor_as =
            bgp::AsNumber(60000 + static_cast<std::uint32_t>(peer_index));
        route.neighbor_router_id =
            bgp::RouterId(static_cast<std::uint32_t>(peer_index));
        route.attrs.next_hop = peers[peer_index];
        route.attrs.local_pref = bgp::LocalPref(
            view.type == bgp::PeerType::kTransit ? 200 : 340 - r);
        route.attrs.has_local_pref = true;
        route.attrs.as_path =
            bgp::AsPath{route.neighbor_as, bgp::AsNumber(30000)};
        rib.announce(route);
      }
      // Scale demand so the aggregate sits near 60% of fleet capacity:
      // the under-provisioned every-10th ports overload (and shed load in
      // phase 2) while the rest have detour headroom — the paper's steady
      // state. bench_m11's uniform(5, 400) oversubscribes every port ~4x,
      // which measures detour-scan exhaustion rather than warm cycles.
      const net::Bandwidth rate = net::Bandwidth::mbps(
          rng.uniform(5.0, 50.0) * (32000.0 / prefixes));
      base.emplace_back(prefix, rate);
      demand.set(prefix, rate);
    }
  }

  /// Rewrites every rate in place: peak on even cycles, a 10% dip on odd
  /// ones. Membership never changes, matching a steady smoother window.
  void mutate_demand(std::int64_t cycle) {
    const double factor = cycle % 2 == 0 ? 1.0 : 0.9;
    for (const auto& [prefix, rate] : base) {
      demand.set(prefix, rate * factor);
    }
  }

  core::EgressResolver resolver() const {
    return [this](const bgp::Route& route) -> std::optional<core::EgressView> {
      auto it = egress.find(route.attrs.next_hop);
      if (it == egress.end()) return std::nullopt;
      return it->second;
    };
  }
};

/// The 1M-prefix environment takes tens of seconds to build, so each
/// (prefixes, routes) environment is built once and shared across the
/// seed, fast-path, and cross-check runs. Sharing is safe: demand is a
/// pure function of the cycle parity (mutate_demand), and re-announcing
/// routes only stales the ranking cache — never a decision.
SyntheticEnv& cached_env(int prefixes, int routes_per) {
  static std::map<std::tuple<int, int>, std::unique_ptr<SyntheticEnv>> cache;
  auto& slot = cache[{prefixes, routes_per}];
  if (!slot) slot = std::make_unique<SyntheticEnv>(prefixes, routes_per);
  return *slot;
}

// --------------------------------------------------------------------
// Seed allocator: the pre-fast-path implementation, kept verbatim as the
// benchmark baseline (and as a cross-check oracle for the fast path).
// --------------------------------------------------------------------

int seed_target_tier(bgp::PeerType type) {
  switch (type) {
    case bgp::PeerType::kPrivatePeer:
      return 0;
    case bgp::PeerType::kPublicPeer:
      return 1;
    case bgp::PeerType::kRouteServer:
      return 2;
    default:
      return 3;
  }
}

struct SeedPinnedPrefix {
  net::Prefix prefix;
  net::Bandwidth rate;
  const bgp::Route* best = nullptr;
  std::vector<const bgp::Route*> alternates;
  int best_alternate_tier = 9;
};

core::AllocationResult seed_allocate(
    const core::AllocatorConfig& config, const bgp::Rib& rib,
    const telemetry::DemandMatrix& demand,
    const telemetry::InterfaceRegistry& interfaces,
    const core::EgressResolver& resolve) {
  core::AllocationResult result;

  interfaces.for_each([&](telemetry::InterfaceId id,
                          const telemetry::InterfaceState&) {
    result.projected_load[id] = net::Bandwidth::zero();
  });

  std::map<telemetry::InterfaceId, std::vector<SeedPinnedPrefix>>
      by_interface;

  std::vector<std::pair<net::Prefix, net::Bandwidth>> demand_sorted;
  demand_sorted.reserve(demand.prefix_count());
  demand.for_each([&](const net::Prefix& prefix, net::Bandwidth rate) {
    demand_sorted.emplace_back(prefix, rate);
  });
  std::sort(demand_sorted.begin(), demand_sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  for (const auto& [prefix, rate] : demand_sorted) {
    if (rate <= net::Bandwidth::zero()) continue;

    const auto all = rib.candidates(prefix);
    const auto order = bgp::rank_routes(all, rib.decision_config());

    SeedPinnedPrefix pinned;
    pinned.prefix = prefix;
    pinned.rate = rate;

    std::vector<const bgp::Route*> ranked;
    ranked.reserve(order.size());
    for (std::size_t index : order) {
      if (all[index].peer_type != bgp::PeerType::kController) {
        ranked.push_back(&all[index]);
      }
    }
    if (ranked.empty()) {
      result.unroutable += rate;
      continue;
    }
    pinned.best = ranked.front();
    pinned.alternates.assign(ranked.begin() + 1, ranked.end());

    const auto egress = resolve(*pinned.best);
    if (!egress || !interfaces.contains(egress->interface)) {
      result.unroutable += rate;
      continue;
    }
    result.projected_load[egress->interface] += rate;
    by_interface[egress->interface].push_back(std::move(pinned));
  }

  result.final_load = result.projected_load;

  auto capacity_of = [&](telemetry::InterfaceId id) {
    return interfaces.usable_capacity(id);
  };

  for (auto& [iface, pinned_prefixes] : by_interface) {
    const net::Bandwidth capacity = capacity_of(iface);
    const net::Bandwidth projected = result.projected_load[iface];
    const net::Bandwidth limit = capacity * config.overload_threshold;
    if (projected <= limit && capacity > net::Bandwidth::zero()) continue;
    ++result.overloaded_interfaces;

    const net::Bandwidth target = capacity * config.target_utilization;
    net::Bandwidth to_move = result.final_load[iface] - target;

    for (SeedPinnedPrefix& pinned : pinned_prefixes) {
      pinned.best_alternate_tier = 9;
      for (const bgp::Route* alt : pinned.alternates) {
        const auto egress = resolve(*alt);
        if (!egress || egress->interface == iface) continue;
        pinned.best_alternate_tier = std::min(
            pinned.best_alternate_tier, seed_target_tier(egress->type));
      }
    }

    std::sort(pinned_prefixes.begin(), pinned_prefixes.end(),
              [&](const SeedPinnedPrefix& a, const SeedPinnedPrefix& b) {
                if (config.order == core::DetourOrder::kBestAlternateFirst &&
                    a.best_alternate_tier != b.best_alternate_tier) {
                  return a.best_alternate_tier < b.best_alternate_tier;
                }
                if (a.rate != b.rate) return a.rate > b.rate;
                return a.prefix < b.prefix;
              });

    const std::function<net::Bandwidth(const SeedPinnedPrefix&,
                                       const net::Prefix&, net::Bandwidth,
                                       int)>
        place = [&](const SeedPinnedPrefix& pinned, const net::Prefix& prefix,
                    net::Bandwidth rate, int depth) -> net::Bandwidth {
      if (config.max_overrides != 0 &&
          result.overrides.size() >= config.max_overrides) {
        return net::Bandwidth::zero();
      }
      for (const bgp::Route* alt : pinned.alternates) {
        const auto egress = resolve(*alt);
        if (!egress || egress->interface == iface) continue;
        const net::Bandwidth alt_capacity = capacity_of(egress->interface);
        if (alt_capacity <= net::Bandwidth::zero()) continue;
        const net::Bandwidth headroom =
            alt_capacity * config.detour_headroom -
            result.final_load[egress->interface];
        if (rate > headroom) continue;

        core::Override override_entry;
        override_entry.prefix = prefix;
        override_entry.rate = rate;
        override_entry.next_hop = alt->attrs.next_hop;
        override_entry.as_path = alt->attrs.as_path;
        override_entry.from_interface = iface;
        override_entry.target_interface = egress->interface;
        override_entry.from_type = pinned.best->peer_type;
        override_entry.target_type = egress->type;
        result.overrides.push_back(std::move(override_entry));

        result.final_load[iface] -= rate;
        result.final_load[egress->interface] += rate;
        return rate;
      }
      if (config.allow_prefix_splitting && depth < config.max_split_depth &&
          prefix.length() < net::address_bits(prefix.family())) {
        auto bytes = prefix.address().bytes();
        const int bit = prefix.length();
        bytes[static_cast<std::size_t>(bit / 8)] |=
            static_cast<std::uint8_t>(1u << (7 - bit % 8));
        const net::Prefix low(prefix.address(), prefix.length() + 1);
        const net::Prefix high(prefix.family() == net::Family::kV4
                                   ? net::IpAddr::v4(
                                         (static_cast<std::uint32_t>(bytes[0])
                                          << 24) |
                                         (static_cast<std::uint32_t>(bytes[1])
                                          << 16) |
                                         (static_cast<std::uint32_t>(bytes[2])
                                          << 8) |
                                         bytes[3])
                                   : net::IpAddr::v6(bytes),
                               prefix.length() + 1);
        net::Bandwidth moved = place(pinned, low, rate / 2, depth + 1);
        moved += place(pinned, high, rate / 2, depth + 1);
        return moved;
      }
      return net::Bandwidth::zero();
    };

    for (const SeedPinnedPrefix& pinned : pinned_prefixes) {
      if (to_move <= net::Bandwidth::zero()) break;
      if (config.max_overrides != 0 &&
          result.overrides.size() >= config.max_overrides) {
        break;
      }
      to_move -= place(pinned, pinned.prefix, pinned.rate, 0);
    }

    if (to_move > net::Bandwidth::zero()) {
      const net::Bandwidth excess = result.final_load[iface] - capacity;
      if (excess > net::Bandwidth::zero()) {
        result.unresolved_overload += excess;
      }
    }
  }

  return result;
}

/// Decisions must match before any timing is trusted.
void cross_check(SyntheticEnv& env) {
  const core::AllocatorConfig config;
  core::Allocator allocator{config};
  core::Allocator::Workspace workspace;
  const auto resolver = env.resolver();
  for (std::int64_t cycle = 0; cycle < 3; ++cycle) {
    env.mutate_demand(cycle);
    const auto fast = allocator.allocate(env.rib, env.demand, env.interfaces,
                                         resolver, workspace);
    const auto seed =
        seed_allocate(config, env.rib, env.demand, env.interfaces, resolver);
    EF_CHECK(fast == seed,
             "fast path diverged from the seed allocator (cycle " << cycle
                                                                  << ")");
  }
}

void BM_SeedAllocatorWarmCycle(benchmark::State& state) {
  const int prefixes = static_cast<int>(state.range(0));
  const int routes_per = static_cast<int>(state.range(1));
  SyntheticEnv& env = cached_env(prefixes, routes_per);
  const core::AllocatorConfig config;
  const auto resolver = env.resolver();
  std::int64_t cycle = 0;
  for (auto _ : state) {
    state.PauseTiming();
    env.mutate_demand(cycle);
    state.ResumeTiming();
    auto result =
        seed_allocate(config, env.rib, env.demand, env.interfaces, resolver);
    benchmark::DoNotOptimize(result);
    ++cycle;
  }
  state.SetItemsProcessed(state.iterations() * prefixes);
  state.counters["prefixes"] = prefixes;
  state.counters["routes/prefix"] = routes_per;
}
BENCHMARK(BM_SeedAllocatorWarmCycle)
    ->Args({8000, 3})
    ->Args({32000, 3})
    ->Args({8000, 12})
    ->Args({32000, 12})
    // Full-Internet-table scale (docs/SCALING.md §5): the seed baseline
    // the fast path's 1M-row speedup is measured against.
    ->Args({1000000, 3})
    ->Unit(benchmark::kMillisecond);

void BM_FastPathWarmCycle(benchmark::State& state) {
  const int prefixes = static_cast<int>(state.range(0));
  const int routes_per = static_cast<int>(state.range(1));
  SyntheticEnv& env = cached_env(prefixes, routes_per);
  cross_check(env);
  core::Allocator allocator{core::AllocatorConfig{}};
  core::Allocator::Workspace workspace;
  const auto resolver = env.resolver();
  // Warm the ranking cache and the workspace: cycle 0 is the cold cycle a
  // controller pays once after (re)start.
  env.mutate_demand(0);
  benchmark::DoNotOptimize(allocator.allocate(env.rib, env.demand,
                                              env.interfaces, resolver,
                                              workspace));
  env.rib.reset_rank_cache_stats();
  std::int64_t cycle = 1;
  for (auto _ : state) {
    state.PauseTiming();
    env.mutate_demand(cycle);
    state.ResumeTiming();
    auto result = allocator.allocate(env.rib, env.demand, env.interfaces,
                                     resolver, workspace);
    benchmark::DoNotOptimize(result);
    ++cycle;
  }
  const auto cache = env.rib.rank_cache_stats();
  state.SetItemsProcessed(state.iterations() * prefixes);
  state.counters["prefixes"] = prefixes;
  state.counters["routes/prefix"] = routes_per;
  state.counters["rank_cache_hit_rate"] =
      cache.hits + cache.misses == 0
          ? 0.0
          : static_cast<double>(cache.hits) /
                static_cast<double>(cache.hits + cache.misses);
}
BENCHMARK(BM_FastPathWarmCycle)
    ->Args({8000, 3})
    ->Args({32000, 3})
    ->Args({8000, 12})
    ->Args({32000, 12})
    // Full-table row: cross-checked bitwise against the seed allocator
    // at 1M prefixes before timing, like every other row.
    ->Args({1000000, 3})
    ->Unit(benchmark::kMillisecond);

void BM_FastPathColdCycle(benchmark::State& state) {
  // First-cycle cost: fresh workspace and a RIB whose ranking cache was
  // never filled for the demand's prefixes — what a restarted controller
  // pays once. Rebuilding the env per iteration would swamp the timing,
  // so this re-announces one route per prefix each iteration to stale
  // every cache entry instead.
  const int prefixes = static_cast<int>(state.range(0));
  const int routes_per = static_cast<int>(state.range(1));
  SyntheticEnv& env = cached_env(prefixes, routes_per);
  core::Allocator allocator{core::AllocatorConfig{}};
  const auto resolver = env.resolver();
  std::vector<bgp::Route> refresh;
  env.rib.for_each([&](const net::Prefix&, std::span<const bgp::Route> all) {
    refresh.push_back(all.front());
  });
  std::int64_t cycle = 0;
  for (auto _ : state) {
    state.PauseTiming();
    env.mutate_demand(cycle);
    for (const bgp::Route& route : refresh) env.rib.announce(route);
    state.ResumeTiming();
    core::Allocator::Workspace workspace;
    auto result = allocator.allocate(env.rib, env.demand, env.interfaces,
                                     resolver, workspace);
    benchmark::DoNotOptimize(result);
    ++cycle;
  }
  state.SetItemsProcessed(state.iterations() * prefixes);
  state.counters["prefixes"] = prefixes;
  state.counters["routes/prefix"] = routes_per;
}
BENCHMARK(BM_FastPathColdCycle)
    ->Args({8000, 3})
    ->Args({32000, 3})
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Proof-of-build-mode for the recording script: our bench TUs must be
// compiled with NDEBUG (Release). The vendored libbenchmark reports its
// OWN build mode in library_build_type, which on distro packages is
// often "debug" even in a Release tree; ef_bench_build is about THIS
// binary's translation units, which is what the timings depend on.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("ef_bench_build", "release");
#else
  benchmark::AddCustomContext("ef_bench_build", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
