// F3 (Fig. 3): without Edge Fabric — projected interface utilization over
// two simulated days under vanilla BGP.
//
// Reports, per PoP: the CDF of (interface, minute) utilization samples,
// the fraction of samples above capacity, which interfaces ever overload,
// how much traffic the projection says would drop, and — from the
// flow-level dataplane emulation riding the same run — the fraction that
// measurably DID drop at the bounded interface queues.
#include "bench/common.h"

int main() {
  using namespace ef;
  bench::print_title(
      "F3", "interface utilization without Edge Fabric (48 h, per minute)");

  const topology::World& world = bench::standard_world();
  analysis::TablePrinter table({"pop", "ifaces", "overloaded-ifaces",
                                "sample-frac>100%", "would-drop",
                                "measured-drop"},
                               {8, 8, 18, 18, 12, 14});
  table.print_header();

  net::CdfBuilder all_utilization;
  for (std::size_t p = 0; p < world.pops().size(); ++p) {
    topology::Pop pop(world, p);
    analysis::UtilizationTracker tracker(pop.interfaces());
    sim::Simulation simulation(pop, bench::measured_sim_config(false));
    simulation.run([&](const sim::StepRecord& record) {
      tracker.record(record.when, record.load);
    });
    const auto& dataplane_totals = simulation.dataplane()->totals();
    const double measured_drop =
        dataplane_totals.offered_bytes == 0
            ? 0.0
            : static_cast<double>(dataplane_totals.dropped_bytes) /
                  static_cast<double>(dataplane_totals.offered_bytes);

    int ever_overloaded = 0;
    for (const auto& [iface, peak] : tracker.peak_utilization()) {
      if (peak > 1.0) ++ever_overloaded;
      all_utilization.add(peak);
    }
    table.print_row(
        {world.pops()[p].name, std::to_string(pop.interfaces().size()),
         std::to_string(ever_overloaded),
         analysis::TablePrinter::pct(tracker.overloaded_fraction(1.0), 2),
         analysis::TablePrinter::pct(tracker.excess_traffic_fraction(), 2),
         analysis::TablePrinter::pct(measured_drop, 2)});

    if (p == 0) {
      std::printf("\n  %s utilization sample CDF:\n",
                  world.pops()[p].name.c_str());
      bench::print_cdf(tracker.utilization_samples(), "utilization");
      std::printf("\n");
      table.print_header();
    }
  }

  std::printf("\n  Peak utilization per interface (all PoPs):\n");
  bench::print_cdf(all_utilization, "peak-util");

  std::printf(
      "\nShape check (paper): a minority of interfaces (under-provisioned\n"
      "PNIs) exceed capacity around daily peaks; a few percent of samples\n"
      "are overloaded and a small but real share of traffic drops — the\n"
      "measured queue-level drop fraction tracks the fluid projection.\n");
  return 0;
}
