// F9 (Fig. 9): alternate-path performance — the CDF of median-RTT
// difference (alternate − preferred) measured by the DSCP sampling
// pipeline, under realistic load, for the 2nd- and 3rd-preference paths.
//
// Two operating points: the daily trough (preferred paths uncongested)
// and the peak (some preferred paths congested), matching the paper's
// observation that alternates look much better exactly when it matters.
#include "bench/common.h"
#include "altpath/measurer.h"
#include "altpath/perf_model.h"
#include "workload/demand.h"

int main() {
  using namespace ef;
  bench::print_title(
      "F9", "alternate-path RTT vs preferred path (DSCP measurement)");

  const topology::World& world = bench::standard_world();
  topology::Pop pop(world, 0);
  workload::DemandConfig quiet;
  quiet.enable_events = false;
  quiet.noise_sigma = 0;
  workload::DemandGenerator gen(world, 0, quiet);

  for (const bool at_peak : {false, true}) {
    const telemetry::DemandMatrix demand =
        gen.baseline(at_peak ? net::SimTime::hours(0) : net::SimTime::hours(12));

    altpath::PerfModel model(pop);
    model.set_interface_load(pop.project_load(demand));

    altpath::MeasurerConfig config;
    config.noise_ms = 1.5;
    altpath::AltPathMeasurer measurer(pop, model, config);
    for (int round = 0; round < 10; ++round) {
      measurer.run_round(demand, net::SimTime::seconds(round * 30));
    }

    std::printf("\n  --- %s (total %s) ---\n",
                at_peak ? "at daily peak" : "at daily trough",
                demand.total().to_string().c_str());
    for (int rank = 1; rank <= 2; ++rank) {
      const auto diffs = measurer.alt_minus_primary(rank, 16);
      net::CdfBuilder cdf;
      std::size_t better = 0;
      std::size_t within_10ms = 0;
      for (const auto& [prefix, diff] : diffs) {
        cdf.add(diff);
        if (diff < 0) ++better;
        if (diff <= 10.0) ++within_10ms;
      }
      if (cdf.empty()) continue;
      std::printf(
          "\n  alternate #%d vs preferred (%zu prefixes): "
          "%.0f%% faster, %.0f%% within 10 ms\n",
          rank, diffs.size(),
          100.0 * static_cast<double>(better) /
              static_cast<double>(diffs.size()),
          100.0 * static_cast<double>(within_10ms) /
              static_cast<double>(diffs.size()));
      bench::print_cdf(cdf, "alt-minus-pref(ms)");
    }
  }

  std::printf(
      "\nShape check (paper): at trough, alternates are mostly a little\n"
      "slower (BGP's preference is usually right on RTT); at peak the\n"
      "distribution shifts left — for prefixes whose preferred egress is\n"
      "congested, the alternate path is as good or better.\n");
  return 0;
}
