// M14 (perf): live-ingest throughput and end-to-end cycle latency.
//
// Three measurements cover the efd daemon's data path:
//   BM_BmpDecode       — BMP frame decode + RIB apply throughput, fed the
//                        exact byte stream a router's exporter produces
//                        (MB/s and msgs/s via bytes/items processed).
//   BM_SflowDecode     — EFS1 datagram decode throughput for full
//                        64-sample datagrams.
//   BM_LoopbackCycle   — wall latency of one complete socket-fed cycle:
//                        demand datagram + window-close marker over real
//                        loopback UDP, through the daemon's event loop,
//                        estimation, allocation, and digest publication.
// scripts/bench.sh records the JSON in BENCH_ingest.json.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bmp/collector.h"
#include "bmp/wire.h"
#include "io/socket.h"
#include "service/efd.h"
#include "telemetry/sflow_wire.h"
#include "topology/world.h"

namespace {

using namespace ef;

/// A realistic BMP byte stream: one Initiation, `peers` PeerUps, then
/// `routes` RouteMonitoring announcements round-robined over the peers.
std::vector<std::uint8_t> bmp_stream(int peers, int routes) {
  std::vector<std::uint8_t> stream;
  const auto append = [&stream](const bmp::BmpMessage& msg) {
    const std::vector<std::uint8_t> bytes = bmp::encode(msg);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  };

  bmp::InitiationMsg init;
  init.sys_name = "bench-router";
  init.sys_descr = "bench_m14_ingest";
  append(init);

  const auto header = [](int peer) {
    bmp::PerPeerHeader h;
    h.peer_addr = net::IpAddr::v4(0x0a000000u + static_cast<std::uint32_t>(peer));
    h.peer_as = 65000u + static_cast<std::uint32_t>(peer);
    h.peer_bgp_id = static_cast<std::uint32_t>(peer);
    h.timestamp = net::SimTime::seconds(1);
    return h;
  };
  for (int peer = 1; peer <= peers; ++peer) {
    bmp::PeerUpMsg up;
    up.peer = header(peer);
    up.local_addr = net::IpAddr::v4(0x0a0000feu);
    up.information.push_back(peer % 3 ? "peer-type=private"
                                      : "peer-type=transit");
    append(up);
  }
  for (int i = 0; i < routes; ++i) {
    const int peer = 1 + i % peers;
    bmp::RouteMonitoringMsg announce;
    announce.peer = header(peer);
    announce.peer.timestamp = net::SimTime::seconds(2 + i);
    announce.update.attrs.as_path =
        bgp::AsPath{bgp::AsNumber(65000u + static_cast<std::uint32_t>(peer)),
                    bgp::AsNumber(200u + static_cast<std::uint32_t>(i % 97))};
    announce.update.attrs.next_hop =
        net::IpAddr::v4(0xac100000u + static_cast<std::uint32_t>(peer));
    announce.update.attrs.local_pref = bgp::LocalPref(300);
    announce.update.attrs.has_local_pref = true;
    announce.update.nlri.push_back(net::Prefix(
        net::IpAddr::v4(0x64000000u + (static_cast<std::uint32_t>(i) << 8)),
        24));
    append(announce);
  }
  return stream;
}

void BM_BmpDecode(benchmark::State& state) {
  const std::vector<std::uint8_t> stream =
      bmp_stream(24, static_cast<int>(state.range(0)));
  const std::uint64_t messages = 1u + 24u + static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    bmp::BmpCollector collector;
    const auto result = collector.receive(1, stream);
    if (result.applied != messages || result.fatal) {
      state.SkipWithError("decode mismatch");
      return;
    }
    benchmark::DoNotOptimize(collector.rib().route_count());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(messages));
}
BENCHMARK(BM_BmpDecode)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_SflowDecode(benchmark::State& state) {
  std::vector<telemetry::wire::SflowRecord> records;
  for (int i = 0; i < 64; ++i) {
    telemetry::FlowSample sample;
    sample.src = net::IpAddr::v4(0x0a000001u + static_cast<std::uint32_t>(i));
    sample.dst = net::IpAddr::v4(0x64000001u +
                                 (static_cast<std::uint32_t>(i) << 8));
    sample.egress = telemetry::InterfaceId(static_cast<std::uint32_t>(i % 12));
    sample.packet_bytes = 1400;
    sample.when = net::SimTime::seconds(i);
    records.emplace_back(sample);
  }
  const std::vector<std::uint8_t> datagram =
      telemetry::wire::encode_datagram(records);
  for (auto _ : state) {
    const telemetry::wire::DatagramDecode decoded =
        telemetry::wire::decode_datagram(datagram);
    if (!decoded.ok || decoded.records.size() != records.size()) {
      state.SkipWithError("decode mismatch");
      return;
    }
    benchmark::DoNotOptimize(decoded.records.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(datagram.size()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_SflowDecode);

/// One complete feed-to-decision round trip over real loopback sockets.
void BM_LoopbackCycle(benchmark::State& state) {
  topology::WorldConfig world_config;
  world_config.num_clients = 40;
  world_config.num_pops = 2;
  world_config.seed = 7;
  const topology::World world = topology::World::generate(world_config);
  topology::Pop pop(world, 0);

  service::EfdConfig config;
  config.controller.enforcement = core::Enforcement::kShadow;
  config.controller.cycle_period = net::SimTime::seconds(30);
  service::EfdService daemon(pop, config);
  daemon.start();

  // Load a RIB once over the BMP socket (kept open so routes persist).
  const std::vector<std::uint8_t> stream = bmp_stream(24, 2000);
  io::Fd bmp_conn = io::connect_tcp(daemon.bmp_port());
  if (!bmp_conn.valid() || !io::send_all(bmp_conn.get(), stream)) {
    state.SkipWithError("BMP feed failed");
    return;
  }
  daemon.wait_for_bmp_bytes(stream.size(), std::chrono::milliseconds(10000));

  io::Fd sflow = io::connect_udp(daemon.sflow_port());
  std::vector<telemetry::wire::SflowRecord> records;
  for (int i = 0; i < 256; ++i) {
    records.emplace_back(telemetry::wire::DemandRate{
        net::Prefix(
            net::IpAddr::v4(0x64000000u + (static_cast<std::uint32_t>(i) << 8)),
            24),
        net::Bandwidth::gbps(0.5 + 0.01 * i)});
  }

  std::uint64_t windows = 0;
  net::SimTime now;
  for (auto _ : state) {
    now = now + net::SimTime::seconds(30);
    records.push_back(telemetry::wire::SflowRecord(
        telemetry::wire::WindowClose{now, now}));
    const std::vector<std::uint8_t> datagram =
        telemetry::wire::encode_datagram(records);
    records.pop_back();
    if (!io::UdpSocket::send_to(sflow.get(), daemon.sflow_port(), datagram)) {
      state.SkipWithError("sFlow send failed");
      return;
    }
    ++windows;
    if (!daemon.wait_for_windows(windows, std::chrono::milliseconds(10000))) {
      state.SkipWithError("daemon missed a window");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(windows));
  if (daemon.ingest().cycles_run != windows) {
    state.SkipWithError("cycle count mismatch");
  }
  daemon.stop();
}
BENCHMARK(BM_LoopbackCycle)->Unit(benchmark::kMicrosecond)
    ->MeasureProcessCPUTime()->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
