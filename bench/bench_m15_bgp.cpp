// M15 (perf): BGP enforcement-plane throughput and loopback latency.
//
// Three measurements cover the announcer's data path:
//   BM_UpdateEncode        — RFC 4271 UPDATE serialization throughput for
//                            the override-shaped messages the announcer
//                            emits (MB/s and msgs/s via bytes/items).
//   BM_UpdateDecode        — the matching deserialization throughput on
//                            the peering-router side.
//   BM_AnnounceApplyLoopback — wall latency from Announcer::announce of a
//                            changed override set to the route being
//                            visible in a PeeringRouterService Adj-RIB-In
//                            over real loopback TCP.
// scripts/bench.sh records the JSON in BENCH_bgp.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "bgp/wire.h"
#include "core/allocator.h"
#include "core/controller.h"
#include "io/event_loop.h"
#include "service/announcer.h"
#include "service/prd.h"

namespace {

using namespace ef;
using namespace std::chrono_literals;

/// UPDATE messages shaped exactly like the announcer's originations: one
/// NLRI each, next hop, short AS path, override LOCAL_PREF, and the
/// override + peer-type communities.
std::vector<bgp::Message> override_updates(int count) {
  std::vector<bgp::Message> messages;
  messages.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    bgp::UpdateMessage update;
    update.nlri = {net::Prefix(
        net::IpAddr::v4(0x64000000u + (static_cast<std::uint32_t>(i) << 8)),
        24)};
    update.attrs.next_hop = net::IpAddr::v4(0xC0000201);
    update.attrs.as_path = bgp::AsPath{bgp::AsNumber(64512)};
    update.attrs.local_pref = bgp::LocalPref(1000);
    update.attrs.has_local_pref = true;
    update.attrs.communities = {core::kOverrideCommunity,
                                bgp::peer_type_community(
                                    bgp::PeerType::kTransit)};
    messages.emplace_back(update);
  }
  return messages;
}

void BM_UpdateEncode(benchmark::State& state) {
  const std::vector<bgp::Message> messages =
      override_updates(static_cast<int>(state.range(0)));
  std::int64_t bytes = 0;
  for (auto _ : state) {
    bytes = 0;
    for (const bgp::Message& msg : messages) {
      const std::vector<std::uint8_t> encoded = bgp::wire::encode(msg);
      bytes += static_cast<std::int64_t>(encoded.size());
      benchmark::DoNotOptimize(encoded.data());
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          bytes);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(messages.size()));
}
BENCHMARK(BM_UpdateEncode)->Arg(1000)->Arg(10000);

void BM_UpdateDecode(benchmark::State& state) {
  const std::vector<bgp::Message> messages =
      override_updates(static_cast<int>(state.range(0)));
  std::vector<std::vector<std::uint8_t>> wires;
  wires.reserve(messages.size());
  std::int64_t bytes = 0;
  for (const bgp::Message& msg : messages) {
    wires.push_back(bgp::wire::encode(msg));
    bytes += static_cast<std::int64_t>(wires.back().size());
  }
  for (auto _ : state) {
    for (const std::vector<std::uint8_t>& wire : wires) {
      const auto decoded = bgp::wire::decode(wire);
      if (!decoded.has_value()) {
        state.SkipWithError("decode failed");
        return;
      }
      benchmark::DoNotOptimize(&*decoded);
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          bytes);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wires.size()));
}
BENCHMARK(BM_UpdateDecode)->Arg(1000)->Arg(10000);

/// One announce-to-applied round trip over real loopback TCP: flip the
/// override set between two single-prefix states and spin until the
/// peering router's published Adj-RIB-In reflects the change. The
/// router publishes its counters from the speaker's monitor callback,
/// so the poll sees the route the moment it is applied.
void BM_AnnounceApplyLoopback(benchmark::State& state) {
  service::PeeringRouterService::Config router_config;
  router_config.local_as = bgp::AsNumber(65000);
  router_config.hold_time_secs = 90;
  router_config.tick_period = 20ms;
  service::PeeringRouterService router(router_config);
  router.start();

  io::EventLoop loop;
  service::Announcer::Config config;
  config.ports = {router.bgp_port()};
  config.local_as = bgp::AsNumber(65000);
  config.peer_as = bgp::AsNumber(65000);
  config.hold_time_secs = 90;
  config.tick_period = 20ms;
  service::Announcer announcer(loop, config);
  std::thread runner([&loop] { loop.run(); });
  loop.run_sync([&announcer] { announcer.connect(); });

  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (announcer.stats().sessions_established != 1) {
    if (std::chrono::steady_clock::now() >= deadline) {
      state.SkipWithError("session did not establish");
      loop.stop();
      runner.join();
      router.stop();
      return;
    }
    std::this_thread::sleep_for(1ms);
  }

  const auto make_set = [](std::uint32_t addr) {
    core::Override entry;
    entry.prefix = net::Prefix(net::IpAddr::v4(addr), 24);
    entry.rate = net::Bandwidth::gbps(1.0);
    entry.next_hop = net::IpAddr::v4(0xC0000201);
    entry.as_path = bgp::AsPath{bgp::AsNumber(64512)};
    entry.target_type = bgp::PeerType::kTransit;
    std::map<net::Prefix, core::Override> overrides;
    overrides.emplace(entry.prefix, entry);
    return overrides;
  };
  const auto set_a = make_set(0x64010000);
  const auto set_b = make_set(0x64020000);

  net::SimTime now;
  std::uint64_t applied = router.snapshot().updates_received;
  bool flip = false;
  for (auto _ : state) {
    now = now + net::SimTime::seconds(1);
    const auto& next = flip ? set_b : set_a;
    flip = !flip;
    loop.run_sync([&] { announcer.announce(next, now); });
    // One withdraw + one announce UPDATE per flip; wait until both have
    // been received and applied by the router.
    const std::uint64_t target = announcer.updates_sent_to(0);
    while (router.snapshot().updates_received < target) {
    }
    applied = router.snapshot().updates_received;
  }
  benchmark::DoNotOptimize(applied);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));

  loop.stop();
  runner.join();
  router.stop();
}
BENCHMARK(BM_AnnounceApplyLoopback)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
