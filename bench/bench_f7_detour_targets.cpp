// F7 (Fig. 7): where detoured traffic lands — breakdown of override
// volume and count by detour-target route type, and the matrix of
// (from-type -> target-type) transitions.
#include "bench/common.h"

int main() {
  using namespace ef;
  bench::print_title("F7", "detour placement by target route type (48 h)");

  const topology::World& world = bench::standard_world();
  std::map<bgp::PeerType, double> target_bits;
  std::map<bgp::PeerType, std::size_t> target_count;
  std::map<std::pair<bgp::PeerType, bgp::PeerType>, double> transition_bits;
  double total_bits = 0;

  for (std::size_t p = 0; p < world.pops().size(); ++p) {
    topology::Pop pop(world, p);
    sim::Simulation simulation(pop, bench::standard_sim_config(true));
    simulation.run([&](const sim::StepRecord& record) {
      if (!record.controller) return;
      for (const auto& [prefix, override_entry] :
           simulation.controller()->active_overrides()) {
        const double bits = override_entry.rate.bits_per_sec() * 60;
        target_bits[override_entry.target_type] += bits;
        ++target_count[override_entry.target_type];
        transition_bits[{override_entry.from_type,
                         override_entry.target_type}] += bits;
        total_bits += bits;
      }
    });
  }

  analysis::TablePrinter table(
      {"target-type", "override-cycles", "volume-share"}, {16, 16, 13});
  table.print_header();
  for (bgp::PeerType type :
       {bgp::PeerType::kPrivatePeer, bgp::PeerType::kPublicPeer,
        bgp::PeerType::kRouteServer, bgp::PeerType::kTransit}) {
    table.print_row({bgp::peer_type_name(type),
                     std::to_string(target_count[type]),
                     analysis::TablePrinter::pct(
                         total_bits > 0 ? target_bits[type] / total_bits : 0,
                         1)});
  }

  std::printf("\n  from-type -> target-type volume share:\n");
  for (const auto& [key, bits] : transition_bits) {
    std::printf("  %-14s -> %-14s %6s\n", bgp::peer_type_name(key.first),
                bgp::peer_type_name(key.second),
                analysis::TablePrinter::pct(bits / total_bits, 1).c_str());
  }

  std::printf(
      "\nShape check (paper): most detoured bytes leave overloaded private\n"
      "interconnects; alternate peer paths absorb what they can and\n"
      "transit takes the remainder (it always has a route).\n");
  return 0;
}
