// M18: the enforcement audit path at scale.
//
// Three questions, answered in BENCH_bgp.json:
//   1. How fast does one audit pass diff intent against a router
//      read-back (BM_AuditPass*, prefixes/s)? The interesting row is
//      1M prefixes — the full-table deployment from docs/SCALING.md.
//   2. What does that cost per cycle relative to the warm allocation
//      cycle it rides on? The acceptance target is <5% of the 2000 ms
//      full-table warm-cycle budget at 1M prefixes, i.e. <100 ms per
//      convergent pass (the steady-state case; divergent passes add
//      repair planning and are recorded too).
//   3. How fast do warm-restart recovery snapshots serialize and read
//      back (BM_RecoverySnapshot*, MB/s)? efd writes one per healthy
//      cycle, so this is on the cycle path as well.
//
// Pure in-process state, no sockets: the auditor is diff+policy only
// (src/service/auditor.h), and that is exactly the per-cycle cost the
// <5% target bounds. Socket-path announce/apply latency is bench_m15.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <vector>

#include "audit/snapshot.h"
#include "bgp/route.h"
#include "core/controller.h"
#include "net/ip.h"
#include "net/prefix.h"
#include "net/units.h"
#include "service/auditor.h"

namespace {

using ef::core::Override;
using ef::net::Bandwidth;
using ef::net::IpAddr;
using ef::net::Prefix;
using ef::net::SimTime;

// Distinct /24s: 1M of them span 2^28 addresses starting at 48.0.0.0.
Prefix nth_prefix(std::int64_t i) {
  return Prefix(IpAddr::v4(0x30000000u + (static_cast<std::uint32_t>(i) << 8)),
                24);
}

Override make_override(std::int64_t i) {
  Override entry;
  entry.prefix = nth_prefix(i);
  entry.rate = Bandwidth::gbps(1.0);
  entry.next_hop = IpAddr::v4(0x0A000001u + static_cast<std::uint32_t>(i % 7));
  entry.as_path = ef::bgp::AsPath{ef::bgp::AsNumber(64512)};
  entry.target_type = ef::bgp::PeerType::kTransit;
  return entry;
}

ef::bgp::Route faithful_route(const Override& entry) {
  ef::bgp::Route route;
  route.prefix = entry.prefix;
  route.attrs.next_hop = entry.next_hop;
  route.attrs.local_pref = ef::bgp::LocalPref(1000);
  route.attrs.has_local_pref = true;
  route.attrs.communities = {ef::core::kOverrideCommunity,
                             ef::bgp::peer_type_community(entry.target_type)};
  route.peer_type = ef::bgp::PeerType::kController;
  return route;
}

struct AuditFixture {
  std::map<Prefix, Override> intended;
  std::vector<ef::bgp::Route> observed_convergent;
  // ~1% divergence, split across the three classes the auditor knows:
  // every 300th prefix missing, every 300th+100 with the wrong
  // NEXT_HOP, every 300th+200 replaced by an unintended leftover.
  std::vector<ef::bgp::Route> observed_divergent;
};

// Built once per table size and reused across iterations; benchmark
// setup cost at 1M entries would otherwise dwarf the measured pass.
const AuditFixture& fixture_for(std::int64_t n) {
  static std::map<std::int64_t, AuditFixture> cache;
  auto [it, inserted] = cache.try_emplace(n);
  AuditFixture& fx = it->second;
  if (!inserted) return fx;
  fx.observed_convergent.reserve(static_cast<std::size_t>(n));
  fx.observed_divergent.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    Override entry = make_override(i);
    fx.observed_convergent.push_back(faithful_route(entry));
    switch (i % 300) {
      case 0:  // missing: intended, never observed
        break;
      case 100: {  // wrong-attrs: mangled NEXT_HOP
        ef::bgp::Route wrong = faithful_route(entry);
        wrong.attrs.next_hop = IpAddr::v4(0x0A0000FFu);
        fx.observed_divergent.push_back(wrong);
        break;
      }
      case 200:  // extra-stale: a leftover nobody intended
        fx.observed_divergent.push_back(
            faithful_route(make_override(n + i)));
        break;
      default:
        fx.observed_divergent.push_back(fx.observed_convergent.back());
        break;
    }
    fx.intended.emplace(entry.prefix, std::move(entry));
  }
  return fx;
}

ef::service::AuditorConfig audit_config() {
  ef::service::AuditorConfig config;
  config.enabled = true;
  return config;
}

// Steady-state per-cycle overhead: intent and router agree, the pass is
// a pure diff that finds nothing. This is the row the <5% target gates.
void BM_AuditPassConvergent(benchmark::State& state) {
  const AuditFixture& fx = fixture_for(state.range(0));
  ef::service::EnforcementAuditor auditor(audit_config());
  for (auto _ : state) {
    ef::service::AuditReport report =
        auditor.audit(fx.intended, fx.observed_convergent,
                      SimTime::seconds(60));
    benchmark::DoNotOptimize(report);
    if (report.divergent()) state.SkipWithError("unexpected divergence");
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
// MinTime amortizes the cold first pass — the 1M row sits near its
// 100 ms acceptance budget, so one cold iteration must not decide it.
BENCHMARK(BM_AuditPassConvergent)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->MinTime(1.0)
    ->Unit(benchmark::kMillisecond);

// The stressed pass: ~1% of the table divergent across all three
// classes, so classification AND the bounded repair plan are on the
// clock (sorting the divergent prefixes, cutting at max_repairs).
void BM_AuditPassDivergent(benchmark::State& state) {
  const AuditFixture& fx = fixture_for(state.range(0));
  ef::service::EnforcementAuditor auditor(audit_config());
  for (auto _ : state) {
    ef::service::AuditReport report =
        auditor.audit(fx.intended, fx.observed_divergent,
                      SimTime::seconds(60));
    benchmark::DoNotOptimize(report);
    if (!report.divergent()) state.SkipWithError("expected divergence");
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AuditPassDivergent)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->MinTime(1.0)
    ->Unit(benchmark::kMillisecond);

// Warm-restart snapshot write path: efd serializes the last-good
// override set every healthy cycle (src/service/efd.cpp,
// persist_recovery), so this too is per-cycle overhead.
void BM_RecoverySnapshotSerialize(benchmark::State& state) {
  const AuditFixture& fx = fixture_for(state.range(0));
  ef::audit::RecoverySnapshot snapshot;
  snapshot.when = SimTime::seconds(60);
  snapshot.overrides.reserve(fx.intended.size());
  for (const auto& [prefix, entry] : fx.intended)
    snapshot.overrides.push_back(entry);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    std::vector<std::uint8_t> wire = snapshot.serialize();
    bytes = wire.size();
    benchmark::DoNotOptimize(wire);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_RecoverySnapshotSerialize)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

// Read-back throughput: what `efd --recover` pays to decode the
// snapshot before it can enter hold-last-good.
void BM_RecoverySnapshotDecode(benchmark::State& state) {
  const AuditFixture& fx = fixture_for(state.range(0));
  ef::audit::RecoverySnapshot snapshot;
  snapshot.when = SimTime::seconds(60);
  snapshot.overrides.reserve(fx.intended.size());
  for (const auto& [prefix, entry] : fx.intended)
    snapshot.overrides.push_back(entry);
  const std::vector<std::uint8_t> wire = snapshot.serialize();
  for (auto _ : state) {
    auto decoded = ef::audit::RecoverySnapshot::deserialize(wire);
    benchmark::DoNotOptimize(decoded);
    if (!decoded) state.SkipWithError("decode failed");
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_RecoverySnapshotDecode)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Proof-of-build-mode for the recording script (see bench_m16): the
// JSON is only trusted when our own TUs were compiled Release.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("ef_bench_build", "release");
#else
  benchmark::AddCustomContext("ef_bench_build", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
