// F6 (Fig. 6): how much traffic Edge Fabric detours — per-cycle fraction
// of total demand, number of overridden prefixes, and an hourly timeline
// showing detours tracking the diurnal peaks. Also the detour-order
// ablation (paper's best-alternate-first vs naive largest-first).
#include "bench/common.h"

namespace {

struct OrderResult {
  ef::net::CdfBuilder detoured_fraction;
  ef::net::CdfBuilder override_counts;
  double total_overload_bps = 0;
};

}  // namespace

int main() {
  using namespace ef;
  bench::print_title("F6", "detoured traffic share & override counts (48 h)");

  const topology::World& world = bench::standard_world();

  // Timeline + distribution for the paper's configuration, PoP a.
  {
    topology::Pop pop(world, 0);
    sim::SimulationConfig config = bench::measured_sim_config(true);
    sim::Simulation simulation(pop, config);
    analysis::DetourTracker detours;
    net::CdfBuilder reorders_per_cycle;

    std::printf("  hourly timeline (%s):\n", world.pops()[0].name.c_str());
    std::printf("  %-6s %-12s %-12s %-10s\n", "hour", "demand", "detoured",
                "overrides");
    simulation.run([&](const sim::StepRecord& record) {
      if (record.dataplane) {
        reorders_per_cycle.add(
            static_cast<double>(record.dataplane->reorder_events));
      }
      if (!record.controller) return;
      detours.record_cycle(*record.controller,
                           simulation.controller()->active_overrides(),
                           record.total_demand);
      const std::int64_t minute = record.when.millis_value() / 60000;
      if (minute % 240 == 0) {  // every 4 hours
        net::Bandwidth detoured;
        for (const auto& [prefix, override_entry] :
             simulation.controller()->active_overrides()) {
          detoured += override_entry.rate;
        }
        std::printf("  %-6lld %-12s %-12s %-10zu\n",
                    static_cast<long long>(minute / 60),
                    record.total_demand.to_string().c_str(),
                    detoured.to_string().c_str(),
                    record.controller->overrides_active);
      }
    });

    std::printf("\n  Detoured fraction of total demand (per cycle):\n");
    bench::print_cdf(detours.detoured_fraction(), "fraction");
    std::printf("\n  Active overrides (per cycle):\n");
    bench::print_cdf(detours.override_counts(), "count");
    std::printf("\n  Measured flow reorder events per cycle (dataplane):\n");
    bench::print_cdf(reorders_per_cycle, "reorders");
    bench::print_dataplane_line("edge-fabric, " + world.pops()[0].name,
                                simulation);
  }

  // Ablation: detour selection order, aggregated over all PoPs.
  std::printf("\n  Ablation — detour selection order (all PoPs, 48 h):\n");
  analysis::TablePrinter table(
      {"order", "p50-detoured", "p99-detoured", "p99-overrides",
       "residual-overload"},
      {22, 13, 13, 14, 18});
  table.print_header();
  for (const core::DetourOrder order :
       {core::DetourOrder::kBestAlternateFirst,
        core::DetourOrder::kLargestFirst}) {
    OrderResult result;
    for (std::size_t p = 0; p < world.pops().size(); ++p) {
      topology::Pop pop(world, p);
      sim::SimulationConfig config = bench::standard_sim_config(true);
      config.controller.allocator.order = order;
      sim::Simulation simulation(pop, config);
      simulation.run([&](const sim::StepRecord& record) {
        if (!record.controller) return;
        net::Bandwidth detoured;
        for (const auto& [prefix, override_entry] :
             simulation.controller()->active_overrides()) {
          detoured += override_entry.rate;
        }
        result.detoured_fraction.add(detoured / record.total_demand);
        result.override_counts.add(static_cast<double>(
            record.controller->overrides_active));
        result.total_overload_bps += record.overload.bits_per_sec();
      });
    }
    table.print_row(
        {order == core::DetourOrder::kBestAlternateFirst
             ? "best-alternate-first"
             : "largest-first",
         analysis::TablePrinter::pct(result.detoured_fraction.percentile(50),
                                     2),
         analysis::TablePrinter::pct(result.detoured_fraction.percentile(99),
                                     2),
         analysis::TablePrinter::fmt(result.override_counts.percentile(99), 0),
         analysis::TablePrinter::fmt(result.total_overload_bps / 1e9, 3) +
             " Gbit"});
  }

  std::printf(
      "\nShape check (paper): detours are a small share of total traffic\n"
      "(median a few percent, even at p99 well under a quarter) — the\n"
      "controller moves only what the overloaded ports cannot carry. The\n"
      "dataplane emulation prices that steering: each override churn\n"
      "re-paths live flows of exactly the re-placed prefixes (measured\n"
      "reorder events above), the paper's argument for limiting needless\n"
      "override changes.\n");
  return 0;
}
