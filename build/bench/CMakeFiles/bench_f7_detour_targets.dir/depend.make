# Empty dependencies file for bench_f7_detour_targets.
# This may be replaced when dependencies are built.
