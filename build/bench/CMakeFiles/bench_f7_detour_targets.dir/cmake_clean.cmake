file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_detour_targets.dir/bench_f7_detour_targets.cpp.o"
  "CMakeFiles/bench_f7_detour_targets.dir/bench_f7_detour_targets.cpp.o.d"
  "bench_f7_detour_targets"
  "bench_f7_detour_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_detour_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
