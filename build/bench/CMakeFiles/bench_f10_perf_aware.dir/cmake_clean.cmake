file(REMOVE_RECURSE
  "CMakeFiles/bench_f10_perf_aware.dir/bench_f10_perf_aware.cpp.o"
  "CMakeFiles/bench_f10_perf_aware.dir/bench_f10_perf_aware.cpp.o.d"
  "bench_f10_perf_aware"
  "bench_f10_perf_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f10_perf_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
