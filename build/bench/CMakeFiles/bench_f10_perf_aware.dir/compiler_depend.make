# Empty compiler generated dependencies file for bench_f10_perf_aware.
# This may be replaced when dependencies are built.
