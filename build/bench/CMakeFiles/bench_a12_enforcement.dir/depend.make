# Empty dependencies file for bench_a12_enforcement.
# This may be replaced when dependencies are built.
