file(REMOVE_RECURSE
  "CMakeFiles/bench_a12_enforcement.dir/bench_a12_enforcement.cpp.o"
  "CMakeFiles/bench_a12_enforcement.dir/bench_a12_enforcement.cpp.o.d"
  "bench_a12_enforcement"
  "bench_a12_enforcement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a12_enforcement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
