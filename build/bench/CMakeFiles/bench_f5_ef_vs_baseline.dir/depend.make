# Empty dependencies file for bench_f5_ef_vs_baseline.
# This may be replaced when dependencies are built.
