# Empty compiler generated dependencies file for bench_m11_allocator_scale.
# This may be replaced when dependencies are built.
