file(REMOVE_RECURSE
  "CMakeFiles/bench_m11_allocator_scale.dir/bench_m11_allocator_scale.cpp.o"
  "CMakeFiles/bench_m11_allocator_scale.dir/bench_m11_allocator_scale.cpp.o.d"
  "bench_m11_allocator_scale"
  "bench_m11_allocator_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m11_allocator_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
