
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_m11_allocator_scale.cpp" "bench/CMakeFiles/bench_m11_allocator_scale.dir/bench_m11_allocator_scale.cpp.o" "gcc" "bench/CMakeFiles/bench_m11_allocator_scale.dir/bench_m11_allocator_scale.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ef_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ef_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ef_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/altpath/CMakeFiles/ef_altpath.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ef_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ef_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ef_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/bmp/CMakeFiles/ef_bmp.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ef_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/ef_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ef_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
