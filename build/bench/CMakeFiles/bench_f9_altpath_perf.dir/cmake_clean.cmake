file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_altpath_perf.dir/bench_f9_altpath_perf.cpp.o"
  "CMakeFiles/bench_f9_altpath_perf.dir/bench_f9_altpath_perf.cpp.o.d"
  "bench_f9_altpath_perf"
  "bench_f9_altpath_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_altpath_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
