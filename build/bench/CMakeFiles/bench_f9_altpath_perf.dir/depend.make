# Empty dependencies file for bench_f9_altpath_perf.
# This may be replaced when dependencies are built.
