file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_detour_volume.dir/bench_f6_detour_volume.cpp.o"
  "CMakeFiles/bench_f6_detour_volume.dir/bench_f6_detour_volume.cpp.o.d"
  "bench_f6_detour_volume"
  "bench_f6_detour_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_detour_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
