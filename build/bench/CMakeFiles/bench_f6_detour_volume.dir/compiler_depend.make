# Empty compiler generated dependencies file for bench_f6_detour_volume.
# This may be replaced when dependencies are built.
