# Empty compiler generated dependencies file for bench_a13_transit_cost.
# This may be replaced when dependencies are built.
