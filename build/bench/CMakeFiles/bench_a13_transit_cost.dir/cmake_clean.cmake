file(REMOVE_RECURSE
  "CMakeFiles/bench_a13_transit_cost.dir/bench_a13_transit_cost.cpp.o"
  "CMakeFiles/bench_a13_transit_cost.dir/bench_a13_transit_cost.cpp.o.d"
  "bench_a13_transit_cost"
  "bench_a13_transit_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a13_transit_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
