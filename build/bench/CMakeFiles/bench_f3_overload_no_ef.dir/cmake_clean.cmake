file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_overload_no_ef.dir/bench_f3_overload_no_ef.cpp.o"
  "CMakeFiles/bench_f3_overload_no_ef.dir/bench_f3_overload_no_ef.cpp.o.d"
  "bench_f3_overload_no_ef"
  "bench_f3_overload_no_ef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_overload_no_ef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
