# Empty compiler generated dependencies file for bench_f3_overload_no_ef.
# This may be replaced when dependencies are built.
