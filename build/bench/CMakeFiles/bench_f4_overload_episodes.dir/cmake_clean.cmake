file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_overload_episodes.dir/bench_f4_overload_episodes.cpp.o"
  "CMakeFiles/bench_f4_overload_episodes.dir/bench_f4_overload_episodes.cpp.o.d"
  "bench_f4_overload_episodes"
  "bench_f4_overload_episodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_overload_episodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
