# Empty dependencies file for bench_f4_overload_episodes.
# This may be replaced when dependencies are built.
