file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_override_churn.dir/bench_f8_override_churn.cpp.o"
  "CMakeFiles/bench_f8_override_churn.dir/bench_f8_override_churn.cpp.o.d"
  "bench_f8_override_churn"
  "bench_f8_override_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_override_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
