# Empty dependencies file for bench_f8_override_churn.
# This may be replaced when dependencies are built.
