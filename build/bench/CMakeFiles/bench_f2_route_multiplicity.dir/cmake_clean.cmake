file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_route_multiplicity.dir/bench_f2_route_multiplicity.cpp.o"
  "CMakeFiles/bench_f2_route_multiplicity.dir/bench_f2_route_multiplicity.cpp.o.d"
  "bench_f2_route_multiplicity"
  "bench_f2_route_multiplicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_route_multiplicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
