# Empty compiler generated dependencies file for bench_f2_route_multiplicity.
# This may be replaced when dependencies are built.
