file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_route_mix.dir/bench_t1_route_mix.cpp.o"
  "CMakeFiles/bench_t1_route_mix.dir/bench_t1_route_mix.cpp.o.d"
  "bench_t1_route_mix"
  "bench_t1_route_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_route_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
