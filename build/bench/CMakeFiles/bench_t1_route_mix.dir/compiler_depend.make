# Empty compiler generated dependencies file for bench_t1_route_mix.
# This may be replaced when dependencies are built.
