file(REMOVE_RECURSE
  "CMakeFiles/bmp_tests.dir/bmp/collector_test.cpp.o"
  "CMakeFiles/bmp_tests.dir/bmp/collector_test.cpp.o.d"
  "CMakeFiles/bmp_tests.dir/bmp/wire_test.cpp.o"
  "CMakeFiles/bmp_tests.dir/bmp/wire_test.cpp.o.d"
  "bmp_tests"
  "bmp_tests.pdb"
  "bmp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
