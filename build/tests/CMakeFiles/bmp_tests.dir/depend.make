# Empty dependencies file for bmp_tests.
# This may be replaced when dependencies are built.
