file(REMOVE_RECURSE
  "CMakeFiles/altpath_tests.dir/altpath/altpath_test.cpp.o"
  "CMakeFiles/altpath_tests.dir/altpath/altpath_test.cpp.o.d"
  "altpath_tests"
  "altpath_tests.pdb"
  "altpath_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altpath_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
