# Empty compiler generated dependencies file for altpath_tests.
# This may be replaced when dependencies are built.
