# Empty dependencies file for eftool.
# This may be replaced when dependencies are built.
