file(REMOVE_RECURSE
  "CMakeFiles/eftool.dir/eftool.cpp.o"
  "CMakeFiles/eftool.dir/eftool.cpp.o.d"
  "eftool"
  "eftool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eftool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
