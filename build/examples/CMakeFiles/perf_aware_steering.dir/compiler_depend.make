# Empty compiler generated dependencies file for perf_aware_steering.
# This may be replaced when dependencies are built.
