file(REMOVE_RECURSE
  "CMakeFiles/perf_aware_steering.dir/perf_aware_steering.cpp.o"
  "CMakeFiles/perf_aware_steering.dir/perf_aware_steering.cpp.o.d"
  "perf_aware_steering"
  "perf_aware_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_aware_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
