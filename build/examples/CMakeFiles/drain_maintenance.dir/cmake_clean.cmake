file(REMOVE_RECURSE
  "CMakeFiles/drain_maintenance.dir/drain_maintenance.cpp.o"
  "CMakeFiles/drain_maintenance.dir/drain_maintenance.cpp.o.d"
  "drain_maintenance"
  "drain_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drain_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
