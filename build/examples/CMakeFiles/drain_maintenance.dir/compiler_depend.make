# Empty compiler generated dependencies file for drain_maintenance.
# This may be replaced when dependencies are built.
