file(REMOVE_RECURSE
  "CMakeFiles/global_fleet.dir/global_fleet.cpp.o"
  "CMakeFiles/global_fleet.dir/global_fleet.cpp.o.d"
  "global_fleet"
  "global_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
