# Empty compiler generated dependencies file for ef_telemetry.
# This may be replaced when dependencies are built.
