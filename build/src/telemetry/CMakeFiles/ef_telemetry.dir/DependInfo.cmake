
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/interface.cpp" "src/telemetry/CMakeFiles/ef_telemetry.dir/interface.cpp.o" "gcc" "src/telemetry/CMakeFiles/ef_telemetry.dir/interface.cpp.o.d"
  "/root/repo/src/telemetry/sflow.cpp" "src/telemetry/CMakeFiles/ef_telemetry.dir/sflow.cpp.o" "gcc" "src/telemetry/CMakeFiles/ef_telemetry.dir/sflow.cpp.o.d"
  "/root/repo/src/telemetry/traffic.cpp" "src/telemetry/CMakeFiles/ef_telemetry.dir/traffic.cpp.o" "gcc" "src/telemetry/CMakeFiles/ef_telemetry.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ef_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
