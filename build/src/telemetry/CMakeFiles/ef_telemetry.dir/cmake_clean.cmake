file(REMOVE_RECURSE
  "CMakeFiles/ef_telemetry.dir/interface.cpp.o"
  "CMakeFiles/ef_telemetry.dir/interface.cpp.o.d"
  "CMakeFiles/ef_telemetry.dir/sflow.cpp.o"
  "CMakeFiles/ef_telemetry.dir/sflow.cpp.o.d"
  "CMakeFiles/ef_telemetry.dir/traffic.cpp.o"
  "CMakeFiles/ef_telemetry.dir/traffic.cpp.o.d"
  "libef_telemetry.a"
  "libef_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
