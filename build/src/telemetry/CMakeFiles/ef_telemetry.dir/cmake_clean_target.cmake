file(REMOVE_RECURSE
  "libef_telemetry.a"
)
