file(REMOVE_RECURSE
  "libef_analysis.a"
)
