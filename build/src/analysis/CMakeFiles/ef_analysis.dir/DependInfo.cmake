
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cost.cpp" "src/analysis/CMakeFiles/ef_analysis.dir/cost.cpp.o" "gcc" "src/analysis/CMakeFiles/ef_analysis.dir/cost.cpp.o.d"
  "/root/repo/src/analysis/metrics.cpp" "src/analysis/CMakeFiles/ef_analysis.dir/metrics.cpp.o" "gcc" "src/analysis/CMakeFiles/ef_analysis.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ef_core.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ef_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ef_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/bmp/CMakeFiles/ef_bmp.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/ef_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ef_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
