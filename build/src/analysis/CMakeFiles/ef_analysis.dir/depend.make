# Empty dependencies file for ef_analysis.
# This may be replaced when dependencies are built.
