file(REMOVE_RECURSE
  "CMakeFiles/ef_analysis.dir/cost.cpp.o"
  "CMakeFiles/ef_analysis.dir/cost.cpp.o.d"
  "CMakeFiles/ef_analysis.dir/metrics.cpp.o"
  "CMakeFiles/ef_analysis.dir/metrics.cpp.o.d"
  "libef_analysis.a"
  "libef_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
