# Empty dependencies file for ef_baseline.
# This may be replaced when dependencies are built.
