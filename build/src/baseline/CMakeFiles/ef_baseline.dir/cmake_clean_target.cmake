file(REMOVE_RECURSE
  "libef_baseline.a"
)
