file(REMOVE_RECURSE
  "CMakeFiles/ef_baseline.dir/baselines.cpp.o"
  "CMakeFiles/ef_baseline.dir/baselines.cpp.o.d"
  "libef_baseline.a"
  "libef_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
