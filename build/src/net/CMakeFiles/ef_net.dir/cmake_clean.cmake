file(REMOVE_RECURSE
  "CMakeFiles/ef_net.dir/ip.cpp.o"
  "CMakeFiles/ef_net.dir/ip.cpp.o.d"
  "CMakeFiles/ef_net.dir/log.cpp.o"
  "CMakeFiles/ef_net.dir/log.cpp.o.d"
  "CMakeFiles/ef_net.dir/prefix.cpp.o"
  "CMakeFiles/ef_net.dir/prefix.cpp.o.d"
  "CMakeFiles/ef_net.dir/rng.cpp.o"
  "CMakeFiles/ef_net.dir/rng.cpp.o.d"
  "CMakeFiles/ef_net.dir/stats.cpp.o"
  "CMakeFiles/ef_net.dir/stats.cpp.o.d"
  "CMakeFiles/ef_net.dir/units.cpp.o"
  "CMakeFiles/ef_net.dir/units.cpp.o.d"
  "libef_net.a"
  "libef_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
