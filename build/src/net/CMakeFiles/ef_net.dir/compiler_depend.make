# Empty compiler generated dependencies file for ef_net.
# This may be replaced when dependencies are built.
