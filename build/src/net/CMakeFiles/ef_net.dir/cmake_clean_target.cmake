file(REMOVE_RECURSE
  "libef_net.a"
)
