file(REMOVE_RECURSE
  "CMakeFiles/ef_core.dir/allocator.cpp.o"
  "CMakeFiles/ef_core.dir/allocator.cpp.o.d"
  "CMakeFiles/ef_core.dir/controller.cpp.o"
  "CMakeFiles/ef_core.dir/controller.cpp.o.d"
  "CMakeFiles/ef_core.dir/safety.cpp.o"
  "CMakeFiles/ef_core.dir/safety.cpp.o.d"
  "libef_core.a"
  "libef_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
