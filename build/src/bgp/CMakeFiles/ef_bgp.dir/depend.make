# Empty dependencies file for ef_bgp.
# This may be replaced when dependencies are built.
