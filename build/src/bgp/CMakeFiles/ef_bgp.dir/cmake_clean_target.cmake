file(REMOVE_RECURSE
  "libef_bgp.a"
)
