
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/as_path.cpp" "src/bgp/CMakeFiles/ef_bgp.dir/as_path.cpp.o" "gcc" "src/bgp/CMakeFiles/ef_bgp.dir/as_path.cpp.o.d"
  "/root/repo/src/bgp/decision.cpp" "src/bgp/CMakeFiles/ef_bgp.dir/decision.cpp.o" "gcc" "src/bgp/CMakeFiles/ef_bgp.dir/decision.cpp.o.d"
  "/root/repo/src/bgp/message.cpp" "src/bgp/CMakeFiles/ef_bgp.dir/message.cpp.o" "gcc" "src/bgp/CMakeFiles/ef_bgp.dir/message.cpp.o.d"
  "/root/repo/src/bgp/mrt.cpp" "src/bgp/CMakeFiles/ef_bgp.dir/mrt.cpp.o" "gcc" "src/bgp/CMakeFiles/ef_bgp.dir/mrt.cpp.o.d"
  "/root/repo/src/bgp/policy.cpp" "src/bgp/CMakeFiles/ef_bgp.dir/policy.cpp.o" "gcc" "src/bgp/CMakeFiles/ef_bgp.dir/policy.cpp.o.d"
  "/root/repo/src/bgp/rib.cpp" "src/bgp/CMakeFiles/ef_bgp.dir/rib.cpp.o" "gcc" "src/bgp/CMakeFiles/ef_bgp.dir/rib.cpp.o.d"
  "/root/repo/src/bgp/route.cpp" "src/bgp/CMakeFiles/ef_bgp.dir/route.cpp.o" "gcc" "src/bgp/CMakeFiles/ef_bgp.dir/route.cpp.o.d"
  "/root/repo/src/bgp/session.cpp" "src/bgp/CMakeFiles/ef_bgp.dir/session.cpp.o" "gcc" "src/bgp/CMakeFiles/ef_bgp.dir/session.cpp.o.d"
  "/root/repo/src/bgp/speaker.cpp" "src/bgp/CMakeFiles/ef_bgp.dir/speaker.cpp.o" "gcc" "src/bgp/CMakeFiles/ef_bgp.dir/speaker.cpp.o.d"
  "/root/repo/src/bgp/wire.cpp" "src/bgp/CMakeFiles/ef_bgp.dir/wire.cpp.o" "gcc" "src/bgp/CMakeFiles/ef_bgp.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ef_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
