file(REMOVE_RECURSE
  "CMakeFiles/ef_bgp.dir/as_path.cpp.o"
  "CMakeFiles/ef_bgp.dir/as_path.cpp.o.d"
  "CMakeFiles/ef_bgp.dir/decision.cpp.o"
  "CMakeFiles/ef_bgp.dir/decision.cpp.o.d"
  "CMakeFiles/ef_bgp.dir/message.cpp.o"
  "CMakeFiles/ef_bgp.dir/message.cpp.o.d"
  "CMakeFiles/ef_bgp.dir/mrt.cpp.o"
  "CMakeFiles/ef_bgp.dir/mrt.cpp.o.d"
  "CMakeFiles/ef_bgp.dir/policy.cpp.o"
  "CMakeFiles/ef_bgp.dir/policy.cpp.o.d"
  "CMakeFiles/ef_bgp.dir/rib.cpp.o"
  "CMakeFiles/ef_bgp.dir/rib.cpp.o.d"
  "CMakeFiles/ef_bgp.dir/route.cpp.o"
  "CMakeFiles/ef_bgp.dir/route.cpp.o.d"
  "CMakeFiles/ef_bgp.dir/session.cpp.o"
  "CMakeFiles/ef_bgp.dir/session.cpp.o.d"
  "CMakeFiles/ef_bgp.dir/speaker.cpp.o"
  "CMakeFiles/ef_bgp.dir/speaker.cpp.o.d"
  "CMakeFiles/ef_bgp.dir/wire.cpp.o"
  "CMakeFiles/ef_bgp.dir/wire.cpp.o.d"
  "libef_bgp.a"
  "libef_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
