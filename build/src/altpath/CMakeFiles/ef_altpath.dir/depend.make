# Empty dependencies file for ef_altpath.
# This may be replaced when dependencies are built.
