file(REMOVE_RECURSE
  "CMakeFiles/ef_altpath.dir/advisor.cpp.o"
  "CMakeFiles/ef_altpath.dir/advisor.cpp.o.d"
  "CMakeFiles/ef_altpath.dir/measurer.cpp.o"
  "CMakeFiles/ef_altpath.dir/measurer.cpp.o.d"
  "CMakeFiles/ef_altpath.dir/perf_model.cpp.o"
  "CMakeFiles/ef_altpath.dir/perf_model.cpp.o.d"
  "CMakeFiles/ef_altpath.dir/policy_routing.cpp.o"
  "CMakeFiles/ef_altpath.dir/policy_routing.cpp.o.d"
  "libef_altpath.a"
  "libef_altpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_altpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
