file(REMOVE_RECURSE
  "libef_altpath.a"
)
