# Empty dependencies file for ef_bmp.
# This may be replaced when dependencies are built.
