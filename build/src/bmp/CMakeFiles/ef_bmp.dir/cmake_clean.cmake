file(REMOVE_RECURSE
  "CMakeFiles/ef_bmp.dir/collector.cpp.o"
  "CMakeFiles/ef_bmp.dir/collector.cpp.o.d"
  "CMakeFiles/ef_bmp.dir/exporter.cpp.o"
  "CMakeFiles/ef_bmp.dir/exporter.cpp.o.d"
  "CMakeFiles/ef_bmp.dir/wire.cpp.o"
  "CMakeFiles/ef_bmp.dir/wire.cpp.o.d"
  "libef_bmp.a"
  "libef_bmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_bmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
