
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bmp/collector.cpp" "src/bmp/CMakeFiles/ef_bmp.dir/collector.cpp.o" "gcc" "src/bmp/CMakeFiles/ef_bmp.dir/collector.cpp.o.d"
  "/root/repo/src/bmp/exporter.cpp" "src/bmp/CMakeFiles/ef_bmp.dir/exporter.cpp.o" "gcc" "src/bmp/CMakeFiles/ef_bmp.dir/exporter.cpp.o.d"
  "/root/repo/src/bmp/wire.cpp" "src/bmp/CMakeFiles/ef_bmp.dir/wire.cpp.o" "gcc" "src/bmp/CMakeFiles/ef_bmp.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/ef_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ef_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
