file(REMOVE_RECURSE
  "libef_bmp.a"
)
