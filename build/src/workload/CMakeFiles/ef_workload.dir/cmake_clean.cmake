file(REMOVE_RECURSE
  "CMakeFiles/ef_workload.dir/demand.cpp.o"
  "CMakeFiles/ef_workload.dir/demand.cpp.o.d"
  "CMakeFiles/ef_workload.dir/flowgen.cpp.o"
  "CMakeFiles/ef_workload.dir/flowgen.cpp.o.d"
  "libef_workload.a"
  "libef_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
