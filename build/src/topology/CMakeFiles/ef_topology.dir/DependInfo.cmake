
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/pop.cpp" "src/topology/CMakeFiles/ef_topology.dir/pop.cpp.o" "gcc" "src/topology/CMakeFiles/ef_topology.dir/pop.cpp.o.d"
  "/root/repo/src/topology/world.cpp" "src/topology/CMakeFiles/ef_topology.dir/world.cpp.o" "gcc" "src/topology/CMakeFiles/ef_topology.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/ef_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/bmp/CMakeFiles/ef_bmp.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ef_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ef_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
