file(REMOVE_RECURSE
  "CMakeFiles/ef_topology.dir/pop.cpp.o"
  "CMakeFiles/ef_topology.dir/pop.cpp.o.d"
  "CMakeFiles/ef_topology.dir/world.cpp.o"
  "CMakeFiles/ef_topology.dir/world.cpp.o.d"
  "libef_topology.a"
  "libef_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
