# Empty compiler generated dependencies file for ef_topology.
# This may be replaced when dependencies are built.
