file(REMOVE_RECURSE
  "libef_topology.a"
)
