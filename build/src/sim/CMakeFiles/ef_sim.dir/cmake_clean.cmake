file(REMOVE_RECURSE
  "CMakeFiles/ef_sim.dir/fleet.cpp.o"
  "CMakeFiles/ef_sim.dir/fleet.cpp.o.d"
  "CMakeFiles/ef_sim.dir/simulation.cpp.o"
  "CMakeFiles/ef_sim.dir/simulation.cpp.o.d"
  "libef_sim.a"
  "libef_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
