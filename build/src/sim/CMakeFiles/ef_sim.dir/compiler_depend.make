# Empty compiler generated dependencies file for ef_sim.
# This may be replaced when dependencies are built.
