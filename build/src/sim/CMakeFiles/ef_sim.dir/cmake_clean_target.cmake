file(REMOVE_RECURSE
  "libef_sim.a"
)
