// Performance-aware steering: the alternate-path measurement pipeline
// (DSCP marking -> policy routing -> per-path RTT aggregation) detects
// that a congested preferred path underperforms an alternate, and the
// advisor steers the prefix — the paper's §6 extension.
#include <cstdio>

#include "altpath/advisor.h"
#include "altpath/measurer.h"
#include "altpath/perf_model.h"
#include "core/controller.h"
#include "workload/demand.h"

int main() {
  using namespace ef;
  using net::SimTime;

  topology::WorldConfig world_config;
  world_config.num_clients = 48;
  const topology::World world = topology::World::generate(world_config);
  topology::Pop pop(world, 0);

  altpath::PerfModel model(pop);
  altpath::MeasurerConfig measurer_config;
  measurer_config.noise_ms = 1.0;
  altpath::AltPathMeasurer measurer(pop, model, measurer_config);
  altpath::PolicyRouter policy(pop);
  altpath::DscpMarker marker(0.01, 2, 99);

  // Show the DSCP marking plan the hosts would apply.
  int marks[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++marks[marker.mark()];
  std::printf(
      "host marking plan: %.1f%% of flows on 2nd path, %.1f%% on 3rd "
      "(rest default)\n",
      marks[1] / 100.0, marks[2] / 100.0);

  // Pick a prefix with at least 3 usable paths and congest its primary.
  net::Prefix victim;
  for (const net::Prefix& prefix : pop.reachable_prefixes()) {
    if (policy.path_count(prefix) >= 3) {
      victim = prefix;
      break;
    }
  }
  const bgp::Route* primary = policy.natural_route(victim, 0);
  const auto primary_egress = pop.egress_of_route(*primary);
  std::map<telemetry::InterfaceId, net::Bandwidth> load;
  load[primary_egress->interface] =
      pop.interfaces().capacity(primary_egress->interface) * 1.15;
  model.set_interface_load(load);
  std::printf("congesting primary egress of %s (util 115%%)\n\n",
              victim.to_string().c_str());

  // Run measurement rounds (each = one collection window).
  telemetry::DemandMatrix demand;
  demand.set(victim, net::Bandwidth::mbps(300));
  for (int round = 0; round < 10; ++round) {
    measurer.run_round(demand, SimTime::seconds(round * 30));
  }

  std::printf("%6s %14s %12s %10s\n", "path", "egress", "median RTT",
              "samples");
  for (int rank = 0; rank < 3; ++rank) {
    const bgp::Route* route = policy.natural_route(victim, rank);
    if (!route) continue;
    const auto report = measurer.report(victim, rank);
    const auto egress = pop.egress_of_route(*route);
    std::printf("%6d %14s %10.1fms %10zu\n", rank,
                bgp::peer_type_name(egress->type), report->median_rtt_ms,
                report->samples);
  }

  // The advisor recommends; the controller injects (subject to capacity).
  core::Controller controller(pop, {});
  controller.connect();
  altpath::PerfAwareAdvisor advisor(pop, measurer, {});
  controller.set_advisor([&](const core::AllocationResult&) {
    return advisor.advise(demand);
  });
  const auto stats = controller.run_cycle(demand, SimTime::seconds(300));
  std::printf("\ncontroller accepted %zu performance override(s)\n",
              stats.perf_overrides);

  const bgp::Route* now = pop.collector().rib().best(victim);
  const double rtt_before = *model.rtt_ms(victim, *primary);
  const double rtt_after = *model.rtt_ms(victim, *now);
  std::printf("victim prefix RTT: %.1fms -> %.1fms (%.0f%% better)\n",
              rtt_before, rtt_after,
              (rtt_before - rtt_after) / rtt_before * 100);
  return 0;
}
