// Quickstart: bring up a PoP, attach an Edge Fabric controller, and watch
// it absorb a peak-hour overload that vanilla BGP cannot.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/controller.h"
#include "topology/pop.h"
#include "workload/demand.h"

int main() {
  using namespace ef;

  // 1. Generate a world: eyeball ASes, PoPs, peerings, capacities.
  topology::WorldConfig world_config;
  world_config.num_clients = 48;
  const topology::World world = topology::World::generate(world_config);

  // 2. Bring up one PoP: real BGP sessions to every peer, BMP feeds into
  //    the PoP-wide collector, interfaces registered.
  topology::Pop pop(world, 0);
  std::printf("PoP %s up: %zu prefixes, %zu routes from %zu BGP peers\n",
              pop.name().c_str(), pop.collector().rib().prefix_count(),
              pop.collector().rib().route_count(),
              pop.collector().peers().size());

  // 3. Peak-hour demand.
  workload::DemandGenerator demand_gen(world, 0, {});
  const telemetry::DemandMatrix peak =
      demand_gen.baseline(net::SimTime::seconds(0));
  std::printf("peak demand: %s across %zu prefixes\n",
              peak.total().to_string().c_str(), peak.prefix_count());

  // 4. What pure BGP would do with it.
  auto print_overload = [&](const char* label) {
    int over = 0;
    net::Bandwidth excess;
    for (const auto& [iface, load] : pop.project_load(peak)) {
      const net::Bandwidth capacity = pop.interfaces().capacity(iface);
      if (load > capacity) {
        ++over;
        excess += load - capacity;
      }
    }
    std::printf("%s: %d interface(s) over capacity, %s of traffic would drop\n",
                label, over, excess.to_string().c_str());
  };
  print_overload("BGP only     ");

  // 5. Attach the controller and run one 30-second allocation cycle.
  core::Controller controller(pop, {});
  controller.connect();
  const core::CycleStats stats =
      controller.run_cycle(peak, net::SimTime::seconds(0));
  std::printf(
      "Edge Fabric: detected %zu overloaded interface(s), injected %zu "
      "overrides\n",
      stats.allocation.overloaded_interfaces, stats.overrides_active);
  print_overload("with overrides");

  // 6. Inspect a few overrides: prefix, where it moved from/to.
  int shown = 0;
  for (const auto& [prefix, override_entry] : controller.active_overrides()) {
    if (++shown > 5) break;
    std::printf("  detour %-18s %s -> %s (%s)\n", prefix.to_string().c_str(),
                bgp::peer_type_name(override_entry.from_type),
                bgp::peer_type_name(override_entry.target_type),
                override_entry.rate.to_string().c_str());
  }

  // 7. Fail-safe: kill the controller; routers revert to BGP on their own.
  controller.shutdown(net::SimTime::seconds(60));
  print_overload("after crash  ");
  std::printf("(overrides flushed by BGP session teardown — fail-safe)\n");
  return 0;
}
