// Maintenance drain: an operator marks a PNI as drained before replacing
// an optic. Edge Fabric evacuates every prefix from the port within one
// cycle, the port goes to zero, and everything returns after the drain —
// no manual BGP surgery, no drops.
#include <cstdio>

#include "core/controller.h"
#include "topology/pop.h"
#include "workload/demand.h"

int main() {
  using namespace ef;
  using net::SimTime;

  topology::WorldConfig world_config;
  world_config.num_clients = 48;
  const topology::World world = topology::World::generate(world_config);
  topology::Pop pop(world, 0);
  core::Controller controller(pop, {});
  controller.connect();

  // Off-peak demand (drains are scheduled at trough for a reason).
  workload::DemandConfig quiet;
  quiet.enable_events = false;
  quiet.noise_sigma = 0;
  workload::DemandGenerator gen(world, 0, quiet);
  const telemetry::DemandMatrix demand = gen.baseline(SimTime::hours(12));

  const telemetry::InterfaceId port(0);
  const std::string& port_name = pop.def().interfaces[0].name;

  auto port_load = [&]() {
    const auto load = pop.project_load(demand);
    auto it = load.find(port);
    return it == load.end() ? net::Bandwidth::zero() : it->second;
  };

  auto cycle = [&](const char* label, int minute) {
    const auto stats = controller.run_cycle(demand, SimTime::minutes(minute));
    std::printf("%-22s %-12s carries %-12s overrides=%zu\n", label,
                port_name.c_str(), port_load().to_string().c_str(),
                stats.overrides_active);
  };

  cycle("steady state", 0);

  std::printf("\n== operator: drain %s ==\n", port_name.c_str());
  pop.interfaces().set_drained(port, true);
  cycle("after drain cycle", 1);
  if (port_load() > net::Bandwidth::zero()) {
    std::printf("ERROR: traffic still on drained port!\n");
    return 1;
  }
  std::printf("port is dark — safe to touch the hardware\n");

  std::printf("\n== operator: undrain %s ==\n", port_name.c_str());
  pop.interfaces().set_drained(port, false);
  cycle("after undrain cycle", 30);
  std::printf("traffic returned to the preferred peer automatically\n");
  return 0;
}
