// Flash crowd scenario: a live-video event multiplies one eyeball
// network's demand mid-evening. The under-provisioned PNI to that network
// saturates; Edge Fabric detours the overflow within one 30-second cycle
// and hands the traffic back as the event drains.
//
// Prints a per-minute timeline of the hot interface's utilization with
// and without the controller.
#include <algorithm>
#include <cstdio>

#include "core/controller.h"
#include "topology/pop.h"
#include "workload/demand.h"

int main() {
  using namespace ef;
  using net::SimTime;

  topology::WorldConfig world_config;
  world_config.num_clients = 48;
  const topology::World world = topology::World::generate(world_config);

  // Two identical PoPs: one controlled, one left to vanilla BGP.
  topology::Pop controlled(world, 0);
  topology::Pop vanilla(world, 0);
  core::Controller controller(controlled, {});
  controller.connect();

  // Find the busiest private peering: the flash crowd will hit its client.
  const topology::PopDef& def = controlled.def();
  std::size_t target_client = 0;
  double best_share = 0;
  for (const topology::PeeringDef& peering : def.peerings) {
    if (peering.type != bgp::PeerType::kPrivatePeer) continue;
    for (const topology::AnnouncedRoute& route : peering.routes) {
      if (route.tail.empty() &&
          def.client_share[route.client] > best_share) {
        best_share = def.client_share[route.client];
        target_client = route.client;
      }
    }
  }
  std::printf("flash crowd hits AS%u (%.1f%% of PoP traffic)\n",
              world.clients()[target_client].as.value(), best_share * 100);

  // Demand: 85%-of-peak base load, plus a crowd that ramps 1.0 -> 1.8 ->
  // 1.0 on the target client over 40 minutes.
  workload::DemandConfig quiet;
  quiet.enable_events = false;
  quiet.noise_sigma = 0;
  workload::DemandGenerator gen(world, 0, quiet);

  auto crowd_multiplier = [](int minute) {
    if (minute < 5 || minute >= 45) return 1.0;
    const double ramp = std::min(minute - 5, 45 - minute) / 10.0;
    return 1.0 + 0.8 * std::min(1.0, ramp);
  };

  std::printf("\n%6s %10s %16s %16s %10s\n", "minute", "crowd", "util (BGP)",
              "util (EF)", "overrides");
  for (int minute = 0; minute <= 50; minute += 2) {
    telemetry::DemandMatrix demand = gen.baseline(SimTime::seconds(0));
    telemetry::DemandMatrix scaled;
    const double multiplier = crowd_multiplier(minute);
    demand.for_each([&](const net::Prefix& prefix, net::Bandwidth rate) {
      const auto owner = world.client_of_prefix(prefix);
      const double factor =
          owner == target_client ? 0.85 * multiplier : 0.85;
      scaled.set(prefix, rate * factor);
    });

    const auto stats =
        controller.run_cycle(scaled, SimTime::minutes(minute));

    // Utilization of the crowd client's home PNI under both regimes.
    const net::Prefix probe = world.clients()[target_client].prefixes[0];
    const auto egress = vanilla.egress_of(probe);
    const auto iface = egress->interface;
    const double capacity =
        vanilla.interfaces().capacity(iface).bits_per_sec();

    auto util = [&](const topology::Pop& pop) {
      const auto load = pop.project_load(scaled);
      auto it = load.find(iface);
      return it == load.end() ? 0.0 : it->second.bits_per_sec() / capacity;
    };

    std::printf("%6d %9.2fx %15.1f%% %15.1f%% %10zu\n", minute, multiplier,
                util(vanilla) * 100, util(controlled) * 100,
                stats.overrides_active);
  }

  std::printf(
      "\nThe BGP column exceeds 100%% during the event (those bits drop);\n"
      "the Edge Fabric column stays at the target utilization, and the\n"
      "overrides retract as the crowd drains.\n");
  return 0;
}
