// Global fleet: every PoP in the world runs its own Edge Fabric
// controller — the paper's deployment shape (per-PoP controllers, no
// global coordination). Prints a 24-hour summary per PoP and the fleet
// aggregate, demonstrating that local decisions suffice. Runs the
// PoPs concurrently (threads=0 → auto); the output is bitwise
// identical to a serial run (see docs/PARALLELISM.md).
#include <cstdio>
#include <vector>

#include "analysis/metrics.h"
#include "sim/fleet.h"

int main() {
  using namespace ef;
  using net::SimTime;

  topology::WorldConfig world_config;
  world_config.num_clients = 56;
  world_config.num_pops = 4;
  const topology::World world = topology::World::generate(world_config);

  sim::SimulationConfig config;
  config.duration = SimTime::hours(24);
  config.step = SimTime::seconds(60);
  config.controller.cycle_period = SimTime::seconds(60);

  sim::Fleet fleet(world, config);
  std::printf("fleet: %zu PoPs, each with its own controller\n\n",
              fleet.size());

  struct PopStats {
    net::Bandwidth peak_demand;
    net::Bandwidth overload;
    std::size_t max_overrides = 0;
    std::size_t cycles_with_overrides = 0;
    std::size_t cycles = 0;
  };
  std::vector<PopStats> stats(fleet.size());

  fleet.run([&](std::size_t p, const sim::StepRecord& record) {
    PopStats& s = stats[p];
    s.peak_demand = std::max(s.peak_demand, record.total_demand);
    s.overload += record.overload;
    if (record.controller) {
      ++s.cycles;
      s.max_overrides =
          std::max(s.max_overrides, record.controller->overrides_active);
      if (record.controller->overrides_active > 0) {
        ++s.cycles_with_overrides;
      }
    }
  }, sim::RunOptions{/*threads=*/0});

  analysis::TablePrinter table({"pop", "peak-demand", "busy-cycles",
                                "max-overrides", "overload"},
                               {8, 13, 13, 14, 12});
  table.print_header();
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    const PopStats& s = stats[p];
    table.print_row(
        {world.pops()[p].name, s.peak_demand.to_string(),
         analysis::TablePrinter::pct(
             static_cast<double>(s.cycles_with_overrides) /
             static_cast<double>(s.cycles)),
         std::to_string(s.max_overrides), s.overload.to_string()});
  }

  std::printf(
      "\nEach controller acted only on its own PoP's telemetry; every\n"
      "PoP stayed under capacity for the whole day (overload column).\n");
  return 0;
}
