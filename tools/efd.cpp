// efd — the Edge Fabric controller daemon.
//
//   efd [--clients N] [--pops N] [--seed S] [--pop K]
//       [--bmp PORT] [--sflow PORT] [--http PORT]
//       [--inject] [--real-time] [--cycle-secs S] [--sample-rate N]
//
// Listens for BMP sessions on TCP and EFS1 sFlow datagrams on UDP,
// builds a RIB and a demand estimate from them, and runs controller
// cycles on window-close markers (plus a wall-clock timer with
// --real-time). GET /status and /metrics on the HTTP port.
//
// The PoP topology (interfaces, capacities, NEXT_HOP -> egress map)
// still comes from the deterministic generated world — the daemon needs
// it to resolve routes to egresses — while the RIB and demand come
// exclusively from the sockets. Default stance is shadow (compute, do
// not push); --inject enables BGP injection into the attached PoP.
//
// Signals: SIGINT/SIGTERM shut down in an orderly way through the event
// loop's signalfd. docs/OPERATIONS.md covers the operator workflow.
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/controller.h"
#include "net/units.h"
#include "service/efd.h"
#include "topology/pop.h"
#include "topology/world.h"

namespace {

using namespace ef;

[[noreturn]] void die_bad_value(const std::string& key,
                                const std::string& value) {
  std::fprintf(stderr, "efd: invalid numeric value '%s' for --%s\n",
               value.c_str(), key.c_str());
  std::exit(2);
}

struct Args {
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.contains(key); }
  long num(const std::string& key, long fallback) const {
    auto it = options.find(key);
    if (it == options.end()) return fallback;
    try {
      std::size_t consumed = 0;
      const long value = std::stol(it->second, &consumed);
      if (consumed != it->second.size()) die_bad_value(key, it->second);
      return value;
    } catch (const std::exception&) {
      die_bad_value(key, it->second);
    }
  }
  /// Strict finite double: junk, trailing characters, inf, nan exit 2.
  double real(const std::string& key, double fallback) const {
    auto it = options.find(key);
    if (it == options.end()) return fallback;
    char* end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0' || !std::isfinite(value)) {
      die_bad_value(key, it->second);
    }
    return value;
  }
};

int usage() {
  std::fprintf(stderr,
               "usage: efd [--clients N] [--pops N] [--seed S] [--pop K]\n"
               "           [--bmp PORT] [--sflow PORT] [--http PORT]\n"
               "           [--inject] [--real-time] [--cycle-secs S]\n"
               "           [--sample-rate N] [--threads N]\n"
               "           [--decode-threads N] [--incremental[=FRAC]]\n"
               "           [--dataplane] [--dp-queue-ms MS] [--dp-slots N]\n"
               "           [--dp-elephant-frac F]\n"
               "           [--audit] [--audit-interval N]\n"
               "           [--audit-max-repairs N]\n"
               "           [--recovery-file FILE] [--recover]\n"
               "  (port 0 = pick an ephemeral port and print it)\n"
               "  --threads: allocation-cycle workers (1 = serial,\n"
               "  0 = one per hardware thread); decisions are identical\n"
               "  for every value. --decode-threads: BMP decode workers\n"
               "  (0 = decode inline on the event loop).\n"
               "  --incremental: delta allocation cycles; FRAC is the\n"
               "  dirty-fraction fallback ceiling in [0,1] (decisions\n"
               "  stay bitwise identical to full recomputes). See\n"
               "  docs/SCALING.md.\n"
               "  --dataplane: flow-level dataplane emulation (hashed\n"
               "  flows, bounded interface queues, measured drops and\n"
               "  reorder events on /metrics). --dp-queue-ms: queue depth\n"
               "  in ms of buffering (>= 0). --dp-slots: ECMP member\n"
               "  slots per interface (>= 1). --dp-elephant-frac:\n"
               "  elephant fraction of the flow mix in [0,1].\n"
               "  --audit: closed-loop enforcement audit each cycle\n"
               "  (--audit-interval N = every Nth, --audit-max-repairs N\n"
               "  = per-pass remediation budget). --recovery-file FILE:\n"
               "  persist a warm-restart snapshot each healthy cycle;\n"
               "  --recover: resume from it in hold-last-good instead of\n"
               "  cold fail-static. docs/FAILSAFE.md has the runbook.\n");
  return 2;
}

std::uint16_t port_arg(const Args& args, const std::string& key) {
  const long port = args.num(key, 0);
  if (port < 0 || port > 65535) die_bad_value(key, args.options.at(key));
  return static_cast<std::uint16_t>(port);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key == "--help" || key == "-h") return usage();
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "efd: unexpected operand '%s'\n", key.c_str());
      return usage();
    }
    key = key.substr(2);
    // --key=value form (empty values fail strict validation loudly).
    if (const auto eq = key.find('='); eq != std::string::npos) {
      args.options[key.substr(0, eq)] = key.substr(eq + 1);
      continue;
    }
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "1";
    }
  }

  // Block the shutdown signals before any thread exists so the event
  // loop's signalfd is their only consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  sigprocmask(SIG_BLOCK, &sigs, nullptr);

  topology::WorldConfig world_config;
  world_config.num_clients = static_cast<int>(args.num("clients", 56));
  world_config.num_pops = static_cast<int>(args.num("pops", 4));
  world_config.seed = static_cast<std::uint64_t>(args.num("seed", 42));
  const topology::World world = topology::World::generate(world_config);
  const std::size_t pop_index = static_cast<std::size_t>(args.num("pop", 0));
  if (pop_index >= world.pops().size()) {
    std::fprintf(stderr, "efd: --pop %zu out of range (%zu PoPs)\n",
                 pop_index, world.pops().size());
    return 2;
  }
  topology::Pop pop(world, pop_index);

  service::EfdConfig config;
  config.bmp_port = port_arg(args, "bmp");
  config.sflow_port = port_arg(args, "sflow");
  config.http_port = port_arg(args, "http");
  config.controller.enforcement = args.has("inject")
                                      ? core::Enforcement::kBgpInjection
                                      : core::Enforcement::kShadow;
  config.controller.cycle_period =
      net::SimTime::seconds(static_cast<double>(args.num("cycle-secs", 30)));
  config.sflow_sample_rate =
      static_cast<std::uint32_t>(args.num("sample-rate", 10));
  config.real_time_cycles = args.has("real-time");
  const long alloc_threads = args.num("threads", 1);
  if (alloc_threads < 0 ||
      alloc_threads > static_cast<long>(runtime::ThreadPool::kMaxThreads)) {
    die_bad_value("threads", args.options.at("threads"));
  }
  config.controller.alloc_threads = static_cast<unsigned>(alloc_threads);
  const long decode_threads = args.num("decode-threads", 0);
  if (decode_threads < 0 ||
      decode_threads > static_cast<long>(runtime::ThreadPool::kMaxThreads)) {
    die_bad_value("decode-threads", args.options.at("decode-threads"));
  }
  config.decode_threads = static_cast<unsigned>(decode_threads);
  if (args.has("incremental")) {
    config.controller.incremental = true;
    const std::string& raw = args.options.at("incremental");
    if (raw != "1") {  // a bare flag keeps the default ceiling
      char* end = nullptr;
      const double frac = std::strtod(raw.c_str(), &end);
      if (end == raw.c_str() || *end != '\0' || !std::isfinite(frac) ||
          frac < 0.0 || frac > 1.0) {
        die_bad_value("incremental", raw);
      }
      config.controller.incremental_dirty_ceiling = frac;
    }
  }
  // Dataplane knobs are validated even while --dataplane is absent: a
  // typo'd value should fail loudly, not silently arm nothing.
  config.dataplane.enabled = args.has("dataplane");
  const double queue_ms = args.real("dp-queue-ms", 50.0);
  if (queue_ms < 0.0) die_bad_value("dp-queue-ms", args.options.at("dp-queue-ms"));
  config.dataplane.queue_depth_ms = queue_ms;
  const long dp_slots = args.num("dp-slots", 16);
  if (dp_slots < 1 || dp_slots > 4096) {
    die_bad_value("dp-slots", args.options.at("dp-slots"));
  }
  config.dataplane.ecmp_slots = static_cast<std::uint32_t>(dp_slots);
  const double elephant_frac = args.real("dp-elephant-frac", 0.08);
  if (elephant_frac < 0.0 || elephant_frac > 1.0) {
    die_bad_value("dp-elephant-frac", args.options.at("dp-elephant-frac"));
  }
  config.dataplane.flows.elephant_fraction = elephant_frac;
  config.dataplane.seed = static_cast<std::uint64_t>(args.num("seed", 42));
  // Audit / warm-restart knobs, validated even while --audit is absent
  // (same convention as the --dp-* block above).
  config.audit.enabled = args.has("audit") ||
                         args.has("audit-interval") ||
                         args.has("audit-max-repairs");
  const long audit_interval = args.num("audit-interval", 1);
  if (audit_interval < 1) {
    die_bad_value("audit-interval", args.options.at("audit-interval"));
  }
  config.audit.interval_cycles =
      static_cast<std::uint32_t>(audit_interval);
  const long audit_repairs = args.num("audit-max-repairs", 64);
  if (audit_repairs < 0) {
    die_bad_value("audit-max-repairs",
                  args.options.at("audit-max-repairs"));
  }
  config.audit.max_repairs = static_cast<std::uint64_t>(audit_repairs);
  auto recovery_it = args.options.find("recovery-file");
  if (recovery_it != args.options.end()) {
    config.recovery_path = recovery_it->second;
  }
  config.recover = args.has("recover");
  if (config.recover && config.recovery_path.empty()) {
    std::fprintf(stderr, "efd: --recover requires --recovery-file FILE\n");
    return 2;
  }

  service::EfdService service(pop, config);
  service.shutdown_on_signals();
  service.start();

  std::printf("efd: pop %s (%zu interfaces), %s enforcement\n",
              pop.name().c_str(), pop.def().interfaces.size(),
              args.has("inject") ? "bgp-injection" : "shadow");
  if (config.audit.enabled) {
    std::printf("efd: enforcement audit on (every %u cycle(s), max %ju "
                "repair(s)/pass)\n",
                config.audit.interval_cycles,
                static_cast<std::uintmax_t>(config.audit.max_repairs));
  }
  if (!config.recovery_path.empty()) {
    std::printf("efd: recovery snapshots -> %s%s\n",
                config.recovery_path.c_str(),
                config.recover ? " (warm restart requested)" : "");
  }
  std::printf("efd: bmp 127.0.0.1:%u  sflow 127.0.0.1:%u  http 127.0.0.1:%u\n",
              service.bmp_port(), service.sflow_port(), service.http_port());
  std::fflush(stdout);

  service.wait();  // until SIGINT/SIGTERM
  std::printf("efd: stopped\n");
  return 0;
}
