// eftool — operator CLI for the edgefabric library.
//
//   eftool world      [--clients N] [--pops N] [--seed S]
//   eftool interfaces --pop K
//   eftool rib        --pop K [--prefix P] [--limit N]
//   eftool cycle      --pop K [--hour H] [--split]
//   eftool run        --pop K [--hours H] [--no-controller] [--flaps R]
//   eftool fleet      [--hours H] [--no-controller] [--threads N]
//   eftool mrt        --pop K --out FILE
//   eftool record     --pop K [--hours H] [--sflow] [--flaps R] --out FILE
//   eftool record     --fleet [--hours H] [--threads N] --out FILE
//   eftool replay     FILE [--verbose]
//   eftool whatif     FILE --drain I | --scale-demand F | ... [--cycle N]
//   eftool serve      [--pop K] [--bmp P] [--sflow P] [--http P] [...]
//   eftool pr         [--port P] [--as N] [--hold-secs S] [...]
//   eftool announce   --ports P1[,P2...] [--count N] [--linger-secs S] [...]
//   eftool feed       FILE --bmp P [--sflow P] [--http P] [--limit N]
//   eftool chaos      [--steps N] [--fault-seed S] [--drop R] [...]
//
// Everything is generated/deterministic: the same flags print the same
// bytes, which makes eftool output diff-able in change reviews. That
// includes --threads: per-PoP work runs on a pool, but observers fire in
// PoP-index order after a per-step barrier, so any thread count prints
// the same bytes and journals (docs/PARALLELISM.md). See
// docs/OPERATIONS.md for the full operator handbook.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/metrics.h"
#include "audit/event.h"
#include "audit/journal.h"
#include "audit/replay.h"
#include "audit/snapshot.h"
#include "bgp/mrt.h"
#include "bmp/wire.h"
#include "core/controller.h"
#include "dataplane/dataplane.h"
#include "io/backoff.h"
#include "io/fault.h"
#include "io/socket.h"
#include "service/efd.h"
#include "service/prd.h"
#include "sim/fleet.h"
#include "sim/live_feed.h"
#include "sim/simulation.h"
#include "telemetry/sflow_wire.h"
#include "workload/demand.h"

namespace {

using namespace ef;

[[noreturn]] void die_bad_value(const std::string& key,
                                const std::string& value) {
  std::fprintf(stderr, "eftool: invalid numeric value '%s' for --%s\n",
               value.c_str(), key.c_str());
  std::exit(2);
}

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> positionals;  // non-flag operands (e.g. FILE)

  bool has(const std::string& key) const { return options.contains(key); }
  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  long num(const std::string& key, long fallback) const {
    auto it = options.find(key);
    if (it == options.end()) return fallback;
    try {
      std::size_t consumed = 0;
      const long value = std::stol(it->second, &consumed);
      if (consumed != it->second.size()) die_bad_value(key, it->second);
      return value;
    } catch (const std::exception&) {
      die_bad_value(key, it->second);
    }
  }
  double real(const std::string& key, double fallback) const {
    auto it = options.find(key);
    if (it == options.end()) return fallback;
    try {
      std::size_t consumed = 0;
      const double value = std::stod(it->second, &consumed);
      if (consumed != it->second.size()) die_bad_value(key, it->second);
      return value;
    } catch (const std::exception&) {
      die_bad_value(key, it->second);
    }
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      args.positionals.push_back(key);
      continue;
    }
    key = key.substr(2);
    // --key=value form: the value may be anything, including empty (which
    // strict numeric validation then rejects loudly).
    if (const auto eq = key.find('='); eq != std::string::npos) {
      args.options[key.substr(0, eq)] = key.substr(eq + 1);
      continue;
    }
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "1";  // boolean flag
    }
  }
  return args;
}

/// Strict numeric option: a finite, non-negative double, or exit 2.
/// std::stod happily parses "nan" and "inf", and a negative threshold
/// would silently arm a nonsense failsafe — all three die loudly here.
double nonneg_real(const Args& args, const std::string& key,
                   double fallback) {
  const double value = args.real(key, fallback);
  if (!std::isfinite(value) || value < 0.0) {
    die_bad_value(key, args.get(key, ""));
  }
  return value;
}

/// Strict probability/fraction option: finite, within [0, 1], or exit 2.
double unit_real(const Args& args, const std::string& key, double fallback) {
  const double value = nonneg_real(args, key, fallback);
  if (value > 1.0) die_bad_value(key, args.get(key, ""));
  return value;
}

/// Shared failsafe/journal flags for `serve` and `chaos`. Thresholds are
/// validated even when the ladder stays off: a typo'd --hold-ttl should
/// fail the invocation, not arm a broken daemon later. Any threshold
/// flag implies --failsafe.
void apply_failsafe_flags(const Args& args, service::EfdConfig& config) {
  config.failsafe.enabled =
      config.failsafe.enabled || args.has("failsafe") ||
      args.has("max-demand-age") || args.has("hold-ttl") ||
      args.has("max-churn-frac");
  config.failsafe.max_demand_age =
      net::SimTime::seconds(nonneg_real(args, "max-demand-age", 90));
  config.failsafe.hold_ttl =
      net::SimTime::seconds(nonneg_real(args, "hold-ttl", 120));
  config.controller.max_churn_frac = unit_real(args, "max-churn-frac", 0.0);
  config.journal_path = args.get("journal", "");
}

/// --incremental[=FRAC]: arms the incremental (delta) allocation path.
/// The optional value is the dirty-fraction ceiling past which a cycle
/// falls back to a full recompute — a strict unit fraction (NaN,
/// negative, or > 1 exit 2, like every other threshold flag). A bare
/// --incremental keeps the ControllerConfig default ceiling. Execution
/// knob only: decisions are bitwise identical either way.
void apply_incremental_flags(const Args& args,
                             core::ControllerConfig& config) {
  if (!args.has("incremental")) return;
  config.incremental = true;
  if (args.get("incremental", "1") != "1") {
    config.incremental_dirty_ceiling =
        unit_real(args, "incremental", config.incremental_dirty_ceiling);
  }
}

/// Shared dataplane flags for `run`, `record`, and `serve`. Knobs are
/// validated even while --dataplane is absent (a typo'd --dp-queue-ms
/// should fail the invocation), matching the failsafe-flag convention.
///   --dataplane          enable flow-level dataplane emulation
///   --dp-queue-ms MS     queue depth in ms of line-rate buffering (>= 0)
///   --dp-slots N         ECMP member-link slots per interface (>= 1)
///   --dp-wcmp N          egress candidates per prefix (>= 1; 1 = off)
///   --dp-elephant-frac F elephant fraction of the flow mix ([0, 1])
void apply_dataplane_flags(const Args& args,
                           dataplane::DataplaneConfig& config,
                           std::uint64_t seed) {
  config.enabled = args.has("dataplane");
  config.seed = seed;
  config.queue_depth_ms = nonneg_real(args, "dp-queue-ms", 50.0);
  const long slots = args.num("dp-slots", 16);
  if (slots < 1 || slots > 4096) die_bad_value("dp-slots", args.get("dp-slots", ""));
  config.ecmp_slots = static_cast<std::uint32_t>(slots);
  const long wcmp = args.num("dp-wcmp", 1);
  if (wcmp < 1 || wcmp > 64) die_bad_value("dp-wcmp", args.get("dp-wcmp", ""));
  config.wcmp_paths = static_cast<std::uint32_t>(wcmp);
  config.flows.elephant_fraction = unit_real(args, "dp-elephant-frac", 0.08);
}

/// Shared enforcement-audit / warm-restart flags for `serve` and
/// `chaos`. Knobs are validated even while --audit is absent (a typo'd
/// --audit-interval should fail the invocation), matching the --dp-*
/// convention; either interval/budget knob implies --audit.
///   --audit               closed-loop enforcement audit each cycle
///   --audit-interval N    audit every Nth guarded cycle (>= 1)
///   --audit-max-repairs N per-pass remediation budget (>= 0)
///   --recovery-file FILE  persist a recovery snapshot each healthy cycle
///   --recover             resume from FILE in hold-last-good on startup
void apply_audit_flags(const Args& args, service::EfdConfig& config) {
  config.audit.enabled = config.audit.enabled || args.has("audit") ||
                         args.has("audit-interval") ||
                         args.has("audit-max-repairs");
  const long interval = args.num("audit-interval", 1);
  if (interval < 1) {
    die_bad_value("audit-interval", args.get("audit-interval", ""));
  }
  config.audit.interval_cycles = static_cast<std::uint32_t>(interval);
  const long repairs = args.num("audit-max-repairs", 64);
  if (repairs < 0) {
    die_bad_value("audit-max-repairs", args.get("audit-max-repairs", ""));
  }
  config.audit.max_repairs = static_cast<std::uint64_t>(repairs);
  config.recovery_path = args.get("recovery-file", "");
  config.recover = args.has("recover");
  if (config.recover && config.recovery_path.empty()) {
    std::fprintf(stderr,
                 "eftool: --recover requires --recovery-file FILE\n");
    std::exit(2);
  }
}

/// Parses --bgp-faults drop=R,dup=R,swallow=R,flap=N into announcer
/// fault config: seeded drop/duplicate/swallow-withdraw rates on the
/// BGP UPDATE stream, plus an optional scripted session flap at UPDATE
/// index N. Strict like every flag here: unknown keys, malformed
/// numbers, or out-of-range rates exit 2 — validated whenever the flag
/// appears, whether or not an announcer ends up configured.
void apply_bgp_fault_flags(const Args& args, service::EfdConfig& config,
                           std::uint64_t seed) {
  if (!args.has("bgp-faults")) return;
  const std::string spec = args.get("bgp-faults", "");
  io::FaultConfig faults;
  faults.seed = seed;
  std::vector<io::ScriptedFault> script;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) die_bad_value("bgp-faults", spec);
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "flap") {
      long index = 0;
      try {
        std::size_t consumed = 0;
        index = std::stol(value, &consumed);
        if (consumed != value.size()) die_bad_value("bgp-faults", spec);
      } catch (const std::exception&) {
        die_bad_value("bgp-faults", spec);
      }
      if (index < 0) die_bad_value("bgp-faults", spec);
      script.push_back({static_cast<std::uint64_t>(index),
                        io::FaultKind::kDisconnect});
      continue;
    }
    double rate = 0.0;
    try {
      std::size_t consumed = 0;
      rate = std::stod(value, &consumed);
      if (consumed != value.size()) die_bad_value("bgp-faults", spec);
    } catch (const std::exception&) {
      die_bad_value("bgp-faults", spec);
    }
    if (!std::isfinite(rate) || rate < 0.0 || rate > 1.0) {
      die_bad_value("bgp-faults", spec);
    }
    if (key == "drop") {
      faults.drop = rate;
    } else if (key == "dup") {
      faults.duplicate = rate;
    } else if (key == "swallow") {
      faults.swallow_withdraw = rate;
    } else {
      die_bad_value("bgp-faults", spec);
    }
  }
  config.announce_faults = faults;
  config.announce_fault_script = std::move(script);
}

/// Parses --threads into RunOptions (0 = auto, 1 = serial); rejects
/// negatives.
sim::RunOptions run_options(const Args& args) {
  const long threads = args.num("threads", 0);
  if (threads < 0) die_bad_value("threads", args.get("threads", ""));
  sim::RunOptions options;
  options.threads = static_cast<unsigned>(threads);
  return options;
}

topology::World make_world(const Args& args) {
  topology::WorldConfig config;
  config.num_clients = static_cast<int>(args.num("clients", 56));
  config.num_pops = static_cast<int>(args.num("pops", 4));
  config.seed = static_cast<std::uint64_t>(args.num("seed", 42));
  return topology::World::generate(config);
}

int cmd_world(const Args& args) {
  const topology::World world = make_world(args);
  std::printf("world: %zu clients, %zu PoPs (seed %llu)\n\n",
              world.clients().size(), world.pops().size(),
              static_cast<unsigned long long>(world.config().seed));
  analysis::TablePrinter clients({"client", "weight", "prefixes", "rtt-base"},
                                 {10, 10, 10, 10});
  clients.print_header();
  for (std::size_t c = 0; c < std::min<std::size_t>(10, world.clients().size());
       ++c) {
    const topology::ClientAs& client = world.clients()[c];
    clients.print_row({"AS" + std::to_string(client.as.value()),
                       analysis::TablePrinter::pct(client.weight, 1),
                       std::to_string(client.prefixes.size()),
                       analysis::TablePrinter::fmt(client.base_rtt_ms, 0) +
                           " ms"});
  }
  std::printf("  (top 10 of %zu clients by traffic share)\n\n",
              world.clients().size());
  for (const topology::PopDef& pop : world.pops()) {
    net::Bandwidth total;
    for (const auto& iface : pop.interfaces) total += iface.capacity;
    std::printf("  %-8s %2zu peerings, %2zu interfaces, %s egress capacity\n",
                pop.name.c_str(), pop.peerings.size(), pop.interfaces.size(),
                total.to_string().c_str());
  }
  return 0;
}

int cmd_interfaces(const Args& args) {
  const topology::World world = make_world(args);
  const std::size_t p = static_cast<std::size_t>(args.num("pop", 0));
  topology::Pop pop(world, p);
  analysis::TablePrinter table({"id", "name", "role", "capacity", "drained"},
                               {6, 18, 14, 12, 8});
  table.print_header();
  for (std::size_t i = 0; i < pop.def().interfaces.size(); ++i) {
    const topology::InterfaceDef& iface = pop.def().interfaces[i];
    table.print_row({std::to_string(i), iface.name,
                     bgp::peer_type_name(iface.role),
                     iface.capacity.to_string(),
                     pop.interfaces().drained(telemetry::InterfaceId(
                         static_cast<std::uint32_t>(i)))
                         ? "yes"
                         : "no"});
  }
  return 0;
}

int cmd_rib(const Args& args) {
  const topology::World world = make_world(args);
  const std::size_t p = static_cast<std::size_t>(args.num("pop", 0));
  topology::Pop pop(world, p);

  if (args.has("prefix")) {
    const auto prefix = net::Prefix::parse(args.get("prefix", ""));
    if (!prefix) {
      std::fprintf(stderr, "bad prefix\n");
      return 2;
    }
    const auto ranked = pop.ranked_routes(*prefix);
    if (ranked.empty()) {
      std::printf("%s: no routes\n", prefix->to_string().c_str());
      return 0;
    }
    std::printf("%s: %zu route(s), best first\n", prefix->to_string().c_str(),
                ranked.size());
    for (const bgp::Route* route : ranked) {
      std::printf("  %s\n", route->to_string().c_str());
    }
    return 0;
  }

  const long limit = args.num("limit", 20);
  std::printf("%zu prefixes, %zu routes total; first %ld best routes:\n",
              pop.collector().rib().prefix_count(),
              pop.collector().rib().route_count(), limit);
  long shown = 0;
  for (const net::Prefix& prefix : pop.reachable_prefixes()) {
    if (shown++ >= limit) break;
    const bgp::Route* best = pop.collector().rib().best(prefix);
    std::printf("  %s\n", best->to_string().c_str());
  }
  return 0;
}

int cmd_cycle(const Args& args) {
  const topology::World world = make_world(args);
  const std::size_t p = static_cast<std::size_t>(args.num("pop", 0));
  topology::Pop pop(world, p);

  core::ControllerConfig config;
  config.allocator.allow_prefix_splitting = args.has("split");
  core::Controller controller(pop, config);
  controller.connect();

  workload::DemandGenerator gen(world, p, {});
  const double hour = args.real("hour", 0);
  const telemetry::DemandMatrix demand =
      gen.baseline(net::SimTime::hours(hour));

  const core::CycleStats stats =
      controller.run_cycle(demand, net::SimTime::hours(hour));
  std::printf(
      "cycle at t=%gh: demand %s, %zu overloaded interface(s), %zu "
      "override(s), unresolved %s\n",
      hour, demand.total().to_string().c_str(),
      stats.allocation.overloaded_interfaces, stats.overrides_active,
      stats.allocation.unresolved_overload.to_string().c_str());
  for (const auto& [prefix, override_entry] : controller.active_overrides()) {
    std::printf("  %-20s %-9s %s -> %s path=[%s] nh=%s\n",
                prefix.to_string().c_str(),
                override_entry.rate.to_string().c_str(),
                bgp::peer_type_name(override_entry.from_type),
                bgp::peer_type_name(override_entry.target_type),
                override_entry.as_path.to_string().c_str(),
                override_entry.next_hop.to_string().c_str());
  }
  return 0;
}

int cmd_run(const Args& args) {
  const topology::World world = make_world(args);
  const std::size_t p = static_cast<std::size_t>(args.num("pop", 0));
  topology::Pop pop(world, p);

  sim::SimulationConfig config;
  config.duration = net::SimTime::hours(args.real("hours", 24));
  config.step = net::SimTime::seconds(60);
  config.controller_enabled = !args.has("no-controller");
  config.controller.cycle_period = net::SimTime::seconds(60);
  config.peer_flap_rate_per_hour = args.real("flaps", 0);
  apply_dataplane_flags(args, config.dataplane,
                        static_cast<std::uint64_t>(args.num("seed", 42)));

  analysis::UtilizationTracker tracker(pop.interfaces());
  analysis::DetourTracker detours;
  sim::Simulation simulation(pop, config);
  simulation.run([&](const sim::StepRecord& record) {
    tracker.record(record.when, record.load);
    if (record.controller) {
      detours.record_cycle(*record.controller,
                           simulation.controller()->active_overrides(),
                           record.total_demand);
    }
  });

  std::printf("ran %zu steps (%s, %s)\n", tracker.steps(),
              config.controller_enabled ? "Edge Fabric" : "BGP only",
              pop.name().c_str());
  std::printf("  utilization samples: %s\n",
              tracker.utilization_samples().summary().c_str());
  std::printf("  overloaded sample fraction: %s\n",
              analysis::TablePrinter::pct(tracker.overloaded_fraction(1.0), 2)
                  .c_str());
  std::printf("  would-drop traffic fraction: %s\n",
              analysis::TablePrinter::pct(tracker.excess_traffic_fraction(), 3)
                  .c_str());
  std::printf("  overload episodes: %zu\n", tracker.episodes(1.0).size());
  if (config.controller_enabled && detours.cycles() > 0) {
    std::printf("  detoured fraction: %s\n",
                detours.detoured_fraction().summary().c_str());
    std::printf("  overridden prefixes: %zu (%zu flapping)\n",
                detours.total_overridden_prefixes(),
                detours.flapping_prefixes());
  }
  if (const dataplane::Dataplane* dp = simulation.dataplane()) {
    const dataplane::DataplaneTotals& totals = dp->totals();
    const double offered = static_cast<double>(totals.offered_bytes);
    std::printf("  dataplane: %llu flows seen, %llu moved, %llu reorder "
                "events\n",
                static_cast<unsigned long long>(dp->flow_table().flows_seen()),
                static_cast<unsigned long long>(totals.flows_moved),
                static_cast<unsigned long long>(totals.reorder_events));
    std::printf("  measured drop fraction: %s (%llu of %llu bytes)\n",
                analysis::TablePrinter::pct(
                    offered > 0
                        ? static_cast<double>(totals.dropped_bytes) / offered
                        : 0.0,
                    4)
                    .c_str(),
                static_cast<unsigned long long>(totals.dropped_bytes),
                static_cast<unsigned long long>(totals.offered_bytes));
  }
  return 0;
}

int cmd_fleet(const Args& args) {
  const topology::World world = make_world(args);
  sim::SimulationConfig config;
  config.duration = net::SimTime::hours(args.real("hours", 24));
  config.step = net::SimTime::seconds(60);
  config.controller_enabled = !args.has("no-controller");
  config.controller.cycle_period = net::SimTime::seconds(60);

  sim::Fleet fleet(world, config);
  std::vector<net::Bandwidth> overload(fleet.size());
  std::vector<net::Bandwidth> peak(fleet.size());
  std::vector<std::size_t> max_overrides(fleet.size(), 0);
  fleet.run(
      [&](std::size_t p, const sim::StepRecord& record) {
        overload[p] += record.overload;
        peak[p] = std::max(peak[p], record.total_demand);
        if (record.controller) {
          max_overrides[p] =
              std::max(max_overrides[p], record.controller->overrides_active);
        }
      },
      run_options(args));

  analysis::TablePrinter table(
      {"pop", "peak-demand", "max-overrides", "overload-sum"}, {8, 13, 14, 14});
  table.print_header();
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    table.print_row({world.pops()[p].name, peak[p].to_string(),
                     std::to_string(max_overrides[p]),
                     overload[p].to_string()});
  }
  return 0;
}

int cmd_mrt(const Args& args) {
  const topology::World world = make_world(args);
  const std::size_t p = static_cast<std::size_t>(args.num("pop", 0));
  topology::Pop pop(world, p);
  const std::string path = args.get("out", "");
  if (path.empty()) {
    std::fprintf(stderr, "mrt requires --out FILE\n");
    return 2;
  }

  const bgp::mrt::TableDump dump = bgp::mrt::from_rib(
      pop.collector().rib(),
      [&](bgp::PeerId peer) {
        const auto* info = pop.collector().peer(peer);
        return bgp::mrt::PeerEntry{info->bgp_id, info->address, info->as};
      },
      bgp::RouterId(1), "edgefabric-" + pop.name());
  const auto bytes = bgp::mrt::encode(dump, net::SimTime::seconds(0));

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("wrote %zu bytes: %zu peers, %zu prefixes (TABLE_DUMP_V2)\n",
              bytes.size(), dump.peers.size(), dump.records.size());
  return 0;
}

/// Journal path for one PoP of a fleet recording: `run.efj` -> `run.pop3.efj`
/// (suffix appended when the name has no .efj extension).
std::string pop_journal_path(const std::string& base, std::size_t pop) {
  const std::string ext = ".efj";
  const std::string suffix = ".pop" + std::to_string(pop) + ext;
  if (base.size() >= ext.size() &&
      base.compare(base.size() - ext.size(), ext.size(), ext) == 0) {
    return base.substr(0, base.size() - ext.size()) + suffix;
  }
  return base + suffix;
}

/// `record --fleet`: journal every PoP's controller cycles in one run.
/// Each PoP appends to its own journal file, so worker threads never share
/// a writer: snapshots of one PoP are totally ordered by the per-step
/// barrier, and the resulting files are bitwise-identical for any
/// --threads value.
int cmd_record_fleet(const Args& args, const std::string& path) {
  const topology::World world = make_world(args);

  sim::SimulationConfig config;
  config.duration = net::SimTime::hours(args.real("hours", 24));
  config.step = net::SimTime::seconds(60);
  config.controller.cycle_period = net::SimTime::seconds(60);
  config.use_sflow_estimate = args.has("sflow");
  config.peer_flap_rate_per_hour = args.real("flaps", 0);
  apply_dataplane_flags(args, config.dataplane,
                        static_cast<std::uint64_t>(args.num("seed", 42)));

  sim::Fleet fleet(world, config);
  std::vector<std::unique_ptr<audit::JournalWriter>> writers;
  writers.reserve(fleet.size());
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    auto writer =
        std::make_unique<audit::JournalWriter>(pop_journal_path(path, p));
    if (!writer->ok()) {
      std::fprintf(stderr, "cannot open %s\n",
                   pop_journal_path(path, p).c_str());
      return 2;
    }
    fleet.simulation(p).set_cycle_observer(
        [w = writer.get()](const core::Controller::CycleRecord& record) {
          w->append(audit::capture_cycle(record).serialize());
        });
    writers.push_back(std::move(writer));
  }

  fleet.run([](std::size_t, const sim::StepRecord&) {}, run_options(args));

  std::size_t records = 0;
  std::size_t bytes = 0;
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    writers[p]->flush();
    if (!writers[p]->ok()) {
      std::fprintf(stderr, "write failed on %s\n",
                   pop_journal_path(path, p).c_str());
      return 2;
    }
    records += writers[p]->records_written();
    bytes += writers[p]->bytes_written();
    std::printf("  %-8s %zu cycle snapshot(s) -> %s\n",
                world.pops()[p].name.c_str(), writers[p]->records_written(),
                pop_journal_path(path, p).c_str());
  }
  std::printf("recorded %zu cycle snapshot(s) (%zu bytes) across %zu PoPs\n",
              records, bytes, fleet.size());
  return 0;
}

int cmd_record(const Args& args) {
  const std::string path = args.get("out", "");
  if (path.empty()) {
    std::fprintf(stderr, "record requires --out FILE\n");
    return 2;
  }
  if (args.has("fleet")) return cmd_record_fleet(args, path);
  const topology::World world = make_world(args);
  const std::size_t p = static_cast<std::size_t>(args.num("pop", 0));
  topology::Pop pop(world, p);

  sim::SimulationConfig config;
  config.duration = net::SimTime::hours(args.real("hours", 24));
  config.step = net::SimTime::seconds(60);
  config.controller.cycle_period = net::SimTime::seconds(60);
  config.use_sflow_estimate = args.has("sflow");
  config.peer_flap_rate_per_hour = args.real("flaps", 0);
  apply_dataplane_flags(args, config.dataplane,
                        static_cast<std::uint64_t>(args.num("seed", 42)));

  audit::JournalWriter writer(path);
  if (!writer.ok()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }

  sim::Simulation simulation(pop, config);
  simulation.set_cycle_observer(
      [&](const core::Controller::CycleRecord& record) {
        writer.append(audit::capture_cycle(record).serialize());
      });
  simulation.run([](const sim::StepRecord&) {});
  writer.flush();
  if (!writer.ok()) {
    std::fprintf(stderr, "write failed on %s\n", path.c_str());
    return 2;
  }
  std::printf("recorded %zu cycle snapshot(s) (%zu bytes) to %s\n",
              writer.records_written(), writer.bytes_written(), path.c_str());
  return 0;
}

/// Streams the decodable snapshots of a journal one at a time (a 24h
/// journal holds ~1.4k self-contained snapshots; deserializing them all at
/// once would be needlessly heavy). Reports damage after the last one.
class SnapshotStream {
 public:
  explicit SnapshotStream(const std::string& path) : path_(path) {
    auto bytes = audit::JournalReader::load(path);
    if (!bytes) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return;
    }
    reader_.emplace(std::move(*bytes));
  }

  bool opened() const { return reader_.has_value(); }

  std::optional<audit::CycleSnapshot> next() {
    if (!reader_) return std::nullopt;
    while (auto record = reader_->next()) {
      if (auto snapshot = audit::CycleSnapshot::deserialize(*record)) {
        return snapshot;
      }
      // Journals written with a failsafe-armed daemon interleave ladder
      // transitions with the cycle snapshots; they are data, not damage.
      if (auto event = audit::FailsafeEvent::deserialize(*record)) {
        events_.push_back(std::move(*event));
        continue;
      }
      ++undecodable_;
    }
    return std::nullopt;
  }

  /// Ladder transitions seen so far (complete once next() returned
  /// nullopt).
  const std::vector<audit::FailsafeEvent>& events() const { return events_; }

  /// Prints journal damage to stderr; true if the file was a journal.
  bool report_damage() const {
    if (!reader_) return false;
    const audit::JournalReadStats& stats = reader_->stats();
    if (stats.bad_header) {
      std::fprintf(stderr, "%s: not an edgefabric journal (bad header)\n",
                   path_.c_str());
    }
    if (stats.corrupt_skipped > 0 || stats.truncated_tail ||
        undecodable_ > 0) {
      std::fprintf(
          stderr,
          "%s: recovered %zu record(s); skipped %zu corrupt frame(s), "
          "%zu undecodable snapshot(s)%s\n",
          path_.c_str(), stats.records, stats.corrupt_skipped, undecodable_,
          stats.truncated_tail ? ", truncated tail" : "");
    }
    return !stats.bad_header;
  }

 private:
  std::string path_;
  std::optional<audit::JournalReader> reader_;
  std::vector<audit::FailsafeEvent> events_;
  std::size_t undecodable_ = 0;
};

int cmd_replay(const Args& args) {
  if (args.positionals.empty()) {
    std::fprintf(stderr, "replay requires a journal FILE operand\n");
    return 2;
  }
  SnapshotStream stream(args.positionals.front());
  if (!stream.opened()) return 2;

  const bool verbose = args.has("verbose");
  std::size_t cycles = 0;
  std::size_t drifted = 0;
  while (auto snapshot = stream.next()) {
    const audit::ReplayDiff diff = audit::replay(*snapshot);
    if (diff.drifted) ++drifted;
    if (verbose || diff.drifted) {
      std::printf("cycle %zu (t=%.1fh): %s\n", cycles,
                  snapshot->when.seconds_value() / 3600.0,
                  diff.to_string().c_str());
    }
    ++cycles;
  }
  if (!stream.report_damage() && cycles == 0) return 2;
  if (verbose) {
    for (const audit::FailsafeEvent& event : stream.events()) {
      std::printf("  ladder t=%.1fh: %s -> %s (%s): %s\n",
                  event.when.seconds_value() / 3600.0,
                  audit::failsafe_mode_name(event.from_mode),
                  audit::failsafe_mode_name(event.to_mode),
                  audit::failsafe_action_name(event.action),
                  event.reason.c_str());
    }
  }
  std::printf("replayed %zu cycle(s): %zu drifted, %zu ladder event(s)\n",
              cycles, drifted, stream.events().size());
  return drifted == 0 ? 0 : 1;
}

int cmd_whatif(const Args& args) {
  if (args.positionals.empty()) {
    std::fprintf(stderr, "whatif requires a journal FILE operand\n");
    return 2;
  }

  std::vector<audit::Mutation> mutations;
  using Kind = audit::Mutation::Kind;
  auto iface_mutation = [&](const char* flag, Kind kind, double value = 0) {
    if (!args.has(flag)) return;
    audit::Mutation m;
    m.kind = kind;
    m.interface =
        telemetry::InterfaceId(static_cast<std::uint32_t>(args.num(flag, 0)));
    m.value = value;
    mutations.push_back(m);
  };
  iface_mutation("drain", Kind::kDrain);
  iface_mutation("undrain", Kind::kUndrain);
  if (args.has("cut-capacity")) {
    // --cut-capacity I --factor F: scale interface I's capacity by F.
    iface_mutation("cut-capacity", Kind::kScaleCapacity,
                   args.real("factor", 0.5));
  }
  if (args.has("scale-demand")) {
    mutations.push_back({Kind::kScaleDemand, {}, args.real("scale-demand", 1)});
  }
  if (args.has("threshold")) {
    mutations.push_back(
        {Kind::kOverloadThreshold, {}, args.real("threshold", 0.95)});
  }
  if (args.has("target")) {
    mutations.push_back(
        {Kind::kTargetUtilization, {}, args.real("target", 0.9)});
  }
  if (args.has("headroom")) {
    mutations.push_back(
        {Kind::kDetourHeadroom, {}, args.real("headroom", 0.95)});
  }
  if (args.has("max-overrides")) {
    mutations.push_back({Kind::kMaxOverrides, {},
                         static_cast<double>(args.num("max-overrides", 0))});
  }
  if (args.has("split")) {
    mutations.push_back({Kind::kAllowSplitting, {}, 1});
  }
  if (mutations.empty()) {
    std::fprintf(stderr,
                 "whatif requires at least one mutation flag: --drain I, "
                 "--undrain I, --cut-capacity I [--factor F], "
                 "--scale-demand F, --threshold T, --target T, --headroom H, "
                 "--max-overrides N, --split\n");
    return 2;
  }

  SnapshotStream stream(args.positionals.front());
  if (!stream.opened()) return 2;
  const bool one_cycle = args.has("cycle");
  const std::size_t wanted =
      one_cycle ? static_cast<std::size_t>(args.num("cycle", 0)) : 0;

  std::printf("what-if:");
  for (const audit::Mutation& m : mutations) {
    std::printf(" [%s]", m.to_string().c_str());
  }
  std::printf("\n");

  std::size_t cycles = 0;
  std::size_t index = 0;
  long override_delta_sum = 0;
  net::Bandwidth detour_before, detour_after, unresolved_before,
      unresolved_after;
  std::map<telemetry::InterfaceId, net::Bandwidth> peak_delta;
  bool interfaces_checked = false;
  while (auto snapshot = stream.next()) {
    if (!interfaces_checked) {
      // A typo'd interface id would otherwise report a plausible-looking
      // zero delta; reject it against the recording instead.
      for (const audit::Mutation& m : mutations) {
        using Kind = audit::Mutation::Kind;
        if (m.kind != Kind::kScaleCapacity && m.kind != Kind::kSetCapacity &&
            m.kind != Kind::kDrain && m.kind != Kind::kUndrain) {
          continue;
        }
        const bool known =
            std::any_of(snapshot->interfaces.begin(),
                        snapshot->interfaces.end(),
                        [&](const audit::InterfaceRecord& iface) {
                          return iface.id == m.interface;
                        });
        if (!known) {
          std::fprintf(stderr,
                       "eftool: interface %u is not in this recording\n",
                       m.interface.value());
          return 2;
        }
      }
      interfaces_checked = true;
    }
    if (one_cycle && index++ != wanted) continue;
    const audit::WhatIfReport report = audit::what_if(*snapshot, mutations);
    ++cycles;
    override_delta_sum += report.override_delta();
    detour_before += report.detoured(report.baseline);
    detour_after += report.detoured(report.mutated);
    unresolved_before += report.baseline.unresolved_overload;
    unresolved_after += report.mutated.unresolved_overload;
    for (const auto& [id, delta] : report.load_delta()) {
      if (std::abs(delta.bits_per_sec()) >
          std::abs(peak_delta[id].bits_per_sec())) {
        peak_delta[id] = delta;
      }
    }
    if (one_cycle || args.has("verbose")) {
      std::printf("  t=%.1fh: %s\n", snapshot->when.seconds_value() / 3600.0,
                  report.to_string().c_str());
    }
  }
  if (!stream.report_damage() && cycles == 0) return 2;
  if (cycles == 0) {
    std::fprintf(stderr, one_cycle ? "no such cycle in journal\n"
                                   : "journal holds no snapshots\n");
    return 2;
  }
  const double n = static_cast<double>(cycles);
  std::printf("counterfactual allocation delta over %zu cycle(s):\n", cycles);
  std::printf("  avg override delta: %+.2f per cycle\n",
              static_cast<double>(override_delta_sum) / n);
  std::printf("  avg detoured: %s -> %s per cycle\n",
              (detour_before / n).to_string().c_str(),
              (detour_after / n).to_string().c_str());
  std::printf("  avg unresolved overload: %s -> %s per cycle\n",
              (unresolved_before / n).to_string().c_str(),
              (unresolved_after / n).to_string().c_str());
  std::printf("  peak per-interface load delta:\n");
  for (const auto& [id, delta] : peak_delta) {
    std::printf("    iface %-4u %+.2fGbps\n", id.value(), delta.gbps_value());
  }
  return 0;
}

// --- live daemon: serve / feed ----------------------------------------

std::uint16_t port_opt(const Args& args, const std::string& key) {
  const long port = args.num(key, 0);
  if (port < 0 || port > 65535) die_bad_value(key, args.get(key, ""));
  return static_cast<std::uint16_t>(port);
}

/// Comma-separated port list, each in [1, 65535]; strict like every
/// other numeric flag (anything else exits 2).
std::vector<std::uint16_t> ports_list_opt(const Args& args,
                                          const std::string& key) {
  std::vector<std::uint16_t> ports;
  const std::string text = args.get(key, "");
  if (text.empty()) return ports;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    std::size_t consumed = 0;
    long port = 0;
    try {
      port = std::stol(item, &consumed);
    } catch (...) {
      die_bad_value(key, text);
    }
    if (consumed != item.size() || port < 1 || port > 65535) {
      die_bad_value(key, text);
    }
    ports.push_back(static_cast<std::uint16_t>(port));
    pos = comma + 1;
  }
  return ports;
}

/// Hold-time offer in seconds. 0 disables timers; 1 and 2 are the
/// RFC 4271 §4.2 unacceptable values every speaker here refuses, so
/// offering them is a flag error, not a protocol experiment.
std::uint16_t hold_secs_opt(const Args& args, const std::string& key,
                            long fallback) {
  const long secs = args.num(key, fallback);
  if (secs < 0 || secs > 65535 || secs == 1 || secs == 2) {
    die_bad_value(key, args.get(key, ""));
  }
  return static_cast<std::uint16_t>(secs);
}

std::uint32_t u32_opt(const Args& args, const std::string& key,
                      std::uint32_t fallback) {
  const long value = args.num(key, static_cast<long>(fallback));
  if (value < 0 || value > 0xffffffffL) die_bad_value(key, args.get(key, ""));
  return static_cast<std::uint32_t>(value);
}

/// Runs the efd daemon in the foreground until SIGINT/SIGTERM. Same
/// wiring as the standalone `efd` binary, reachable from the operator
/// CLI.
int cmd_serve(const Args& args) {
  // Block the shutdown signals before the service spawns its loop thread
  // so the loop's signalfd is their only consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  sigprocmask(SIG_BLOCK, &sigs, nullptr);

  const topology::World world = make_world(args);
  const std::size_t p = static_cast<std::size_t>(args.num("pop", 0));
  if (p >= world.pops().size()) {
    std::fprintf(stderr, "eftool serve: --pop %zu out of range (%zu PoPs)\n",
                 p, world.pops().size());
    return 2;
  }
  topology::Pop pop(world, p);

  service::EfdConfig config;
  config.bmp_port = port_opt(args, "bmp");
  config.sflow_port = port_opt(args, "sflow");
  config.http_port = port_opt(args, "http");
  config.controller.enforcement = args.has("inject")
                                      ? core::Enforcement::kBgpInjection
                                      : core::Enforcement::kShadow;
  config.controller.cycle_period = net::SimTime::seconds(
      static_cast<double>(args.num("cycle-secs", 30)));
  config.sflow_sample_rate =
      static_cast<std::uint32_t>(args.num("sample-rate", 10));
  config.real_time_cycles = args.has("real-time");
  // Sharded-cycle and decode-pipeline knobs: execution resources only,
  // never decision inputs (allocations are bitwise identical for every
  // value; see docs/SCALING.md).
  const long alloc_threads = args.num("threads", 1);
  if (alloc_threads < 0 ||
      alloc_threads > static_cast<long>(runtime::ThreadPool::kMaxThreads)) {
    die_bad_value("threads", args.get("threads", ""));
  }
  config.controller.alloc_threads = static_cast<unsigned>(alloc_threads);
  const long decode_threads = args.num("decode-threads", 0);
  if (decode_threads < 0 ||
      decode_threads > static_cast<long>(runtime::ThreadPool::kMaxThreads)) {
    die_bad_value("decode-threads", args.get("decode-threads", ""));
  }
  config.decode_threads = static_cast<unsigned>(decode_threads);
  apply_incremental_flags(args, config.controller);
  apply_failsafe_flags(args, config);
  apply_dataplane_flags(args, config.dataplane,
                        static_cast<std::uint64_t>(args.num("seed", 42)));
  config.announce_ports = ports_list_opt(args, "announce");
  config.announce_hold_secs = hold_secs_opt(args, "announce-hold-secs", 90);
  apply_audit_flags(args, config);
  apply_bgp_fault_flags(args, config,
                        static_cast<std::uint64_t>(args.num("seed", 42)));

  service::EfdService service(pop, config);
  service.shutdown_on_signals();
  service.start();
  std::printf("eftool serve: pop %s, %s enforcement\n", pop.name().c_str(),
              args.has("inject") ? "bgp-injection" : "shadow");
  if (config.failsafe.enabled) {
    std::printf(
        "eftool serve: failsafe armed (max-demand-age %gs, hold-ttl %gs, "
        "max-churn-frac %g)\n",
        config.failsafe.max_demand_age.seconds_value(),
        config.failsafe.hold_ttl.seconds_value(),
        config.controller.max_churn_frac);
  }
  if (!config.announce_ports.empty()) {
    std::printf(
        "eftool serve: announcing overrides to %zu peering router(s), "
        "hold %us\n",
        config.announce_ports.size(),
        static_cast<unsigned>(config.announce_hold_secs));
  }
  if (config.dataplane.enabled) {
    std::printf(
        "eftool serve: dataplane emulation on (queue %gms, %u slots, "
        "elephant frac %g)\n",
        config.dataplane.queue_depth_ms, config.dataplane.ecmp_slots,
        config.dataplane.flows.elephant_fraction);
  }
  if (config.audit.enabled) {
    std::printf(
        "eftool serve: enforcement audit on (every %u cycle(s), "
        "max %ju repair(s)/pass)\n",
        config.audit.interval_cycles,
        static_cast<std::uintmax_t>(config.audit.max_repairs));
  }
  if (!config.recovery_path.empty()) {
    std::printf("eftool serve: recovery snapshots -> %s%s\n",
                config.recovery_path.c_str(),
                config.recover ? " (warm restart requested)" : "");
  }
  std::printf(
      "eftool serve: bmp 127.0.0.1:%u  sflow 127.0.0.1:%u  http "
      "127.0.0.1:%u\n",
      service.bmp_port(), service.sflow_port(), service.http_port());
  std::fflush(stdout);
  service.wait();
  std::printf("eftool serve: stopped\n");
  return 0;
}

/// Foreground peering-router daemon: a BgpSpeaker behind a TCP listener
/// applying the PoP import policy, until SIGINT/SIGTERM.
int cmd_pr(const Args& args) {
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  sigprocmask(SIG_BLOCK, &sigs, nullptr);

  service::PeeringRouterService::Config config;
  config.bgp_port = port_opt(args, "port");
  const std::uint32_t local_as = u32_opt(args, "as", 65000);
  if (local_as == 0) die_bad_value("as", args.get("as", ""));
  config.local_as = bgp::AsNumber(local_as);
  config.peer_as = bgp::AsNumber(u32_opt(args, "peer-as", 0));
  config.router_id = bgp::RouterId(u32_opt(args, "router-id", 0x7f0000fe));
  config.hold_time_secs = hold_secs_opt(args, "hold-secs", 90);

  service::PeeringRouterService service(config);
  service.shutdown_on_signals();
  service.start();
  std::printf("eftool pr: bgp 127.0.0.1:%u  as %u  hold %us\n",
              service.bgp_port(), local_as,
              static_cast<unsigned>(config.hold_time_secs));
  std::fflush(stdout);
  service.wait();
  const service::PeeringRouterService::Snapshot snap = service.snapshot();
  std::printf(
      "eftool pr: stopped (%ju connection(s), %ju session(s) established, "
      "%ju hold expiration(s), %ju update(s), %ju prefix(es) held)\n",
      static_cast<std::uintmax_t>(snap.connections),
      static_cast<std::uintmax_t>(snap.sessions_established),
      static_cast<std::uintmax_t>(snap.hold_expirations),
      static_cast<std::uintmax_t>(snap.updates_received),
      static_cast<std::uintmax_t>(snap.prefixes));
  return 0;
}

/// Smoke-test client for `eftool pr`: dials the given peering routers,
/// announces a synthetic override set, lingers, withdraws, exits.
int cmd_announce(const Args& args) {
  const std::vector<std::uint16_t> ports = ports_list_opt(args, "ports");
  if (ports.empty()) {
    std::fprintf(stderr, "eftool announce: --ports P1[,P2...] is required\n");
    return 2;
  }
  const long count = args.num("count", 8);
  if (count < 1 || count > 65536) die_bad_value("count", args.get("count", ""));
  const double linger = nonneg_real(args, "linger-secs", 1.0);
  const std::uint32_t local_pref = u32_opt(args, "local-pref", 1000);
  if (local_pref == 0) {
    die_bad_value("local-pref", args.get("local-pref", ""));
  }
  const std::uint32_t local_as = u32_opt(args, "as", 65000);
  if (local_as == 0) die_bad_value("as", args.get("as", ""));

  service::Announcer::Config config;
  config.ports = ports;
  config.local_as = bgp::AsNumber(local_as);
  config.peer_as = bgp::AsNumber(u32_opt(args, "peer-as", 0));
  config.router_id = bgp::RouterId(u32_opt(args, "router-id", 0xefd00001));
  config.hold_time_secs = hold_secs_opt(args, "hold-secs", 90);
  config.override_local_pref = local_pref;

  io::EventLoop loop;
  service::Announcer announcer(loop, config);
  announcer.set_event_handler(
      [](std::size_t peer, bool up, const std::string& reason) {
        std::printf("eftool announce: peer %zu %s (%s)\n", peer,
                    up ? "up" : "down", reason.c_str());
        std::fflush(stdout);
      });
  std::thread runner([&loop] { loop.run(); });
  loop.run_sync([&announcer] { announcer.connect(); });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (announcer.stats().sessions_established < ports.size()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr,
                   "eftool announce: only %ju of %zu session(s) "
                   "established in 15s\n",
                   static_cast<std::uintmax_t>(
                       announcer.stats().sessions_established),
                   ports.size());
      loop.stop();
      runner.join();
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Synthetic overrides: one /24 per prefix, detour into transit — the
  // same shape the controller emits, minus the real allocation behind it.
  std::map<net::Prefix, core::Override> overrides;
  for (long i = 0; i < count; ++i) {
    core::Override entry;
    const std::uint32_t block =
        0x0a000000u + (static_cast<std::uint32_t>(i) << 8);
    entry.prefix = net::Prefix(net::IpAddr::v4(block), 24);
    entry.rate = net::Bandwidth::gbps(1.0);
    entry.next_hop = net::IpAddr::v4(0xC0000201);  // 192.0.2.1
    entry.as_path = bgp::AsPath{bgp::AsNumber(64512)};
    entry.target_type = bgp::PeerType::kTransit;
    overrides[entry.prefix] = entry;
  }
  loop.run_sync([&announcer, &overrides] {
    announcer.announce(overrides, bgp::wall_now());
  });
  std::printf("eftool announce: %ld prefix(es) announced to %zu peer(s)\n",
              count, ports.size());
  std::fflush(stdout);

  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(linger * 1000.0)));
  loop.run_sync([&announcer] { announcer.withdraw_all(bgp::wall_now()); });
  // Give the withdraw UPDATEs a moment to drain before the sockets close.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const service::Announcer::Stats stats = announcer.stats();
  loop.stop();
  runner.join();
  std::printf(
      "eftool announce: done (%ju update(s) sent, %ju withdraw message(s), "
      "%ju redial(s))\n",
      static_cast<std::uintmax_t>(stats.updates_sent),
      static_cast<std::uintmax_t>(stats.withdraw_msgs),
      static_cast<std::uintmax_t>(stats.redials));
  return 0;
}

/// Blocking GET against the daemon's HTTP port; returns the body, empty
/// on any failure.
std::string http_get_body(std::uint16_t port, const std::string& path) {
  io::Fd conn = io::connect_tcp(port);
  if (!conn.valid()) return {};
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: efd\r\nConnection: close\r\n\r\n";
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(request.data()), request.size());
  if (!io::send_all(conn.get(), bytes)) return {};
  std::string response;
  for (;;) {
    const std::vector<std::uint8_t> chunk = io::recv_some(conn.get());
    if (chunk.empty()) break;
    response.append(chunk.begin(), chunk.end());
  }
  const std::size_t body = response.find("\r\n\r\n");
  return body == std::string::npos ? std::string() : response.substr(body + 4);
}

/// Value of one `name value` line from /metrics; -1 when absent.
double metric_value(const std::string& body, const std::string& name) {
  const std::string want = name + " ";
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    if (body.compare(pos, want.size(), want) == 0) {
      return std::atof(body.c_str() + pos + want.size());
    }
    pos = eol + 1;
  }
  return -1.0;
}

/// Polls /metrics until `name` reaches `target` — the feed's flow
/// control, so a slow daemon is waited for instead of flooded.
bool wait_for_metric(std::uint16_t http_port, const std::string& name,
                     double target) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  for (;;) {
    if (metric_value(http_get_body(http_port, "/metrics"), name) >= target) {
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr,
                   "eftool feed: daemon did not reach %s >= %g in 15s\n",
                   name.c_str(), target);
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

/// Sockets into a running daemon, with running totals for flow control.
struct DaemonFeed {
  io::Fd bmp;
  io::Fd sflow;
  std::uint16_t sflow_port = 0;
  std::uint64_t bmp_bytes = 0;
  std::uint64_t windows = 0;

  bool send_bmp(const bmp::BmpMessage& msg) {
    const std::vector<std::uint8_t> bytes = bmp::encode(msg);
    if (!io::send_all(bmp.get(), bytes)) {
      std::fprintf(stderr, "eftool feed: BMP send failed\n");
      return false;
    }
    bmp_bytes += bytes.size();
    return true;
  }

  bool send_records(
      std::span<const telemetry::wire::SflowRecord> records) {
    if (!sflow.valid() || records.empty()) return true;
    const std::vector<std::uint8_t> datagram =
        telemetry::wire::encode_datagram(records);
    if (!io::UdpSocket::send_to(sflow.get(), sflow_port, datagram)) {
      std::fprintf(stderr, "eftool feed: sFlow send failed\n");
      return false;
    }
    return true;
  }
};

/// Synthesizes the per-peer header for a recorded route. The snapshot
/// keeps the neighbor's identity on every route, and neighbor router IDs
/// are unique per peering, so the ID doubles as a stable peer address.
bmp::PerPeerHeader feed_peer_header(const bgp::Route& route) {
  bmp::PerPeerHeader header;
  header.peer_addr = net::IpAddr::v4(route.neighbor_router_id.value());
  header.peer_as = route.neighbor_as.value();
  header.peer_bgp_id = route.neighbor_router_id.value();
  header.timestamp = route.learned_at;
  return header;
}

/// Streams a cycle-snapshot journal into the daemon: per snapshot, the
/// route-set delta as BMP announcements/withdrawals, then the demand
/// table and a window-close marker over UDP, then a /metrics barrier.
int feed_journal(const Args& args, std::vector<std::uint8_t> bytes,
                 DaemonFeed& feed, std::uint16_t http_port) {
  using RouteKey = std::pair<std::uint32_t, net::Prefix>;  // (bgp_id, pfx)
  std::map<RouteKey, bgp::Route> announced;
  std::set<std::uint32_t> peers_up;

  audit::JournalReader reader(std::move(bytes));
  const long limit = args.num("limit", -1);
  long fed = 0;
  while (auto record = reader.next()) {
    if (limit >= 0 && fed >= limit) break;
    const auto snapshot = audit::CycleSnapshot::deserialize(*record);
    if (!snapshot) {
      std::fprintf(stderr, "eftool feed: skipping undecodable snapshot\n");
      continue;
    }

    std::map<RouteKey, const bgp::Route*> current;
    for (const bgp::Route& route : snapshot->routes) {
      current[{route.neighbor_router_id.value(), route.prefix}] = &route;
    }
    // Withdraw what disappeared since the previous snapshot...
    for (const auto& [key, route] : announced) {
      if (current.contains(key)) continue;
      bmp::RouteMonitoringMsg withdraw;
      withdraw.peer = feed_peer_header(route);
      withdraw.peer.timestamp = snapshot->when;
      withdraw.update.withdrawn.push_back(key.second);
      if (!feed.send_bmp(withdraw)) return 1;
    }
    // ...then (re-)announce everything new or changed.
    for (const auto& [key, route] : current) {
      const auto prev = announced.find(key);
      if (prev != announced.end() && prev->second == *route) continue;
      if (peers_up.insert(key.first).second) {
        bmp::PeerUpMsg up;
        up.peer = feed_peer_header(*route);
        up.local_addr = net::IpAddr::v4(0x7F000001);
        up.information.push_back(
            std::string("peer-type=") + bgp::peer_type_name(route->peer_type));
        if (!feed.send_bmp(up)) return 1;
      }
      bmp::RouteMonitoringMsg announce;
      announce.peer = feed_peer_header(*route);
      announce.update.attrs = route->attrs;
      announce.update.nlri.push_back(route->prefix);
      if (!feed.send_bmp(announce)) return 1;
    }
    announced.clear();
    for (const auto& [key, route] : current) announced.emplace(key, *route);

    if (feed.sflow.valid()) {
      std::vector<telemetry::wire::SflowRecord> records;
      for (const audit::DemandRecord& demand : snapshot->demand) {
        records.emplace_back(
            telemetry::wire::DemandRate{demand.prefix, demand.rate});
        if (records.size() >= 64) {
          if (!feed.send_records(records)) return 1;
          records.clear();
        }
      }
      records.emplace_back(
          telemetry::wire::WindowClose{snapshot->when, snapshot->when});
      if (!feed.send_records(records)) return 1;
      ++feed.windows;
    }

    if (http_port != 0) {
      if (!wait_for_metric(http_port, "efd_bmp_bytes_total",
                           static_cast<double>(feed.bmp_bytes)) ||
          !wait_for_metric(http_port, "efd_windows_closed_total",
                           static_cast<double>(feed.windows))) {
        return 1;
      }
    }
    ++fed;
  }

  if (reader.stats().corrupt_skipped > 0 || reader.stats().truncated_tail) {
    std::fprintf(stderr, "eftool feed: journal damage: %zu frame(s) skipped%s\n",
                 reader.stats().corrupt_skipped,
                 reader.stats().truncated_tail ? ", truncated tail" : "");
  }
  std::printf("fed %ld snapshot(s): %llu BMP bytes, %llu window(s)\n", fed,
              static_cast<unsigned long long>(feed.bmp_bytes),
              static_cast<unsigned long long>(feed.windows));
  return 0;
}

/// Streams an MRT TABLE_DUMP_V2 image as a one-shot BMP replay (peer ups
/// + announcements; MRT carries no demand, so no window marker).
int feed_mrt(const std::vector<std::uint8_t>& bytes, DaemonFeed& feed,
             std::uint16_t http_port) {
  const auto dump = bgp::mrt::decode(bytes);
  if (!dump) {
    std::fprintf(stderr, "eftool feed: not a journal and not MRT\n");
    return 2;
  }
  for (const bgp::mrt::PeerEntry& peer : dump->peers) {
    bmp::PeerUpMsg up;
    up.peer.peer_addr = peer.address;
    up.peer.peer_as = peer.as.value();
    up.peer.peer_bgp_id = peer.bgp_id.value();
    up.local_addr = net::IpAddr::v4(0x7F000001);
    if (!feed.send_bmp(up)) return 1;
  }
  std::size_t routes = 0;
  for (const bgp::mrt::RibRecord& record : dump->records) {
    for (const bgp::mrt::RibEntry& entry : record.entries) {
      if (entry.peer_index >= dump->peers.size()) continue;
      const bgp::mrt::PeerEntry& peer = dump->peers[entry.peer_index];
      bmp::RouteMonitoringMsg announce;
      announce.peer.peer_addr = peer.address;
      announce.peer.peer_as = peer.as.value();
      announce.peer.peer_bgp_id = peer.bgp_id.value();
      announce.peer.timestamp = entry.originated;
      announce.update.attrs = entry.attrs;
      announce.update.nlri.push_back(record.prefix);
      if (!feed.send_bmp(announce)) return 1;
      ++routes;
    }
  }
  if (http_port != 0 &&
      !wait_for_metric(http_port, "efd_bmp_bytes_total",
                       static_cast<double>(feed.bmp_bytes))) {
    return 1;
  }
  std::printf("fed MRT dump: %zu peer(s), %zu route(s), %llu BMP bytes\n",
              dump->peers.size(), routes,
              static_cast<unsigned long long>(feed.bmp_bytes));
  return 0;
}

int cmd_feed(const Args& args) {
  if (args.positionals.empty()) {
    std::fprintf(stderr, "eftool feed: missing FILE operand\n");
    return 2;
  }
  const std::string path = args.positionals.front();
  const std::uint16_t bmp_port = port_opt(args, "bmp");
  const std::uint16_t sflow_port = port_opt(args, "sflow");
  const std::uint16_t http_port = port_opt(args, "http");
  if (bmp_port == 0) {
    std::fprintf(stderr, "eftool feed: --bmp PORT is required\n");
    return 2;
  }

  auto bytes = audit::JournalReader::load(path);
  if (!bytes) {
    std::fprintf(stderr, "eftool feed: cannot read %s\n", path.c_str());
    return 2;
  }

  const long retries = args.num("retry", 0);
  if (retries < 0) die_bad_value("retry", args.get("retry", ""));

  DaemonFeed feed;
  if (retries == 0) {
    feed.bmp = io::connect_tcp(bmp_port);
  } else {
    // Daemon may still be starting: redial on an exponential schedule
    // (100ms base, 2s cap) until it answers or the budget is spent.
    io::EventLoop loop;
    io::BackoffConfig schedule;
    schedule.base = 100;  // milliseconds
    schedule.cap = 2000;
    schedule.max_retries = static_cast<std::uint32_t>(retries);
    bool finished = false;
    std::uint32_t dials = 0;
    io::Reconnector redial(
        loop, schedule,
        [&] {
          ++dials;
          feed.bmp = io::connect_tcp(bmp_port);
          return feed.bmp.valid();
        },
        [&](bool) { finished = true; });
    redial.start();
    while (!finished) loop.poll_once(std::chrono::milliseconds(100));
    if (feed.bmp.valid() && dials > 1) {
      std::fprintf(stderr, "eftool feed: connected on dial %u\n", dials);
    }
  }
  if (!feed.bmp.valid()) {
    std::fprintf(stderr, "eftool feed: cannot connect to BMP port %u\n",
                 bmp_port);
    return 1;
  }
  if (sflow_port != 0) {
    feed.sflow = io::connect_udp(sflow_port);
    feed.sflow_port = sflow_port;
    if (!feed.sflow.valid()) {
      std::fprintf(stderr, "eftool feed: cannot open sFlow socket\n");
      return 1;
    }
  }

  // The daemon books routes under the sysName announced here; everything
  // this feed sends lands on one synthetic "router".
  bmp::InitiationMsg init;
  init.sys_name = "eftool-feed";
  init.sys_descr = "eftool feed " + path;
  if (!feed.send_bmp(init)) return 1;

  // Dispatch on the journal file magic; anything else is tried as MRT.
  audit::JournalReader probe(*bytes);
  if (!probe.stats().bad_header) {
    return feed_journal(args, std::move(*bytes), feed, http_port);
  }
  return feed_mrt(*bytes, feed, http_port);
}

// --- chaos: deterministic fault-injection harness ---------------------

/// Parses --blackout A:B into a predicate over 0-based step indices
/// ([A,B) drops that step's demand records while markers keep flowing).
std::function<bool(std::uint64_t)> blackout_pred(const Args& args) {
  if (!args.has("blackout")) return nullptr;
  const std::string spec = args.get("blackout", "");
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) die_bad_value("blackout", spec);
  try {
    std::size_t consumed = 0;
    const long from = std::stol(spec.substr(0, colon), &consumed);
    if (consumed != colon) die_bad_value("blackout", spec);
    const std::string rest = spec.substr(colon + 1);
    const long to = std::stol(rest, &consumed);
    if (consumed != rest.size()) die_bad_value("blackout", spec);
    if (from < 0 || to < from) die_bad_value("blackout", spec);
    return [from, to](std::uint64_t step) {
      return step >= static_cast<std::uint64_t>(from) &&
             step < static_cast<std::uint64_t>(to);
    };
  } catch (const std::exception&) {
    die_bad_value("blackout", spec);
  }
}

/// Everything one chaos run produced that the --verify replay must
/// reproduce (digests) or the operator wants summarized (the rest).
struct ChaosOutcome {
  std::vector<service::EfdService::CycleDigest> digests;
  service::EfdService::IngestSnapshot ingest;
  io::FaultInjector::Stats faults;
  std::uint64_t router_downs = 0;
  std::uint64_t reconnect_attempts = 0;
  std::uint64_t reconnects_ok = 0;
  std::uint64_t demand_dropped = 0;
  std::string metrics;
  /// BGP enforcement leg (--bgp-faults / --audit): the in-process
  /// peering router's final state, for the summary line.
  bool bgp_leg = false;
  bool bgp_drained = true;
  service::PeeringRouterService::Snapshot pr;
};

/// One full chaos scenario: a simulation feeds a failsafe-armed shadow
/// daemon over loopback sockets through a seeded fault injector, in
/// lockstep. Pure function of the flags — calling it twice must yield
/// identical digests, which is exactly what --verify asserts.
ChaosOutcome run_chaos_once(const Args& args) {
  const topology::World world = make_world(args);
  const std::size_t p = static_cast<std::size_t>(args.num("pop", 0));
  if (p >= world.pops().size()) {
    std::fprintf(stderr, "eftool chaos: --pop %zu out of range (%zu PoPs)\n",
                 p, world.pops().size());
    std::exit(2);
  }
  topology::Pop pop(world, p);

  const long steps = args.num("steps", 12);
  if (steps <= 0) die_bad_value("steps", args.get("steps", ""));

  sim::SimulationConfig sim_config;
  sim_config.step = net::SimTime::seconds(60);
  sim_config.duration = net::SimTime::seconds(60.0 * static_cast<double>(steps));
  sim_config.controller.cycle_period = sim_config.step;
  // Aggressive thresholds so cycles actually steer traffic — a ladder
  // guarding an always-empty override set would demonstrate nothing.
  sim_config.controller.allocator.overload_threshold = 0.5;
  sim_config.controller.allocator.target_utilization = 0.45;

  service::EfdConfig daemon_config;
  daemon_config.controller = sim_config.controller;
  daemon_config.controller.enforcement = core::Enforcement::kShadow;
  daemon_config.failsafe.enabled = true;
  apply_failsafe_flags(args, daemon_config);

  // Audit knobs are validated even when the BGP leg stays off — a
  // typo'd --audit-interval must fail the invocation, not be ignored.
  apply_audit_flags(args, daemon_config);

  // BGP enforcement + closed-loop audit leg: with --bgp-faults or any
  // --audit* knob, the shadow daemon additionally enforces each cycle's
  // set over a real TCP BGP session to an in-process peering router —
  // faults injected on the UPDATE stream — and each cycle's auditor
  // pass reads the router's Adj-RIB-In back and repairs divergence.
  const bool bgp_leg = args.has("bgp-faults") || daemon_config.audit.enabled;
  std::unique_ptr<service::PeeringRouterService> prd;
  if (bgp_leg) {
    service::PeeringRouterService::Config pr_config;
    pr_config.bgp_port = 0;
    pr_config.local_as = world.config().local_as;
    prd = std::make_unique<service::PeeringRouterService>(pr_config);
    prd->start();
    daemon_config.announce_ports = {prd->bgp_port()};
    daemon_config.audit.enabled = true;
    service::PeeringRouterService* prd_raw = prd.get();
    // Safe across loops: routes() hops onto prd's own loop via
    // run_sync, called here from efd's loop thread.
    daemon_config.audit_read_back = [prd_raw] { return prd_raw->routes(); };
    apply_bgp_fault_flags(
        args, daemon_config,
        static_cast<std::uint64_t>(args.num("fault-seed", 1)));
  }

  sim::Simulation sim(pop, sim_config);
  service::EfdService daemon(pop, daemon_config);
  daemon.start();

  sim::LiveFeed::Config feed_config;
  feed_config.bmp_port = daemon.bmp_port();
  feed_config.sflow_port = daemon.sflow_port();
  io::FaultConfig faults;
  faults.seed = static_cast<std::uint64_t>(args.num("fault-seed", 1));
  faults.drop = unit_real(args, "drop", 0.0);
  faults.duplicate = unit_real(args, "dup", 0.0);
  faults.corrupt_body = unit_real(args, "corrupt", 0.0);
  faults.corrupt_header = unit_real(args, "poison", 0.0);
  faults.truncate = unit_real(args, "truncate", 0.0);
  faults.disconnect = unit_real(args, "disconnect", 0.0);
  feed_config.faults = faults;
  io::BackoffConfig redial;
  redial.base = 1;  // simulation steps
  redial.cap = 4;
  redial.seed = faults.seed;
  feed_config.reconnect = redial;
  feed_config.drop_demand = blackout_pred(args);

  constexpr std::chrono::milliseconds kBarrier(15000);
  sim::LiveFeed::Sync sync;
  sync.bmp_bytes = [&daemon](std::uint64_t n) {
    return daemon.wait_for_bmp_bytes(n, kBarrier);
  };
  sync.datagrams = [&daemon](std::uint64_t n) {
    return daemon.wait_for_datagrams(n, kBarrier);
  };
  sync.windows = [&daemon](std::uint64_t n) {
    return daemon.wait_for_windows(n, kBarrier);
  };
  sync.disconnects = [&daemon](std::uint64_t n) {
    return daemon.wait_for_disconnects(n, kBarrier);
  };

  // Per-step BGP drain barrier. The announcer's post-fault send counter
  // and the peering router's receive counter must agree — and the
  // session must be back up with no flap outstanding — before the next
  // step runs, or the next audit's read-back would race the wire and
  // --verify's bitwise replay would be meaningless. Resyncs after a
  // flap keep moving the target, hence the stable-target loop.
  auto drain_bgp = [&](std::chrono::milliseconds timeout) {
    if (!prd) return true;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::uint64_t target = daemon.ingest().bgp_updates_sent;
    for (;;) {
      const service::EfdService::IngestSnapshot snap = daemon.ingest();
      const service::PeeringRouterService::Snapshot pr = prd->snapshot();
      if (snap.bgp_updates_sent == target &&
          pr.updates_received >= target &&
          snap.bgp_session_drops >= snap.bgp_faults_flapped &&
          snap.bgp_sessions_established == 1) {
        return true;
      }
      target = snap.bgp_updates_sent;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  sim::LiveFeed feed(sim, feed_config, sync);
  feed.connect();
  bool drained = drain_bgp(kBarrier);  // initial session establishment
  while (feed.step()) {
    if (!drain_bgp(kBarrier)) drained = false;
  }

  ChaosOutcome out;
  out.metrics = http_get_body(daemon.http_port(), "/metrics");
  out.digests = daemon.digests();
  out.ingest = daemon.ingest();
  out.faults = feed.injector()->stats();
  out.router_downs = feed.router_downs();
  out.reconnect_attempts = feed.reconnect_attempts();
  out.reconnects_ok = feed.reconnects_ok();
  out.demand_dropped = feed.demand_records_dropped();
  out.bgp_leg = bgp_leg;
  out.bgp_drained = drained;
  if (prd) out.pr = prd->snapshot();
  daemon.stop();
  if (prd) prd->stop();
  return out;
}

int cmd_chaos(const Args& args) {
  const ChaosOutcome run = run_chaos_once(args);

  if (args.has("metrics-out")) {
    const std::string path = args.get("metrics-out", "");
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    out << run.metrics;
  }

  if (args.has("verbose")) {
    for (std::size_t i = 0; i < run.digests.size(); ++i) {
      const service::EfdService::CycleDigest& digest = run.digests[i];
      std::printf("  cycle %2zu t=%5.0fs %-14s %-8s %zu override(s)\n", i,
                  digest.when.seconds_value(),
                  audit::failsafe_mode_name(digest.mode),
                  audit::failsafe_action_name(digest.action),
                  digest.overrides.size());
    }
  }

  std::printf(
      "chaos: %zu cycle(s); ladder holds %llu, fail-statics %llu, "
      "recoveries %llu, transitions %llu\n",
      run.digests.size(),
      static_cast<unsigned long long>(run.ingest.failsafe_holds),
      static_cast<unsigned long long>(run.ingest.failsafe_fail_statics),
      static_cast<unsigned long long>(run.ingest.failsafe_recoveries),
      static_cast<unsigned long long>(run.ingest.failsafe_transitions));
  std::printf(
      "  faults: %llu delivered, %llu dropped, %llu duplicated, "
      "%llu corrupted, %llu truncated, %llu disconnects\n",
      static_cast<unsigned long long>(run.faults.delivered),
      static_cast<unsigned long long>(run.faults.dropped),
      static_cast<unsigned long long>(run.faults.duplicated),
      static_cast<unsigned long long>(run.faults.corrupted),
      static_cast<unsigned long long>(run.faults.truncated),
      static_cast<unsigned long long>(run.faults.disconnects));
  std::printf(
      "  feed: %llu router down(s), %llu redial(s) (%llu ok), "
      "%llu demand record(s) blacked out\n",
      static_cast<unsigned long long>(run.router_downs),
      static_cast<unsigned long long>(run.reconnect_attempts),
      static_cast<unsigned long long>(run.reconnects_ok),
      static_cast<unsigned long long>(run.demand_dropped));
  if (run.bgp_leg) {
    std::printf(
        "  bgp: %llu update(s) sent (%llu dropped, %llu duplicated, "
        "%llu withdraw(s) swallowed, %llu flap(s)), router holds %llu "
        "prefix(es)%s\n",
        static_cast<unsigned long long>(run.ingest.bgp_updates_sent),
        static_cast<unsigned long long>(run.ingest.bgp_faults_dropped),
        static_cast<unsigned long long>(run.ingest.bgp_faults_duplicated),
        static_cast<unsigned long long>(run.ingest.bgp_withdraws_swallowed),
        static_cast<unsigned long long>(run.ingest.bgp_faults_flapped),
        static_cast<unsigned long long>(run.pr.prefixes),
        run.bgp_drained ? "" : " [DRAIN TIMEOUT]");
    std::printf(
        "  audit: %llu run(s), %llu divergent (missing %llu, extra %llu, "
        "wrong-attrs %llu), %llu repair(s), streak %llu\n",
        static_cast<unsigned long long>(run.ingest.audit_runs),
        static_cast<unsigned long long>(run.ingest.audit_divergent),
        static_cast<unsigned long long>(run.ingest.audit_missing),
        static_cast<unsigned long long>(run.ingest.audit_extra),
        static_cast<unsigned long long>(run.ingest.audit_wrong_attrs),
        static_cast<unsigned long long>(run.ingest.audit_repairs_announce +
                                        run.ingest.audit_repairs_withdraw),
        static_cast<unsigned long long>(run.ingest.audit_divergent_streak));
    if (!run.bgp_drained) {
      std::fprintf(stderr, "chaos: FAILED — BGP drain barrier timed out\n");
      return 1;
    }
  }

  if (!args.has("verify")) return 0;

  const ChaosOutcome replay = run_chaos_once(args);
  if (replay.digests.size() != run.digests.size()) {
    std::fprintf(stderr,
                 "verify: FAILED — %zu cycle(s) vs %zu on replay\n",
                 run.digests.size(), replay.digests.size());
    return 1;
  }
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < run.digests.size(); ++i) {
    const service::EfdService::CycleDigest& a = run.digests[i];
    const service::EfdService::CycleDigest& b = replay.digests[i];
    if (a.when == b.when && a.mode == b.mode && a.action == b.action &&
        a.overrides == b.overrides && a.audit_ran == b.audit_ran &&
        a.audit_missing == b.audit_missing &&
        a.audit_extra == b.audit_extra &&
        a.audit_wrong_attrs == b.audit_wrong_attrs &&
        a.audit_repaired == b.audit_repaired &&
        a.audit_divergent_streak == b.audit_divergent_streak) {
      continue;
    }
    ++mismatches;
    std::fprintf(stderr,
                 "verify: cycle %zu diverged (%s/%zu vs %s/%zu)\n", i,
                 audit::failsafe_mode_name(a.mode), a.overrides.size(),
                 audit::failsafe_mode_name(b.mode), b.overrides.size());
  }
  if (mismatches > 0) {
    std::fprintf(stderr, "verify: FAILED — %zu cycle(s) diverged\n",
                 mismatches);
    return 1;
  }
  std::printf("verify: replay identical (%zu cycle(s), seed %llu)\n",
              run.digests.size(),
              static_cast<unsigned long long>(args.num("fault-seed", 1)));
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: eftool <command> [options]\n"
      "  world      [--clients N] [--pops N] [--seed S]\n"
      "  interfaces --pop K\n"
      "  rib        --pop K [--prefix P] [--limit N]\n"
      "  cycle      --pop K [--hour H] [--split]\n"
      "  run        --pop K [--hours H] [--no-controller] [--flaps R]\n"
      "             [--dataplane] [--dp-queue-ms MS] [--dp-slots N]\n"
      "             [--dp-wcmp N] [--dp-elephant-frac F]\n"
      "             (--dataplane: flow-level emulation with measured\n"
      "              drops, queue delay, and reorder events)\n"
      "  fleet      [--hours H] [--no-controller] [--threads N]\n"
      "             (--threads: 0 = one per hardware thread, 1 = serial;\n"
      "              output is identical for every N)\n"
      "  mrt        --pop K --out FILE\n"
      "  record     --pop K [--hours H] [--sflow] [--flaps R]\n"
      "             [--dataplane] --out FILE\n"
      "  record     --fleet [--hours H] [--threads N] --out FILE\n"
      "             (one journal per PoP: FILE.popK.efj)\n"
      "  replay     FILE [--verbose]\n"
      "  whatif     FILE [--cycle N] --drain I | --undrain I |\n"
      "             --cut-capacity I [--factor F] | --scale-demand F |\n"
      "             --threshold T | --target T | --headroom H |\n"
      "             --max-overrides N | --split\n"
      "  serve      [--pop K] [--bmp P] [--sflow P] [--http P] [--inject]\n"
      "             [--real-time] [--cycle-secs S] [--sample-rate N]\n"
      "             [--threads N] [--decode-threads N]\n"
      "             [--incremental[=FRAC]]\n"
      "             (--threads: allocation-cycle workers, 1 = serial,\n"
      "              0 = one per hardware thread, decisions identical;\n"
      "              --decode-threads: BMP decode pool, 0 = inline;\n"
      "              --incremental: delta allocation cycles, FRAC =\n"
      "              dirty-fraction fallback ceiling in [0,1])\n"
      "             [--failsafe] [--max-demand-age SECS] [--hold-ttl SECS]\n"
      "             [--max-churn-frac F] [--journal FILE]\n"
      "             [--announce P1[,P2...]] [--announce-hold-secs S]\n"
      "             [--audit] [--audit-interval N] [--audit-max-repairs N]\n"
      "             [--recovery-file FILE] [--recover]\n"
      "             [--bgp-faults drop=R,dup=R,swallow=R,flap=N]\n"
      "             [--dataplane] [--dp-queue-ms MS] [--dp-slots N]\n"
      "             [--dp-elephant-frac F]\n"
      "             (foreground efd daemon; port 0 = ephemeral, printed;\n"
      "              any failsafe threshold flag arms the ladder;\n"
      "              --announce enforces overrides over BGP/TCP;\n"
      "              --audit closes the loop against the router read-back;\n"
      "              --recovery-file + --recover = crash-safe warm restart)\n"
      "  pr         [--port P] [--as N] [--peer-as N] [--router-id N]\n"
      "             [--hold-secs S]\n"
      "             (foreground peering router: accepts BGP sessions,\n"
      "              applies the PoP import policy; a silent announcer\n"
      "              is flushed when the hold timer expires)\n"
      "  announce   --ports P1[,P2...] [--as N] [--peer-as N]\n"
      "             [--router-id N] [--hold-secs S] [--count N]\n"
      "             [--local-pref L] [--linger-secs S]\n"
      "             (dial peering routers, announce synthetic overrides,\n"
      "              linger, withdraw, exit)\n"
      "  feed       FILE --bmp P [--sflow P] [--http P] [--limit N]\n"
      "             [--retry N]\n"
      "             (stream a .efj cycle journal or MRT dump into a\n"
      "              running daemon; --http enables flow control,\n"
      "              --retry redials a daemon that is still starting)\n"
      "  chaos      [--steps N] [--fault-seed S] [--drop R] [--dup R]\n"
      "             [--corrupt R] [--poison R] [--truncate R]\n"
      "             [--disconnect R] [--blackout A:B] [--verify]\n"
      "             [--bgp-faults drop=R,dup=R,swallow=R,flap=N]\n"
      "             [--audit] [--audit-interval N] [--audit-max-repairs N]\n"
      "             [--max-demand-age SECS] [--hold-ttl SECS]\n"
      "             [--max-churn-frac F] [--journal FILE]\n"
      "             [--metrics-out FILE] [--verbose]\n"
      "             (seeded fault injection against a failsafe-armed\n"
      "              shadow daemon; --verify replays the scenario and\n"
      "              demands bitwise-identical decisions; --bgp-faults\n"
      "              adds a live BGP enforcement leg to an in-process\n"
      "              peering router with the closed-loop audit armed)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.command == "world") return cmd_world(args);
  if (args.command == "interfaces") return cmd_interfaces(args);
  if (args.command == "rib") return cmd_rib(args);
  if (args.command == "cycle") return cmd_cycle(args);
  if (args.command == "run") return cmd_run(args);
  if (args.command == "fleet") return cmd_fleet(args);
  if (args.command == "mrt") return cmd_mrt(args);
  if (args.command == "record") return cmd_record(args);
  if (args.command == "replay") return cmd_replay(args);
  if (args.command == "whatif") return cmd_whatif(args);
  if (args.command == "serve") return cmd_serve(args);
  if (args.command == "pr") return cmd_pr(args);
  if (args.command == "announce") return cmd_announce(args);
  if (args.command == "feed") return cmd_feed(args);
  if (args.command == "chaos") return cmd_chaos(args);
  if (!args.command.empty()) {
    std::fprintf(stderr, "eftool: unknown command '%s'\n",
                 args.command.c_str());
  }
  return usage();
}
