// eftool — operator CLI for the edgefabric library.
//
//   eftool world      [--clients N] [--pops N] [--seed S]
//   eftool interfaces --pop K
//   eftool rib        --pop K [--prefix P] [--limit N]
//   eftool cycle      --pop K [--hour H] [--split]
//   eftool run        --pop K [--hours H] [--no-controller] [--flaps R]
//   eftool mrt        --pop K --out FILE
//
// Everything is generated/deterministic: the same flags print the same
// bytes, which makes eftool output diff-able in change reviews.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "analysis/metrics.h"
#include "bgp/mrt.h"
#include "core/controller.h"
#include "sim/fleet.h"
#include "sim/simulation.h"
#include "workload/demand.h"

namespace {

using namespace ef;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.contains(key); }
  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  long num(const std::string& key, long fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stol(it->second);
  }
  double real(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "1";  // boolean flag
    }
  }
  return args;
}

topology::World make_world(const Args& args) {
  topology::WorldConfig config;
  config.num_clients = static_cast<int>(args.num("clients", 56));
  config.num_pops = static_cast<int>(args.num("pops", 4));
  config.seed = static_cast<std::uint64_t>(args.num("seed", 42));
  return topology::World::generate(config);
}

int cmd_world(const Args& args) {
  const topology::World world = make_world(args);
  std::printf("world: %zu clients, %zu PoPs (seed %llu)\n\n",
              world.clients().size(), world.pops().size(),
              static_cast<unsigned long long>(world.config().seed));
  analysis::TablePrinter clients({"client", "weight", "prefixes", "rtt-base"},
                                 {10, 10, 10, 10});
  clients.print_header();
  for (std::size_t c = 0; c < std::min<std::size_t>(10, world.clients().size());
       ++c) {
    const topology::ClientAs& client = world.clients()[c];
    clients.print_row({"AS" + std::to_string(client.as.value()),
                       analysis::TablePrinter::pct(client.weight, 1),
                       std::to_string(client.prefixes.size()),
                       analysis::TablePrinter::fmt(client.base_rtt_ms, 0) +
                           " ms"});
  }
  std::printf("  (top 10 of %zu clients by traffic share)\n\n",
              world.clients().size());
  for (const topology::PopDef& pop : world.pops()) {
    net::Bandwidth total;
    for (const auto& iface : pop.interfaces) total += iface.capacity;
    std::printf("  %-8s %2zu peerings, %2zu interfaces, %s egress capacity\n",
                pop.name.c_str(), pop.peerings.size(), pop.interfaces.size(),
                total.to_string().c_str());
  }
  return 0;
}

int cmd_interfaces(const Args& args) {
  const topology::World world = make_world(args);
  const std::size_t p = static_cast<std::size_t>(args.num("pop", 0));
  topology::Pop pop(world, p);
  analysis::TablePrinter table({"id", "name", "role", "capacity", "drained"},
                               {6, 18, 14, 12, 8});
  table.print_header();
  for (std::size_t i = 0; i < pop.def().interfaces.size(); ++i) {
    const topology::InterfaceDef& iface = pop.def().interfaces[i];
    table.print_row({std::to_string(i), iface.name,
                     bgp::peer_type_name(iface.role),
                     iface.capacity.to_string(),
                     pop.interfaces().drained(telemetry::InterfaceId(
                         static_cast<std::uint32_t>(i)))
                         ? "yes"
                         : "no"});
  }
  return 0;
}

int cmd_rib(const Args& args) {
  const topology::World world = make_world(args);
  const std::size_t p = static_cast<std::size_t>(args.num("pop", 0));
  topology::Pop pop(world, p);

  if (args.has("prefix")) {
    const auto prefix = net::Prefix::parse(args.get("prefix", ""));
    if (!prefix) {
      std::fprintf(stderr, "bad prefix\n");
      return 2;
    }
    const auto ranked = pop.ranked_routes(*prefix);
    if (ranked.empty()) {
      std::printf("%s: no routes\n", prefix->to_string().c_str());
      return 0;
    }
    std::printf("%s: %zu route(s), best first\n", prefix->to_string().c_str(),
                ranked.size());
    for (const bgp::Route* route : ranked) {
      std::printf("  %s\n", route->to_string().c_str());
    }
    return 0;
  }

  const long limit = args.num("limit", 20);
  std::printf("%zu prefixes, %zu routes total; first %ld best routes:\n",
              pop.collector().rib().prefix_count(),
              pop.collector().rib().route_count(), limit);
  long shown = 0;
  for (const net::Prefix& prefix : pop.reachable_prefixes()) {
    if (shown++ >= limit) break;
    const bgp::Route* best = pop.collector().rib().best(prefix);
    std::printf("  %s\n", best->to_string().c_str());
  }
  return 0;
}

int cmd_cycle(const Args& args) {
  const topology::World world = make_world(args);
  const std::size_t p = static_cast<std::size_t>(args.num("pop", 0));
  topology::Pop pop(world, p);

  core::ControllerConfig config;
  config.allocator.allow_prefix_splitting = args.has("split");
  core::Controller controller(pop, config);
  controller.connect();

  workload::DemandGenerator gen(world, p, {});
  const double hour = args.real("hour", 0);
  const telemetry::DemandMatrix demand =
      gen.baseline(net::SimTime::hours(hour));

  const core::CycleStats stats =
      controller.run_cycle(demand, net::SimTime::hours(hour));
  std::printf(
      "cycle at t=%gh: demand %s, %zu overloaded interface(s), %zu "
      "override(s), unresolved %s\n",
      hour, demand.total().to_string().c_str(),
      stats.allocation.overloaded_interfaces, stats.overrides_active,
      stats.allocation.unresolved_overload.to_string().c_str());
  for (const auto& [prefix, override_entry] : controller.active_overrides()) {
    std::printf("  %-20s %-9s %s -> %s path=[%s] nh=%s\n",
                prefix.to_string().c_str(),
                override_entry.rate.to_string().c_str(),
                bgp::peer_type_name(override_entry.from_type),
                bgp::peer_type_name(override_entry.target_type),
                override_entry.as_path.to_string().c_str(),
                override_entry.next_hop.to_string().c_str());
  }
  return 0;
}

int cmd_run(const Args& args) {
  const topology::World world = make_world(args);
  const std::size_t p = static_cast<std::size_t>(args.num("pop", 0));
  topology::Pop pop(world, p);

  sim::SimulationConfig config;
  config.duration = net::SimTime::hours(args.real("hours", 24));
  config.step = net::SimTime::seconds(60);
  config.controller_enabled = !args.has("no-controller");
  config.controller.cycle_period = net::SimTime::seconds(60);
  config.peer_flap_rate_per_hour = args.real("flaps", 0);

  analysis::UtilizationTracker tracker(pop.interfaces());
  analysis::DetourTracker detours;
  sim::Simulation simulation(pop, config);
  simulation.run([&](const sim::StepRecord& record) {
    tracker.record(record.when, record.load);
    if (record.controller) {
      detours.record_cycle(*record.controller,
                           simulation.controller()->active_overrides(),
                           record.total_demand);
    }
  });

  std::printf("ran %zu steps (%s, %s)\n", tracker.steps(),
              config.controller_enabled ? "Edge Fabric" : "BGP only",
              pop.name().c_str());
  std::printf("  utilization samples: %s\n",
              tracker.utilization_samples().summary().c_str());
  std::printf("  overloaded sample fraction: %s\n",
              analysis::TablePrinter::pct(tracker.overloaded_fraction(1.0), 2)
                  .c_str());
  std::printf("  would-drop traffic fraction: %s\n",
              analysis::TablePrinter::pct(tracker.excess_traffic_fraction(), 3)
                  .c_str());
  std::printf("  overload episodes: %zu\n", tracker.episodes(1.0).size());
  if (config.controller_enabled && detours.cycles() > 0) {
    std::printf("  detoured fraction: %s\n",
                detours.detoured_fraction().summary().c_str());
    std::printf("  overridden prefixes: %zu (%zu flapping)\n",
                detours.total_overridden_prefixes(),
                detours.flapping_prefixes());
  }
  return 0;
}

int cmd_fleet(const Args& args) {
  const topology::World world = make_world(args);
  sim::SimulationConfig config;
  config.duration = net::SimTime::hours(args.real("hours", 24));
  config.step = net::SimTime::seconds(60);
  config.controller_enabled = !args.has("no-controller");
  config.controller.cycle_period = net::SimTime::seconds(60);

  sim::Fleet fleet(world, config);
  std::vector<net::Bandwidth> overload(fleet.size());
  std::vector<net::Bandwidth> peak(fleet.size());
  std::vector<std::size_t> max_overrides(fleet.size(), 0);
  fleet.run([&](std::size_t p, const sim::StepRecord& record) {
    overload[p] += record.overload;
    peak[p] = std::max(peak[p], record.total_demand);
    if (record.controller) {
      max_overrides[p] =
          std::max(max_overrides[p], record.controller->overrides_active);
    }
  });

  analysis::TablePrinter table(
      {"pop", "peak-demand", "max-overrides", "overload-sum"}, {8, 13, 14, 14});
  table.print_header();
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    table.print_row({world.pops()[p].name, peak[p].to_string(),
                     std::to_string(max_overrides[p]),
                     overload[p].to_string()});
  }
  return 0;
}

int cmd_mrt(const Args& args) {
  const topology::World world = make_world(args);
  const std::size_t p = static_cast<std::size_t>(args.num("pop", 0));
  topology::Pop pop(world, p);
  const std::string path = args.get("out", "");
  if (path.empty()) {
    std::fprintf(stderr, "mrt requires --out FILE\n");
    return 2;
  }

  const bgp::mrt::TableDump dump = bgp::mrt::from_rib(
      pop.collector().rib(),
      [&](bgp::PeerId peer) {
        const auto* info = pop.collector().peer(peer);
        return bgp::mrt::PeerEntry{info->bgp_id, info->address, info->as};
      },
      bgp::RouterId(1), "edgefabric-" + pop.name());
  const auto bytes = bgp::mrt::encode(dump, net::SimTime::seconds(0));

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("wrote %zu bytes: %zu peers, %zu prefixes (TABLE_DUMP_V2)\n",
              bytes.size(), dump.peers.size(), dump.records.size());
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: eftool <command> [options]\n"
      "  world      [--clients N] [--pops N] [--seed S]\n"
      "  interfaces --pop K\n"
      "  rib        --pop K [--prefix P] [--limit N]\n"
      "  cycle      --pop K [--hour H] [--split]\n"
      "  run        --pop K [--hours H] [--no-controller] [--flaps R]\n"
      "  fleet      [--hours H] [--no-controller]\n"
      "  mrt        --pop K --out FILE\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.command == "world") return cmd_world(args);
  if (args.command == "interfaces") return cmd_interfaces(args);
  if (args.command == "rib") return cmd_rib(args);
  if (args.command == "cycle") return cmd_cycle(args);
  if (args.command == "run") return cmd_run(args);
  if (args.command == "fleet") return cmd_fleet(args);
  if (args.command == "mrt") return cmd_mrt(args);
  return usage();
}
