#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, run every
# experiment bench. This is the command sequence CI runs and the one the
# top-level docs reference.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do "$b"; done
