#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, run every
# experiment bench — then build and run the tier-1 suite a second time
# under ThreadSanitizer, so data races in the runtime thread pool / the
# parallel fleet executor are caught automatically. This is the command
# sequence CI runs and the one the top-level docs reference.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do "$b"; done
# Allocator perf numbers (BENCH_alloc.json) are recorded separately by
# scripts/bench.sh — run it after allocator changes to refresh the record.

# Second pass: tier-1 suite under TSan (-DEF_SANITIZE=thread). Skipped,
# loudly, only where the toolchain cannot link libtsan.
if echo 'int main(){}' | c++ -fsanitize=thread -x c++ - -o /dev/null \
    2>/dev/null; then
  cmake -B build-tsan -G Ninja -DEF_SANITIZE=thread
  cmake --build build-tsan
  ctest --test-dir build-tsan --output-on-failure
else
  echo "check.sh: toolchain lacks -fsanitize=thread; skipping TSan pass" >&2
fi
