#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, run every
# experiment bench — then build and run the tier-1 suite a second time
# under ThreadSanitizer, so data races in the runtime thread pool / the
# parallel fleet executor are caught automatically. This is the command
# sequence CI runs and the one the top-level docs reference.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
# The loopback live-ingest suite (simulator feeding efd over real sockets)
# is the M14 acceptance gate: run it explicitly so a filtered or flaky
# ctest invocation can never silently skip it.
ctest --test-dir build --output-on-failure -R 'LiveIngest'
# The BGP interop suite (efd announcing over TCP vs in-process
# enforcement, hold-timer flush, ladder journaling) is the M15
# acceptance gate: same explicit-run rule.
ctest --test-dir build --output-on-failure -R 'BgpInterop'
# The flow-level dataplane suite (ECMP/WCMP hashing, sticky flow table,
# queue conservation, sim integration) is the M17 acceptance gate: same
# explicit-run rule.
ctest --test-dir build --output-on-failure -R 'Dataplane'
# The enforcement-audit suite (divergence classification, bounded
# repair, failsafe audit rung, flap resync, warm restart) is the M18
# acceptance gate: same explicit-run rule.
ctest --test-dir build --output-on-failure -R 'Audit'
for b in build/bench/*; do "$b"; done

# Strict CLI validation: malformed audit/recovery/chaos knobs must exit
# 2 even when the parent feature flag is absent (a typo'd knob silently
# ignored is an unaudited production run).
expect_usage_error() {
  local status=0
  "$@" >/dev/null 2>&1 || status=$?
  if [ "$status" -ne 2 ]; then
    echo "check.sh: expected exit 2 from: $* (got $status)" >&2
    exit 1
  fi
}
expect_usage_error ./build/tools/efd --audit-interval=junk
expect_usage_error ./build/tools/efd --audit-max-repairs=-1
expect_usage_error ./build/tools/efd --recover
expect_usage_error ./build/tools/eftool serve --audit-interval=junk
expect_usage_error ./build/tools/eftool chaos --audit-max-repairs=-1
expect_usage_error ./build/tools/eftool chaos --bgp-faults junk
expect_usage_error ./build/tools/eftool chaos --recover
# Perf numbers (BENCH_alloc.json, BENCH_ingest.json) are recorded
# separately by scripts/bench.sh — run it after allocator or ingest
# changes to refresh the records.

# Chaos gate: seeded fault injection against the failsafe-armed daemon,
# under AddressSanitizer so the fault paths (poisoned streams, severed
# sessions, held cycles) also prove fd/buffer hygiene. Each seed in the
# matrix must replay bitwise-identically (--verify); EF_CHAOS_SEED
# extends the matrix per-run without editing this file. Skipped, loudly,
# only where the toolchain cannot link libasan.
if echo 'int main(){}' | c++ -fsanitize=address -x c++ - -o /dev/null \
    2>/dev/null; then
  cmake -B build-asan -G Ninja -DEF_SANITIZE=address
  cmake --build build-asan
  for seed in 1 7 42 ${EF_CHAOS_SEED:-}; do
    EF_CHAOS_SEED="$seed" ctest --test-dir build-asan \
      --output-on-failure -R 'Chaos\.'
    ./build-asan/tools/eftool chaos --fault-seed "$seed" \
      --poison 0.02 --verify
    ./build-asan/tools/eftool chaos --fault-seed "$seed" \
      --blackout 3:7 --verify
    # BGP-path chaos: faults on the announcer's UPDATE stream plus a
    # mid-run session flap, audited and remediated each cycle — the
    # replay must still be bitwise identical.
    ./build-asan/tools/eftool chaos --fault-seed "$seed" \
      --bgp-faults drop=0.1,dup=0.05,swallow=0.5,flap=6 --verify
  done
else
  echo "check.sh: toolchain lacks -fsanitize=address; skipping chaos gate" >&2
fi

# Second pass: tier-1 suite under TSan (-DEF_SANITIZE=thread). Skipped,
# loudly, only where the toolchain cannot link libtsan.
if echo 'int main(){}' | c++ -fsanitize=thread -x c++ - -o /dev/null \
    2>/dev/null; then
  cmake -B build-tsan -G Ninja -DEF_SANITIZE=thread
  cmake --build build-tsan
  ctest --test-dir build-tsan --output-on-failure
  # Same explicit gates under TSan: the daemon's event loop, barrier
  # counters, and digest handoff must be race-free, not just correct —
  # and so must the announcer/peering-router session machinery.
  ctest --test-dir build-tsan --output-on-failure -R 'LiveIngest'
  ctest --test-dir build-tsan --output-on-failure -R 'BgpInterop'
  # The dataplane rides inside efd's ingest thread; its counters cross
  # the /metrics reader path, so the suite must be race-free too.
  ctest --test-dir build-tsan --output-on-failure -R 'Dataplane'
  # The audit read-back crosses three threads (efd cycle loop, prd's
  # loop via run_sync, the announcer's session): race-free is part of
  # the M18 gate, not an afterthought.
  ctest --test-dir build-tsan --output-on-failure -R 'Audit'
else
  echo "check.sh: toolchain lacks -fsanitize=thread; skipping TSan pass" >&2
fi
