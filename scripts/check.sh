#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, run every
# experiment bench — then build and run the tier-1 suite a second time
# under ThreadSanitizer, so data races in the runtime thread pool / the
# parallel fleet executor are caught automatically. This is the command
# sequence CI runs and the one the top-level docs reference.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
# The loopback live-ingest suite (simulator feeding efd over real sockets)
# is the M14 acceptance gate: run it explicitly so a filtered or flaky
# ctest invocation can never silently skip it.
ctest --test-dir build --output-on-failure -R 'LiveIngest'
for b in build/bench/*; do "$b"; done
# Perf numbers (BENCH_alloc.json, BENCH_ingest.json) are recorded
# separately by scripts/bench.sh — run it after allocator or ingest
# changes to refresh the records.

# Second pass: tier-1 suite under TSan (-DEF_SANITIZE=thread). Skipped,
# loudly, only where the toolchain cannot link libtsan.
if echo 'int main(){}' | c++ -fsanitize=thread -x c++ - -o /dev/null \
    2>/dev/null; then
  cmake -B build-tsan -G Ninja -DEF_SANITIZE=thread
  cmake --build build-tsan
  ctest --test-dir build-tsan --output-on-failure
  # Same explicit gate under TSan: the daemon's event loop, barrier
  # counters, and digest handoff must be race-free, not just correct.
  ctest --test-dir build-tsan --output-on-failure -R 'LiveIngest'
else
  echo "check.sh: toolchain lacks -fsanitize=thread; skipping TSan pass" >&2
fi
