#!/usr/bin/env bash
# Performance records: builds Release (its own build dir, so a
# developer's default RelWithDebInfo tree is untouched) and runs the
# google-benchmark suites in JSON mode.
#   BENCH_alloc.json  — bench_m11 (allocator scale + the prefix×thread
#                       sharded-allocation scaling curve, up to the full
#                       1M-prefix table) + bench_m13 (allocation fast
#                       path vs the seed allocator) + bench_m16
#                       (incremental delta cycles vs full warm
#                       recomputes across churn rates). Both comparison
#                       suites cross-check decisions for bitwise
#                       identity before timing, so a recorded speedup
#                       can never come from a behaviour change. Every
#                       merged binary must prove its own TUs were built
#                       Release (ef_bench_build context) or the script
#                       aborts.
#   BENCH_ingest.json — bench_m14 (BMP/sFlow decode throughput and the
#                       loopback socket-to-decision cycle latency).
#   BENCH_bgp.json    — bench_m15 (RFC 4271 UPDATE encode/decode
#                       throughput and the announce-to-applied latency
#                       over a real loopback BGP session).
#   BENCH_dataplane.json — bench_m17 (flow-level dataplane: hash/pick
#                       hot path, full step pipeline throughput in
#                       flows/sec, and the tail-drop queue's accuracy
#                       against the analytic fluid drop fraction; the
#                       drop model is cross-checked before timing).
# EXPERIMENTS.md (M13/M14/M15) and docs/SCALING.md document the
# methodology.
#
# Usage: bench.sh [--profile=record|nightly]
#   record  (default) — every suite, normal iteration counts; rewrites
#                       all three BENCH_*.json records.
#   nightly           — the allocator-scaling suites only, at reduced
#                       iteration counts (--benchmark_min_time=0.01, the
#                       seconds form the vendored google-benchmark
#                       accepts), for the scheduled CI job that uploads
#                       BENCH_alloc.json as an artifact. See
#                       docs/SCALING.md §6.
#
# Every bench binary's exit status is checked and its JSON output
# validated before anything is merged: a crashed or truncated run aborts
# the script with a non-zero exit instead of silently writing a partial
# (or stale) BENCH_*.json.
set -euo pipefail
cd "$(dirname "$0")/.."

PROFILE=record
for arg in "$@"; do
  case "$arg" in
    --profile=record) PROFILE=record ;;
    --profile=nightly) PROFILE=nightly ;;
    *) echo "usage: $0 [--profile=record|nightly]" >&2; exit 2 ;;
  esac
done

# Fresh scratch dir per run: results can never be polluted by JSON left
# behind by an earlier (possibly crashed) invocation.
TMPDIR_BENCH="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_BENCH"' EXIT

cmake -B build-bench -G Ninja -DCMAKE_BUILD_TYPE=Release
# A recorded number from a debug build is worse than no number: verify
# the tree really configured Release before spending any cycles. (An
# existing build-bench dir configured differently would win over the -D
# above only if the cache disagreed — so check the cache itself.)
if ! grep -q '^CMAKE_BUILD_TYPE:[A-Z]*=Release$' build-bench/CMakeCache.txt; then
  echo "error: build-bench is not configured CMAKE_BUILD_TYPE=Release" \
    "(stale cache?); delete build-bench and re-run" >&2
  exit 1
fi
cmake --build build-bench --target bench_m11_allocator_scale \
  bench_m13_alloc_fastpath bench_m14_ingest bench_m15_bgp \
  bench_m16_incremental bench_m17_dataplane bench_m18_audit

# run_bench <output-basename> <binary> [extra benchmark args...]
# Fails the whole script if the binary exits non-zero OR emits invalid
# JSON (a crash mid-report truncates the document).
run_bench() {
  local out="$TMPDIR_BENCH/$1.json"
  local bin="$2"
  shift 2
  local status=0
  "$bin" --benchmark_format=json "$@" >"$out" || status=$?
  if [ "$status" -ne 0 ]; then
    echo "error: $bin exited with status $status; refusing to write" \
      "benchmark records from a crashed run" >&2
    exit 1
  fi
  if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out"; then
    echo "error: $bin produced invalid JSON (truncated report?); refusing" \
      "to write benchmark records" >&2
    exit 1
  fi
}

if [ "$PROFILE" = nightly ]; then
  # Reduced iterations: a 10ms floor means one measured iteration for
  # every row that matters, which is enough for the nightly
  # scaling-trend artifact and keeps the 1M-prefix rows affordable on
  # shared CI runners.
  run_bench bench_m11 ./build-bench/bench/bench_m11_allocator_scale \
    --benchmark_min_time=0.01
  run_bench bench_m13 ./build-bench/bench/bench_m13_alloc_fastpath \
    --benchmark_min_time=0.01
  run_bench bench_m16 ./build-bench/bench/bench_m16_incremental \
    --benchmark_min_time=0.01
  run_bench bench_m17 ./build-bench/bench/bench_m17_dataplane \
    --benchmark_min_time=0.01
  run_bench bench_m18 ./build-bench/bench/bench_m18_audit \
    --benchmark_min_time=0.01
else
  run_bench bench_m11 ./build-bench/bench/bench_m11_allocator_scale
  run_bench bench_m13 ./build-bench/bench/bench_m13_alloc_fastpath
  run_bench bench_m16 ./build-bench/bench/bench_m16_incremental
  run_bench bench_m14 ./build-bench/bench/bench_m14_ingest
  run_bench bench_m15 ./build-bench/bench/bench_m15_bgp
  run_bench bench_m17 ./build-bench/bench/bench_m17_dataplane
  run_bench bench_m18 ./build-bench/bench/bench_m18_audit
fi

EF_BENCH_TMPDIR="$TMPDIR_BENCH" EF_BENCH_PROFILE="$PROFILE" python3 - <<'EOF'
import json
import os

tmpdir = os.environ["EF_BENCH_TMPDIR"]
profile = os.environ["EF_BENCH_PROFILE"]

def to_ms(bench):
    unit = bench.get("time_unit", "ns")
    return bench["real_time"] * {"ns": 1e-6, "us": 1e-3, "ms": 1.0,
                                 "s": 1e3}.get(unit, 1e-6)

def require_release(name, report):
    context = report.get("context", {})
    if context.get("ef_bench_build") != "release":
        raise SystemExit(
            f"error: {name} was built in "
            f"{context.get('ef_bench_build', 'unknown')} mode; refusing to "
            "record benchmarks from a non-Release binary")

def audit_target_from(report):
    # The M18 acceptance target: one convergent audit pass at 1M
    # prefixes must cost under 5% of the 2000 ms full-table warm-cycle
    # budget (docs/FAILSAFE.md). The divergent pass and the recovery
    # snapshot codec rows ride along for trend visibility.
    target = {"prefixes": 1000000, "warm_cycle_budget_ms": 2000.0,
              "max_fraction_of_warm_cycle": 0.05}
    rows = (("BM_AuditPassConvergent/1000000", "audit_pass_ms_1m"),
            ("BM_AuditPassDivergent/1000000", "divergent_pass_ms_1m"),
            ("BM_RecoverySnapshotSerialize/1000000",
             "recovery_serialize_ms_1m"),
            ("BM_RecoverySnapshotDecode/1000000", "recovery_decode_ms_1m"))
    for b in report.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        # Prefix match: MinTime registrations append a /min_time:...
        # suffix to the row name.
        for bench_name, field in rows:
            if b["name"].startswith(bench_name):
                target[field] = round(to_ms(b), 3)
    if "audit_pass_ms_1m" in target:
        budget = (target["warm_cycle_budget_ms"] *
                  target["max_fraction_of_warm_cycle"])
        target["budget_ms"] = budget
        target["met"] = target["audit_pass_ms_1m"] <= budget
    return target

merged = {}
for name in ("bench_m11", "bench_m13", "bench_m16"):
    with open(os.path.join(tmpdir, f"{name}.json")) as f:
        report = json.load(f)
    context = report.get("context", {})
    # Build-mode proof, per binary: ef_bench_build is stamped by the
    # bench's own main() from NDEBUG, i.e. it describes OUR translation
    # units. Anything but "release" means the timings are garbage; fail
    # instead of recording them.
    if context.get("ef_bench_build") != "release":
        raise SystemExit(
            f"error: {name} was built in "
            f"{context.get('ef_bench_build', 'unknown')} mode; refusing to "
            "record benchmarks from a non-Release binary")
    merged.setdefault("context", context)
    merged.setdefault("benchmarks", []).extend(report.get("benchmarks", []))

# Distro libbenchmark packages are routinely compiled without NDEBUG, so
# google-benchmark's own library_build_type says "debug" even in a
# Release tree. That field describes the LIBRARY, not our code; annotate
# rather than letting it read as a broken record.
if merged["context"].get("library_build_type") != "release":
    merged["context"]["library_build_type_note"] = (
        "library_build_type describes the system libbenchmark package; "
        "our benchmark TUs are proven Release by ef_bench_build")

times = {
    b["name"]: b["real_time"]
    for b in merged["benchmarks"]
    if b.get("run_type", "iteration") == "iteration"
}

# Warm-cycle speedup per (prefixes, routes) pair: the fast-path record.
speedups = {}
for name, t in times.items():
    if name.startswith("BM_SeedAllocatorWarmCycle/"):
        args = name.split("/", 1)[1]
        fast = times.get(f"BM_FastPathWarmCycle/{args}")
        if fast:
            speedups[args] = round(t / fast, 2)
merged["warm_cycle_speedup"] = speedups

# Sharded-allocation scaling curve: BM_AllocatorCycle/<prefixes>/<routes>/
# <threads> rows become {prefixes: {threads: warm-cycle ms}}. threads=1
# is the serial baseline (no pool); speedup_vs_serial is derived per row.
scaling = {}
for b in merged["benchmarks"]:
    if b.get("run_type", "iteration") != "iteration":
        continue
    if not b["name"].startswith("BM_AllocatorCycle/"):
        continue
    parts = b["name"].split("/")
    if len(parts) < 4:
        continue
    prefixes, routes, threads = parts[1], parts[2], parts[3]
    scaling.setdefault(prefixes, {})[threads] = {
        "routes": int(routes),
        "warm_cycle_ms": round(to_ms(b), 3),
    }
for prefixes, by_threads in scaling.items():
    serial = by_threads.get("1")
    if not serial:
        continue
    for threads, row in by_threads.items():
        row["speedup_vs_serial"] = round(
            serial["warm_cycle_ms"] / row["warm_cycle_ms"], 2)
merged["alloc_scaling"] = scaling

# The full-table acceptance target: 1M prefixes x >=3 routes, warm cycle
# at or under 2 s (docs/SCALING.md §5).
target = {"prefixes": 1000000, "routes": 3, "target_ms": 2000.0}
million = scaling.get("1000000", {})
if million:
    best = min(row["warm_cycle_ms"] for row in million.values())
    target["best_warm_cycle_ms"] = best
    target["met"] = best <= target["target_ms"]
merged["full_table_target"] = target

# The steady-state acceptance target (EXPERIMENTS.md M16): at 1M
# prefixes and 1% churn per cycle, the incremental engine must beat the
# full warm recompute by >=50x and land at or under 10 ms. Churn rows
# are named BM_{FullRecomputeAtChurn,IncrementalAtChurn}/<prefixes>/
# <routes>/<permille>.
steady = {"prefixes": 1000000, "routes": 3, "churn_permille": 10,
          "target_speedup": 50.0, "target_ms": 10.0}
churn = {}
for b in merged["benchmarks"]:
    if b.get("run_type", "iteration") != "iteration":
        continue
    for kind, bench_prefix in (("full", "BM_FullRecomputeAtChurn/"),
                               ("incremental", "BM_IncrementalAtChurn/")):
        if b["name"].startswith(bench_prefix):
            args = b["name"].split("/", 1)[1]
            churn.setdefault(args, {})[f"{kind}_ms"] = round(to_ms(b), 3)
            if kind == "incremental":
                churn[args]["full_fallbacks"] = b.get("full_fallbacks", 0)
                churn[args]["dirty_per_cycle"] = round(
                    b.get("dirty_per_cycle", 0))
for args, row in churn.items():
    if "full_ms" in row and "incremental_ms" in row and row["incremental_ms"]:
        row["speedup"] = round(row["full_ms"] / row["incremental_ms"], 2)
merged["incremental_churn"] = churn
key = (f"{steady['prefixes']}/{steady['routes']}/"
       f"{steady['churn_permille']}")
if key in churn and "speedup" in churn[key]:
    steady["full_ms"] = churn[key]["full_ms"]
    steady["incremental_ms"] = churn[key]["incremental_ms"]
    steady["speedup"] = churn[key]["speedup"]
    steady["met"] = (steady["speedup"] >= steady["target_speedup"]
                     and steady["incremental_ms"] <= steady["target_ms"])
merged["steady_state_target"] = steady
merged["profile"] = profile

# Dataplane record: step-pipeline throughput (flows/sec), the hash/pick
# hot path, and the drop-model accuracy counters. Written on every
# profile (the nightly gate watches it alongside BENCH_alloc.json).
with open(os.path.join(tmpdir, "bench_m17.json")) as f:
    dp_report = json.load(f)
dp_context = dp_report.get("context", {})
if dp_context.get("ef_bench_build") != "release":
    raise SystemExit(
        "error: bench_m17 was built in "
        f"{dp_context.get('ef_bench_build', 'unknown')} mode; refusing to "
        "record benchmarks from a non-Release binary")
dataplane = {"context": dp_context,
             "benchmarks": dp_report.get("benchmarks", [])}
dp_target = {"target_flows_per_sec": 1e6, "target_drop_abs_error": 0.005}
step_rows = {}
max_drop_error = None
for b in dataplane["benchmarks"]:
    if b.get("run_type", "iteration") != "iteration":
        continue
    if b["name"].startswith("BM_DataplaneStep/"):
        prefixes = b["name"].split("/")[1]
        step_rows[prefixes] = {
            "step_ms": round(to_ms(b), 3),
            "flows_per_step": round(b.get("flows_per_step", 0)),
            "flows_per_sec": round(b.get("items_per_second", 0)),
        }
    elif b["name"].startswith("BM_QueueDropAccuracy/"):
        err = b.get("drop_model_abs_error")
        if err is not None:
            max_drop_error = err if max_drop_error is None else max(
                max_drop_error, err)
    elif b["name"] == "BM_FlowHashPick":
        dp_target["hash_pick_per_sec"] = round(b.get("items_per_second", 0))
dataplane["step_pipeline"] = step_rows
if step_rows:
    best = max(row["flows_per_sec"] for row in step_rows.values())
    dp_target["best_flows_per_sec"] = best
    # Regression gate operates on time: the 10k-prefix row's step ms.
    if "10000" in step_rows:
        dp_target["step_ms_10k"] = step_rows["10000"]["step_ms"]
if max_drop_error is not None:
    dp_target["drop_model_max_abs_error"] = max_drop_error
if "best_flows_per_sec" in dp_target and max_drop_error is not None:
    dp_target["met"] = (
        dp_target["best_flows_per_sec"] >= dp_target["target_flows_per_sec"]
        and max_drop_error <= dp_target["target_drop_abs_error"])
dataplane["dataplane_target"] = dp_target
dataplane["profile"] = profile
with open("BENCH_dataplane.json", "w") as f:
    json.dump(dataplane, f, indent=2)
    f.write("\n")
print("BENCH_dataplane.json written:", dp_target)

with open("BENCH_alloc.json", "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print("BENCH_alloc.json written; warm-cycle speedups:", speedups)
print("alloc scaling (prefixes -> threads -> ms):",
      {p: {t: row["warm_cycle_ms"] for t, row in rows.items()}
       for p, rows in scaling.items()})
if "met" in target:
    print("full-table target (1M x 3 routes <= 2000 ms):",
          "MET" if target["met"] else "MISSED",
          f"best={target.get('best_warm_cycle_ms')} ms")
if "met" in steady:
    print("steady-state target (1M x 1% churn, >=50x and <= 10 ms):",
          "MET" if steady["met"] else "MISSED",
          f"full={steady.get('full_ms')} ms",
          f"incremental={steady.get('incremental_ms')} ms",
          f"speedup={steady.get('speedup')}x")

if profile == "nightly":
    # Nightly rewrites the alloc + dataplane records in full, and
    # refreshes only the audit_overhead_target in the BGP record so the
    # >25% regression gate compares fresh audit numbers; the bench_m15
    # codec/announce rows stay as committed (they don't run nightly).
    with open(os.path.join(tmpdir, "bench_m18.json")) as f:
        m18_report = json.load(f)
    require_release("bench_m18", m18_report)
    try:
        with open("BENCH_bgp.json") as f:
            bgp = json.load(f)
    except (OSError, json.JSONDecodeError):
        bgp = {"context": m18_report.get("context", {}), "benchmarks": []}
    bgp["audit_overhead_target"] = audit_target_from(m18_report)
    bgp["profile"] = profile
    with open("BENCH_bgp.json", "w") as f:
        json.dump(bgp, f, indent=2)
        f.write("\n")
    print("BENCH_bgp.json audit_overhead_target refreshed:",
          bgp["audit_overhead_target"])
    raise SystemExit(0)

# Ingest record: decode throughput in MB/s + msgs/s, cycle latency in us.
with open(os.path.join(tmpdir, "bench_m14.json")) as f:
    report = json.load(f)
ingest = {"context": report.get("context", {}),
          "benchmarks": report.get("benchmarks", [])}
summary = {}
for b in ingest["benchmarks"]:
    if b.get("run_type", "iteration") != "iteration":
        continue
    entry = {}
    if "bytes_per_second" in b:
        entry["MB_per_s"] = round(b["bytes_per_second"] / 1e6, 1)
    if "items_per_second" in b:
        entry["items_per_s"] = round(b["items_per_second"], 0)
    if b["name"].startswith("BM_LoopbackCycle"):
        entry["cycle_latency_us"] = round(
            b["real_time"] * {"ns": 1e-3, "us": 1.0, "ms": 1e3}.get(
                b.get("time_unit", "ns"), 1e-3), 1)
    summary[b["name"]] = entry
ingest["summary"] = summary
with open("BENCH_ingest.json", "w") as f:
    json.dump(ingest, f, indent=2)
    f.write("\n")
print("BENCH_ingest.json written:", summary)

# BGP record: codec throughput in MB/s + msgs/s, announce latency in
# us, plus the M18 audit/recovery rows and their per-cycle overhead
# acceptance target.
with open(os.path.join(tmpdir, "bench_m15.json")) as f:
    report = json.load(f)
require_release("bench_m15", report)
with open(os.path.join(tmpdir, "bench_m18.json")) as f:
    m18_report = json.load(f)
require_release("bench_m18", m18_report)
bgp = {"context": report.get("context", {}),
       "benchmarks": (report.get("benchmarks", []) +
                      m18_report.get("benchmarks", []))}
summary = {}
for b in bgp["benchmarks"]:
    if b.get("run_type", "iteration") != "iteration":
        continue
    entry = {}
    if "bytes_per_second" in b:
        entry["MB_per_s"] = round(b["bytes_per_second"] / 1e6, 1)
    if "items_per_second" in b:
        entry["items_per_s"] = round(b["items_per_second"], 0)
    if b["name"].startswith("BM_AnnounceApplyLoopback"):
        entry["announce_apply_latency_us"] = round(
            b["real_time"] * {"ns": 1e-3, "us": 1.0, "ms": 1e3}.get(
                b.get("time_unit", "ns"), 1e-3), 1)
    if b["name"].startswith(("BM_AuditPass", "BM_RecoverySnapshot")):
        entry["pass_ms"] = round(to_ms(b), 3)
    summary[b["name"]] = entry
bgp["summary"] = summary
bgp["audit_overhead_target"] = audit_target_from(m18_report)
bgp["profile"] = profile
with open("BENCH_bgp.json", "w") as f:
    json.dump(bgp, f, indent=2)
    f.write("\n")
print("BENCH_bgp.json written:", summary)
print("audit overhead target (1M-prefix pass <= 5% of 2000 ms warm",
      "cycle):", bgp["audit_overhead_target"])
EOF
