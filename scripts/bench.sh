#!/usr/bin/env bash
# Performance records: builds Release (its own build dir, so a
# developer's default RelWithDebInfo tree is untouched) and runs the
# google-benchmark suites in JSON mode.
#   BENCH_alloc.json  — bench_m11 (allocator scale) + bench_m13
#                       (allocation fast path vs the seed allocator).
#                       bench_m13 cross-checks fast-path decisions against
#                       the seed allocator before timing, so a recorded
#                       speedup can never come from a behaviour change.
#   BENCH_ingest.json — bench_m14 (BMP/sFlow decode throughput and the
#                       loopback socket-to-decision cycle latency).
#   BENCH_bgp.json    — bench_m15 (RFC 4271 UPDATE encode/decode
#                       throughput and the announce-to-applied latency
#                       over a real loopback BGP session).
# EXPERIMENTS.md (M13/M14/M15) documents the methodology.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-bench -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build-bench --target bench_m11_allocator_scale \
  bench_m13_alloc_fastpath bench_m14_ingest bench_m15_bgp

./build-bench/bench/bench_m11_allocator_scale \
  --benchmark_format=json >/tmp/bench_m11.json
./build-bench/bench/bench_m13_alloc_fastpath \
  --benchmark_format=json >/tmp/bench_m13.json
./build-bench/bench/bench_m14_ingest \
  --benchmark_format=json >/tmp/bench_m14.json
./build-bench/bench/bench_m15_bgp \
  --benchmark_format=json >/tmp/bench_m15.json

python3 - <<'EOF'
import json

merged = {}
for name in ("bench_m11", "bench_m13"):
    with open(f"/tmp/{name}.json") as f:
        report = json.load(f)
    merged.setdefault("context", report.get("context", {}))
    merged.setdefault("benchmarks", []).extend(report.get("benchmarks", []))

# Warm-cycle speedup per (prefixes, routes) pair: the acceptance number.
times = {
    b["name"]: b["real_time"]
    for b in merged["benchmarks"]
    if b.get("run_type", "iteration") == "iteration"
}
speedups = {}
for name, t in times.items():
    if name.startswith("BM_SeedAllocatorWarmCycle/"):
        args = name.split("/", 1)[1]
        fast = times.get(f"BM_FastPathWarmCycle/{args}")
        if fast:
            speedups[args] = round(t / fast, 2)
merged["warm_cycle_speedup"] = speedups

with open("BENCH_alloc.json", "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print("BENCH_alloc.json written; warm-cycle speedups:", speedups)

# Ingest record: decode throughput in MB/s + msgs/s, cycle latency in us.
with open("/tmp/bench_m14.json") as f:
    report = json.load(f)
ingest = {"context": report.get("context", {}),
          "benchmarks": report.get("benchmarks", [])}
summary = {}
for b in ingest["benchmarks"]:
    if b.get("run_type", "iteration") != "iteration":
        continue
    entry = {}
    if "bytes_per_second" in b:
        entry["MB_per_s"] = round(b["bytes_per_second"] / 1e6, 1)
    if "items_per_second" in b:
        entry["items_per_s"] = round(b["items_per_second"], 0)
    if b["name"].startswith("BM_LoopbackCycle"):
        entry["cycle_latency_us"] = round(
            b["real_time"] * {"ns": 1e-3, "us": 1.0, "ms": 1e3}.get(
                b.get("time_unit", "ns"), 1e-3), 1)
    summary[b["name"]] = entry
ingest["summary"] = summary
with open("BENCH_ingest.json", "w") as f:
    json.dump(ingest, f, indent=2)
    f.write("\n")
print("BENCH_ingest.json written:", summary)

# BGP record: codec throughput in MB/s + msgs/s, announce latency in us.
with open("/tmp/bench_m15.json") as f:
    report = json.load(f)
bgp = {"context": report.get("context", {}),
       "benchmarks": report.get("benchmarks", [])}
summary = {}
for b in bgp["benchmarks"]:
    if b.get("run_type", "iteration") != "iteration":
        continue
    entry = {}
    if "bytes_per_second" in b:
        entry["MB_per_s"] = round(b["bytes_per_second"] / 1e6, 1)
    if "items_per_second" in b:
        entry["items_per_s"] = round(b["items_per_second"], 0)
    if b["name"].startswith("BM_AnnounceApplyLoopback"):
        entry["announce_apply_latency_us"] = round(
            b["real_time"] * {"ns": 1e-3, "us": 1.0, "ms": 1e3}.get(
                b.get("time_unit", "ns"), 1e-3), 1)
    summary[b["name"]] = entry
bgp["summary"] = summary
with open("BENCH_bgp.json", "w") as f:
    json.dump(bgp, f, indent=2)
    f.write("\n")
print("BENCH_bgp.json written:", summary)
EOF
