#!/usr/bin/env bash
# Allocator performance record: builds Release (its own build dir, so a
# developer's default RelWithDebInfo tree is untouched), runs the two
# allocator benchmarks — bench_m11 (allocator scale) and bench_m13
# (allocation fast path vs the seed allocator) — in google-benchmark JSON
# mode, and merges both reports into BENCH_alloc.json at the repo root.
# bench_m13 cross-checks fast-path decisions against the seed allocator
# before timing, so a recorded speedup can never come from a behaviour
# change. EXPERIMENTS.md (M13) documents the methodology.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-bench -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build-bench --target bench_m11_allocator_scale \
  bench_m13_alloc_fastpath

./build-bench/bench/bench_m11_allocator_scale \
  --benchmark_format=json >/tmp/bench_m11.json
./build-bench/bench/bench_m13_alloc_fastpath \
  --benchmark_format=json >/tmp/bench_m13.json

python3 - <<'EOF'
import json

merged = {}
for name in ("bench_m11", "bench_m13"):
    with open(f"/tmp/{name}.json") as f:
        report = json.load(f)
    merged.setdefault("context", report.get("context", {}))
    merged.setdefault("benchmarks", []).extend(report.get("benchmarks", []))

# Warm-cycle speedup per (prefixes, routes) pair: the acceptance number.
times = {
    b["name"]: b["real_time"]
    for b in merged["benchmarks"]
    if b.get("run_type", "iteration") == "iteration"
}
speedups = {}
for name, t in times.items():
    if name.startswith("BM_SeedAllocatorWarmCycle/"):
        args = name.split("/", 1)[1]
        fast = times.get(f"BM_FastPathWarmCycle/{args}")
        if fast:
            speedups[args] = round(t / fast, 2)
merged["warm_cycle_speedup"] = speedups

with open("BENCH_alloc.json", "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print("BENCH_alloc.json written; warm-cycle speedups:", speedups)
EOF
