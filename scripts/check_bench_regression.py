#!/usr/bin/env python3
"""Compare a fresh benchmark record against a committed baseline.

Works on BENCH_alloc.json and BENCH_dataplane.json alike: metrics
missing from a record are skipped, so the same invocation shape serves
both (CI calls it once per record).

Usage:
    check_bench_regression.py BASELINE FRESH [--threshold FRAC]
                              [--report OUT.json]

Guards the two acceptance targets the repo records (docs/SCALING.md):

  full_table_target.best_warm_cycle_ms   - 1M-prefix full warm cycle
  steady_state_target.incremental_ms     - 1M-prefix, 1% churn delta cycle
  steady_state_target.full_ms            - its full-recompute baseline
  dataplane_target.step_ms_10k           - dataplane step, 10k prefixes
  audit_overhead_target.audit_pass_ms_1m - 1M-prefix enforcement audit pass

A metric regresses when fresh > baseline * (1 + threshold); the default
threshold is 0.25 (25%). Metrics missing from either side are reported
but never fail the run — a baseline recorded before a format change must
not brick the nightly. A JSON report (every metric, both values, the
ratio, and the verdict) is always written when --report is given, so CI
can upload it as an artifact whether or not the check fails.

Exit status: 0 clean, 1 regression, 2 usage/IO error.
"""

import argparse
import json
import sys


METRICS = (
    ("full_table_target", "best_warm_cycle_ms"),
    ("steady_state_target", "incremental_ms"),
    ("steady_state_target", "full_ms"),
    ("dataplane_target", "step_ms_10k"),
    ("audit_overhead_target", "audit_pass_ms_1m"),
)


def lookup(record, section, field):
    value = record.get(section, {}).get(field)
    return float(value) if isinstance(value, (int, float)) else None


def main():
    parser = argparse.ArgumentParser(
        description="fail on >threshold benchmark regressions")
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--report", help="write a JSON comparison here")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.fresh) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    rows = []
    regressed = False
    for section, field in METRICS:
        name = f"{section}.{field}"
        base = lookup(baseline, section, field)
        new = lookup(fresh, section, field)
        row = {"metric": name, "baseline_ms": base, "fresh_ms": new}
        if base is None or new is None or base <= 0:
            row["verdict"] = "skipped (missing or unusable on one side)"
        else:
            ratio = new / base
            row["ratio"] = round(ratio, 3)
            if ratio > 1.0 + args.threshold:
                row["verdict"] = (
                    f"REGRESSED ({ratio:.2f}x baseline, limit "
                    f"{1.0 + args.threshold:.2f}x)")
                regressed = True
            else:
                row["verdict"] = "ok"
        rows.append(row)
        print(f"{name}: baseline={base} fresh={new} -> {row['verdict']}")

    report = {
        "threshold": args.threshold,
        "regressed": regressed,
        "metrics": rows,
        "baseline_profile": baseline.get("profile"),
        "fresh_profile": fresh.get("profile"),
    }
    if args.report:
        with open(args.report, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    if regressed:
        print("benchmark regression above threshold; failing",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
