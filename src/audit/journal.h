// Append-only snapshot journal: length-prefixed, CRC32-guarded frames.
//
// File layout:
//   u32 file magic "EFJ1"
//   frame*: u32 frame magic "EFRF" | u32 payload length | u32 CRC32(payload)
//           | payload bytes
//
// A journal is written by a live controller and read back much later,
// possibly after a crash mid-append or storage corruption. The reader
// therefore never aborts: a truncated tail ends the stream cleanly, and a
// frame whose CRC fails is skipped by rescanning for the next frame magic,
// so every intact record survives.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

namespace ef::audit {

inline constexpr std::uint32_t kJournalMagic = 0x45464A31;  // "EFJ1"
inline constexpr std::uint32_t kFrameMagic = 0x45465246;    // "EFRF"

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), as used by zip/png.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len);
std::uint32_t crc32(const std::vector<std::uint8_t>& data);

/// Appends framed records to a journal file. Creates/truncates the file
/// and writes the file header on construction.
class JournalWriter {
 public:
  explicit JournalWriter(const std::string& path);

  /// False if the file could not be opened or a write failed.
  bool ok() const { return out_.good(); }

  void append(const std::vector<std::uint8_t>& record);
  void flush() { out_.flush(); }

  std::size_t records_written() const { return records_; }
  std::size_t bytes_written() const { return bytes_; }

 private:
  std::ofstream out_;
  std::size_t records_ = 0;
  std::size_t bytes_ = 0;
};

/// One framed record, encoded to bytes (used by the writer; exposed for
/// tests and benchmarks that frame into memory).
std::vector<std::uint8_t> encode_frame(const std::vector<std::uint8_t>& record);

struct JournalReadStats {
  std::size_t records = 0;          // intact records returned
  std::size_t corrupt_skipped = 0;  // frames dropped (CRC/garbage resync)
  bool truncated_tail = false;      // file ends mid-frame
  bool bad_header = false;          // file magic missing
};

/// Scans a journal byte image and yields the intact records in order.
class JournalReader {
 public:
  /// Reads a whole journal file; nullopt when the file cannot be opened.
  static std::optional<std::vector<std::uint8_t>> load(
      const std::string& path);

  explicit JournalReader(std::vector<std::uint8_t> bytes);

  /// Next intact record, or nullopt at end of journal.
  std::optional<std::vector<std::uint8_t>> next();

  const JournalReadStats& stats() const { return stats_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool pending_incomplete_ = false;
  JournalReadStats stats_;
};

}  // namespace ef::audit
