#include "audit/event.h"

#include "net/bytes.h"

namespace ef::audit {

const char* failsafe_mode_name(FailsafeMode mode) {
  switch (mode) {
    case FailsafeMode::kHealthy: return "healthy";
    case FailsafeMode::kHoldLastGood: return "hold-last-good";
    case FailsafeMode::kFailStatic: return "fail-static";
  }
  return "unknown";
}

const char* failsafe_action_name(FailsafeAction action) {
  switch (action) {
    case FailsafeAction::kRun: return "run";
    case FailsafeAction::kHold: return "hold";
    case FailsafeAction::kWithdraw: return "withdraw";
  }
  return "unknown";
}

std::vector<std::uint8_t> FailsafeEvent::serialize() const {
  net::BufWriter w;
  w.u16(kFailsafeEventTag);
  w.u64(static_cast<std::uint64_t>(when.millis_value()));
  w.u8(static_cast<std::uint8_t>(from_mode));
  w.u8(static_cast<std::uint8_t>(to_mode));
  w.u8(static_cast<std::uint8_t>(action));
  w.u16(static_cast<std::uint16_t>(reason.size()));
  w.bytes(reinterpret_cast<const std::uint8_t*>(reason.data()),
          reason.size());
  w.u32(routers_known);
  w.u32(routers_down);
  w.u64(demand_age_ms);
  w.u64(overrides_active);
  return std::move(w).take();
}

std::optional<FailsafeEvent> FailsafeEvent::deserialize(
    std::span<const std::uint8_t> bytes) {
  net::BufReader r(bytes.data(), bytes.size());
  if (r.u16() != kFailsafeEventTag || !r.ok()) return std::nullopt;
  FailsafeEvent e;
  e.when = net::SimTime::millis(static_cast<std::int64_t>(r.u64()));
  const std::uint8_t from = r.u8();
  const std::uint8_t to = r.u8();
  const std::uint8_t action = r.u8();
  if (from > 2 || to > 2 || action > 2) return std::nullopt;
  e.from_mode = static_cast<FailsafeMode>(from);
  e.to_mode = static_cast<FailsafeMode>(to);
  e.action = static_cast<FailsafeAction>(action);
  const std::size_t reason_len = r.u16();
  e.reason.resize(reason_len);
  r.bytes(reinterpret_cast<std::uint8_t*>(e.reason.data()), reason_len);
  e.routers_known = r.u32();
  e.routers_down = r.u32();
  e.demand_age_ms = r.u64();
  e.overrides_active = r.u64();
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return e;
}

std::vector<std::uint8_t> AuditEvent::serialize() const {
  net::BufWriter w;
  w.u16(kAuditEventTag);
  w.u64(static_cast<std::uint64_t>(when.millis_value()));
  w.u64(intended);
  w.u64(observed);
  w.u64(missing);
  w.u64(extra);
  w.u64(wrong_attrs);
  w.u64(repaired_announce);
  w.u64(repaired_withdraw);
  w.u64(unrepaired);
  w.u32(divergent_streak);
  w.u8(escalated ? 1 : 0);
  return std::move(w).take();
}

std::optional<AuditEvent> AuditEvent::deserialize(
    std::span<const std::uint8_t> bytes) {
  net::BufReader r(bytes.data(), bytes.size());
  if (r.u16() != kAuditEventTag || !r.ok()) return std::nullopt;
  AuditEvent e;
  e.when = net::SimTime::millis(static_cast<std::int64_t>(r.u64()));
  e.intended = r.u64();
  e.observed = r.u64();
  e.missing = r.u64();
  e.extra = r.u64();
  e.wrong_attrs = r.u64();
  e.repaired_announce = r.u64();
  e.repaired_withdraw = r.u64();
  e.unrepaired = r.u64();
  e.divergent_streak = r.u32();
  const std::uint8_t escalated = r.u8();
  if (escalated > 1) return std::nullopt;
  e.escalated = escalated != 0;
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return e;
}

}  // namespace ef::audit
