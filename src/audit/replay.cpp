#include "audit/replay.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ef::audit {

namespace {

/// Overrides keyed by prefix for order-insensitive comparison. The
/// allocator emits at most one override per (possibly split) prefix.
std::map<net::Prefix, const core::Override*> by_prefix(
    const std::vector<core::Override>& overrides) {
  std::map<net::Prefix, const core::Override*> map;
  for (const core::Override& o : overrides) map[o.prefix] = &o;
  return map;
}

}  // namespace

ReplayEnv::ReplayEnv(const CycleSnapshot& snapshot)
    : rib(snapshot.decision) {
  for (const bgp::Route& route : snapshot.routes) rib.announce(route);
  for (const DemandRecord& d : snapshot.demand) demand.set(d.prefix, d.rate);
  for (const InterfaceRecord& iface : snapshot.interfaces) {
    interfaces.add(iface.id, iface.capacity);
    if (iface.drained) interfaces.set_drained(iface.id, true);
  }
  for (const EgressRecord& e : snapshot.egress) {
    egress[e.address] = core::EgressView{e.interface, e.type, e.address};
  }
}

core::EgressResolver ReplayEnv::resolver() const {
  return [this](const bgp::Route& route) -> std::optional<core::EgressView> {
    const auto it = egress.find(route.attrs.next_hop);
    if (it == egress.end()) return std::nullopt;
    return it->second;
  };
}

core::AllocationResult rerun(const CycleSnapshot& snapshot) {
  const ReplayEnv env(snapshot);
  const core::Allocator allocator(snapshot.allocator);
  return allocator.allocate(env.rib, env.demand, env.interfaces,
                            env.resolver());
}

ReplayDiff replay(const CycleSnapshot& snapshot) {
  const core::AllocationResult replayed = rerun(snapshot);

  ReplayDiff diff;
  diff.recorded_overrides = snapshot.allocated.size();
  diff.replayed_overrides = replayed.overrides.size();

  const auto recorded_map = by_prefix(snapshot.allocated);
  const auto replayed_map = by_prefix(replayed.overrides);
  for (const auto& [prefix, recorded] : recorded_map) {
    const auto it = replayed_map.find(prefix);
    if (it == replayed_map.end() || !(*it->second == *recorded)) {
      diff.changed_prefixes.push_back(prefix);
    }
  }
  for (const auto& [prefix, replayed_override] : replayed_map) {
    if (!recorded_map.contains(prefix)) diff.changed_prefixes.push_back(prefix);
  }

  diff.loads_match = replayed.projected_load == snapshot.projected_load &&
                     replayed.final_load == snapshot.final_load;
  diff.summary_match =
      replayed.overloaded_interfaces == snapshot.overloaded_interfaces &&
      replayed.unresolved_overload == snapshot.unresolved_overload &&
      replayed.unroutable == snapshot.unroutable;
  diff.drifted = !diff.changed_prefixes.empty() || !diff.loads_match ||
                 !diff.summary_match;
  return diff;
}

std::string ReplayDiff::to_string() const {
  std::ostringstream os;
  if (!drifted) {
    os << "no drift (" << recorded_overrides << " overrides)";
    return os.str();
  }
  os << "DRIFT: recorded " << recorded_overrides << " vs replayed "
     << replayed_overrides << " overrides, " << changed_prefixes.size()
     << " prefix(es) changed";
  if (!loads_match) os << ", loads differ";
  if (!summary_match) os << ", summary differs";
  return os.str();
}

CycleSnapshot apply_mutations(const CycleSnapshot& snapshot,
                              const std::vector<Mutation>& mutations) {
  CycleSnapshot mutated = snapshot;
  for (const Mutation& m : mutations) {
    switch (m.kind) {
      case Mutation::Kind::kScaleDemand:
        for (DemandRecord& d : mutated.demand) d.rate = d.rate * m.value;
        break;
      case Mutation::Kind::kScaleCapacity:
        for (InterfaceRecord& iface : mutated.interfaces) {
          if (iface.id == m.interface) iface.capacity = iface.capacity * m.value;
        }
        break;
      case Mutation::Kind::kSetCapacity:
        for (InterfaceRecord& iface : mutated.interfaces) {
          if (iface.id == m.interface) {
            iface.capacity = net::Bandwidth::bps(m.value);
          }
        }
        break;
      case Mutation::Kind::kDrain:
      case Mutation::Kind::kUndrain:
        for (InterfaceRecord& iface : mutated.interfaces) {
          if (iface.id == m.interface) {
            iface.drained = m.kind == Mutation::Kind::kDrain;
          }
        }
        break;
      case Mutation::Kind::kOverloadThreshold:
        mutated.allocator.overload_threshold = m.value;
        break;
      case Mutation::Kind::kTargetUtilization:
        mutated.allocator.target_utilization = m.value;
        break;
      case Mutation::Kind::kDetourHeadroom:
        mutated.allocator.detour_headroom = m.value;
        break;
      case Mutation::Kind::kMaxOverrides:
        mutated.allocator.max_overrides = static_cast<std::size_t>(m.value);
        break;
      case Mutation::Kind::kAllowSplitting:
        mutated.allocator.allow_prefix_splitting = m.value != 0;
        break;
    }
  }
  return mutated;
}

std::string Mutation::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kScaleDemand:
      os << "scale-demand x" << value;
      break;
    case Kind::kScaleCapacity:
      os << "scale-capacity iface " << interface.value() << " x" << value;
      break;
    case Kind::kSetCapacity:
      os << "set-capacity iface " << interface.value() << " to "
         << net::Bandwidth::bps(value).to_string();
      break;
    case Kind::kDrain:
      os << "drain iface " << interface.value();
      break;
    case Kind::kUndrain:
      os << "undrain iface " << interface.value();
      break;
    case Kind::kOverloadThreshold:
      os << "overload-threshold=" << value;
      break;
    case Kind::kTargetUtilization:
      os << "target-utilization=" << value;
      break;
    case Kind::kDetourHeadroom:
      os << "detour-headroom=" << value;
      break;
    case Kind::kMaxOverrides:
      os << "max-overrides=" << static_cast<std::size_t>(value);
      break;
    case Kind::kAllowSplitting:
      os << (value != 0 ? "allow-splitting" : "forbid-splitting");
      break;
  }
  return os.str();
}

net::Bandwidth WhatIfReport::detoured(const core::AllocationResult& r) const {
  net::Bandwidth total;
  for (const core::Override& o : r.overrides) total += o.rate;
  return total;
}

std::map<telemetry::InterfaceId, net::Bandwidth> WhatIfReport::load_delta()
    const {
  std::map<telemetry::InterfaceId, net::Bandwidth> delta;
  for (const auto& [id, load] : mutated.final_load) {
    const auto it = baseline.final_load.find(id);
    const net::Bandwidth before =
        it == baseline.final_load.end() ? net::Bandwidth::zero() : it->second;
    const net::Bandwidth d = load - before;
    if (std::abs(d.bits_per_sec()) > 1e-6) delta[id] = d;
  }
  for (const auto& [id, load] : baseline.final_load) {
    if (!mutated.final_load.contains(id) &&
        std::abs(load.bits_per_sec()) > 1e-6) {
      delta[id] = net::Bandwidth::zero() - load;
    }
  }
  return delta;
}

std::string WhatIfReport::to_string() const {
  std::ostringstream os;
  os << "overrides " << baseline.overrides.size() << " -> "
     << mutated.overrides.size() << ", detoured "
     << detoured(baseline).to_string() << " -> "
     << detoured(mutated).to_string() << ", unresolved overload "
     << baseline.unresolved_overload.to_string() << " -> "
     << mutated.unresolved_overload.to_string() << ", unroutable "
     << baseline.unroutable.to_string() << " -> "
     << mutated.unroutable.to_string();
  return os.str();
}

WhatIfReport what_if(const CycleSnapshot& snapshot,
                     const std::vector<Mutation>& mutations) {
  WhatIfReport report;
  report.baseline = rerun(snapshot);
  report.mutated = rerun(apply_mutations(snapshot, mutations));
  return report;
}

}  // namespace ef::audit
