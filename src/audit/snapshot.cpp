#include "audit/snapshot.h"

#include <algorithm>
#include <bit>

#include "net/bytes.h"

namespace ef::audit {

namespace {

// Doubles travel as their IEEE-754 bit pattern so values round-trip
// exactly — replay equality is bitwise, not epsilon-based.
void put_f64(net::BufWriter& w, double v) {
  w.u64(std::bit_cast<std::uint64_t>(v));
}
double get_f64(net::BufReader& r) {
  return std::bit_cast<double>(r.u64());
}

void put_bw(net::BufWriter& w, net::Bandwidth bw) {
  put_f64(w, bw.bits_per_sec());
}
net::Bandwidth get_bw(net::BufReader& r) {
  return net::Bandwidth::bps(get_f64(r));
}

void put_time(net::BufWriter& w, net::SimTime t) {
  w.u64(static_cast<std::uint64_t>(t.millis_value()));
}
net::SimTime get_time(net::BufReader& r) {
  return net::SimTime::millis(static_cast<std::int64_t>(r.u64()));
}

void put_ip(net::BufWriter& w, const net::IpAddr& addr) {
  w.u8(static_cast<std::uint8_t>(addr.family()));
  w.bytes(addr.bytes().data(), addr.bytes().size());
}
net::IpAddr get_ip(net::BufReader& r) {
  const auto family = static_cast<net::Family>(r.u8());
  std::array<std::uint8_t, 16> bytes{};
  r.bytes(bytes.data(), bytes.size());
  if (family == net::Family::kV4) return net::IpAddr::v4(
      (static_cast<std::uint32_t>(bytes[0]) << 24) |
      (static_cast<std::uint32_t>(bytes[1]) << 16) |
      (static_cast<std::uint32_t>(bytes[2]) << 8) |
      static_cast<std::uint32_t>(bytes[3]));
  if (family == net::Family::kV6) return net::IpAddr::v6(bytes);
  r.fail();
  return {};
}

void put_prefix(net::BufWriter& w, const net::Prefix& prefix) {
  put_ip(w, prefix.address());
  w.u8(static_cast<std::uint8_t>(prefix.length()));
}
net::Prefix get_prefix(net::BufReader& r) {
  const net::IpAddr addr = get_ip(r);
  const int length = r.u8();
  return net::Prefix(addr, length);
}

void put_as_path(net::BufWriter& w, const bgp::AsPath& path) {
  w.u16(static_cast<std::uint16_t>(path.length()));
  for (bgp::AsNumber as : path.ases()) w.u32(as.value());
}
bgp::AsPath get_as_path(net::BufReader& r) {
  const std::size_t count = r.u16();
  std::vector<bgp::AsNumber> ases;
  ases.reserve(count);
  for (std::size_t i = 0; i < count && r.ok(); ++i) {
    ases.emplace_back(r.u32());
  }
  return bgp::AsPath(std::move(ases));
}

void put_route(net::BufWriter& w, const bgp::Route& route) {
  put_prefix(w, route.prefix);
  w.u8(static_cast<std::uint8_t>(route.attrs.origin));
  put_as_path(w, route.attrs.as_path);
  put_ip(w, route.attrs.next_hop);
  w.u32(route.attrs.med.value());
  w.u8(route.attrs.has_med ? 1 : 0);
  w.u32(route.attrs.local_pref.value());
  w.u8(route.attrs.has_local_pref ? 1 : 0);
  w.u16(static_cast<std::uint16_t>(route.attrs.communities.size()));
  for (bgp::Community c : route.attrs.communities) w.u32(c.raw());
  w.u32(route.learned_from.value());
  w.u8(static_cast<std::uint8_t>(route.peer_type));
  w.u32(route.neighbor_as.value());
  w.u32(route.neighbor_router_id.value());
  put_time(w, route.learned_at);
}
bgp::Route get_route(net::BufReader& r) {
  bgp::Route route;
  route.prefix = get_prefix(r);
  route.attrs.origin = static_cast<bgp::Origin>(r.u8());
  route.attrs.as_path = get_as_path(r);
  route.attrs.next_hop = get_ip(r);
  route.attrs.med = bgp::Med(r.u32());
  route.attrs.has_med = r.u8() != 0;
  route.attrs.local_pref = bgp::LocalPref(r.u32());
  route.attrs.has_local_pref = r.u8() != 0;
  const std::size_t communities = r.u16();
  route.attrs.communities.reserve(communities);
  for (std::size_t i = 0; i < communities && r.ok(); ++i) {
    route.attrs.communities.emplace_back(r.u32());
  }
  route.learned_from = bgp::PeerId(r.u32());
  route.peer_type = static_cast<bgp::PeerType>(r.u8());
  route.neighbor_as = bgp::AsNumber(r.u32());
  route.neighbor_router_id = bgp::RouterId(r.u32());
  route.learned_at = get_time(r);
  return route;
}

void put_override(net::BufWriter& w, const core::Override& o) {
  put_prefix(w, o.prefix);
  put_bw(w, o.rate);
  put_ip(w, o.next_hop);
  put_as_path(w, o.as_path);
  w.u32(o.from_interface.value());
  w.u32(o.target_interface.value());
  w.u8(static_cast<std::uint8_t>(o.from_type));
  w.u8(static_cast<std::uint8_t>(o.target_type));
}
core::Override get_override(net::BufReader& r) {
  core::Override o;
  o.prefix = get_prefix(r);
  o.rate = get_bw(r);
  o.next_hop = get_ip(r);
  o.as_path = get_as_path(r);
  o.from_interface = telemetry::InterfaceId(r.u32());
  o.target_interface = telemetry::InterfaceId(r.u32());
  o.from_type = static_cast<bgp::PeerType>(r.u8());
  o.target_type = static_cast<bgp::PeerType>(r.u8());
  return o;
}

void put_overrides(net::BufWriter& w, const std::vector<core::Override>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const core::Override& o : v) put_override(w, o);
}
std::vector<core::Override> get_overrides(net::BufReader& r) {
  const std::size_t count = r.u32();
  std::vector<core::Override> v;
  for (std::size_t i = 0; i < count && r.ok(); ++i) {
    v.push_back(get_override(r));
  }
  return v;
}

void put_load_map(
    net::BufWriter& w,
    const std::map<telemetry::InterfaceId, net::Bandwidth>& load) {
  w.u32(static_cast<std::uint32_t>(load.size()));
  for (const auto& [id, bw] : load) {
    w.u32(id.value());
    put_bw(w, bw);
  }
}
std::map<telemetry::InterfaceId, net::Bandwidth> get_load_map(
    net::BufReader& r) {
  const std::size_t count = r.u32();
  std::map<telemetry::InterfaceId, net::Bandwidth> load;
  for (std::size_t i = 0; i < count && r.ok(); ++i) {
    const telemetry::InterfaceId id{r.u32()};
    load[id] = get_bw(r);
  }
  return load;
}

}  // namespace

std::vector<std::uint8_t> CycleSnapshot::serialize() const {
  net::BufWriter w;
  w.u16(version);
  put_time(w, when);

  put_f64(w, allocator.overload_threshold);
  put_f64(w, allocator.target_utilization);
  put_f64(w, allocator.detour_headroom);
  w.u8(static_cast<std::uint8_t>(allocator.order));
  w.u64(allocator.max_overrides);
  w.u8(allocator.allow_prefix_splitting ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(allocator.max_split_depth));
  w.u8(decision.compare_med_across_as ? 1 : 0);
  w.u8(decision.prefer_oldest ? 1 : 0);

  w.u32(static_cast<std::uint32_t>(interfaces.size()));
  for (const InterfaceRecord& iface : interfaces) {
    w.u32(iface.id.value());
    put_bw(w, iface.capacity);
    w.u8(iface.drained ? 1 : 0);
  }
  w.u32(static_cast<std::uint32_t>(egress.size()));
  for (const EgressRecord& e : egress) {
    put_ip(w, e.address);
    w.u32(e.interface.value());
    w.u8(static_cast<std::uint8_t>(e.type));
  }
  w.u32(static_cast<std::uint32_t>(demand.size()));
  for (const DemandRecord& d : demand) {
    put_prefix(w, d.prefix);
    put_bw(w, d.rate);
  }
  w.u32(static_cast<std::uint32_t>(routes.size()));
  for (const bgp::Route& route : routes) put_route(w, route);

  put_overrides(w, allocated);
  put_load_map(w, projected_load);
  put_load_map(w, final_load);
  w.u64(overloaded_interfaces);
  put_bw(w, unresolved_overload);
  put_bw(w, unroutable);
  put_overrides(w, applied);
  w.u64(safety.dropped_invalid_route);
  w.u64(safety.dropped_by_budget);
  w.u64(added);
  w.u64(removed);
  w.u64(retained_by_hysteresis);
  w.u64(perf_overrides);
  // v2 trailer: execution annotations, appended so a v1 reader that
  // stopped here would have consumed a complete v1 record.
  w.u64(dirty_prefixes);
  w.u64(escalations);
  w.u64(full_fallbacks);
  w.u8(incremental_cycle ? 1 : 0);
  w.u64(allocation_wall_ns);
  return w.take();
}

std::optional<CycleSnapshot> CycleSnapshot::deserialize(
    std::span<const std::uint8_t> bytes) {
  net::BufReader r(bytes.data(), bytes.size());
  CycleSnapshot s;
  s.version = r.u16();
  if (!r.ok() || s.version < 1 || s.version > kSnapshotVersion) {
    return std::nullopt;
  }
  s.when = get_time(r);

  s.allocator.overload_threshold = get_f64(r);
  s.allocator.target_utilization = get_f64(r);
  s.allocator.detour_headroom = get_f64(r);
  s.allocator.order = static_cast<core::DetourOrder>(r.u8());
  s.allocator.max_overrides = r.u64();
  s.allocator.allow_prefix_splitting = r.u8() != 0;
  s.allocator.max_split_depth = static_cast<int>(r.u32());
  s.decision.compare_med_across_as = r.u8() != 0;
  s.decision.prefer_oldest = r.u8() != 0;

  const std::size_t interface_count = r.u32();
  for (std::size_t i = 0; i < interface_count && r.ok(); ++i) {
    InterfaceRecord iface;
    iface.id = telemetry::InterfaceId(r.u32());
    iface.capacity = get_bw(r);
    iface.drained = r.u8() != 0;
    s.interfaces.push_back(iface);
  }
  const std::size_t egress_count = r.u32();
  for (std::size_t i = 0; i < egress_count && r.ok(); ++i) {
    EgressRecord e;
    e.address = get_ip(r);
    e.interface = telemetry::InterfaceId(r.u32());
    e.type = static_cast<bgp::PeerType>(r.u8());
    s.egress.push_back(e);
  }
  const std::size_t demand_count = r.u32();
  for (std::size_t i = 0; i < demand_count && r.ok(); ++i) {
    DemandRecord d;
    d.prefix = get_prefix(r);
    d.rate = get_bw(r);
    s.demand.push_back(d);
  }
  const std::size_t route_count = r.u32();
  for (std::size_t i = 0; i < route_count && r.ok(); ++i) {
    s.routes.push_back(get_route(r));
  }

  s.allocated = get_overrides(r);
  s.projected_load = get_load_map(r);
  s.final_load = get_load_map(r);
  s.overloaded_interfaces = r.u64();
  s.unresolved_overload = get_bw(r);
  s.unroutable = get_bw(r);
  s.applied = get_overrides(r);
  s.safety.dropped_invalid_route = r.u64();
  s.safety.dropped_by_budget = r.u64();
  s.added = r.u64();
  s.removed = r.u64();
  s.retained_by_hysteresis = r.u64();
  s.perf_overrides = r.u64();
  if (s.version >= 2) {
    s.dirty_prefixes = r.u64();
    s.escalations = r.u64();
    s.full_fallbacks = r.u64();
    s.incremental_cycle = r.u8() != 0;
    s.allocation_wall_ns = r.u64();
  }
  if (!r.ok()) return std::nullopt;
  return s;
}

std::vector<std::uint8_t> RecoverySnapshot::serialize() const {
  net::BufWriter w;
  w.u16(kRecoverySnapshotTag);
  put_time(w, when);
  put_overrides(w, overrides);
  return w.take();
}

std::optional<RecoverySnapshot> RecoverySnapshot::deserialize(
    std::span<const std::uint8_t> bytes) {
  net::BufReader r(bytes.data(), bytes.size());
  if (r.u16() != kRecoverySnapshotTag || !r.ok()) return std::nullopt;
  RecoverySnapshot s;
  s.when = get_time(r);
  s.overrides = get_overrides(r);
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return s;
}

CycleSnapshot capture_cycle(const core::Controller::CycleRecord& record,
                            bool include_timing) {
  CycleSnapshot s;
  s.when = record.stats.when;
  s.allocator = record.allocator_config;
  s.decision = record.rib.decision_config();

  record.interfaces.for_each(
      [&](telemetry::InterfaceId id, const telemetry::InterfaceState& state) {
        s.interfaces.push_back({id, state.capacity, state.drained});
      });
  // InterfaceRegistry iterates an ordered map, but sort defensively — the
  // serialized bytes must be a pure function of the cycle state.
  std::sort(s.interfaces.begin(), s.interfaces.end(),
            [](const InterfaceRecord& a, const InterfaceRecord& b) {
              return a.id < b.id;
            });

  record.demand.for_each([&](const net::Prefix& prefix, net::Bandwidth rate) {
    s.demand.push_back({prefix, rate});
  });
  std::sort(s.demand.begin(), s.demand.end(),
            [](const DemandRecord& a, const DemandRecord& b) {
              return a.prefix < b.prefix;
            });

  std::vector<net::Prefix> prefixes;
  record.rib.for_each(
      [&](const net::Prefix& prefix, std::span<const bgp::Route>) {
        prefixes.push_back(prefix);
      });
  std::sort(prefixes.begin(), prefixes.end());
  std::map<net::IpAddr, EgressRecord> egress_map;
  for (const net::Prefix& prefix : prefixes) {
    for (const bgp::Route& route : record.rib.candidates(prefix)) {
      if (route.peer_type == bgp::PeerType::kController) continue;
      s.routes.push_back(route);
      if (!egress_map.contains(route.attrs.next_hop)) {
        if (const auto egress = record.resolve(route)) {
          // Key on NEXT_HOP (what the replay resolver looks up), not the
          // view's echo of it.
          egress_map[route.attrs.next_hop] =
              {route.attrs.next_hop, egress->interface, egress->type};
        }
      }
    }
  }
  s.egress.reserve(egress_map.size());
  for (const auto& [address, e] : egress_map) s.egress.push_back(e);

  const core::AllocationResult& allocation = record.stats.allocation;
  s.allocated = allocation.overrides;
  s.projected_load = allocation.projected_load;
  s.final_load = allocation.final_load;
  s.overloaded_interfaces = allocation.overloaded_interfaces;
  s.unresolved_overload = allocation.unresolved_overload;
  s.unroutable = allocation.unroutable;
  s.applied.reserve(record.applied.size());
  for (const auto& [prefix, override_entry] : record.applied) {
    s.applied.push_back(override_entry);
  }
  s.safety = record.stats.safety;
  s.added = record.stats.added;
  s.removed = record.stats.removed;
  s.retained_by_hysteresis = record.stats.retained_by_hysteresis;
  s.perf_overrides = record.stats.perf_overrides;
  s.dirty_prefixes = record.stats.dirty_prefixes;
  s.escalations = record.stats.escalations;
  s.full_fallbacks = record.stats.full_fallbacks;
  s.incremental_cycle = record.stats.incremental_cycle;
  // Wall clocks vary run-to-run; deterministic recorders must leave the
  // timing annotation zero so identical simulations journal identical
  // bytes (see the header contract).
  if (include_timing) {
    s.allocation_wall_ns =
        static_cast<std::uint64_t>(record.stats.allocation_wall.count());
  }
  return s;
}

}  // namespace ef::audit
