// Deterministic replay and what-if analysis over cycle snapshots.
//
// Replay re-runs the stateless allocator on a snapshot's recorded inputs
// and diffs the result against the recorded decision — a drift of zero is
// an end-to-end proof of the paper's stateless-controller property (and of
// snapshot fidelity). The what-if engine mutates a snapshot's inputs
// (scale demand, cut or drain an interface, change allocator knobs) and
// reports how the allocation would have changed, turning a production
// journal into a counterfactual test bed.
#pragma once

#include <string>
#include <vector>

#include "audit/snapshot.h"

namespace ef::audit {

/// Difference between a snapshot's recorded allocation and a re-run.
struct ReplayDiff {
  bool drifted = false;

  std::size_t recorded_overrides = 0;
  std::size_t replayed_overrides = 0;
  /// Prefixes whose override differs (present on one side only, or same
  /// prefix steered differently).
  std::vector<net::Prefix> changed_prefixes;
  bool loads_match = true;    // projected + final per-interface loads
  bool summary_match = true;  // overload/unroutable counters

  std::string to_string() const;
};

/// Rebuilt allocator inputs, exposed so the what-if engine and tests can
/// run the allocator directly against a snapshot's state.
struct ReplayEnv {
  bgp::Rib rib;
  telemetry::DemandMatrix demand;
  telemetry::InterfaceRegistry interfaces;
  std::map<net::IpAddr, core::EgressView> egress;

  explicit ReplayEnv(const CycleSnapshot& snapshot);
  core::EgressResolver resolver() const;
};

/// Re-runs the stateless allocator on the snapshot's recorded inputs.
core::AllocationResult rerun(const CycleSnapshot& snapshot);

/// rerun() + field-by-field diff against the recorded outputs.
ReplayDiff replay(const CycleSnapshot& snapshot);

/// One input mutation for what-if analysis.
struct Mutation {
  enum class Kind : std::uint8_t {
    kScaleDemand,        // value = factor applied to every prefix's rate
    kScaleCapacity,      // value = factor applied to one interface
    kSetCapacity,        // value = new capacity in bits per second
    kDrain,              // drain one interface
    kUndrain,            // clear the drain flag
    kOverloadThreshold,  // value replaces AllocatorConfig knob
    kTargetUtilization,
    kDetourHeadroom,
    kMaxOverrides,       // value cast to a count
    kAllowSplitting,     // value != 0 enables prefix splitting
  };

  Kind kind = Kind::kScaleDemand;
  telemetry::InterfaceId interface;  // for the per-interface kinds
  double value = 0;

  std::string to_string() const;
};

/// Returns a copy of `snapshot` with the mutations applied to its inputs.
/// Recorded outputs are left untouched (they describe what really ran).
CycleSnapshot apply_mutations(const CycleSnapshot& snapshot,
                              const std::vector<Mutation>& mutations);

/// Counterfactual result for one snapshot: baseline is the *replayed*
/// allocation of the unmutated inputs (identical to the recording when
/// drift is zero), so the delta isolates the mutation's effect.
struct WhatIfReport {
  core::AllocationResult baseline;
  core::AllocationResult mutated;

  long override_delta() const {
    return static_cast<long>(mutated.overrides.size()) -
           static_cast<long>(baseline.overrides.size());
  }
  net::Bandwidth detoured(const core::AllocationResult& r) const;
  /// Per-interface final-load change, only interfaces that moved.
  std::map<telemetry::InterfaceId, net::Bandwidth> load_delta() const;

  std::string to_string() const;
};

WhatIfReport what_if(const CycleSnapshot& snapshot,
                     const std::vector<Mutation>& mutations);

}  // namespace ef::audit
