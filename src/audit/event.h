// Failsafe events: journal records for the efd degradation ladder.
//
// Cycle snapshots capture what the controller decided; failsafe events
// capture when it *refused* to decide — every transition of the
// degradation ladder (healthy → hold-last-good → fail-static → …) with
// the input-health evidence that forced it. Replaying a journal can
// therefore audit not just the allocations but the safety behaviour:
// "did the daemon fail static when its inputs went stale, and when?".
//
// Events share the journal's CRC32 framing with snapshots and are told
// apart by the leading u16: snapshots start with kSnapshotVersion (1),
// events with kFailsafeEventTag (0xEFE7). Each deserializer rejects the
// other's records, so mixed journals stay safe to read with either.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/units.h"

namespace ef::audit {

/// Leading u16 distinguishing a failsafe event from a CycleSnapshot
/// (whose first field is kSnapshotVersion). Deliberately far from any
/// plausible snapshot version number.
inline constexpr std::uint16_t kFailsafeEventTag = 0xEFE7;

/// Leading u16 of an enforcement-audit event (see AuditEvent below).
/// Lives in the same journal streams as snapshots and failsafe events;
/// every deserializer rejects the other tags.
inline constexpr std::uint16_t kAuditEventTag = 0xEFA1;

/// Rung of the degradation ladder (wire encoding — append only).
enum class FailsafeMode : std::uint8_t {
  kHealthy = 0,       // fresh inputs, cycles run normally
  kHoldLastGood = 1,  // degraded inputs: keep the previous override set
  kFailStatic = 2,    // stale inputs: withdraw everything, plain BGP
};

/// What the guarded cycle did (wire encoding — append only).
enum class FailsafeAction : std::uint8_t {
  kRun = 0,       // full allocation cycle
  kHold = 1,      // reused last-good overrides
  kWithdraw = 2,  // withdrew all overrides
};

const char* failsafe_mode_name(FailsafeMode mode);
const char* failsafe_action_name(FailsafeAction action);

/// One degradation-ladder transition, with the evidence behind it.
struct FailsafeEvent {
  net::SimTime when;
  FailsafeMode from_mode = FailsafeMode::kHealthy;
  FailsafeMode to_mode = FailsafeMode::kHealthy;
  FailsafeAction action = FailsafeAction::kRun;
  /// Human-readable cause, e.g. "demand stale 210s > 90s".
  std::string reason;
  std::uint32_t routers_known = 0;
  std::uint32_t routers_down = 0;
  /// Age of the newest demand window at decision time; ~0 when no
  /// demand was ever seen.
  std::uint64_t demand_age_ms = 0;
  /// Overrides left active after the action (0 for fail-static).
  std::uint64_t overrides_active = 0;

  std::vector<std::uint8_t> serialize() const;

  /// Decodes one event; nullopt on malformed bytes or a record that is
  /// not a failsafe event (e.g. a cycle snapshot).
  static std::optional<FailsafeEvent> deserialize(
      std::span<const std::uint8_t> bytes);

  friend bool operator==(const FailsafeEvent&, const FailsafeEvent&) = default;
};

/// One enforcement-audit pass: the controller read the peering router's
/// actual state back, diffed it against its intended override set, and
/// (when they diverged) repaired what the per-pass budget allowed.
/// Journaled alongside cycle snapshots and failsafe events so a replay
/// can audit the audit: which cycles diverged, why, and what it cost to
/// converge again.
struct AuditEvent {
  net::SimTime when;
  /// Prefixes the controller intended to have enforced at audit time.
  std::uint64_t intended = 0;
  /// Controller-learned prefixes actually present at the router(s).
  std::uint64_t observed = 0;
  // Divergence taxonomy (counts; docs/FAILSAFE.md defines the classes).
  std::uint64_t missing = 0;      // intended but absent at the router
  std::uint64_t extra = 0;        // present but no longer intended
  std::uint64_t wrong_attrs = 0;  // present with mismatched attributes
  // Bounded deterministic remediation performed by this pass.
  std::uint64_t repaired_announce = 0;  // re-announced (missing/wrong)
  std::uint64_t repaired_withdraw = 0;  // force-withdrawn (extra)
  std::uint64_t unrepaired = 0;         // past the per-pass budget
  /// Consecutive divergent audits including this one (0 = convergent).
  std::uint32_t divergent_streak = 0;
  /// The streak crossed the ladder's escalation threshold.
  bool escalated = false;

  std::vector<std::uint8_t> serialize() const;

  /// Decodes one event; nullopt on malformed bytes or a record that is
  /// not an audit event.
  static std::optional<AuditEvent> deserialize(
      std::span<const std::uint8_t> bytes);

  friend bool operator==(const AuditEvent&, const AuditEvent&) = default;
};

}  // namespace ef::audit
