// Cycle snapshots: the complete input and output of one controller
// allocation cycle, captured as a value and serialized with a versioned
// binary wire format.
//
// The paper's controller is stateless — every cycle is a pure function of
// (RIB, demand, interface state). A snapshot records exactly that triple
// plus the decision the controller made, which is what makes the offline
// replay/what-if engine (replay.h) possible: re-running the allocator on
// a snapshot must reproduce the recorded allocation bit for bit.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "core/controller.h"

namespace ef::audit {

/// Bump when the wire format changes; the reader rejects unknown versions.
/// v2 appended the incremental-cycle annotation trailer (dirty set size,
/// escalations, fallback flag, wall time); v1 snapshots still read fine
/// with the trailer defaulted to zeros.
inline constexpr std::uint16_t kSnapshotVersion = 2;

/// One egress interface's state at capture time.
struct InterfaceRecord {
  telemetry::InterfaceId id;
  net::Bandwidth capacity;
  bool drained = false;

  friend bool operator==(const InterfaceRecord&,
                         const InterfaceRecord&) = default;
};

/// One entry of the NEXT_HOP -> egress resolution map (what the routers'
/// forwarding planes would do with each candidate route).
struct EgressRecord {
  net::IpAddr address;
  telemetry::InterfaceId interface;
  bgp::PeerType type = bgp::PeerType::kTransit;

  friend bool operator==(const EgressRecord&, const EgressRecord&) = default;
};

/// Demand for one destination prefix.
struct DemandRecord {
  net::Prefix prefix;
  net::Bandwidth rate;

  friend bool operator==(const DemandRecord&, const DemandRecord&) = default;
};

/// One cycle's complete controller input and output.
struct CycleSnapshot {
  std::uint16_t version = kSnapshotVersion;
  net::SimTime when;

  // --- Input: everything the stateless allocator consumed. -------------
  core::AllocatorConfig allocator;
  bgp::DecisionConfig decision;
  std::vector<InterfaceRecord> interfaces;  // sorted by id
  std::vector<EgressRecord> egress;         // sorted by address
  std::vector<DemandRecord> demand;         // sorted by prefix
  /// All natural (non-controller) candidate routes, grouped by prefix in
  /// prefix order, preserving the RIB's per-prefix storage order.
  std::vector<bgp::Route> routes;

  // --- Output: what the controller decided. -----------------------------
  std::vector<core::Override> allocated;  // raw allocator output
  std::map<telemetry::InterfaceId, net::Bandwidth> projected_load;
  std::map<telemetry::InterfaceId, net::Bandwidth> final_load;
  std::uint64_t overloaded_interfaces = 0;
  net::Bandwidth unresolved_overload;
  net::Bandwidth unroutable;
  /// Post-hysteresis/advisor/safety override set actually enforced.
  std::vector<core::Override> applied;
  core::SafetyStats safety;
  std::uint64_t added = 0;
  std::uint64_t removed = 0;
  std::uint64_t retained_by_hysteresis = 0;
  std::uint64_t perf_overrides = 0;

  // --- Annotations (v2): how the cycle executed. ------------------------
  // Execution metadata, never decision inputs — replay ignores them when
  // verifying (a recompute of an incremental cycle must match regardless
  // of how the original was computed; that IS the drift check).
  std::uint64_t dirty_prefixes = 0;
  std::uint64_t escalations = 0;
  std::uint64_t full_fallbacks = 0;
  bool incremental_cycle = false;
  /// Wall-clock nanoseconds the allocator call took, so replayed journals
  /// can compare incremental vs full cycle cost offline. Stamped only
  /// when capture_cycle() is told to include timing (the live efd path):
  /// deterministic recorders leave it zero, because wall clocks vary
  /// run-to-run and journal bytes from identical simulations must stay
  /// bitwise identical.
  std::uint64_t allocation_wall_ns = 0;

  /// Compact big-endian binary encoding (see DESIGN.md "Auditing &
  /// replay" for the layout).
  std::vector<std::uint8_t> serialize() const;

  /// Decodes one snapshot; nullopt on malformed bytes or an unsupported
  /// version.
  static std::optional<CycleSnapshot> deserialize(
      std::span<const std::uint8_t> bytes);

  friend bool operator==(const CycleSnapshot&, const CycleSnapshot&) = default;
};

/// Leading u16 of a warm-restart recovery record (see RecoverySnapshot).
/// Disjoint from every snapshot version and from the event tags in
/// event.h, so a recovery file fed to the wrong reader is rejected.
inline constexpr std::uint16_t kRecoverySnapshotTag = 0xEFC0;

/// The minimum state efd needs to resume enforcement after a crash: the
/// last-good override set and when it was computed. Written atomically to
/// the recovery file each healthy cycle and on orderly shutdown; read
/// back by `efd --recover` to enter hold-last-good instead of cold
/// fail-static (see docs/FAILSAFE.md, warm-restart runbook). Uses the
/// same big-endian wire helpers as CycleSnapshot and travels in the same
/// EFJ1 CRC framing, so corruption is detected the same way journal
/// corruption is.
struct RecoverySnapshot {
  net::SimTime when;
  std::vector<core::Override> overrides;  // sorted by prefix on write

  std::vector<std::uint8_t> serialize() const;

  /// Decodes one record; nullopt on malformed bytes or a wrong tag.
  static std::optional<RecoverySnapshot> deserialize(
      std::span<const std::uint8_t> bytes);

  friend bool operator==(const RecoverySnapshot&,
                         const RecoverySnapshot&) = default;
};

/// Builds a snapshot from a controller cycle callback. Controller-injected
/// routes are excluded; everything else is captured verbatim, in sorted
/// order so identical cycle state serializes to identical bytes. With
/// `include_timing` the allocation wall time is stamped too — live
/// services want it; deterministic recorders (simulation journals, whose
/// bytes are compared across runs and thread counts) must not.
CycleSnapshot capture_cycle(const core::Controller::CycleRecord& record,
                            bool include_timing = false);

}  // namespace ef::audit
