#include "audit/journal.h"

#include <array>

#include "net/bytes.h"

namespace ef::audit {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

std::uint32_t read_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

constexpr std::size_t kFrameHeader = 12;  // magic + length + crc

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const std::vector<std::uint8_t>& data) {
  return crc32(data.data(), data.size());
}

std::vector<std::uint8_t> encode_frame(
    const std::vector<std::uint8_t>& record) {
  net::BufWriter w;
  w.u32(kFrameMagic);
  w.u32(static_cast<std::uint32_t>(record.size()));
  w.u32(crc32(record));
  w.bytes(record);
  return w.take();
}

JournalWriter::JournalWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  net::BufWriter w;
  w.u32(kJournalMagic);
  const auto header = w.take();
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
  bytes_ = header.size();
}

void JournalWriter::append(const std::vector<std::uint8_t>& record) {
  const auto frame = encode_frame(record);
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  if (out_.good()) {
    ++records_;
    bytes_ += frame.size();
  }
}

std::optional<std::vector<std::uint8_t>> JournalReader::load(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return bytes;
}

JournalReader::JournalReader(std::vector<std::uint8_t> bytes)
    : bytes_(std::move(bytes)) {
  if (bytes_.size() < 4 || read_u32(bytes_.data()) != kJournalMagic) {
    stats_.bad_header = true;
    // Keep scanning anyway — frames may still be recoverable.
  } else {
    pos_ = 4;
  }
}

std::optional<std::vector<std::uint8_t>> JournalReader::next() {
  while (true) {
    // Scan to the next frame magic. A linear byte scan is only entered
    // after corruption; the happy path lands on a magic immediately.
    std::size_t m = pos_;
    while (m + 4 <= bytes_.size() && read_u32(bytes_.data() + m) != kFrameMagic) {
      ++m;
    }
    if (m + 4 > bytes_.size()) {
      // No further frame start. Any leftover bytes are a cut-off frame
      // (or corruption indistinguishable from one).
      if (pending_incomplete_ || m < bytes_.size()) {
        stats_.truncated_tail = true;
      }
      pos_ = bytes_.size();
      return std::nullopt;
    }
    if (m != pos_) ++stats_.corrupt_skipped;  // garbage gap resynced over
    pos_ = m;

    if (bytes_.size() - pos_ < kFrameHeader) {
      stats_.truncated_tail = true;
      pos_ = bytes_.size();
      return std::nullopt;
    }
    const std::uint32_t length = read_u32(bytes_.data() + pos_ + 4);
    const std::uint32_t crc = read_u32(bytes_.data() + pos_ + 8);
    if (length > bytes_.size() - pos_ - kFrameHeader) {
      // Payload extends past end of file: a truncated final append, or a
      // corrupted length field. Resync past this magic; if nothing else
      // follows, the end-of-stream path above reports the truncation.
      pending_incomplete_ = true;
      pos_ += 4;
      continue;
    }
    const std::uint8_t* payload = bytes_.data() + pos_ + kFrameHeader;
    if (crc32(payload, length) != crc) {
      ++stats_.corrupt_skipped;
      pos_ += 4;  // rescan inside the bad frame; lands on the next real one
      continue;
    }

    if (pending_incomplete_) {
      // The earlier incomplete candidate was corruption, not truncation —
      // an intact frame followed it.
      ++stats_.corrupt_skipped;
      pending_incomplete_ = false;
    }
    std::vector<std::uint8_t> record(payload, payload + length);
    pos_ += kFrameHeader + length;
    ++stats_.records;
    return record;
  }
}

}  // namespace ef::audit
