// Safety guard rails applied to the override set before injection —
// the operational checks the paper describes for rolling out an
// automated system that rewrites routing at every PoP:
//
//  * route validation: never inject an override whose target route no
//    longer exists in the RIB (a withdrawn alternate would blackhole);
//  * detour budget: cap the total fraction of traffic the controller may
//    move in one cycle (blast-radius limit during rollout);
//  * override count cap lives in AllocatorConfig::max_overrides.
#pragma once

#include <cstddef>
#include <map>

#include "bgp/rib.h"
#include "core/allocator.h"

namespace ef::core {

struct SafetyConfig {
  /// Maximum fraction of total demand that may be detoured at once.
  /// 1.0 disables the budget.
  double max_detour_fraction = 1.0;
  /// Drop overrides whose target route has disappeared from the RIB.
  bool validate_routes = true;
};

struct SafetyStats {
  std::size_t dropped_invalid_route = 0;
  std::size_t dropped_by_budget = 0;

  std::size_t total_dropped() const {
    return dropped_invalid_route + dropped_by_budget;
  }

  friend bool operator==(const SafetyStats&, const SafetyStats&) = default;
};

class SafetyGuard {
 public:
  explicit SafetyGuard(SafetyConfig config = {}) : config_(config) {}

  /// Filters `overrides` in place. `rib` is the current multi-path view;
  /// `total_demand` scales the detour budget.
  SafetyStats apply(std::map<net::Prefix, Override>& overrides,
                    const bgp::Rib& rib,
                    net::Bandwidth total_demand) const;

  /// True if a non-controller route for `prefix` with this next hop
  /// exists in the RIB (i.e. the override still resolves somewhere real).
  static bool route_still_valid(const bgp::Rib& rib,
                                const net::Prefix& prefix,
                                const net::IpAddr& next_hop);

  const SafetyConfig& config() const { return config_; }

 private:
  SafetyConfig config_;
};

}  // namespace ef::core
