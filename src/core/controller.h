// The Edge Fabric controller: the periodic loop around the allocator.
//
// Every cycle it reads the PoP's BMP-assembled RIB, the sFlow demand
// estimate, and interface state; runs the stateless allocator; and makes
// the router state match by announcing/withdrawing override routes over
// an ordinary BGP session with a high LOCAL_PREF. If the controller dies,
// the session's hold timer expires and the routers discard every
// override — the system degrades to vanilla BGP, never to a wedged state.
#pragma once

#include <chrono>
#include <map>
#include <optional>

#include "bgp/speaker.h"
#include "core/allocator.h"
#include "core/safety.h"
#include "topology/pop.h"

namespace ef::core {

/// Community stamped on every injected override so analyses (and
/// operators) can identify Edge Fabric routes at a glance.
inline constexpr bgp::Community kOverrideCommunity{64998, 1};

/// How overrides reach the forwarding plane.
enum class Enforcement : std::uint8_t {
  /// The paper's deployed design: BGP announcements with high LOCAL_PREF.
  /// Self-reverting — session teardown withdraws everything.
  kBgpInjection = 0,
  /// Espresso-style host routing: program hosts/edge directly with the
  /// egress choice. Faster and finer-grained, but host state survives a
  /// controller crash, so every entry carries a lease that the running
  /// controller keeps refreshing; a dead controller's entries persist
  /// (possibly stale!) until the lease runs out.
  kHostRouting = 1,
  /// Compute-only: run the full allocation + safety pipeline and track
  /// the override set, but never push it anywhere. This is the efd
  /// daemon's mirror mode (decisions are compared against an enforcing
  /// controller) and doubles as an operator dry-run.
  kShadow = 2,
};

struct ControllerConfig {
  AllocatorConfig allocator;
  SafetyConfig safety;
  Enforcement enforcement = Enforcement::kBgpInjection;
  /// Lease on host-routing entries, as a multiple of the cycle period.
  double host_lease_cycles = 3.0;
  net::SimTime cycle_period = net::SimTime::seconds(30);
  /// LOCAL_PREF on injected routes; must exceed every import-policy
  /// default so overrides win the decision process outright.
  std::uint32_t override_local_pref = 1000;
  /// Hysteresis ablation: when > 0, an override whose original interface
  /// is still above this utilization is retained even if the stateless
  /// allocation would drop it. 0 reproduces the paper's pure stateless
  /// behaviour.
  double restore_threshold = 0.0;
  /// Inject to every peering router at the PoP (paper behaviour), so the
  /// loss of one injection session does not strand the overrides.
  bool inject_all_routers = true;
  /// Churn guard: cap on the fraction of tracked prefixes (current ∪
  /// proposed override sets) whose override may *change* in one cycle —
  /// a new override, or an existing one moving to a different egress.
  /// Removals and rate-only refreshes are always free (shrinking toward
  /// plain BGP is the safe direction). Deferred changes keep last
  /// cycle's decision and retry next cycle. 0 disables the guard.
  double max_churn_frac = 0.0;
  /// Cycle watchdog: wall-clock budget for one run_cycle call. On
  /// overrun the cycle aborts fail-static — every override is withdrawn
  /// instead of enforced, because a controller that can no longer keep
  /// up is acting on data older than it thinks. 0 disables the watchdog.
  std::chrono::nanoseconds cycle_budget{0};
  /// Worker threads for the sharded allocation cycle: 1 = serial (the
  /// default; no pool is created), 0 = one worker per hardware thread,
  /// N = exactly N workers (clamped to ThreadPool::kMaxThreads). An
  /// execution knob, never a decision input — allocations are bitwise
  /// identical for every value — and deliberately NOT part of
  /// AllocatorConfig, which is serialized into the audit wire format
  /// (docs/SCALING.md §3 explains how to size it).
  unsigned alloc_threads = 1;
  /// Incremental (delta) allocation: carry the previous cycle's
  /// classification in a ledger and re-rank/re-project only the prefixes
  /// the RIB and demand change logs report dirty. Bitwise identical to
  /// the full recompute every cycle (the allocator falls back to a full
  /// pass whenever it cannot prove that), so — like alloc_threads — this
  /// is an execution knob, never a decision input, and deliberately NOT
  /// part of AllocatorConfig (which is serialized into the audit wire
  /// format). See docs/SCALING.md §8 and DESIGN.md §15.
  bool incremental = false;
  /// Dirty-fraction ceiling for the incremental path: when more than
  /// this fraction of tracked prefixes is dirty, a full recompute is
  /// cheaper than the delta walk and the cycle falls back. Must be a
  /// unit fraction (0 disables the delta path outright — every cycle
  /// falls back).
  double incremental_dirty_ceiling = 0.25;
};

struct CycleStats {
  AllocationResult allocation;
  SafetyStats safety;
  std::size_t overrides_active = 0;
  std::size_t added = 0;
  std::size_t removed = 0;
  std::size_t retained_by_hysteresis = 0;
  std::size_t perf_overrides = 0;  // accepted from the advisor
  /// Override changes the churn guard pushed to a later cycle.
  std::size_t churn_deferred = 0;
  /// The cycle watchdog fired: enforcement was replaced by a full
  /// withdrawal and `applied` is empty.
  bool watchdog_aborted = false;
  net::SimTime when;
  /// Real (wall-clock) time the allocator call took this cycle — the
  /// production observability hook for the ~30s cycle budget. Not
  /// simulated time; recorded in v2 snapshots as an execution annotation
  /// only (replay never consults it — it is not a decision input).
  std::chrono::nanoseconds allocation_wall{0};
  /// Fraction of prefix rankings served from the RIB's epoch cache this
  /// cycle (1.0 = fully warm, 0.0 = every ranking recomputed or no
  /// rankings requested).
  double ranking_cache_hit_rate = 0.0;
  /// The delta path ran this cycle (ControllerConfig::incremental set
  /// and no fallback condition hit).
  bool incremental_cycle = false;
  /// Deduped dirty-set size the incremental engine processed (0 on full
  /// cycles — a fallback recomputes everything without counting).
  std::size_t dirty_prefixes = 0;
  /// Interfaces whose overload class flipped (crossed or un-crossed the
  /// threshold) relative to the previous incremental cycle.
  std::size_t escalations = 0;
  /// 1 when an incremental-mode cycle fell back to a full recompute
  /// (ledger invalid, inputs swapped, trimmed log, resolver change, or
  /// dirty set past the ceiling); always 0 when incremental is off.
  std::size_t full_fallbacks = 0;
};

class Controller {
 public:
  Controller(topology::Pop& pop, ControllerConfig config);

  /// Establishes the injection BGP session(s). With
  /// `inject_all_routers` (default), one session per peering router;
  /// otherwise a single session to `router_index`.
  void connect(int router_index = 0);

  /// True while at least one injection session is established.
  bool connected() const;

  /// Number of currently-established injection sessions.
  std::size_t established_sessions() const;

  /// Failure injection for tests: closes one injection session (by
  /// position in the connect order) without touching the others.
  void drop_session(std::size_t index, net::SimTime now);

  /// Runs one allocation cycle against `demand` and pushes the resulting
  /// override delta to the routers.
  CycleStats run_cycle(const telemetry::DemandMatrix& demand,
                       net::SimTime now);

  /// Fail-static: withdraws every active override without running an
  /// allocation cycle, leaving the routers on plain BGP. This is the
  /// degradation ladder's bottom rung — the daemon calls it when its
  /// inputs are too stale to act on.
  void withdraw_all(net::SimTime now);

  /// Warm restart: adopts `overrides` as the active set and (under BGP
  /// injection) re-injects them through the speaker, exactly as a cycle
  /// that allocated this set would have. The efd daemon calls this on
  /// `--recover` startup with the recovery-file snapshot, so the routers
  /// converge back to the pre-crash state before any fresh inputs
  /// arrive. Invalidates the incremental ledger — the restored set has
  /// no change-log lineage.
  void restore_overrides(const std::vector<Override>& overrides,
                         net::SimTime now);

  /// Auditor repair for in-process BGP injection: re-sends the current
  /// origination UPDATE for each `reannounce` prefix still in the active
  /// set (fixing missing / wrong-attribute divergence at the routers)
  /// and unconditional withdraws for `withdraw` (purging router state
  /// this controller never announced, e.g. a previous incarnation's
  /// leftovers). No-op under kHostRouting/kShadow — the audit read-back
  /// only exists for the BGP enforcement plane.
  void repair_overrides(const std::vector<net::Prefix>& reannounce,
                        const std::vector<net::Prefix>& withdraw,
                        net::SimTime now);

  /// Drops the incremental ledger: the next cycle recomputes in full.
  /// Call on any event the RIB/demand change logs cannot see — failsafe
  /// ladder transitions, external state resets. No-op when incremental
  /// mode is off (the ledger is simply never consulted).
  void invalidate_ledger() { ledger_.invalidate(); }

  /// Drives the injection session's keepalive/hold timers. Must run at
  /// least every hold/3 of simulated time — a controller that stops
  /// ticking is indistinguishable from a dead one and loses its session
  /// (and with it, all overrides). That is the fail-safe, working.
  void tick(net::SimTime now);

  /// Simulates controller failure. Under BGP injection the session
  /// teardown flushes every override immediately (fail-safe). Under host
  /// routing a crash leaves the host entries in place until their leases
  /// expire — exactly the asymmetry the paper weighs; pass
  /// `graceful=true` to model an orderly shutdown that cleans up.
  void shutdown(net::SimTime now, bool graceful = false);

  /// Optional performance-aware extension (paper §6): called each cycle
  /// after capacity allocation with the allocation result; returns extra
  /// overrides to steer prefixes whose BGP-preferred path underperforms.
  /// Advised overrides never displace capacity overrides and are dropped
  /// when the target interface lacks headroom.
  using Advisor = std::function<std::vector<Override>(const AllocationResult&)>;
  void set_advisor(Advisor advisor) { advisor_ = std::move(advisor); }

  /// Everything one cycle consumed and produced, handed to the cycle
  /// observer so an audit recorder (src/audit) can snapshot it without
  /// core depending on the audit subsystem. All references are borrowed
  /// and valid only for the duration of the callback. The RIB reference
  /// is taken after override injection; controller-injected routes
  /// (PeerType::kController) must be ignored by consumers, exactly as the
  /// allocator ignores them.
  struct CycleRecord {
    const telemetry::DemandMatrix& demand;
    const bgp::Rib& rib;
    const telemetry::InterfaceRegistry& interfaces;
    const EgressResolver& resolve;
    const AllocatorConfig& allocator_config;
    const std::map<net::Prefix, Override>& applied;  // post-safety set
    const CycleStats& stats;
  };
  using CycleObserver = std::function<void(const CycleRecord&)>;
  void set_cycle_observer(CycleObserver observer) {
    observer_ = std::move(observer);
  }

  /// Points allocation, safety, and the cycle observer at an external
  /// RIB instead of the PoP's in-process collector. The efd daemon uses
  /// this to run cycles against the RIB its socket-fed collector
  /// assembled; enforcement still flows through the PoP's sessions.
  /// Pass nullptr to revert. The RIB must outlive the controller or the
  /// next set_rib_source call.
  void set_rib_source(const bgp::Rib* rib) { rib_source_ = rib; }

  const std::map<net::Prefix, Override>& active_overrides() const {
    return active_;
  }
  const ControllerConfig& config() const { return config_; }
  bgp::BgpSpeaker& speaker() { return speaker_; }

 private:
  topology::Pop* pop_;
  ControllerConfig config_;
  Allocator allocator_;
  /// Sharded-allocation pool, created only when alloc_threads != 1.
  /// Workers idle between cycles; the pool never outlives the
  /// controller, so no cycle work can run against a dead `this`.
  std::unique_ptr<runtime::ThreadPool> alloc_pool_;
  /// Persistent fast-path scratch: reused every cycle so warm cycles do
  /// not re-allocate; never carries decision state (see Allocator).
  Allocator::Workspace workspace_;
  /// Cross-cycle state for the incremental path; unused (and empty)
  /// unless ControllerConfig::incremental is set.
  Allocator::Ledger ledger_;
  SafetyGuard safety_;
  bgp::BgpSpeaker speaker_;
  std::vector<bgp::PeerId> sessions_;
  const bgp::Rib* rib_source_ = nullptr;  // nullptr = PoP collector RIB
  std::map<net::Prefix, Override> active_;
  Advisor advisor_;
  CycleObserver observer_;
};

}  // namespace ef::core
