#include "core/safety.h"

#include <algorithm>
#include <vector>

namespace ef::core {

bool SafetyGuard::route_still_valid(const bgp::Rib& rib,
                                    const net::Prefix& prefix,
                                    const net::IpAddr& next_hop) {
  // Split overrides are more-specific than any real route, so walk up
  // through covering prefixes: the override is valid if ANY aggregate
  // that contains it is reachable via this next hop.
  for (int length = prefix.length(); length >= 0; --length) {
    const net::Prefix covering(prefix.address(), length);
    for (const bgp::Route& route : rib.candidates(covering)) {
      if (route.peer_type == bgp::PeerType::kController) continue;
      if (route.attrs.next_hop == next_hop) return true;
    }
  }
  return false;
}

SafetyStats SafetyGuard::apply(std::map<net::Prefix, Override>& overrides,
                               const bgp::Rib& rib,
                               net::Bandwidth total_demand) const {
  SafetyStats stats;

  if (config_.validate_routes) {
    for (auto it = overrides.begin(); it != overrides.end();) {
      if (!route_still_valid(rib, it->first, it->second.next_hop)) {
        ++stats.dropped_invalid_route;
        it = overrides.erase(it);
      } else {
        ++it;
      }
    }
  }

  if (config_.max_detour_fraction < 1.0 &&
      total_demand > net::Bandwidth::zero()) {
    const double budget_bps =
        total_demand.bits_per_sec() * config_.max_detour_fraction;
    double used_bps = 0;
    for (const auto& [prefix, override_entry] : overrides) {
      used_bps += override_entry.rate.bits_per_sec();
    }
    if (used_bps > budget_bps) {
      // Shed the smallest movers first: the big overrides are the ones
      // absorbing the severe overloads, so they are kept.
      std::vector<const net::Prefix*> by_rate;
      by_rate.reserve(overrides.size());
      for (const auto& [prefix, override_entry] : overrides) {
        by_rate.push_back(&prefix);
      }
      std::sort(by_rate.begin(), by_rate.end(),
                [&](const net::Prefix* a, const net::Prefix* b) {
                  const auto& ra = overrides.at(*a).rate;
                  const auto& rb = overrides.at(*b).rate;
                  if (ra != rb) return ra < rb;
                  return *a < *b;
                });
      for (const net::Prefix* prefix : by_rate) {
        if (used_bps <= budget_bps) break;
        used_bps -= overrides.at(*prefix).rate.bits_per_sec();
        overrides.erase(*prefix);
        ++stats.dropped_by_budget;
      }
    }
  }

  return stats;
}

}  // namespace ef::core
