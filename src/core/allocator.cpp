#include "core/allocator.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <utility>

#include "net/log.h"

namespace ef::core {

namespace {

/// Preference tier of a detour target, mirroring the egress ladder:
/// moving traffic to another peer beats falling back to transit.
int target_tier(bgp::PeerType type) {
  switch (type) {
    case bgp::PeerType::kPrivatePeer:
      return 0;
    case bgp::PeerType::kPublicPeer:
      return 1;
    case bgp::PeerType::kRouteServer:
      return 2;
    default:
      return 3;
  }
}

/// A prefix pinned (by BGP preference) to a specific interface. The
/// ranked non-controller alternates live in the workspace's shared arena
/// (offset + count) so per-prefix heap allocations disappear from the
/// warm cycle.
struct PinnedPrefix {
  net::Prefix prefix;
  net::Bandwidth rate;
  const bgp::Route* best = nullptr;
  std::uint32_t alt_begin = 0;  // into Workspace::Impl::alternates
  std::uint32_t alt_count = 0;
  int best_alternate_tier = 9;  // tier of first usable alt
};

}  // namespace

/// Scratch reused across cycles. Every field is wiped (capacity kept) at
/// the start of allocate(); nothing here ever feeds back into a decision.
struct Allocator::Workspace::Impl {
  /// Demand in ascending-prefix order. When the demand prefix set is
  /// unchanged since the previous cycle (the common case: rates move,
  /// prefixes do not) the sort is skipped and only the rates refresh.
  std::vector<std::pair<net::Prefix, net::Bandwidth>> demand_sorted;
  bool demand_primed = false;

  /// Demand traversal mapping: the j-th prefix visited by
  /// demand.for_each() lives at demand_sorted[hash_order[j]]. Valid only
  /// for the exact (instance_id, membership_epoch) it was built against —
  /// then the per-cycle rate refresh is one sequential walk of the demand
  /// table with zero hash lookups.
  std::vector<std::uint32_t> hash_order;
  bool hash_order_valid = false;
  std::uint64_t demand_instance = 0;
  std::uint64_t demand_set_epoch = 0;

  /// The (instance_id, epoch) pair of the Rib the arena below was built
  /// against. While the demand order was reused AND the very same Rib is
  /// untouched, the filtered arena is exactly what re-ranking and
  /// re-filtering would produce, so warm cycles do zero RIB lookups.
  /// Any mismatch rebuilds from ranked_view() per prefix.
  std::uint64_t rib_instance = 0;
  std::uint64_t rib_epoch = 0;

  /// Flat per-interface tables, addressed by
  /// InterfaceRegistry::index_of (ascending-id dense order).
  std::vector<net::Bandwidth> projected;
  std::vector<net::Bandwidth> final_load;
  std::vector<net::Bandwidth> usable;  // usable_capacity snapshot
  std::vector<std::vector<PinnedPrefix>> pinned;

  /// Shared arena of ranked non-controller route pointers; PinnedPrefix
  /// slices into it by offset so arena growth never invalidates anything.
  /// Rebuilt together with `views` (the filtering depends only on the
  /// routes, never on rates), so warm cycles skip the per-prefix filter
  /// walk entirely. `filt_begin/filt_count` give each demand entry's
  /// slice (best route first); `alt_slot` is the parallel egress-slot
  /// index of every arena route, resolved once at rebuild so warm-path
  /// egress lookups are plain array reads, not hash probes.
  std::vector<const bgp::Route*> alternates;
  std::vector<std::uint32_t> filt_begin;
  std::vector<std::uint32_t> filt_count;
  std::vector<std::uint32_t> alt_slot;

  /// Precompiled egress table: each distinct NEXT_HOP is resolved through
  /// the EgressResolver once per cycle; hot-path lookups are one hash
  /// probe (or, for cached best routes, a plain index). `usable_iface` is
  /// false when the resolver returned nullopt or the interface is unknown
  /// to the registry. `exemplar` is one route carrying this NEXT_HOP,
  /// used to re-run the resolver at the next cycle start when the table
  /// survives (valid while the Rib is unchanged, which is exactly when
  /// the table survives).
  struct EgressSlot {
    EgressView view;
    const bgp::Route* exemplar = nullptr;
    std::uint32_t iface = 0;  // dense interface index
    bool usable_iface = false;
  };
  std::vector<EgressSlot> slots;
  std::unordered_map<net::IpAddr, std::uint32_t> slot_of;

  /// Per-chunk scratch for the sharded (parallel) arena rebuild: each
  /// worker fills its own arena segment, NEXT_HOP first-appearance list,
  /// and ranking-cache tallies; the merge concatenates segments in chunk
  /// order (order-preserving, so the combined arena is byte-for-byte the
  /// serial one) and settles the slot table and cache counters serially.
  /// Persisted so warm parallel rebuilds reuse the vectors' capacity.
  struct RebuildChunk {
    std::vector<const bgp::Route*> alternates;
    std::vector<const bgp::Route*> hop_order;  // first route per new hop
    std::unordered_map<net::IpAddr, const bgp::Route*> hop_seen;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t arena_offset = 0;
  };
  std::vector<RebuildChunk> chunks;

  /// Dense indices of the interfaces phase 2 found overloaded, in
  /// ascending order — the iteration order of both the (parallelizable)
  /// score/sort pass and the (serial) placement pass.
  std::vector<std::uint32_t> overloaded;
};

Allocator::Workspace::Workspace() : impl_(std::make_unique<Impl>()) {}
Allocator::Workspace::~Workspace() = default;
Allocator::Workspace::Workspace(Workspace&&) noexcept = default;
Allocator::Workspace& Allocator::Workspace::operator=(Workspace&&) noexcept =
    default;

AllocationResult Allocator::allocate(
    const bgp::Rib& rib, const telemetry::DemandMatrix& demand,
    const telemetry::InterfaceRegistry& interfaces,
    const EgressResolver& resolve) const {
  Workspace workspace;
  return allocate(rib, demand, interfaces, resolve, workspace);
}

AllocationResult Allocator::allocate(
    const bgp::Rib& rib, const telemetry::DemandMatrix& demand,
    const telemetry::InterfaceRegistry& interfaces,
    const EgressResolver& resolve, Workspace& workspace,
    runtime::ThreadPool* pool) const {
  Workspace::Impl& ws = *workspace.impl_;
  // A one-worker pool has nothing to shard; fold it into the serial path
  // so the parallel branches below can assume at least two workers.
  if (pool != nullptr && pool->size() <= 1) pool = nullptr;
  const std::size_t iface_count = interfaces.size();
  AllocationResult result;

  // Reset the per-cycle scratch, keeping capacity. (The egress table is
  // refreshed further down, once it is known whether it can survive.)
  ws.projected.assign(iface_count, net::Bandwidth::zero());
  ws.final_load.assign(iface_count, net::Bandwidth::zero());
  ws.usable.resize(iface_count);
  if (ws.pinned.size() != iface_count) ws.pinned.resize(iface_count);
  for (auto& pool : ws.pinned) pool.clear();
  for (std::size_t i = 0; i < iface_count; ++i) {
    ws.usable[i] = interfaces.usable_capacity(interfaces.id_at(i));
  }

  // (Re)runs the resolver for one egress slot. Called for every slot
  // every cycle — resolution can change between cycles (sessions flap) —
  // so within a cycle the table is immutable and the resolver is invoked
  // at most once per distinct NEXT_HOP.
  const auto fill_slot = [&](Workspace::Impl::EgressSlot& slot,
                             const bgp::Route& route) {
    slot.usable_iface = false;
    if (const auto view = resolve(route);
        view && interfaces.contains(view->interface)) {
      slot.view = *view;
      slot.iface =
          static_cast<std::uint32_t>(interfaces.index_of(view->interface));
      slot.usable_iface = true;
    }
  };

  // Resolve a route's egress through the memo table, by NEXT_HOP.
  const auto resolve_slot = [&](const bgp::Route& route) -> std::uint32_t {
    auto [it, inserted] = ws.slot_of.try_emplace(
        route.attrs.next_hop, static_cast<std::uint32_t>(ws.slots.size()));
    if (inserted) {
      Workspace::Impl::EgressSlot& slot = ws.slots.emplace_back();
      slot.exemplar = &route;
      fill_slot(slot, route);
    }
    return it->second;
  };

  // --- Phase 1: projection --------------------------------------------
  // Route all demand along BGP-preferred paths (ignoring our own injected
  // routes) and remember, per interface, which prefixes landed there.
  //
  // Walk demand in prefix order, not hash order: float accumulation is not
  // associative, so the allocation is only a bitwise-deterministic function
  // of its inputs (what the audit replay engine verifies) if the iteration
  // order is a function of the inputs too. The sorted vector is reused
  // verbatim when the prefix set did not change (order depends only on the
  // set, so skipping the sort cannot change the result).
  bool reuse_order = ws.hash_order_valid &&
                     ws.demand_instance == demand.instance_id() &&
                     ws.demand_set_epoch == demand.membership_epoch();
  if (reuse_order) {
    // Same matrix, same membership: traversal order is stable, so refresh
    // every rate with one sequential walk and no per-prefix lookups.
    std::size_t j = 0;
    demand.visit([&](const net::Prefix&, net::Bandwidth rate) {
      ws.demand_sorted[ws.hash_order[j++]].second = rate;
    });
  } else {
    reuse_order =
        ws.demand_primed && ws.demand_sorted.size() == demand.prefix_count();
    if (reuse_order) {
      for (auto& entry : ws.demand_sorted) {
        const net::Bandwidth* rate = demand.find(entry.first);
        if (rate == nullptr) {
          reuse_order = false;  // set changed: same size, different members
          break;
        }
        entry.second = *rate;
      }
    }
    if (!reuse_order) {
      ws.demand_sorted.clear();
      ws.demand_sorted.reserve(demand.prefix_count());
      demand.visit([&](const net::Prefix& prefix, net::Bandwidth rate) {
        ws.demand_sorted.emplace_back(prefix, rate);
      });
      std::sort(ws.demand_sorted.begin(), ws.demand_sorted.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      ws.demand_primed = true;
    }
    // Rebuild the traversal mapping for the next cycle (binary search per
    // prefix: paid only when the matrix identity or membership moved).
    ws.hash_order.resize(ws.demand_sorted.size());
    std::size_t j = 0;
    demand.visit([&](const net::Prefix& prefix, net::Bandwidth) {
      const auto it = std::lower_bound(
          ws.demand_sorted.begin(), ws.demand_sorted.end(), prefix,
          [](const auto& entry, const net::Prefix& p) {
            return entry.first < p;
          });
      ws.hash_order[j++] =
          static_cast<std::uint32_t>(it - ws.demand_sorted.begin());
    });
    ws.hash_order_valid = true;
    ws.demand_instance = demand.instance_id();
    ws.demand_set_epoch = demand.membership_epoch();
  }

  // Arena reuse: when the demand order was reused and the Rib is
  // bitwise the same one (same instance, same whole-RIB epoch) as last
  // cycle, the filtered arena already holds every prefix's ranked,
  // egress-resolved candidates and phase 1 does zero RIB lookups and
  // zero hash probes. The reuse changes nothing but lookup count: the
  // slices are exactly what ranked_view() + filtering would rebuild.
  const bool reuse_views = reuse_order &&
                           ws.rib_instance == rib.instance_id() &&
                           ws.rib_epoch == rib.epoch();
  if (!reuse_views) {
    // Route pointers changed hands: the egress table and the filtered
    // arena must be rediscovered.
    ws.slots.clear();
    ws.slot_of.clear();
    const std::size_t demand_count = ws.demand_sorted.size();
    ws.filt_begin.resize(demand_count);
    ws.filt_count.resize(demand_count);

    // Chunking: only worth it when each worker gets a real slice of
    // prefixes; tiny tables stay on the serial path below.
    constexpr std::size_t kMinChunk = 1024;
    std::size_t chunk_count = 1;
    if (pool != nullptr && demand_count >= 2 * kMinChunk) {
      chunk_count = std::min<std::size_t>(
          static_cast<std::size_t>(pool->size()) * 4,
          demand_count / kMinChunk);
    }

    if (chunk_count <= 1) {
      ws.alternates.clear();
      std::uint64_t hits = 0;
      std::uint64_t misses = 0;
      for (std::size_t i = 0; i < demand_count; ++i) {
        bool cache_hit = false;
        const bgp::Rib::RankedView view =
            rib.ranked_view_uncounted(ws.demand_sorted[i].first, cache_hit);
        // Tally hit/miss only for prefixes the RIB knows (matching
        // ranked_view(): an unknown prefix consults no cache).
        if (!view.routes.empty()) (cache_hit ? hits : misses) += 1;
        // Controller-injected routes are dropped after ranking; that is
        // safe because the relative order of natural routes does not
        // depend on the injected ones. Filtering depends only on the
        // routes, so the slices stay valid exactly as long as the views.
        const std::size_t mark = ws.alternates.size();
        for (std::size_t index : view.order) {
          const bgp::Route& route = view.routes[index];
          if (route.peer_type != bgp::PeerType::kController) {
            ws.alternates.push_back(&route);
          }
        }
        ws.filt_begin[i] = static_cast<std::uint32_t>(mark);
        ws.filt_count[i] =
            static_cast<std::uint32_t>(ws.alternates.size() - mark);
      }
      rib.credit_rank_cache(hits, misses);
      ws.alt_slot.resize(ws.alternates.size());
      for (std::size_t k = 0; k < ws.alternates.size(); ++k) {
        ws.alt_slot[k] = resolve_slot(*ws.alternates[k]);
      }
    } else {
      // Sharded rebuild: each chunk ranks and filters a contiguous
      // demand range into its own arena segment. Disjoint prefixes mean
      // disjoint per-prefix ranking caches, so ranked_view_uncounted()
      // is safe to call concurrently; the shared hit/miss counters are
      // tallied per chunk and credited once after the barrier.
      const std::size_t per_chunk =
          (demand_count + chunk_count - 1) / chunk_count;
      ws.chunks.resize(chunk_count);
      pool->parallel_for(chunk_count, [&](std::size_t c) {
        Workspace::Impl::RebuildChunk& chunk = ws.chunks[c];
        chunk.alternates.clear();
        chunk.hop_order.clear();
        chunk.hop_seen.clear();
        chunk.hits = 0;
        chunk.misses = 0;
        const std::size_t lo = c * per_chunk;
        const std::size_t hi = std::min(demand_count, lo + per_chunk);
        for (std::size_t i = lo; i < hi; ++i) {
          bool cache_hit = false;
          const bgp::Rib::RankedView view =
              rib.ranked_view_uncounted(ws.demand_sorted[i].first, cache_hit);
          if (!view.routes.empty()) (cache_hit ? chunk.hits : chunk.misses) += 1;
          const std::size_t mark = chunk.alternates.size();
          for (std::size_t index : view.order) {
            const bgp::Route& route = view.routes[index];
            if (route.peer_type != bgp::PeerType::kController) {
              chunk.alternates.push_back(&route);
              if (chunk.hop_seen.try_emplace(route.attrs.next_hop, &route)
                      .second) {
                chunk.hop_order.push_back(&route);
              }
            }
          }
          ws.filt_count[i] =
              static_cast<std::uint32_t>(chunk.alternates.size() - mark);
        }
      });

      // Merge, order-preserving: chunk segments concatenate in chunk
      // order, so the arena (and every filt_begin slice) is exactly what
      // the serial loop above would have produced.
      std::size_t total = 0;
      for (Workspace::Impl::RebuildChunk& chunk : ws.chunks) {
        chunk.arena_offset = total;
        total += chunk.alternates.size();
      }
      std::uint32_t running = 0;
      for (std::size_t i = 0; i < demand_count; ++i) {
        ws.filt_begin[i] = running;
        running += ws.filt_count[i];
      }
      ws.alternates.resize(total);
      pool->parallel_for(chunk_count, [&](std::size_t c) {
        const Workspace::Impl::RebuildChunk& chunk = ws.chunks[c];
        std::copy(chunk.alternates.begin(), chunk.alternates.end(),
                  ws.alternates.begin() +
                      static_cast<std::ptrdiff_t>(chunk.arena_offset));
      });

      // Slot table, serial: walking the chunks' first-appearance lists
      // in chunk order visits each distinct NEXT_HOP in exactly its
      // first arena appearance order, so slot ids, exemplars, and the
      // one-resolve-per-hop contract all match the serial rebuild.
      std::uint64_t hits = 0;
      std::uint64_t misses = 0;
      for (const Workspace::Impl::RebuildChunk& chunk : ws.chunks) {
        hits += chunk.hits;
        misses += chunk.misses;
        for (const bgp::Route* exemplar : chunk.hop_order) {
          resolve_slot(*exemplar);
        }
      }
      rib.credit_rank_cache(hits, misses);
      ws.alt_slot.resize(total);
      pool->parallel_for(chunk_count, [&](std::size_t c) {
        const Workspace::Impl::RebuildChunk& chunk = ws.chunks[c];
        for (std::size_t k = 0; k < chunk.alternates.size(); ++k) {
          // Lookup-only probes of the (now frozen) slot table.
          ws.alt_slot[chunk.arena_offset + k] =
              ws.slot_of.find(chunk.alternates[k]->attrs.next_hop)->second;
        }
      });
    }
    ws.rib_instance = rib.instance_id();
    ws.rib_epoch = rib.epoch();
  } else {
    rib.credit_rank_cache_hits(ws.demand_sorted.size());
    // The NEXT_HOP set is unchanged (same routes), but what each hop
    // resolves to may not be: re-run the resolver once per slot.
    for (Workspace::Impl::EgressSlot& slot : ws.slots) {
      fill_slot(slot, *slot.exemplar);
    }
  }

  // Sharded projection: each shard owns a contiguous block of dense
  // interface indices and walks the WHOLE demand array in ascending
  // prefix order, pinning only the prefixes whose BGP-preferred egress
  // it owns. Every interface's `projected +=` therefore runs in exactly
  // the serial prefix order regardless of shard count — float
  // accumulation stays order-identical, which is what keeps the sharded
  // allocation bitwise equal to the serial one. Shard 0 additionally
  // owns the unroutable accumulator (again in prefix order). The scan
  // itself (slice + slot lookups) is the redundant part; it is cheap
  // and read-only, which is the price of a merge-free phase 1.
  const std::size_t shard_count =
      (pool != nullptr && iface_count > 1)
          ? std::min<std::size_t>(pool->size(), iface_count)
          : 1;
  const auto project_shard = [&](std::size_t shard) {
    const std::size_t iface_lo = shard * iface_count / shard_count;
    const std::size_t iface_hi = (shard + 1) * iface_count / shard_count;
    const bool owns_unroutable = shard == 0;
    for (std::size_t di = 0; di < ws.demand_sorted.size(); ++di) {
      const auto& [prefix, rate] = ws.demand_sorted[di];
      if (rate <= net::Bandwidth::zero()) continue;

      // The prefix's ranked, controller-filtered candidates, precomputed
      // into the arena (above or in an earlier cycle): best route first,
      // egress already resolved per slice element.
      const std::uint32_t begin = ws.filt_begin[di];
      const std::uint32_t count = ws.filt_count[di];
      if (count == 0) {
        if (owns_unroutable) result.unroutable += rate;
        continue;
      }
      const Workspace::Impl::EgressSlot& slot = ws.slots[ws.alt_slot[begin]];
      if (!slot.usable_iface) {
        if (owns_unroutable) result.unroutable += rate;
        continue;
      }
      if (slot.iface < iface_lo || slot.iface >= iface_hi) continue;

      PinnedPrefix pinned;
      pinned.prefix = prefix;
      pinned.rate = rate;
      pinned.best = ws.alternates[begin];
      pinned.alt_begin = begin + 1;
      pinned.alt_count = count - 1;
      ws.projected[slot.iface] += rate;
      ws.pinned[slot.iface].push_back(pinned);
    }
  };
  if (shard_count > 1) {
    pool->parallel_for(shard_count, project_shard);
  } else {
    project_shard(0);
  }

  ws.final_load = ws.projected;

  // --- Phase 2: overload detection and detour selection -----------------
  // Three passes. Detection and placement walk interfaces in ascending
  // dense index == ascending InterfaceId — the same order the seed's
  // std::map produced, so detour placement (and therefore float
  // accumulation) is unchanged. Scoring/sorting sits between them and
  // fans out across the pool: it reads only the (frozen) slot table and
  // writes only its own interface's pinned list, and the detection
  // predicate reads only projected/usable — which placement never
  // mutates — so hoisting both out of the placement loop changes no
  // decision (placement-order-dependent state, final_load, is consulted
  // only inside the serial placement pass).
  ws.overloaded.clear();
  for (std::size_t iface = 0; iface < iface_count; ++iface) {
    if (ws.pinned[iface].empty()) continue;  // nothing landed here
    const net::Bandwidth capacity = ws.usable[iface];
    const net::Bandwidth projected = ws.projected[iface];
    const net::Bandwidth limit = capacity * config_.overload_threshold;
    if (projected <= limit && capacity > net::Bandwidth::zero()) continue;
    ++result.overloaded_interfaces;
    ws.overloaded.push_back(static_cast<std::uint32_t>(iface));
  }

  // Score each prefix by the tier of its most preferred usable
  // alternate, so peer-alternate prefixes move before transit-only ones.
  const auto score_and_sort = [&](std::size_t oi) {
    const std::size_t iface = ws.overloaded[oi];
    auto& pinned_prefixes = ws.pinned[iface];
    for (PinnedPrefix& pinned : pinned_prefixes) {
      pinned.best_alternate_tier = 9;
      for (std::uint32_t a = 0; a < pinned.alt_count; ++a) {
        const Workspace::Impl::EgressSlot& slot =
            ws.slots[ws.alt_slot[pinned.alt_begin + a]];
        if (!slot.usable_iface || slot.iface == iface) continue;
        pinned.best_alternate_tier = std::min(
            pinned.best_alternate_tier, target_tier(slot.view.type));
      }
    }
    std::sort(pinned_prefixes.begin(), pinned_prefixes.end(),
              [&](const PinnedPrefix& a, const PinnedPrefix& b) {
                if (config_.order == DetourOrder::kBestAlternateFirst &&
                    a.best_alternate_tier != b.best_alternate_tier) {
                  return a.best_alternate_tier < b.best_alternate_tier;
                }
                if (a.rate != b.rate) return a.rate > b.rate;
                return a.prefix < b.prefix;  // determinism
              });
  };
  if (pool != nullptr && ws.overloaded.size() > 1) {
    pool->parallel_for(ws.overloaded.size(), score_and_sort);
  } else {
    for (std::size_t oi = 0; oi < ws.overloaded.size(); ++oi) {
      score_and_sort(oi);
    }
  }

  // Placement, serial: detours mutate final_load, and which detour fits
  // depends on every detour placed before it.
  for (const std::uint32_t overloaded_iface : ws.overloaded) {
    const std::size_t iface = overloaded_iface;
    auto& pinned_prefixes = ws.pinned[iface];
    const net::Bandwidth capacity = ws.usable[iface];
    const net::Bandwidth target = capacity * config_.target_utilization;
    net::Bandwidth to_move = ws.final_load[iface] - target;

    // Places (prefix, rate) on the first alternate with room; when
    // nothing fits and splitting is allowed, recurses into more-specific
    // halves (injected as finer-grained overrides; LPM at the routers
    // steers exactly that half of the flows). Returns the rate moved.
    const std::function<net::Bandwidth(const PinnedPrefix&,
                                       const net::Prefix&, net::Bandwidth,
                                       int)>
        place = [&](const PinnedPrefix& pinned, const net::Prefix& prefix,
                    net::Bandwidth rate, int depth) -> net::Bandwidth {
      if (config_.max_overrides != 0 &&
          result.overrides.size() >= config_.max_overrides) {
        return net::Bandwidth::zero();
      }
      for (std::uint32_t a = 0; a < pinned.alt_count; ++a) {
        const bgp::Route* alt = ws.alternates[pinned.alt_begin + a];
        const Workspace::Impl::EgressSlot& slot =
            ws.slots[ws.alt_slot[pinned.alt_begin + a]];
        if (!slot.usable_iface || slot.iface == iface) continue;
        const net::Bandwidth alt_capacity = ws.usable[slot.iface];
        if (alt_capacity <= net::Bandwidth::zero()) continue;  // drained
        const net::Bandwidth headroom =
            alt_capacity * config_.detour_headroom -
            ws.final_load[slot.iface];
        if (rate > headroom) continue;

        Override override_entry;
        override_entry.prefix = prefix;
        override_entry.rate = rate;
        override_entry.next_hop = alt->attrs.next_hop;
        override_entry.as_path = alt->attrs.as_path;
        override_entry.from_interface = interfaces.id_at(iface);
        override_entry.target_interface = slot.view.interface;
        override_entry.from_type = pinned.best->peer_type;
        override_entry.target_type = slot.view.type;
        result.overrides.push_back(std::move(override_entry));

        ws.final_load[iface] -= rate;
        ws.final_load[slot.iface] += rate;
        return rate;
      }
      // Nothing holds the whole rate: split into halves and place them
      // independently (possibly on different alternates).
      if (config_.allow_prefix_splitting && depth < config_.max_split_depth &&
          prefix.length() < net::address_bits(prefix.family())) {
        auto bytes = prefix.address().bytes();
        const int bit = prefix.length();
        bytes[static_cast<std::size_t>(bit / 8)] |=
            static_cast<std::uint8_t>(1u << (7 - bit % 8));
        const net::Prefix low(prefix.address(), prefix.length() + 1);
        const net::Prefix high(prefix.family() == net::Family::kV4
                                   ? net::IpAddr::v4(
                                         (static_cast<std::uint32_t>(bytes[0])
                                          << 24) |
                                         (static_cast<std::uint32_t>(bytes[1])
                                          << 16) |
                                         (static_cast<std::uint32_t>(bytes[2])
                                          << 8) |
                                         bytes[3])
                                   : net::IpAddr::v6(bytes),
                               prefix.length() + 1);
        net::Bandwidth moved = place(pinned, low, rate / 2, depth + 1);
        moved += place(pinned, high, rate / 2, depth + 1);
        return moved;
      }
      return net::Bandwidth::zero();
    };

    for (const PinnedPrefix& pinned : pinned_prefixes) {
      if (to_move <= net::Bandwidth::zero()) break;
      if (config_.max_overrides != 0 &&
          result.overrides.size() >= config_.max_overrides) {
        break;
      }
      to_move -= place(pinned, pinned.prefix, pinned.rate, 0);
    }

    if (to_move > net::Bandwidth::zero()) {
      // Only count overload actually above *capacity* as unresolved drops;
      // the slice between target and capacity is just unmet headroom.
      const net::Bandwidth excess = ws.final_load[iface] - capacity;
      if (excess > net::Bandwidth::zero()) {
        result.unresolved_overload += excess;
      }
    }
  }

  // --- Result boundary: dense tables back to the public map form -------
  // (wire/audit format unchanged; every known interface appears, loaded
  // or not, exactly as before).
  for (std::size_t i = 0; i < iface_count; ++i) {
    const telemetry::InterfaceId id = interfaces.id_at(i);
    result.projected_load.emplace_hint(result.projected_load.end(), id,
                                       ws.projected[i]);
    result.final_load.emplace_hint(result.final_load.end(), id,
                                   ws.final_load[i]);
  }

  return result;
}

}  // namespace ef::core
