#include "core/allocator.h"

#include <algorithm>
#include <functional>

#include "net/log.h"

namespace ef::core {

namespace {

/// Preference tier of a detour target, mirroring the egress ladder:
/// moving traffic to another peer beats falling back to transit.
int target_tier(bgp::PeerType type) {
  switch (type) {
    case bgp::PeerType::kPrivatePeer:
      return 0;
    case bgp::PeerType::kPublicPeer:
      return 1;
    case bgp::PeerType::kRouteServer:
      return 2;
    default:
      return 3;
  }
}

/// A prefix pinned (by BGP preference) to a specific interface, together
/// with its ranked non-controller candidate routes.
struct PinnedPrefix {
  net::Prefix prefix;
  net::Bandwidth rate;
  const bgp::Route* best = nullptr;
  std::vector<const bgp::Route*> alternates;  // ranked, excluding best
  int best_alternate_tier = 9;                // tier of first usable alt
};

}  // namespace

AllocationResult Allocator::allocate(
    const bgp::Rib& rib, const telemetry::DemandMatrix& demand,
    const telemetry::InterfaceRegistry& interfaces,
    const EgressResolver& resolve) const {
  AllocationResult result;

  // Start every known interface at zero so callers see all of them in the
  // projection, not only the loaded ones.
  interfaces.for_each([&](telemetry::InterfaceId id,
                          const telemetry::InterfaceState&) {
    result.projected_load[id] = net::Bandwidth::zero();
  });

  // --- Phase 1: projection --------------------------------------------
  // Route all demand along BGP-preferred paths (ignoring our own injected
  // routes) and remember, per interface, which prefixes landed there.
  std::map<telemetry::InterfaceId, std::vector<PinnedPrefix>> by_interface;

  // Walk demand in prefix order, not hash order: float accumulation is not
  // associative, so the allocation is only a bitwise-deterministic function
  // of its inputs (what the audit replay engine verifies) if the iteration
  // order is a function of the inputs too.
  std::vector<std::pair<net::Prefix, net::Bandwidth>> demand_sorted;
  demand_sorted.reserve(demand.prefix_count());
  demand.for_each([&](const net::Prefix& prefix, net::Bandwidth rate) {
    demand_sorted.emplace_back(prefix, rate);
  });
  std::sort(demand_sorted.begin(), demand_sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  for (const auto& [prefix, rate] : demand_sorted) {
    if (rate <= net::Bandwidth::zero()) continue;

    // Rank all candidates with the normal decision process, then drop
    // controller-injected routes. Filtering after ranking is safe: the
    // relative order of natural routes does not depend on the injected
    // ones.
    const auto all = rib.candidates(prefix);
    const auto order = bgp::rank_routes(all, rib.decision_config());

    PinnedPrefix pinned;
    pinned.prefix = prefix;
    pinned.rate = rate;

    std::vector<const bgp::Route*> ranked;
    ranked.reserve(order.size());
    for (std::size_t index : order) {
      if (all[index].peer_type != bgp::PeerType::kController) {
        ranked.push_back(&all[index]);
      }
    }
    if (ranked.empty()) {
      result.unroutable += rate;
      continue;
    }
    pinned.best = ranked.front();
    pinned.alternates.assign(ranked.begin() + 1, ranked.end());

    const auto egress = resolve(*pinned.best);
    if (!egress || !interfaces.contains(egress->interface)) {
      result.unroutable += rate;
      continue;
    }
    result.projected_load[egress->interface] += rate;
    by_interface[egress->interface].push_back(std::move(pinned));
  }

  result.final_load = result.projected_load;

  // --- Phase 2: overload detection and detour selection -----------------
  auto capacity_of = [&](telemetry::InterfaceId id) {
    return interfaces.usable_capacity(id);  // zero when drained
  };

  for (auto& [iface, pinned_prefixes] : by_interface) {
    const net::Bandwidth capacity = capacity_of(iface);
    const net::Bandwidth projected = result.projected_load[iface];
    const net::Bandwidth limit = capacity * config_.overload_threshold;
    if (projected <= limit && capacity > net::Bandwidth::zero()) continue;
    ++result.overloaded_interfaces;

    const net::Bandwidth target = capacity * config_.target_utilization;
    net::Bandwidth to_move = result.final_load[iface] - target;

    // Score each prefix by the tier of its most preferred usable
    // alternate, so peer-alternate prefixes move before transit-only ones.
    for (PinnedPrefix& pinned : pinned_prefixes) {
      pinned.best_alternate_tier = 9;
      for (const bgp::Route* alt : pinned.alternates) {
        const auto egress = resolve(*alt);
        if (!egress || egress->interface == iface) continue;
        pinned.best_alternate_tier = std::min(
            pinned.best_alternate_tier, target_tier(egress->type));
      }
    }

    std::sort(pinned_prefixes.begin(), pinned_prefixes.end(),
              [&](const PinnedPrefix& a, const PinnedPrefix& b) {
                if (config_.order == DetourOrder::kBestAlternateFirst &&
                    a.best_alternate_tier != b.best_alternate_tier) {
                  return a.best_alternate_tier < b.best_alternate_tier;
                }
                if (a.rate != b.rate) return a.rate > b.rate;
                return a.prefix < b.prefix;  // determinism
              });

    // Places (prefix, rate) on the first alternate with room; when
    // nothing fits and splitting is allowed, recurses into more-specific
    // halves (injected as finer-grained overrides; LPM at the routers
    // steers exactly that half of the flows). Returns the rate moved.
    const std::function<net::Bandwidth(const PinnedPrefix&,
                                       const net::Prefix&, net::Bandwidth,
                                       int)>
        place = [&](const PinnedPrefix& pinned, const net::Prefix& prefix,
                    net::Bandwidth rate, int depth) -> net::Bandwidth {
      if (config_.max_overrides != 0 &&
          result.overrides.size() >= config_.max_overrides) {
        return net::Bandwidth::zero();
      }
      for (const bgp::Route* alt : pinned.alternates) {
        const auto egress = resolve(*alt);
        if (!egress || egress->interface == iface) continue;
        const net::Bandwidth alt_capacity = capacity_of(egress->interface);
        if (alt_capacity <= net::Bandwidth::zero()) continue;  // drained
        const net::Bandwidth headroom =
            alt_capacity * config_.detour_headroom -
            result.final_load[egress->interface];
        if (rate > headroom) continue;

        Override override_entry;
        override_entry.prefix = prefix;
        override_entry.rate = rate;
        override_entry.next_hop = alt->attrs.next_hop;
        override_entry.as_path = alt->attrs.as_path;
        override_entry.from_interface = iface;
        override_entry.target_interface = egress->interface;
        override_entry.from_type = pinned.best->peer_type;
        override_entry.target_type = egress->type;
        result.overrides.push_back(std::move(override_entry));

        result.final_load[iface] -= rate;
        result.final_load[egress->interface] += rate;
        return rate;
      }
      // Nothing holds the whole rate: split into halves and place them
      // independently (possibly on different alternates).
      if (config_.allow_prefix_splitting && depth < config_.max_split_depth &&
          prefix.length() < net::address_bits(prefix.family())) {
        auto bytes = prefix.address().bytes();
        const int bit = prefix.length();
        bytes[static_cast<std::size_t>(bit / 8)] |=
            static_cast<std::uint8_t>(1u << (7 - bit % 8));
        const net::Prefix low(prefix.address(), prefix.length() + 1);
        const net::Prefix high(prefix.family() == net::Family::kV4
                                   ? net::IpAddr::v4(
                                         (static_cast<std::uint32_t>(bytes[0])
                                          << 24) |
                                         (static_cast<std::uint32_t>(bytes[1])
                                          << 16) |
                                         (static_cast<std::uint32_t>(bytes[2])
                                          << 8) |
                                         bytes[3])
                                   : net::IpAddr::v6(bytes),
                               prefix.length() + 1);
        net::Bandwidth moved = place(pinned, low, rate / 2, depth + 1);
        moved += place(pinned, high, rate / 2, depth + 1);
        return moved;
      }
      return net::Bandwidth::zero();
    };

    for (const PinnedPrefix& pinned : pinned_prefixes) {
      if (to_move <= net::Bandwidth::zero()) break;
      if (config_.max_overrides != 0 &&
          result.overrides.size() >= config_.max_overrides) {
        break;
      }
      to_move -= place(pinned, pinned.prefix, pinned.rate, 0);
    }

    if (to_move > net::Bandwidth::zero()) {
      // Only count overload actually above *capacity* as unresolved drops;
      // the slice between target and capacity is just unmet headroom.
      const net::Bandwidth excess = result.final_load[iface] - capacity;
      if (excess > net::Bandwidth::zero()) {
        result.unresolved_overload += excess;
      }
    }
  }

  return result;
}

}  // namespace ef::core
