#include "core/allocator.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <unordered_map>
#include <utility>

#include "net/log.h"

namespace ef::core {

namespace {

/// Preference tier of a detour target, mirroring the egress ladder:
/// moving traffic to another peer beats falling back to transit.
int target_tier(bgp::PeerType type) {
  switch (type) {
    case bgp::PeerType::kPrivatePeer:
      return 0;
    case bgp::PeerType::kPublicPeer:
      return 1;
    case bgp::PeerType::kRouteServer:
      return 2;
    default:
      return 3;
  }
}

/// A prefix pinned (by BGP preference) to a specific interface. The
/// ranked non-controller alternates live in the workspace's shared arena
/// (offset + count) so per-prefix heap allocations disappear from the
/// warm cycle.
struct PinnedPrefix {
  net::Prefix prefix;
  net::Bandwidth rate;
  const bgp::Route* best = nullptr;
  std::uint32_t alt_begin = 0;  // into the owning arena (see below)
  std::uint32_t alt_count = 0;
  int best_alternate_tier = 9;  // tier of first usable alt
};

/// Precompiled egress table entry: each distinct NEXT_HOP is resolved
/// through the EgressResolver once per cycle; hot-path lookups are one
/// hash probe (or, for cached best routes, a plain index). `usable_iface`
/// is false when the resolver returned nullopt or the interface is
/// unknown to the registry. `exemplar` is one route carrying this
/// NEXT_HOP, used to re-run the resolver at the next cycle start when
/// the table survives. The workspace points exemplars into the Rib
/// (valid while the Rib is unchanged, which is exactly when its table
/// survives); the ledger points them at its own route copies.
struct EgressSlot {
  EgressView view;
  const bgp::Route* exemplar = nullptr;
  std::uint32_t iface = 0;  // dense interface index
  bool usable_iface = false;
};

/// Most preferred usable alternate tier for one pinned prefix's arena
/// slice, excluding detours back onto its own interface. Cached in the
/// ledger (recomputed whenever a prefix is reclassified) because it only
/// depends on the slice and the slot table — and any slot-state change
/// invalidates the whole ledger.
int alternate_tier(const std::vector<std::uint32_t>& alt_slot,
                   const std::vector<EgressSlot>& slots,
                   std::uint32_t alt_begin, std::uint32_t alt_count,
                   std::uint32_t iface) {
  int tier = 9;
  for (std::uint32_t a = 0; a < alt_count; ++a) {
    const EgressSlot& slot = slots[alt_slot[alt_begin + a]];
    if (!slot.usable_iface || slot.iface == static_cast<std::uint32_t>(iface))
      continue;
    tier = std::min(tier, target_tier(slot.view.type));
  }
  return tier;
}

/// Compact sort key for detour ordering — 16 bytes instead of the
/// 48-byte PinnedPrefix, so ordering a 30k-member cohort touches a
/// fraction of the memory. `idx` points back into the cohort; the
/// prefix tie-break dereferences it (rare: only equal-tier equal-rate
/// pairs).
struct DetourKey {
  double rate;
  std::uint32_t tier;
  std::uint32_t idx;
};

/// One overloaded cohort's detour order: a sorted prefix of the
/// cohort's total detour order. Usually a bounded top-K batch (see
/// order_cohort); placement escalates to the full sorted order if the
/// batch runs dry with overload left to shed.
struct CohortOrder {
  std::vector<DetourKey> keys;
};

/// Phase 2 after overload detection: per-interface detour ordering and
/// the serial detour placement, over the already-detected `overloaded`
/// dense indices (ascending). Shared by the full and the incremental
/// path — identical inputs must place identical detours, which is the
/// incremental engine's bitwise-identity contract. The arena triple
/// (`alternates`, `alt_slot`, `slots`) is whichever store owns the
/// pinned prefixes' slices: the workspace's on the full path (with
/// `rescore` — its members were just rebuilt and carry no tier), the
/// ledger's on the incremental one (tiers cached at reclassify time).
/// Cohort member order is never touched; ordering happens on the key
/// scratch, which is why the ledger can hand its position-addressed
/// cohorts straight in.
void score_sort_place(const AllocatorConfig& config,
                      const telemetry::InterfaceRegistry& interfaces,
                      const std::vector<const bgp::Route*>& alternates,
                      const std::vector<std::uint32_t>& alt_slot,
                      const std::vector<EgressSlot>& slots,
                      const std::vector<std::uint32_t>& overloaded,
                      std::vector<std::vector<PinnedPrefix>>& pinned_by_iface,
                      const std::vector<net::Bandwidth>& usable,
                      std::vector<net::Bandwidth>& final_load, bool rescore,
                      std::vector<CohortOrder>& key_scratch,
                      runtime::ThreadPool* pool, AllocationResult& result) {
  if (key_scratch.size() < overloaded.size()) {
    key_scratch.resize(overloaded.size());
  }

  // Detour priority: most preferred usable alternate tier first (so
  // peer-alternate prefixes move before transit-only ones), then rate
  // descending, then prefix for a strict total order. The prefix
  // tie-break is the only member dereference.
  const auto make_detour_before = [&config](
                                      const std::vector<PinnedPrefix>& pp) {
    return [&config, pp = &pp](const DetourKey& a, const DetourKey& b) {
      if (config.order == DetourOrder::kBestAlternateFirst &&
          a.tier != b.tier) {
        return a.tier < b.tier;
      }
      if (a.rate != b.rate) return a.rate > b.rate;
      return (*pp)[a.idx].prefix < (*pp)[b.idx].prefix;
    };
  };

  // Expected members consumed if rates were uniform. Placement stops
  // once `to_move` is shed, so in steady state only a sliver of each
  // cohort is ever visited — ordering the whole cohort would dominate
  // the warm cycle. The estimate reads only placement inputs (loads are
  // untouched until the serial pass below, and overloaded interfaces
  // are never detour targets), so full and incremental cycles compute
  // identical batch sizes — and the batch size only decides when the
  // escalation below kicks in, never the visit order itself.
  const auto est_consumed = [&](std::size_t iface) {
    const std::size_t size = pinned_by_iface[iface].size();
    const net::Bandwidth to_move =
        final_load[iface] - usable[iface] * config.target_utilization;
    const double mean =
        final_load[iface].bits_per_sec() / static_cast<double>(size);
    if (!(mean > 0.0)) return static_cast<double>(size);
    return to_move.bits_per_sec() / mean;
  };

  // Rebuilds one cohort's full sorted key array (ascending detour
  // order). Used for heavy drains and for escalation mid-placement.
  const auto order_all = [&](std::size_t iface, CohortOrder& co) {
    const auto& pinned_prefixes = pinned_by_iface[iface];
    co.keys.clear();
    co.keys.reserve(pinned_prefixes.size());
    for (std::size_t i = 0; i < pinned_prefixes.size(); ++i) {
      const PinnedPrefix& pinned = pinned_prefixes[i];
      co.keys.push_back(
          {pinned.rate.bits_per_sec(),
           static_cast<std::uint32_t>(pinned.best_alternate_tier),
           static_cast<std::uint32_t>(i)});
    }
    std::sort(co.keys.begin(), co.keys.end(),
              make_detour_before(pinned_prefixes));
  };

  // Bounded top-K selection: one comparison per member against the
  // batch's weakest entry (the heap root under detour_before-as-less),
  // no writes for the losers. The batch is the unique first-K of the
  // cohort's total detour order, so consuming it by cursor visits
  // members in exactly the order a full sort would — the batch bound
  // affects cost only, never a decision.
  const auto order_topk = [&](std::size_t iface, CohortOrder& co,
                              std::size_t batch) {
    const auto& pinned_prefixes = pinned_by_iface[iface];
    const auto detour_before = make_detour_before(pinned_prefixes);
    co.keys.clear();
    co.keys.reserve(batch);
    for (std::size_t i = 0; i < pinned_prefixes.size(); ++i) {
      const PinnedPrefix& pinned = pinned_prefixes[i];
      const DetourKey key{
          pinned.rate.bits_per_sec(),
          static_cast<std::uint32_t>(pinned.best_alternate_tier),
          static_cast<std::uint32_t>(i)};
      if (co.keys.size() < batch) {
        co.keys.push_back(key);
        std::push_heap(co.keys.begin(), co.keys.end(), detour_before);
      } else if (detour_before(key, co.keys.front())) {
        std::pop_heap(co.keys.begin(), co.keys.end(), detour_before);
        co.keys.back() = key;
        std::push_heap(co.keys.begin(), co.keys.end(), detour_before);
      }
    }
    std::sort_heap(co.keys.begin(), co.keys.end(), detour_before);
  };

  constexpr std::size_t kFirstBatch = 128;

  const auto order_cohort = [&](std::size_t oi) {
    const std::size_t iface = overloaded[oi];
    auto& pinned_prefixes = pinned_by_iface[iface];
    const std::size_t size = pinned_prefixes.size();
    CohortOrder& co = key_scratch[oi];
    if (rescore) {
      for (PinnedPrefix& pinned : pinned_prefixes) {
        pinned.best_alternate_tier =
            alternate_tier(alt_slot, slots, pinned.alt_begin,
                           pinned.alt_count,
                           static_cast<std::uint32_t>(iface));
      }
    }
    // est_consumed overestimates under heavy-tailed rates (the chosen
    // members are the biggest, not the mean), which errs toward the
    // full sort — the safe direction for real drains. Everything else
    // starts with a small batch and lets placement escalate.
    if (est_consumed(iface) * 8.0 >= static_cast<double>(size)) {
      order_all(iface, co);
      return;
    }
    order_topk(iface, co, std::min(size, kFirstBatch));
  };
  if (pool != nullptr && overloaded.size() > 1) {
    pool->parallel_for(overloaded.size(), order_cohort);
  } else {
    for (std::size_t oi = 0; oi < overloaded.size(); ++oi) {
      order_cohort(oi);
    }
  }

  // Placement, serial: detours mutate final_load, and which detour fits
  // depends on every detour placed before it.
  for (std::size_t oi = 0; oi < overloaded.size(); ++oi) {
    const std::size_t iface = overloaded[oi];
    auto& pinned_prefixes = pinned_by_iface[iface];
    CohortOrder& co = key_scratch[oi];
    const net::Bandwidth capacity = usable[iface];
    const net::Bandwidth target = capacity * config.target_utilization;
    net::Bandwidth to_move = final_load[iface] - target;

    // Places (prefix, rate) on the first alternate with room; when
    // nothing fits and splitting is allowed, recurses into more-specific
    // halves (injected as finer-grained overrides; LPM at the routers
    // steers exactly that half of the flows). Returns the rate moved.
    const std::function<net::Bandwidth(const PinnedPrefix&,
                                       const net::Prefix&, net::Bandwidth,
                                       int)>
        place = [&](const PinnedPrefix& pinned, const net::Prefix& prefix,
                    net::Bandwidth rate, int depth) -> net::Bandwidth {
      if (config.max_overrides != 0 &&
          result.overrides.size() >= config.max_overrides) {
        return net::Bandwidth::zero();
      }
      for (std::uint32_t a = 0; a < pinned.alt_count; ++a) {
        const bgp::Route* alt = alternates[pinned.alt_begin + a];
        const EgressSlot& slot = slots[alt_slot[pinned.alt_begin + a]];
        if (!slot.usable_iface || slot.iface == iface) continue;
        const net::Bandwidth alt_capacity = usable[slot.iface];
        if (alt_capacity <= net::Bandwidth::zero()) continue;  // drained
        const net::Bandwidth headroom =
            alt_capacity * config.detour_headroom - final_load[slot.iface];
        if (rate > headroom) continue;

        Override override_entry;
        override_entry.prefix = prefix;
        override_entry.rate = rate;
        override_entry.next_hop = alt->attrs.next_hop;
        override_entry.as_path = alt->attrs.as_path;
        override_entry.from_interface = interfaces.id_at(iface);
        override_entry.target_interface = slot.view.interface;
        override_entry.from_type = pinned.best->peer_type;
        override_entry.target_type = slot.view.type;
        result.overrides.push_back(std::move(override_entry));

        final_load[iface] -= rate;
        final_load[slot.iface] += rate;
        return rate;
      }
      // Nothing holds the whole rate: split into halves and place them
      // independently (possibly on different alternates).
      if (config.allow_prefix_splitting && depth < config.max_split_depth &&
          prefix.length() < net::address_bits(prefix.family())) {
        auto bytes = prefix.address().bytes();
        const int bit = prefix.length();
        bytes[static_cast<std::size_t>(bit / 8)] |=
            static_cast<std::uint8_t>(1u << (7 - bit % 8));
        const net::Prefix low(prefix.address(), prefix.length() + 1);
        const net::Prefix high(prefix.family() == net::Family::kV4
                                   ? net::IpAddr::v4(
                                         (static_cast<std::uint32_t>(bytes[0])
                                          << 24) |
                                         (static_cast<std::uint32_t>(bytes[1])
                                          << 16) |
                                         (static_cast<std::uint32_t>(bytes[2])
                                          << 8) |
                                         bytes[3])
                                   : net::IpAddr::v6(bytes),
                               prefix.length() + 1);
        net::Bandwidth moved = place(pinned, low, rate / 2, depth + 1);
        moved += place(pinned, high, rate / 2, depth + 1);
        return moved;
      }
      return net::Bandwidth::zero();
    };

    std::size_t cursor = 0;
    while (true) {
      if (to_move <= net::Bandwidth::zero()) break;
      if (config.max_overrides != 0 &&
          result.overrides.size() >= config.max_overrides) {
        break;
      }
      if (cursor >= co.keys.size()) {
        if (co.keys.size() >= pinned_prefixes.size()) break;  // visited all
        // The batch ran dry with overload left: escalate geometrically
        // (a wider top-K rescan, or the full sort once the batch would
        // be a big fraction of the cohort) and continue past the
        // already-visited prefixes. Every batch is a prefix of the same
        // total order, so the visit sequence is seamless.
        const std::size_t visited = co.keys.size();
        const std::size_t next = visited * 8;
        if (next * 4 >= pinned_prefixes.size()) {
          order_all(iface, co);
        } else {
          order_topk(iface, co, next);
        }
        cursor = visited;
        continue;
      }
      const DetourKey& key = co.keys[cursor++];
      const PinnedPrefix& pinned = pinned_prefixes[key.idx];
      to_move -= place(pinned, pinned.prefix, pinned.rate, 0);
    }

    if (to_move > net::Bandwidth::zero()) {
      // Only count overload actually above *capacity* as unresolved drops;
      // the slice between target and capacity is just unmet headroom.
      const net::Bandwidth excess = final_load[iface] - capacity;
      if (excess > net::Bandwidth::zero()) {
        result.unresolved_overload += excess;
      }
    }
  }
}

/// Result boundary: dense load tables back to the public map form
/// (wire/audit format unchanged; every known interface appears, loaded
/// or not).
void emit_loads(const telemetry::InterfaceRegistry& interfaces,
                const std::vector<net::Bandwidth>& projected,
                const std::vector<net::Bandwidth>& final_load,
                AllocationResult& result) {
  for (std::size_t i = 0; i < interfaces.size(); ++i) {
    const telemetry::InterfaceId id = interfaces.id_at(i);
    result.projected_load.emplace_hint(result.projected_load.end(), id,
                                       projected[i]);
    result.final_load.emplace_hint(result.final_load.end(), id,
                                   final_load[i]);
  }
}

}  // namespace

/// Scratch reused across cycles. Every field is wiped (capacity kept) at
/// the start of allocate(); nothing here ever feeds back into a decision.
struct Allocator::Workspace::Impl {
  /// Demand in ascending-prefix order. When the demand prefix set is
  /// unchanged since the previous cycle (the common case: rates move,
  /// prefixes do not) the sort is skipped and only the rates refresh.
  std::vector<std::pair<net::Prefix, net::Bandwidth>> demand_sorted;
  bool demand_primed = false;

  /// Demand traversal mapping: the j-th prefix visited by
  /// demand.for_each() lives at demand_sorted[hash_order[j]]. Valid only
  /// for the exact (instance_id, membership_epoch) it was built against —
  /// then the per-cycle rate refresh is one sequential walk of the demand
  /// table with zero hash lookups.
  std::vector<std::uint32_t> hash_order;
  bool hash_order_valid = false;
  std::uint64_t demand_instance = 0;
  std::uint64_t demand_set_epoch = 0;

  /// The (instance_id, epoch) pair of the Rib the arena below was built
  /// against. While the demand order was reused AND the very same Rib is
  /// untouched, the filtered arena is exactly what re-ranking and
  /// re-filtering would produce, so warm cycles do zero RIB lookups.
  /// Any mismatch rebuilds from ranked_view() per prefix.
  std::uint64_t rib_instance = 0;
  std::uint64_t rib_epoch = 0;

  /// Flat per-interface tables, addressed by
  /// InterfaceRegistry::index_of (ascending-id dense order).
  std::vector<net::Bandwidth> projected;
  std::vector<net::Bandwidth> final_load;
  std::vector<net::Bandwidth> usable;  // usable_capacity snapshot
  std::vector<std::vector<PinnedPrefix>> pinned;

  /// Shared arena of ranked non-controller route pointers; PinnedPrefix
  /// slices into it by offset so arena growth never invalidates anything.
  /// Rebuilt together with `views` (the filtering depends only on the
  /// routes, never on rates), so warm cycles skip the per-prefix filter
  /// walk entirely. `filt_begin/filt_count` give each demand entry's
  /// slice (best route first); `alt_slot` is the parallel egress-slot
  /// index of every arena route, resolved once at rebuild so warm-path
  /// egress lookups are plain array reads, not hash probes.
  std::vector<const bgp::Route*> alternates;
  std::vector<std::uint32_t> filt_begin;
  std::vector<std::uint32_t> filt_count;
  std::vector<std::uint32_t> alt_slot;

  /// Precompiled egress table (see EgressSlot above): exemplars point
  /// into the Rib, valid while the Rib is unchanged — exactly when the
  /// table survives a cycle.
  std::vector<EgressSlot> slots;
  std::unordered_map<net::IpAddr, std::uint32_t> slot_of;

  /// Per-chunk scratch for the sharded (parallel) arena rebuild: each
  /// worker fills its own arena segment, NEXT_HOP first-appearance list,
  /// and ranking-cache tallies; the merge concatenates segments in chunk
  /// order (order-preserving, so the combined arena is byte-for-byte the
  /// serial one) and settles the slot table and cache counters serially.
  /// Persisted so warm parallel rebuilds reuse the vectors' capacity.
  struct RebuildChunk {
    std::vector<const bgp::Route*> alternates;
    std::vector<const bgp::Route*> hop_order;  // first route per new hop
    std::unordered_map<net::IpAddr, const bgp::Route*> hop_seen;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t arena_offset = 0;
  };
  std::vector<RebuildChunk> chunks;

  /// Dense indices of the interfaces phase 2 found overloaded, in
  /// ascending order — the iteration order of both the (parallelizable)
  /// score/sort pass and the (serial) placement pass.
  std::vector<std::uint32_t> overloaded;

  /// Per-overloaded-cohort detour-key scratch (parallel to `overloaded`),
  /// reused across cycles and shared by the full and incremental paths.
  std::vector<CohortOrder> key_scratch;
};

Allocator::Workspace::Workspace() : impl_(std::make_unique<Impl>()) {}
Allocator::Workspace::~Workspace() = default;
Allocator::Workspace::Workspace(Workspace&&) noexcept = default;
Allocator::Workspace& Allocator::Workspace::operator=(Workspace&&) noexcept =
    default;

AllocationResult Allocator::allocate(
    const bgp::Rib& rib, const telemetry::DemandMatrix& demand,
    const telemetry::InterfaceRegistry& interfaces,
    const EgressResolver& resolve) const {
  Workspace workspace;
  return allocate(rib, demand, interfaces, resolve, workspace);
}

AllocationResult Allocator::allocate(
    const bgp::Rib& rib, const telemetry::DemandMatrix& demand,
    const telemetry::InterfaceRegistry& interfaces,
    const EgressResolver& resolve, Workspace& workspace,
    runtime::ThreadPool* pool) const {
  Workspace::Impl& ws = *workspace.impl_;
  // A one-worker pool has nothing to shard; fold it into the serial path
  // so the parallel branches below can assume at least two workers.
  if (pool != nullptr && pool->size() <= 1) pool = nullptr;
  const std::size_t iface_count = interfaces.size();
  AllocationResult result;

  // Reset the per-cycle scratch, keeping capacity. (The egress table is
  // refreshed further down, once it is known whether it can survive.)
  ws.projected.assign(iface_count, net::Bandwidth::zero());
  ws.final_load.assign(iface_count, net::Bandwidth::zero());
  ws.usable.resize(iface_count);
  if (ws.pinned.size() != iface_count) ws.pinned.resize(iface_count);
  for (auto& pool : ws.pinned) pool.clear();
  for (std::size_t i = 0; i < iface_count; ++i) {
    ws.usable[i] = interfaces.usable_capacity(interfaces.id_at(i));
  }

  // (Re)runs the resolver for one egress slot. Called for every slot
  // every cycle — resolution can change between cycles (sessions flap) —
  // so within a cycle the table is immutable and the resolver is invoked
  // at most once per distinct NEXT_HOP.
  const auto fill_slot = [&](EgressSlot& slot, const bgp::Route& route) {
    slot.usable_iface = false;
    if (const auto view = resolve(route);
        view && interfaces.contains(view->interface)) {
      slot.view = *view;
      slot.iface =
          static_cast<std::uint32_t>(interfaces.index_of(view->interface));
      slot.usable_iface = true;
    }
  };

  // Resolve a route's egress through the memo table, by NEXT_HOP.
  const auto resolve_slot = [&](const bgp::Route& route) -> std::uint32_t {
    auto [it, inserted] = ws.slot_of.try_emplace(
        route.attrs.next_hop, static_cast<std::uint32_t>(ws.slots.size()));
    if (inserted) {
      EgressSlot& slot = ws.slots.emplace_back();
      slot.exemplar = &route;
      fill_slot(slot, route);
    }
    return it->second;
  };

  // --- Phase 1: projection --------------------------------------------
  // Route all demand along BGP-preferred paths (ignoring our own injected
  // routes) and remember, per interface, which prefixes landed there.
  //
  // Walk demand in prefix order, not hash order: float accumulation is not
  // associative, so the allocation is only a bitwise-deterministic function
  // of its inputs (what the audit replay engine verifies) if the iteration
  // order is a function of the inputs too. The sorted vector is reused
  // verbatim when the prefix set did not change (order depends only on the
  // set, so skipping the sort cannot change the result).
  bool reuse_order = ws.hash_order_valid &&
                     ws.demand_instance == demand.instance_id() &&
                     ws.demand_set_epoch == demand.membership_epoch();
  if (reuse_order) {
    // Same matrix, same membership: traversal order is stable, so refresh
    // every rate with one sequential walk and no per-prefix lookups.
    std::size_t j = 0;
    demand.visit([&](const net::Prefix&, net::Bandwidth rate) {
      ws.demand_sorted[ws.hash_order[j++]].second = rate;
    });
  } else {
    reuse_order =
        ws.demand_primed && ws.demand_sorted.size() == demand.prefix_count();
    if (reuse_order) {
      for (auto& entry : ws.demand_sorted) {
        const net::Bandwidth* rate = demand.find(entry.first);
        if (rate == nullptr) {
          reuse_order = false;  // set changed: same size, different members
          break;
        }
        entry.second = *rate;
      }
    }
    if (!reuse_order) {
      ws.demand_sorted.clear();
      ws.demand_sorted.reserve(demand.prefix_count());
      demand.visit([&](const net::Prefix& prefix, net::Bandwidth rate) {
        ws.demand_sorted.emplace_back(prefix, rate);
      });
      std::sort(ws.demand_sorted.begin(), ws.demand_sorted.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      ws.demand_primed = true;
    }
    // Rebuild the traversal mapping for the next cycle (binary search per
    // prefix: paid only when the matrix identity or membership moved).
    ws.hash_order.resize(ws.demand_sorted.size());
    std::size_t j = 0;
    demand.visit([&](const net::Prefix& prefix, net::Bandwidth) {
      const auto it = std::lower_bound(
          ws.demand_sorted.begin(), ws.demand_sorted.end(), prefix,
          [](const auto& entry, const net::Prefix& p) {
            return entry.first < p;
          });
      ws.hash_order[j++] =
          static_cast<std::uint32_t>(it - ws.demand_sorted.begin());
    });
    ws.hash_order_valid = true;
    ws.demand_instance = demand.instance_id();
    ws.demand_set_epoch = demand.membership_epoch();
  }

  // Arena reuse: when the demand order was reused and the Rib is
  // bitwise the same one (same instance, same whole-RIB epoch) as last
  // cycle, the filtered arena already holds every prefix's ranked,
  // egress-resolved candidates and phase 1 does zero RIB lookups and
  // zero hash probes. The reuse changes nothing but lookup count: the
  // slices are exactly what ranked_view() + filtering would rebuild.
  const bool reuse_views = reuse_order &&
                           ws.rib_instance == rib.instance_id() &&
                           ws.rib_epoch == rib.epoch();
  if (!reuse_views) {
    // Route pointers changed hands: the egress table and the filtered
    // arena must be rediscovered.
    ws.slots.clear();
    ws.slot_of.clear();
    const std::size_t demand_count = ws.demand_sorted.size();
    ws.filt_begin.resize(demand_count);
    ws.filt_count.resize(demand_count);

    // Chunking: only worth it when each worker gets a real slice of
    // prefixes; tiny tables stay on the serial path below.
    constexpr std::size_t kMinChunk = 1024;
    std::size_t chunk_count = 1;
    if (pool != nullptr && demand_count >= 2 * kMinChunk) {
      chunk_count = std::min<std::size_t>(
          static_cast<std::size_t>(pool->size()) * 4,
          demand_count / kMinChunk);
    }

    if (chunk_count <= 1) {
      ws.alternates.clear();
      std::uint64_t hits = 0;
      std::uint64_t misses = 0;
      for (std::size_t i = 0; i < demand_count; ++i) {
        bool cache_hit = false;
        const bgp::Rib::RankedView view =
            rib.ranked_view_uncounted(ws.demand_sorted[i].first, cache_hit);
        // Tally hit/miss only for prefixes the RIB knows (matching
        // ranked_view(): an unknown prefix consults no cache).
        if (!view.routes.empty()) (cache_hit ? hits : misses) += 1;
        // Controller-injected routes are dropped after ranking; that is
        // safe because the relative order of natural routes does not
        // depend on the injected ones. Filtering depends only on the
        // routes, so the slices stay valid exactly as long as the views.
        const std::size_t mark = ws.alternates.size();
        for (std::size_t index : view.order) {
          const bgp::Route& route = view.routes[index];
          if (route.peer_type != bgp::PeerType::kController) {
            ws.alternates.push_back(&route);
          }
        }
        ws.filt_begin[i] = static_cast<std::uint32_t>(mark);
        ws.filt_count[i] =
            static_cast<std::uint32_t>(ws.alternates.size() - mark);
      }
      rib.credit_rank_cache(hits, misses);
      ws.alt_slot.resize(ws.alternates.size());
      for (std::size_t k = 0; k < ws.alternates.size(); ++k) {
        ws.alt_slot[k] = resolve_slot(*ws.alternates[k]);
      }
    } else {
      // Sharded rebuild: each chunk ranks and filters a contiguous
      // demand range into its own arena segment. Disjoint prefixes mean
      // disjoint per-prefix ranking caches, so ranked_view_uncounted()
      // is safe to call concurrently; the shared hit/miss counters are
      // tallied per chunk and credited once after the barrier.
      const std::size_t per_chunk =
          (demand_count + chunk_count - 1) / chunk_count;
      ws.chunks.resize(chunk_count);
      pool->parallel_for(chunk_count, [&](std::size_t c) {
        Workspace::Impl::RebuildChunk& chunk = ws.chunks[c];
        chunk.alternates.clear();
        chunk.hop_order.clear();
        chunk.hop_seen.clear();
        chunk.hits = 0;
        chunk.misses = 0;
        const std::size_t lo = c * per_chunk;
        const std::size_t hi = std::min(demand_count, lo + per_chunk);
        for (std::size_t i = lo; i < hi; ++i) {
          bool cache_hit = false;
          const bgp::Rib::RankedView view =
              rib.ranked_view_uncounted(ws.demand_sorted[i].first, cache_hit);
          if (!view.routes.empty()) (cache_hit ? chunk.hits : chunk.misses) += 1;
          const std::size_t mark = chunk.alternates.size();
          for (std::size_t index : view.order) {
            const bgp::Route& route = view.routes[index];
            if (route.peer_type != bgp::PeerType::kController) {
              chunk.alternates.push_back(&route);
              if (chunk.hop_seen.try_emplace(route.attrs.next_hop, &route)
                      .second) {
                chunk.hop_order.push_back(&route);
              }
            }
          }
          ws.filt_count[i] =
              static_cast<std::uint32_t>(chunk.alternates.size() - mark);
        }
      });

      // Merge, order-preserving: chunk segments concatenate in chunk
      // order, so the arena (and every filt_begin slice) is exactly what
      // the serial loop above would have produced.
      std::size_t total = 0;
      for (Workspace::Impl::RebuildChunk& chunk : ws.chunks) {
        chunk.arena_offset = total;
        total += chunk.alternates.size();
      }
      std::uint32_t running = 0;
      for (std::size_t i = 0; i < demand_count; ++i) {
        ws.filt_begin[i] = running;
        running += ws.filt_count[i];
      }
      ws.alternates.resize(total);
      pool->parallel_for(chunk_count, [&](std::size_t c) {
        const Workspace::Impl::RebuildChunk& chunk = ws.chunks[c];
        std::copy(chunk.alternates.begin(), chunk.alternates.end(),
                  ws.alternates.begin() +
                      static_cast<std::ptrdiff_t>(chunk.arena_offset));
      });

      // Slot table, serial: walking the chunks' first-appearance lists
      // in chunk order visits each distinct NEXT_HOP in exactly its
      // first arena appearance order, so slot ids, exemplars, and the
      // one-resolve-per-hop contract all match the serial rebuild.
      std::uint64_t hits = 0;
      std::uint64_t misses = 0;
      for (const Workspace::Impl::RebuildChunk& chunk : ws.chunks) {
        hits += chunk.hits;
        misses += chunk.misses;
        for (const bgp::Route* exemplar : chunk.hop_order) {
          resolve_slot(*exemplar);
        }
      }
      rib.credit_rank_cache(hits, misses);
      ws.alt_slot.resize(total);
      pool->parallel_for(chunk_count, [&](std::size_t c) {
        const Workspace::Impl::RebuildChunk& chunk = ws.chunks[c];
        for (std::size_t k = 0; k < chunk.alternates.size(); ++k) {
          // Lookup-only probes of the (now frozen) slot table.
          ws.alt_slot[chunk.arena_offset + k] =
              ws.slot_of.find(chunk.alternates[k]->attrs.next_hop)->second;
        }
      });
    }
    ws.rib_instance = rib.instance_id();
    ws.rib_epoch = rib.epoch();
  } else {
    rib.credit_rank_cache_hits(ws.demand_sorted.size());
    // The NEXT_HOP set is unchanged (same routes), but what each hop
    // resolves to may not be: re-run the resolver once per slot.
    for (EgressSlot& slot : ws.slots) {
      fill_slot(slot, *slot.exemplar);
    }
  }

  // Sharded projection: each shard owns a contiguous block of dense
  // interface indices and walks the WHOLE demand array in ascending
  // prefix order, pinning only the prefixes whose BGP-preferred egress
  // it owns. Every interface's `projected +=` therefore runs in exactly
  // the serial prefix order regardless of shard count — float
  // accumulation stays order-identical, which is what keeps the sharded
  // allocation bitwise equal to the serial one. Shard 0 additionally
  // owns the unroutable accumulator (again in prefix order). The scan
  // itself (slice + slot lookups) is the redundant part; it is cheap
  // and read-only, which is the price of a merge-free phase 1.
  const std::size_t shard_count =
      (pool != nullptr && iface_count > 1)
          ? std::min<std::size_t>(pool->size(), iface_count)
          : 1;
  const auto project_shard = [&](std::size_t shard) {
    const std::size_t iface_lo = shard * iface_count / shard_count;
    const std::size_t iface_hi = (shard + 1) * iface_count / shard_count;
    const bool owns_unroutable = shard == 0;
    for (std::size_t di = 0; di < ws.demand_sorted.size(); ++di) {
      const auto& [prefix, rate] = ws.demand_sorted[di];
      if (rate <= net::Bandwidth::zero()) continue;

      // The prefix's ranked, controller-filtered candidates, precomputed
      // into the arena (above or in an earlier cycle): best route first,
      // egress already resolved per slice element.
      const std::uint32_t begin = ws.filt_begin[di];
      const std::uint32_t count = ws.filt_count[di];
      if (count == 0) {
        if (owns_unroutable) result.unroutable += rate;
        continue;
      }
      const EgressSlot& slot = ws.slots[ws.alt_slot[begin]];
      if (!slot.usable_iface) {
        if (owns_unroutable) result.unroutable += rate;
        continue;
      }
      if (slot.iface < iface_lo || slot.iface >= iface_hi) continue;

      PinnedPrefix pinned;
      pinned.prefix = prefix;
      pinned.rate = rate;
      pinned.best = ws.alternates[begin];
      pinned.alt_begin = begin + 1;
      pinned.alt_count = count - 1;
      ws.projected[slot.iface] += rate;
      ws.pinned[slot.iface].push_back(pinned);
    }
  };
  if (shard_count > 1) {
    pool->parallel_for(shard_count, project_shard);
  } else {
    project_shard(0);
  }

  ws.final_load = ws.projected;

  // --- Phase 2: overload detection and detour selection -----------------
  // Three passes. Detection and placement walk interfaces in ascending
  // dense index == ascending InterfaceId — the same order the seed's
  // std::map produced, so detour placement (and therefore float
  // accumulation) is unchanged. Scoring/sorting sits between them and
  // fans out across the pool: it reads only the (frozen) slot table and
  // writes only its own interface's pinned list, and the detection
  // predicate reads only projected/usable — which placement never
  // mutates — so hoisting both out of the placement loop changes no
  // decision (placement-order-dependent state, final_load, is consulted
  // only inside the serial placement pass).
  ws.overloaded.clear();
  for (std::size_t iface = 0; iface < iface_count; ++iface) {
    if (ws.pinned[iface].empty()) continue;  // nothing landed here
    const net::Bandwidth capacity = ws.usable[iface];
    const net::Bandwidth projected = ws.projected[iface];
    const net::Bandwidth limit = capacity * config_.overload_threshold;
    if (projected <= limit && capacity > net::Bandwidth::zero()) continue;
    ++result.overloaded_interfaces;
    ws.overloaded.push_back(static_cast<std::uint32_t>(iface));
  }

  score_sort_place(config_, interfaces, ws.alternates, ws.alt_slot, ws.slots,
                   ws.overloaded, ws.pinned, ws.usable, ws.final_load,
                   /*rescore=*/true, ws.key_scratch, pool, result);
  emit_loads(interfaces, ws.projected, ws.final_load, result);
  return result;
}

/// Cross-cycle state for allocate_incremental(). Everything here is
/// DECISION state deliberately carried between cycles — the exact
/// opposite of the Workspace contract — so its validity conditions are
/// strict: any input the change feeds cannot account for invalidates
/// the whole thing, and the next cycle rebuilds it from a full
/// allocate().
///
/// Invariants while `valid` (the DESIGN.md §15 ledger invariants):
///  - `pstate` holds exactly the prefixes in the DemandMatrix; each is
///    classified kNone (zero demand), kUnroutable, or pinned to the
///    dense interface its BGP-preferred egress resolves to.
///  - `projected[i]` equals the sum of the rates of cohort i's members,
///    and `unroutable` the sum over kUnroutable prefixes — bitwise what
///    a fresh in-order summation produces, because DemandMatrix rates
///    are integral bps and integral doubles sum exactly in any order.
///  - Cohort members' `best`/arena route pointers point into the Rib
///    and are valid: mutating a prefix's routes always logs it dirty,
///    and the dirty rebuild refreshes its pointers before any use.
///  - Slot exemplars are route COPIES (owned by `exemplar_store`): the
///    route a slot was cloned from may be withdrawn while the slot
///    lives on, and the resolver only reads the NEXT_HOP.
struct Allocator::Ledger::Impl {
  static constexpr std::uint32_t kNone = 0xffffffffu;
  static constexpr std::uint32_t kUnroutable = 0xfffffffeu;

  /// Cohort members are PinnedPrefix — the same record phase 2 consumes
  /// — with `best_alternate_tier` computed at insert (full rebuild or
  /// reclassify) and provably still fresh whenever phase 2 reads it: the
  /// tier is a function of the member's arena slice and the slot table
  /// only, new slots can only affect the member being (re)inserted, and
  /// any change to an existing slot's resolution invalidates the whole
  /// ledger (the per-cycle re-resolution check below). Cohorts are
  /// UNSORTED (swap-pop removal, members addressed by `pos`); phase 2
  /// orders them through its detour-key scratch without ever permuting
  /// the cohort itself — the comparator is a strict total order
  /// (prefixes are unique within a cohort), so the resulting sequence is
  /// independent of the cohort's internal order.
  struct PState {
    net::Bandwidth rate;
    std::uint32_t iface = kNone;  // dense index, kUnroutable, or kNone
    std::uint32_t pos = 0;        // index into cohorts[iface] when pinned
  };

  bool valid = false;
  AllocatorConfig config;
  std::uint64_t rib_instance = 0;
  std::uint64_t rib_cursor = 0;
  std::uint64_t demand_instance = 0;
  std::uint64_t demand_cursor = 0;
  std::vector<telemetry::InterfaceId> iface_ids;  // dense-order signature

  std::unordered_map<net::Prefix, PState> pstate;
  std::vector<std::vector<PinnedPrefix>> cohorts;

  std::vector<net::Bandwidth> projected;
  net::Bandwidth unroutable;

  /// Ledger-owned arena of each pinned prefix's ranked non-best
  /// alternates (+ parallel slot indices). Append-only between
  /// compactions; dead slices from dirty rebuilds are reclaimed once
  /// the arena outgrows twice its live count.
  std::vector<const bgp::Route*> alternates;
  std::vector<std::uint32_t> alt_slot;
  std::size_t arena_live = 0;

  std::vector<EgressSlot> slots;
  std::unordered_map<net::IpAddr, std::uint32_t> slot_of;
  std::deque<bgp::Route> exemplar_store;  // address-stable slot exemplars

  /// Previous cycle's overload class per dense interface, for the
  /// escalation count (threshold crossings and un-crossings).
  std::vector<bool> prev_overloaded;
};

Allocator::Ledger::Ledger() : impl_(std::make_unique<Impl>()) {}
Allocator::Ledger::~Ledger() = default;
Allocator::Ledger::Ledger(Ledger&&) noexcept = default;
Allocator::Ledger& Allocator::Ledger::operator=(Ledger&&) noexcept = default;

void Allocator::Ledger::invalidate() { impl_->valid = false; }

AllocationResult Allocator::allocate_incremental(
    const bgp::Rib& rib, const telemetry::DemandMatrix& demand,
    const telemetry::InterfaceRegistry& interfaces,
    const EgressResolver& resolve, Workspace& workspace, Ledger& ledger,
    double dirty_ceiling, IncrementalOutcome* outcome,
    runtime::ThreadPool* pool) const {
  Ledger::Impl& lg = *ledger.impl_;
  Workspace::Impl& ws = *workspace.impl_;
  IncrementalOutcome local;
  IncrementalOutcome& out = outcome != nullptr ? *outcome : local;
  out = {};

  const std::size_t iface_count = interfaces.size();

  // Full rebuild: run the ordinary cycle, then rebuild the ledger from
  // the workspace it leaves behind. The classification walk below is
  // the same one phase 1's projection performs, so the carried state is
  // exactly what the full result implies.
  const auto full_rebuild = [&]() -> AllocationResult {
    out.incremental = false;
    out.full_fallback = true;
    AllocationResult result =
        allocate(rib, demand, interfaces, resolve, workspace, pool);

    lg.config = config_;
    lg.rib_instance = rib.instance_id();
    lg.rib_cursor = rib.change_seq();
    lg.demand_instance = demand.instance_id();
    lg.demand_cursor = demand.change_seq();
    lg.iface_ids.clear();
    for (std::size_t i = 0; i < iface_count; ++i) {
      lg.iface_ids.push_back(interfaces.id_at(i));
    }

    lg.projected.assign(ws.projected.begin(), ws.projected.end());
    lg.unroutable = result.unroutable;

    lg.slots = ws.slots;
    lg.slot_of = ws.slot_of;
    lg.exemplar_store.clear();
    for (EgressSlot& slot : lg.slots) {
      lg.exemplar_store.push_back(*slot.exemplar);
      slot.exemplar = &lg.exemplar_store.back();
    }

    lg.alternates = ws.alternates;
    lg.alt_slot = ws.alt_slot;
    lg.arena_live = lg.alternates.size();

    lg.pstate.clear();
    lg.cohorts.assign(iface_count, {});
    for (std::size_t di = 0; di < ws.demand_sorted.size(); ++di) {
      const auto& [prefix, rate] = ws.demand_sorted[di];
      Ledger::Impl::PState state;
      state.rate = rate;
      if (rate > net::Bandwidth::zero()) {
        const std::uint32_t begin = ws.filt_begin[di];
        const std::uint32_t count = ws.filt_count[di];
        if (count == 0 || !ws.slots[ws.alt_slot[begin]].usable_iface) {
          state.iface = Ledger::Impl::kUnroutable;
        } else {
          const std::uint32_t iface = ws.slots[ws.alt_slot[begin]].iface;
          auto& cohort = lg.cohorts[iface];
          state.iface = iface;
          state.pos = static_cast<std::uint32_t>(cohort.size());
          cohort.push_back(
              {prefix, rate, ws.alternates[begin], begin + 1, count - 1,
               alternate_tier(lg.alt_slot, lg.slots, begin + 1, count - 1,
                              iface)});
        }
      }
      lg.pstate.emplace(prefix, state);
    }

    lg.prev_overloaded.assign(iface_count, false);
    for (const std::uint32_t iface : ws.overloaded) {
      lg.prev_overloaded[iface] = true;
    }
    lg.valid = true;
    return result;
  };

  if (!lg.valid || lg.config != config_ ||
      lg.rib_instance != rib.instance_id() ||
      lg.demand_instance != demand.instance_id() ||
      lg.iface_ids.size() != iface_count) {
    return full_rebuild();
  }
  for (std::size_t i = 0; i < iface_count; ++i) {
    if (lg.iface_ids[i] != interfaces.id_at(i)) return full_rebuild();
  }

  // Dirty sets from both change feeds, kept separate: a prefix that is
  // dirty only because its demand RATE moved keeps its cached
  // classification (ranking and pinning never read the rate), so it
  // takes an O(1) ledger delta below instead of a full re-rank. A
  // trimmed log means changes were lost; nothing to do but a full pass.
  std::vector<net::Prefix> route_dirty;
  std::vector<std::pair<net::Prefix, net::Bandwidth>> demand_dirty;
  if (rib.changes_since(lg.rib_cursor,
                        [&](const net::Prefix& prefix) {
                          route_dirty.push_back(prefix);
                        }) != bgp::Rib::ChangeLogStatus::kOk) {
    return full_rebuild();
  }
  if (demand.changes_since(lg.demand_cursor,
                           [&](const net::Prefix& prefix,
                               net::Bandwidth rate_after) {
                             demand_dirty.emplace_back(prefix, rate_after);
                           }) != telemetry::DemandMatrix::ChangeLogStatus::kOk) {
    return full_rebuild();
  }
  std::sort(route_dirty.begin(), route_dirty.end());
  route_dirty.erase(std::unique(route_dirty.begin(), route_dirty.end()),
                    route_dirty.end());
  // Dedup keeping the LAST log entry per prefix: entries carry the rate
  // stored right after each mutation, so on a kOk replay the last one is
  // the prefix's current rate — the fast path below never needs a demand
  // lookup. stable_sort keeps equal prefixes in log order.
  std::stable_sort(demand_dirty.begin(), demand_dirty.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  {
    std::size_t w = 0;
    for (std::size_t r = 0; r < demand_dirty.size(); ++r) {
      if (r + 1 < demand_dirty.size() &&
          demand_dirty[r + 1].first == demand_dirty[r].first) {
        continue;
      }
      demand_dirty[w++] = demand_dirty[r];
    }
    demand_dirty.resize(w);
  }

  std::size_t union_size = route_dirty.size();
  for (const auto& [prefix, rate] : demand_dirty) {
    if (!std::binary_search(route_dirty.begin(), route_dirty.end(), prefix)) {
      ++union_size;
    }
  }
  out.dirty_prefixes = union_size;
  const std::size_t tracked = std::max<std::size_t>(1, demand.prefix_count());
  if (static_cast<double>(union_size) >
      dirty_ceiling * static_cast<double>(tracked)) {
    return full_rebuild();
  }

  // Re-resolve every slot: egress resolution can change between cycles
  // with no RIB or demand change at all (sessions flap), and a changed
  // outcome reclassifies prefixes the change feeds know nothing about —
  // so it invalidates the ledger wholesale. O(distinct NEXT_HOPs), i.e.
  // O(peers), per cycle.
  for (const EgressSlot& slot : lg.slots) {
    EgressSlot fresh;
    if (const auto view = resolve(*slot.exemplar);
        view && interfaces.contains(view->interface)) {
      fresh.view = *view;
      fresh.iface =
          static_cast<std::uint32_t>(interfaces.index_of(view->interface));
      fresh.usable_iface = true;
    }
    if (fresh.usable_iface != slot.usable_iface ||
        (fresh.usable_iface &&
         (fresh.iface != slot.iface ||
          fresh.view.interface != slot.view.interface ||
          fresh.view.type != slot.view.type ||
          fresh.view.address != slot.view.address))) {
      return full_rebuild();
    }
  }

  out.incremental = true;

  // Rank-cache accounting: clean prefixes' rankings (and rate-only dirty
  // ones — their ledger classification stands in for a ranking) are
  // served without even a cache lookup, credited in bulk like the full
  // warm path; route-dirty prefixes tally for real below.
  rib.credit_rank_cache_hits(
      demand.prefix_count() > route_dirty.size()
          ? static_cast<std::uint64_t>(demand.prefix_count() -
                                       route_dirty.size())
          : 0);

  std::uint64_t rank_hits = 0;
  std::uint64_t rank_misses = 0;
  std::vector<const bgp::Route*> filtered;  // scratch: ranked non-controller

  const auto resolve_ledger_slot =
      [&](const bgp::Route& route) -> std::uint32_t {
    auto [it, inserted] = lg.slot_of.try_emplace(
        route.attrs.next_hop, static_cast<std::uint32_t>(lg.slots.size()));
    if (inserted) {
      lg.exemplar_store.push_back(route);
      EgressSlot& slot = lg.slots.emplace_back();
      slot.exemplar = &lg.exemplar_store.back();
      if (const auto view = resolve(route);
          view && interfaces.contains(view->interface)) {
        slot.view = *view;
        slot.iface =
            static_cast<std::uint32_t>(interfaces.index_of(view->interface));
        slot.usable_iface = true;
      }
    }
    return it->second;
  };

  // Full reclassify of one dirty prefix: subtract its old ledger
  // contribution, re-rank it against the current RIB + demand, add the
  // new one back.
  const auto reclassify = [&](const net::Prefix& prefix) {
    auto state_it = lg.pstate.find(prefix);
    if (state_it != lg.pstate.end()) {
      const Ledger::Impl::PState old = state_it->second;
      if (old.iface == Ledger::Impl::kUnroutable) {
        lg.unroutable -= old.rate;
      } else if (old.iface != Ledger::Impl::kNone) {
        lg.projected[old.iface] -= old.rate;
        auto& cohort = lg.cohorts[old.iface];
        lg.arena_live -= cohort[old.pos].alt_count;
        if (old.pos + 1 != cohort.size()) {
          cohort[old.pos] = cohort.back();
          lg.pstate.find(cohort[old.pos].prefix)->second.pos = old.pos;
        }
        cohort.pop_back();
      }
    }

    // Reclassify against the current RIB + demand and add it back.
    const net::Bandwidth* rate_ptr = demand.find(prefix);
    if (rate_ptr == nullptr) {
      // No longer tracked (route churn on a prefix with no demand, or a
      // demand entry that went away with its matrix): drop the state.
      if (state_it != lg.pstate.end()) lg.pstate.erase(state_it);
      return;
    }
    const net::Bandwidth rate = *rate_ptr;
    Ledger::Impl::PState state;
    state.rate = rate;
    if (rate > net::Bandwidth::zero()) {
      bool cache_hit = false;
      const bgp::Rib::RankedView view =
          rib.ranked_view_uncounted(prefix, cache_hit);
      if (!view.routes.empty()) (cache_hit ? rank_hits : rank_misses) += 1;
      filtered.clear();
      for (std::size_t index : view.order) {
        const bgp::Route& route = view.routes[index];
        if (route.peer_type != bgp::PeerType::kController) {
          filtered.push_back(&route);
        }
      }
      if (filtered.empty()) {
        state.iface = Ledger::Impl::kUnroutable;
      } else {
        const std::uint32_t best_slot = resolve_ledger_slot(*filtered[0]);
        if (!lg.slots[best_slot].usable_iface) {
          state.iface = Ledger::Impl::kUnroutable;
        } else {
          const std::uint32_t iface = lg.slots[best_slot].iface;
          const std::uint32_t alt_begin =
              static_cast<std::uint32_t>(lg.alternates.size());
          for (std::size_t a = 1; a < filtered.size(); ++a) {
            lg.alternates.push_back(filtered[a]);
            lg.alt_slot.push_back(resolve_ledger_slot(*filtered[a]));
          }
          const std::uint32_t alt_count =
              static_cast<std::uint32_t>(filtered.size() - 1);
          lg.arena_live += alt_count;
          auto& cohort = lg.cohorts[iface];
          state.iface = iface;
          state.pos = static_cast<std::uint32_t>(cohort.size());
          cohort.push_back(
              {prefix, rate, filtered[0], alt_begin, alt_count,
               alternate_tier(lg.alt_slot, lg.slots, alt_begin, alt_count,
                              iface)});
          lg.projected[iface] += rate;
        }
      }
      if (state.iface == Ledger::Impl::kUnroutable) lg.unroutable += rate;
    }
    if (state_it != lg.pstate.end()) {
      state_it->second = state;
    } else {
      lg.pstate.emplace(prefix, state);
    }
  };

  for (const net::Prefix& prefix : route_dirty) reclassify(prefix);

  // Rate-only dirty prefixes: the cached classification provably still
  // holds (BGP ranking and NEXT_HOP resolution never read the rate), so
  // swap the old rate for the new one in place — O(1) per prefix, the
  // steady-state hot path. Integral-bps rates (DemandMatrix quantizes on
  // write) make subtract-then-add exact, preserving the ledger's
  // bitwise-equals-fresh-sum invariant. Transitions the cache can't
  // cover — a prefix appearing, vanishing, or crossing zero demand —
  // fall back to the full reclassify.
  for (const auto& [prefix, new_rate] : demand_dirty) {
    if (std::binary_search(route_dirty.begin(), route_dirty.end(), prefix)) {
      continue;  // already reclassified above
    }
    const auto state_it = lg.pstate.find(prefix);
    if (state_it == lg.pstate.end() ||
        !(new_rate > net::Bandwidth::zero()) ||
        state_it->second.iface == Ledger::Impl::kNone) {
      reclassify(prefix);
      continue;
    }
    Ledger::Impl::PState& state = state_it->second;
    const net::Bandwidth old_rate = state.rate;
    if (new_rate == old_rate) continue;  // log can't see no-op rewrites
    if (state.iface == Ledger::Impl::kUnroutable) {
      lg.unroutable -= old_rate;
      lg.unroutable += new_rate;
    } else {
      lg.projected[state.iface] -= old_rate;
      lg.projected[state.iface] += new_rate;
      lg.cohorts[state.iface][state.pos].rate = new_rate;
    }
    state.rate = new_rate;
  }
  rib.credit_rank_cache(rank_hits, rank_misses);

  // Arena compaction: dirty rebuilds append fresh slices and orphan old
  // ones; once the arena doubles its live size, repack it O(live).
  if (lg.alternates.size() > 4096 &&
      lg.alternates.size() > 2 * lg.arena_live) {
    std::vector<const bgp::Route*> packed;
    std::vector<std::uint32_t> packed_slot;
    packed.reserve(lg.arena_live);
    packed_slot.reserve(lg.arena_live);
    for (auto& cohort : lg.cohorts) {
      for (PinnedPrefix& member : cohort) {
        const std::uint32_t begin = static_cast<std::uint32_t>(packed.size());
        for (std::uint32_t a = 0; a < member.alt_count; ++a) {
          packed.push_back(lg.alternates[member.alt_begin + a]);
          packed_slot.push_back(lg.alt_slot[member.alt_begin + a]);
        }
        member.alt_begin = begin;
      }
    }
    lg.alternates = std::move(packed);
    lg.alt_slot = std::move(packed_slot);
    lg.arena_live = lg.alternates.size();
  }

  lg.rib_cursor = rib.change_seq();
  lg.demand_cursor = demand.change_seq();

  // --- Phase 2, fresh every cycle over the carried cohorts ------------
  // Detection, scoring/sorting, and placement all rerun from the
  // ledger's exact projected loads, so overload crossings and
  // un-crossings (escalations) are handled by construction: a crossing
  // pulls its whole cohort into placement, an un-crossing releases it.
  AllocationResult result;
  result.unroutable = lg.unroutable;

  ws.usable.resize(iface_count);
  for (std::size_t i = 0; i < iface_count; ++i) {
    ws.usable[i] = interfaces.usable_capacity(interfaces.id_at(i));
  }
  ws.projected.assign(lg.projected.begin(), lg.projected.end());
  ws.final_load = ws.projected;

  ws.overloaded.clear();
  for (std::size_t iface = 0; iface < iface_count; ++iface) {
    bool now = false;
    if (!lg.cohorts[iface].empty()) {
      const net::Bandwidth capacity = ws.usable[iface];
      const net::Bandwidth limit = capacity * config_.overload_threshold;
      now = ws.projected[iface] > limit ||
            capacity <= net::Bandwidth::zero();
    }
    if (now != static_cast<bool>(lg.prev_overloaded[iface])) {
      ++out.escalations;
    }
    lg.prev_overloaded[iface] = now;
    if (!now) continue;
    ++result.overloaded_interfaces;
    ws.overloaded.push_back(static_cast<std::uint32_t>(iface));
  }

  // Phase 2 reads the ledger cohorts in place: the detour-key scratch
  // carries the ordering, the cohorts themselves are never permuted (so
  // `pos` addressing survives), and rescore=false trusts the tiers
  // cached at insert time — valid because any slot change rebuilt the
  // ledger above.
  score_sort_place(config_, interfaces, lg.alternates, lg.alt_slot, lg.slots,
                   ws.overloaded, lg.cohorts, ws.usable, ws.final_load,
                   /*rescore=*/false, ws.key_scratch, /*pool=*/nullptr,
                   result);
  emit_loads(interfaces, ws.projected, ws.final_load, result);
  return result;
}

}  // namespace ef::core
