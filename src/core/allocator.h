// The Edge Fabric allocator: one stateless allocation cycle.
//
// Inputs: the PoP-wide multi-path RIB (from BMP), per-prefix demand (from
// sFlow), and interface capacities/drain state (from the interface
// registry). Output: the set of prefixes to detour and the alternate route
// each should take, computed from scratch — the controller carries no
// state between cycles, which is the paper's central robustness choice
// (a crashed controller leaves nothing stale behind).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "bgp/rib.h"
#include "runtime/thread_pool.h"
#include "telemetry/interface.h"
#include "telemetry/traffic.h"

namespace ef::core {

/// How the allocator sees an egress option (resolved from a route's
/// NEXT_HOP by the host environment).
struct EgressView {
  telemetry::InterfaceId interface;
  bgp::PeerType type = bgp::PeerType::kTransit;
  net::IpAddr address;  // the peer's session address (route NEXT_HOP)
};

using EgressResolver =
    std::function<std::optional<EgressView>(const bgp::Route&)>;

/// One override decision: steer `prefix` away from its BGP-preferred
/// interface onto the alternate route described here.
struct Override {
  net::Prefix prefix;
  net::Bandwidth rate;                     // demand moved
  net::IpAddr next_hop;                    // alternate peer address
  bgp::AsPath as_path;                     // alternate route's AS path
  telemetry::InterfaceId from_interface;   // BGP-preferred egress
  telemetry::InterfaceId target_interface; // where the detour lands
  bgp::PeerType from_type = bgp::PeerType::kPrivatePeer;
  bgp::PeerType target_type = bgp::PeerType::kTransit;

  friend bool operator==(const Override&, const Override&) = default;
};

enum class DetourOrder : std::uint8_t {
  /// Paper behaviour: move the prefixes whose best alternate is most
  /// preferred (peer before transit), largest demand first within a tier.
  kBestAlternateFirst = 0,
  /// Ablation: move the largest prefixes first regardless of where their
  /// alternate lands.
  kLargestFirst = 1,
};

struct AllocatorConfig {
  /// Detour when projected utilization exceeds this fraction of capacity.
  double overload_threshold = 0.95;
  /// Shift prefixes until projected utilization is at or below this.
  double target_utilization = 0.90;
  /// Never fill an alternate interface beyond this fraction.
  double detour_headroom = 0.95;
  DetourOrder order = DetourOrder::kBestAlternateFirst;
  /// Safety valve: cap on overrides per cycle (0 = unlimited).
  std::size_t max_overrides = 0;
  /// When a prefix's whole demand fits no alternate, split it into
  /// more-specific halves and place them independently (the paper's
  /// finer-grained override extension). Traffic is assumed uniform
  /// within a prefix, so each half carries half the rate.
  bool allow_prefix_splitting = false;
  /// Maximum split recursion (1 = halves, 2 = quarters, ...).
  int max_split_depth = 2;

  friend bool operator==(const AllocatorConfig&,
                         const AllocatorConfig&) = default;
};

struct AllocationResult {
  std::vector<Override> overrides;
  /// Projected load under pure BGP (no overrides), per interface.
  std::map<telemetry::InterfaceId, net::Bandwidth> projected_load;
  /// Load after applying the overrides above.
  std::map<telemetry::InterfaceId, net::Bandwidth> final_load;
  /// Interfaces whose projected load exceeded the threshold.
  std::size_t overloaded_interfaces = 0;
  /// Demand that had to stay on an overloaded interface because no
  /// alternate had room (or none existed).
  net::Bandwidth unresolved_overload;
  /// Demand with no usable route at all.
  net::Bandwidth unroutable;

  friend bool operator==(const AllocationResult&,
                         const AllocationResult&) = default;
};

class Allocator {
 public:
  /// Reusable scratch memory for the allocation fast path: the
  /// sorted-demand vector, per-interface pinned-prefix pools and flat
  /// load tables, and the per-cycle NEXT_HOP -> egress memo table. A
  /// workspace persists across cycles so warm cycles allocate (almost)
  /// nothing; its contents are wiped at the start of every allocate()
  /// and NEVER carry decision state between cycles — the allocation
  /// stays a pure function of (RIB, demand, interfaces), which the
  /// audit replay and the cold-vs-warm property test prove. Opaque:
  /// the layout lives in allocator.cpp. Not shareable across threads
  /// concurrently (one workspace per controller).
  class Workspace {
   public:
    Workspace();
    ~Workspace();
    Workspace(Workspace&&) noexcept;
    Workspace& operator=(Workspace&&) noexcept;

   private:
    friend class Allocator;
    struct Impl;
    std::unique_ptr<Impl> impl_;
  };

  /// Persistent cross-cycle state for allocate_incremental(): per-prefix
  /// classification, per-interface load totals and pinned cohorts, the
  /// egress slot table, and the identity (Rib/DemandMatrix instance ids
  /// + change-log cursors) it was built against. Unlike the Workspace —
  /// pure scratch, wiped every cycle — the Ledger deliberately carries
  /// decision-shaped state between cycles; its contract is that
  /// consuming it produces bitwise the result a from-scratch allocate()
  /// would (the IncrementalAllocProperty suite locks this in). Anything
  /// the change feeds cannot see (failsafe transitions, external state
  /// resets) must invalidate() it; allocate_incremental() detects the
  /// rest (identity swaps, config changes, interface-set changes,
  /// resolver outcome changes, trimmed logs) and falls back to a full
  /// recompute on its own. Opaque; not shareable across threads.
  class Ledger {
   public:
    Ledger();
    ~Ledger();
    Ledger(Ledger&&) noexcept;
    Ledger& operator=(Ledger&&) noexcept;

    /// Drops all carried state: the next incremental cycle runs full.
    void invalidate();

   private:
    friend class Allocator;
    struct Impl;
    std::unique_ptr<Impl> impl_;
  };

  /// How allocate_incremental() actually ran, for stats/metrics.
  struct IncrementalOutcome {
    bool incremental = false;    // delta path taken
    bool full_fallback = false;  // fell back to a full recompute
    std::size_t dirty_prefixes = 0;  // deduped dirty-set size
    std::size_t escalations = 0;  // interfaces whose overload class flipped
  };

  explicit Allocator(AllocatorConfig config = {}) : config_(config) {}

  /// Runs one allocation over the given inputs. Routes injected by the
  /// controller itself (PeerType::kController) are ignored when computing
  /// preferred paths, so the projection always reflects what vanilla BGP
  /// would do — the key to statelessness.
  ///
  /// `resolve` is invoked at most once per distinct NEXT_HOP per cycle
  /// (resolutions are memoized in the workspace for the duration of the
  /// call), so it must be a pure function of the route's NEXT_HOP while
  /// allocate() runs — true of every forwarding-plane resolver, which
  /// mirrors what the routers do with the next hop.
  /// `pool`, when non-null, shards the cycle across the pool's workers:
  /// the arena rebuild is chunked by demand range, phase 1 is sharded by
  /// egress-interface ownership, and phase 2's per-interface scoring and
  /// sorting fan out (detour placement stays serial — it is a float
  /// accumulation and therefore order-defined). The pool is an execution
  /// resource, never a decision input: the result is bitwise identical
  /// to the serial one for any pool size, because every interface's
  /// load accumulation runs in exactly the serial prefix order on
  /// whichever worker owns that interface (the ShardedAllocProperty
  /// test locks this in). `resolve` is still invoked at most once per
  /// distinct NEXT_HOP, always from the calling thread.
  AllocationResult allocate(const bgp::Rib& rib,
                            const telemetry::DemandMatrix& demand,
                            const telemetry::InterfaceRegistry& interfaces,
                            const EgressResolver& resolve,
                            Workspace& workspace,
                            runtime::ThreadPool* pool = nullptr) const;

  /// Convenience overload with a throwaway workspace (cold path); the
  /// decisions are identical to the warm overload above.
  AllocationResult allocate(const bgp::Rib& rib,
                            const telemetry::DemandMatrix& demand,
                            const telemetry::InterfaceRegistry& interfaces,
                            const EgressResolver& resolve) const;

  /// Incremental (delta) cycle: reuses the ledger's previous-cycle
  /// classification and per-interface load totals, re-ranking and
  /// re-projecting only the prefixes the Rib and DemandMatrix change
  /// logs report dirty since the ledger's cursors. Overload detection
  /// and detour placement (phase 2) run fresh every cycle over the
  /// carried cohorts, so threshold crossings and un-crossings — the
  /// escalation cases — are handled by construction and merely counted.
  /// The result is bitwise identical to allocate() on the same inputs;
  /// DemandMatrix's integral-bps rate quantization is what makes the
  /// subtract/add load updates exact.
  ///
  /// Falls back to a full recompute (rebuilding the ledger) when the
  /// ledger is invalid, identities or config changed, the interface set
  /// changed, a change log was trimmed, any egress slot resolves
  /// differently than cached, or the dirty set exceeds
  /// `dirty_ceiling` x demand.prefix_count() — so the worst case never
  /// regresses below the full path. Unlike allocate(), `resolve` may be
  /// invoked more than once per distinct NEXT_HOP in a fallback cycle
  /// (still at most twice); it must stay pure for the call's duration.
  /// `pool` is used only by the fallback full recompute.
  AllocationResult allocate_incremental(
      const bgp::Rib& rib, const telemetry::DemandMatrix& demand,
      const telemetry::InterfaceRegistry& interfaces,
      const EgressResolver& resolve, Workspace& workspace, Ledger& ledger,
      double dirty_ceiling, IncrementalOutcome* outcome = nullptr,
      runtime::ThreadPool* pool = nullptr) const;

  const AllocatorConfig& config() const { return config_; }

 private:
  AllocatorConfig config_;
};

}  // namespace ef::core
