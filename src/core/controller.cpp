#include "core/controller.h"

#include "bgp/policy.h"
#include "net/log.h"

namespace ef::core {

namespace {

bgp::BgpSpeaker::Config controller_speaker_config(
    const topology::Pop& pop) {
  bgp::BgpSpeaker::Config config;
  config.local_as = pop.world().config().local_as;
  config.router_id = bgp::RouterId(
      0x7f010000u | static_cast<std::uint32_t>(pop.index() + 1));
  config.import_policy.local_as = config.local_as;
  return config;
}

}  // namespace

Controller::Controller(topology::Pop& pop, ControllerConfig config)
    : pop_(&pop),
      config_(config),
      allocator_(config.allocator),
      alloc_pool_(config.alloc_threads == 1
                      ? nullptr
                      : std::make_unique<runtime::ThreadPool>(
                            config.alloc_threads)),
      safety_(config.safety),
      speaker_(controller_speaker_config(pop)) {}

void Controller::connect(int router_index) {
  EF_CHECK(sessions_.empty(), "controller already connected");
  if (config_.enforcement != Enforcement::kBgpInjection) {
    return;  // only BGP injection needs sessions
  }
  if (config_.inject_all_routers) {
    for (int r = 0; r < pop_->router_count(); ++r) {
      sessions_.push_back(pop_->attach_controller(speaker_, r));
    }
  } else {
    sessions_.push_back(pop_->attach_controller(speaker_, router_index));
  }
}

bool Controller::connected() const {
  if (config_.enforcement != Enforcement::kBgpInjection) return true;
  return established_sessions() > 0;
}

std::size_t Controller::established_sessions() const {
  std::size_t count = 0;
  for (bgp::PeerId session_id : sessions_) {
    const bgp::BgpSession* session = speaker_.session(session_id);
    if (session != nullptr && session->established()) ++count;
  }
  return count;
}

void Controller::drop_session(std::size_t index, net::SimTime now) {
  EF_CHECK(index < sessions_.size(), "no such injection session");
  speaker_.close_session(sessions_[index], now);
  pop_->pump();
}

CycleStats Controller::run_cycle(const telemetry::DemandMatrix& demand,
                                 net::SimTime now) {
  EF_CHECK(config_.enforcement != Enforcement::kBgpInjection ||
               !sessions_.empty(),
           "controller not connected");
  const auto cycle_start = std::chrono::steady_clock::now();
  CycleStats stats;
  stats.when = now;

  // Resolve routes to egress ports through the PoP's address map — the
  // same resolution the routers' forwarding planes perform.
  const EgressResolver resolver =
      [this](const bgp::Route& route) -> std::optional<EgressView> {
    const auto egress = pop_->egress_of_route(route);
    if (!egress) return std::nullopt;
    return EgressView{egress->interface, egress->type,
                      route.attrs.next_hop};
  };

  const bgp::Rib& rib =
      rib_source_ != nullptr ? *rib_source_ : pop_->collector().rib();
  const bgp::Rib::RankCacheStats cache_before = rib.rank_cache_stats();
  const auto wall_start = std::chrono::steady_clock::now();
  if (config_.incremental) {
    Allocator::IncrementalOutcome outcome;
    stats.allocation = allocator_.allocate_incremental(
        rib, demand, pop_->interfaces(), resolver, workspace_, ledger_,
        config_.incremental_dirty_ceiling, &outcome, alloc_pool_.get());
    stats.incremental_cycle = outcome.incremental;
    stats.dirty_prefixes = outcome.dirty_prefixes;
    stats.escalations = outcome.escalations;
    stats.full_fallbacks = outcome.full_fallback ? 1 : 0;
  } else {
    stats.allocation = allocator_.allocate(rib, demand, pop_->interfaces(),
                                           resolver, workspace_,
                                           alloc_pool_.get());
  }
  stats.allocation_wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - wall_start);
  const bgp::Rib::RankCacheStats cache_after = rib.rank_cache_stats();
  const std::uint64_t lookups =
      (cache_after.hits - cache_before.hits) +
      (cache_after.misses - cache_before.misses);
  stats.ranking_cache_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(cache_after.hits - cache_before.hits) /
                         static_cast<double>(lookups);

  // Fresh override set, keyed by prefix.
  std::map<net::Prefix, Override> fresh;
  for (const Override& override_entry : stats.allocation.overrides) {
    fresh[override_entry.prefix] = override_entry;
  }

  // Optional hysteresis: retain old overrides whose source interface is
  // still hot, even though the stateless allocation no longer needs them.
  // A retained override must still fit on its target — keeping a detour
  // that overloads the detour target would trade one overload for another.
  if (config_.restore_threshold > 0) {
    auto& final_load = stats.allocation.final_load;
    for (const auto& [prefix, old_override] : active_) {
      if (fresh.contains(prefix)) continue;
      const auto it =
          stats.allocation.projected_load.find(old_override.from_interface);
      if (it == stats.allocation.projected_load.end()) continue;
      const net::Bandwidth capacity =
          pop_->interfaces().usable_capacity(old_override.from_interface);
      if (capacity <= net::Bandwidth::zero()) continue;
      if (it->second / capacity <= config_.restore_threshold) continue;

      const net::Bandwidth target_capacity =
          pop_->interfaces().usable_capacity(old_override.target_interface);
      if (target_capacity <= net::Bandwidth::zero()) continue;  // drained
      // Use the override's current demand, not last cycle's snapshot. A
      // prefix that vanished from demand has nothing left to steer —
      // retaining it would keep a zero-rate override (and its journal
      // entry) alive indefinitely.
      const net::Bandwidth rate = demand.rate(prefix);
      if (rate <= net::Bandwidth::zero()) continue;
      const net::Bandwidth headroom =
          target_capacity * config_.allocator.detour_headroom -
          final_load[old_override.target_interface];
      if (rate > headroom) continue;

      Override retained = old_override;
      retained.rate = rate;
      final_load[old_override.target_interface] += rate;
      final_load[old_override.from_interface] -= rate;
      fresh[prefix] = std::move(retained);
      ++stats.retained_by_hysteresis;
    }
  }

  // Performance-aware extension: accept advised overrides for prefixes
  // the capacity allocation left alone, as long as the target interface
  // has headroom.
  if (advisor_) {
    auto& final_load = stats.allocation.final_load;
    for (Override& advised : advisor_(stats.allocation)) {
      if (fresh.contains(advised.prefix)) continue;
      const net::Bandwidth capacity =
          pop_->interfaces().usable_capacity(advised.target_interface);
      if (capacity <= net::Bandwidth::zero()) continue;
      const net::Bandwidth headroom =
          capacity * config_.allocator.detour_headroom -
          final_load[advised.target_interface];
      if (advised.rate > headroom) continue;
      final_load[advised.target_interface] += advised.rate;
      final_load[advised.from_interface] -= advised.rate;
      fresh[advised.prefix] = std::move(advised);
      ++stats.perf_overrides;
    }
  }

  // Churn guard: bound how many prefixes may *change* their override in
  // one cycle. A change is a brand-new override or an existing one
  // steered to a different egress; removals and rate refreshes stay free
  // because shrinking toward plain BGP is the safe direction. Changes
  // past the budget revert to last cycle's decision (deterministically,
  // in prefix order) and retry next cycle, so a routing or demand glitch
  // cannot flip the whole override set at once.
  if (config_.max_churn_frac > 0) {
    auto changed = [&](const net::Prefix& prefix, const Override& entry) {
      const auto old_it = active_.find(prefix);
      if (old_it == active_.end()) return true;
      return old_it->second.target_interface != entry.target_interface ||
             old_it->second.next_hop != entry.next_hop;
    };
    std::size_t tracked = active_.size();
    std::size_t changes = 0;
    for (const auto& [prefix, entry] : fresh) {
      if (!active_.contains(prefix)) ++tracked;
      if (changed(prefix, entry)) ++changes;
    }
    const std::size_t budget = std::max<std::size_t>(
        1, static_cast<std::size_t>(config_.max_churn_frac *
                                    static_cast<double>(tracked)));
    if (changes > budget) {
      auto& final_load = stats.allocation.final_load;
      std::size_t allowed = 0;
      std::vector<net::Prefix> deferred;
      for (auto& [prefix, entry] : fresh) {
        if (!changed(prefix, entry)) continue;
        if (allowed < budget) {
          ++allowed;
          continue;
        }
        // Undo the proposed move, then re-apply last cycle's decision
        // (re-rated against current demand — rates are not churn).
        final_load[entry.target_interface] -= entry.rate;
        final_load[entry.from_interface] += entry.rate;
        const auto old_it = active_.find(prefix);
        if (old_it != active_.end()) {
          Override kept = old_it->second;
          kept.rate = entry.rate;
          final_load[kept.target_interface] += kept.rate;
          final_load[kept.from_interface] -= kept.rate;
          entry = std::move(kept);
        } else {
          deferred.push_back(prefix);
        }
        ++stats.churn_deferred;
      }
      for (const net::Prefix& prefix : deferred) fresh.erase(prefix);
    }
  }

  // Safety guard rails: drop overrides whose target route vanished and
  // enforce the detour budget, before anything reaches the routers.
  stats.safety = safety_.apply(fresh, rib, demand.total());

  // Cycle watchdog: a cycle that blew its wall-clock budget is acting on
  // inputs older than it believes. Fail static — enforce the empty set
  // (withdrawing everything) rather than a late decision.
  if (config_.cycle_budget.count() > 0 &&
      std::chrono::steady_clock::now() - cycle_start > config_.cycle_budget) {
    stats.watchdog_aborted = true;
    fresh.clear();
  }

  // Enforce: BGP injection (paper) or direct host programming.
  if (config_.enforcement == Enforcement::kBgpInjection) {
    std::map<net::Prefix, bgp::BgpSpeaker::Origination> originations;
    for (const auto& [prefix, override_entry] : fresh) {
      bgp::BgpSpeaker::Origination origination;
      origination.path_tail = override_entry.as_path;
      origination.local_pref = bgp::LocalPref(config_.override_local_pref);
      origination.next_hop = override_entry.next_hop;
      origination.communities = {
          kOverrideCommunity,
          bgp::peer_type_community(override_entry.target_type)};
      originations[prefix] = std::move(origination);
    }
    speaker_.set_originations(originations, now);
    pop_->pump();
  } else if (config_.enforcement == Enforcement::kHostRouting) {
    const net::SimTime lease_until =
        now + net::SimTime::millis(static_cast<std::int64_t>(
                  config_.cycle_period.millis_value() *
                  config_.host_lease_cycles));
    for (const auto& [prefix, old_override] : active_) {
      if (!fresh.contains(prefix)) pop_->remove_host_override(prefix);
    }
    // (Re)install everything current — refreshing the lease is what keeps
    // a live controller's entries alive.
    for (const auto& [prefix, override_entry] : fresh) {
      pop_->install_host_override(prefix, override_entry.next_hop,
                                  lease_until);
    }
  }

  // Churn accounting.
  for (const auto& [prefix, override_entry] : fresh) {
    if (!active_.contains(prefix)) ++stats.added;
  }
  for (const auto& [prefix, override_entry] : active_) {
    if (!fresh.contains(prefix)) ++stats.removed;
  }
  active_ = std::move(fresh);
  stats.overrides_active = active_.size();

  if (observer_) {
    observer_(CycleRecord{demand, rib, pop_->interfaces(), resolver,
                          config_.allocator, active_, stats});
  }
  return stats;
}

void Controller::withdraw_all(net::SimTime now) {
  if (config_.enforcement == Enforcement::kBgpInjection) {
    if (!sessions_.empty()) {
      speaker_.set_originations({}, now);
      pop_->pump();
    }
  } else if (config_.enforcement == Enforcement::kHostRouting) {
    for (const auto& [prefix, override_entry] : active_) {
      pop_->remove_host_override(prefix);
    }
  }
  active_.clear();
}

void Controller::restore_overrides(const std::vector<Override>& overrides,
                                   net::SimTime now) {
  std::map<net::Prefix, Override> restored;
  for (const Override& o : overrides) restored[o.prefix] = o;
  if (config_.enforcement == Enforcement::kBgpInjection) {
    std::map<net::Prefix, bgp::BgpSpeaker::Origination> originations;
    for (const auto& [prefix, override_entry] : restored) {
      bgp::BgpSpeaker::Origination origination;
      origination.path_tail = override_entry.as_path;
      origination.local_pref = bgp::LocalPref(config_.override_local_pref);
      origination.next_hop = override_entry.next_hop;
      origination.communities = {
          kOverrideCommunity,
          bgp::peer_type_community(override_entry.target_type)};
      originations[prefix] = std::move(origination);
    }
    speaker_.set_originations(originations, now);
    pop_->pump();
  } else if (config_.enforcement == Enforcement::kHostRouting) {
    const net::SimTime lease_until =
        now + net::SimTime::millis(static_cast<std::int64_t>(
                  config_.cycle_period.millis_value() *
                  config_.host_lease_cycles));
    for (const auto& [prefix, override_entry] : restored) {
      pop_->install_host_override(prefix, override_entry.next_hop,
                                  lease_until);
    }
  }
  active_ = std::move(restored);
  ledger_.invalidate();
}

void Controller::repair_overrides(const std::vector<net::Prefix>& reannounce,
                                  const std::vector<net::Prefix>& withdraw,
                                  net::SimTime now) {
  if (config_.enforcement != Enforcement::kBgpInjection) return;
  for (const net::Prefix& prefix : reannounce) {
    auto it = active_.find(prefix);
    if (it == active_.end()) continue;
    const Override& override_entry = it->second;
    bgp::BgpSpeaker::Origination origination;
    origination.path_tail = override_entry.as_path;
    origination.local_pref = bgp::LocalPref(config_.override_local_pref);
    origination.next_hop = override_entry.next_hop;
    origination.communities = {
        kOverrideCommunity,
        bgp::peer_type_community(override_entry.target_type)};
    // originate() re-sends unconditionally even when the entry matches
    // what the speaker already holds — the repair primitive.
    speaker_.originate(prefix, origination, now);
  }
  speaker_.send_withdraw(withdraw, now);
  pop_->pump();
}

void Controller::tick(net::SimTime now) {
  speaker_.tick(now);
  pop_->pump();
}

void Controller::shutdown(net::SimTime now, bool graceful) {
  for (bgp::PeerId session_id : sessions_) {
    speaker_.close_session(session_id, now);
  }
  if (graceful && config_.enforcement == Enforcement::kHostRouting) {
    for (const auto& [prefix, override_entry] : active_) {
      pop_->remove_host_override(prefix);
    }
  }
  pop_->pump();
  active_.clear();
}

}  // namespace ef::core
