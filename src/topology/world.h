// The simulated world: client (eyeball) ASes, PoPs, peerings, interfaces,
// and ground-truth path performance.
//
// This is the substitution for the production environment the paper runs
// in (real PoPs, thousands of BGP neighbors, measured RTTs). The generator
// is parameterized so the structural properties that drive Edge Fabric's
// behaviour are reproduced:
//   * skewed per-client traffic (Zipf) concentrated on a few heavy eyeballs,
//   * a preference ladder of route types (PNI > public > route server >
//     transit) with most prefixes reachable several ways,
//   * private interconnect capacities planned against *average* demand, so
//     daily peaks push some interfaces past capacity — the overload Edge
//     Fabric exists to absorb.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/types.h"
#include "net/prefix.h"
#include "net/rng.h"
#include "net/units.h"

namespace ef::topology {

struct WorldConfig {
  std::uint64_t seed = 42;

  // Clients (eyeball networks).
  int num_clients = 64;
  int min_prefixes_per_client = 2;
  int max_prefixes_per_client = 20;
  double client_zipf_exponent = 1.12;  // traffic skew across clients

  /// Fraction of clients that are dual-stack: they additionally announce
  /// IPv6 prefixes, which flow through the whole pipeline (MP-BGP wire
  /// encoding, v6 LPM, v6 overrides).
  double ipv6_client_fraction = 0.3;
  int max_ipv6_prefixes_per_client = 6;

  // PoPs and peerings.
  int num_pops = 4;
  int private_peers_per_pop = 8;
  int public_peers_per_pop = 8;
  int route_server_peers_per_pop = 6;
  int transits_per_pop = 2;
  int ixp_ports_per_pop = 2;
  int routers_per_pop = 2;

  /// Probability a non-peer client is additionally announced by a peer
  /// (multihoming / customer cone), beyond its transit reachability.
  double cone_probability = 0.55;
  /// Probability of one extra announcement via a second peer.
  double multihome_probability = 0.35;
  /// Probability a transit path includes an extra intermediate AS.
  double transit_extra_hop_probability = 0.3;

  // Capacity planning. Interface capacity = expected peak share of the
  // interface × headroom. Private headroom is noisy and occasionally < 1:
  // those are the under-provisioned PNIs that overload at daily peak.
  double pop_peak_gbps = 200.0;
  double private_headroom_mean = 1.15;
  double private_headroom_stddev = 0.30;
  double private_headroom_min = 0.55;
  double private_headroom_max = 2.0;
  double ixp_headroom = 1.5;
  double transit_headroom = 3.0;
  /// Transit ports are provisioned at least this fraction of the PoP peak
  /// (transit is the detour-of-last-resort and must be able to absorb
  /// displaced peer traffic).
  double transit_min_fraction_of_peak = 0.3;

  // Ground-truth performance model.
  double client_rtt_lognormal_mu = 3.6;     // exp(3.6) ≈ 37 ms median
  double client_rtt_lognormal_sigma = 0.45;

  bgp::AsNumber local_as{32934};
};

struct ClientAs {
  bgp::AsNumber as;
  std::vector<net::Prefix> prefixes;
  double weight = 0;        // global traffic share (sums to 1)
  double base_rtt_ms = 40;  // geography component of RTT
};

/// One (client) route a peering announces: the AS-path tail *below* the
/// peer (excluding the peer's own AS, which the peer prepends on export).
/// Empty tail means the peer originates the prefix itself.
struct AnnouncedRoute {
  std::size_t client = 0;            // index into World::clients
  std::vector<bgp::AsNumber> tail;   // e.g. {regional, client_as}
};

struct InterfaceDef {
  std::string name;
  net::Bandwidth capacity;
  bgp::PeerType role = bgp::PeerType::kPrivatePeer;
};

struct PeeringDef {
  bgp::AsNumber as;
  bgp::PeerType type = bgp::PeerType::kPrivatePeer;
  std::size_t interface = 0;  // index into PopDef::interfaces
  std::vector<AnnouncedRoute> routes;
  /// Performance penalty of egressing via this peering, before congestion.
  double rtt_penalty_ms = 0;
};

struct PopDef {
  std::string name;
  int num_routers = 2;
  std::vector<InterfaceDef> interfaces;
  std::vector<PeeringDef> peerings;
  /// Share of each client's traffic served from this PoP (sums to ~1 per
  /// client across PoPs); drives the per-PoP demand matrix.
  std::vector<double> client_share;
  double peak_gbps = 0;  // planned peak egress demand of the PoP
};

class World {
 public:
  static World generate(const WorldConfig& config);

  const WorldConfig& config() const { return config_; }
  const std::vector<ClientAs>& clients() const { return clients_; }
  const std::vector<PopDef>& pops() const { return pops_; }

  /// Index of the client owning `prefix`, or nullopt.
  std::optional<std::size_t> client_of_prefix(const net::Prefix& prefix)
      const;

  /// Ground-truth uncongested RTT of egressing traffic for `client` at
  /// `pop` via `peering` (ms). Deterministic in the world seed.
  double path_rtt_ms(std::size_t pop, std::size_t peering,
                     std::size_t client) const;

  /// Expected peak demand of `client` at `pop` in bps
  /// (pop peak × client share).
  net::Bandwidth peak_demand(std::size_t pop, std::size_t client) const;

 private:
  WorldConfig config_;
  std::vector<ClientAs> clients_;
  std::vector<PopDef> pops_;
  std::unordered_map<net::Prefix, std::size_t> prefix_owner_;
};

}  // namespace ef::topology
