#include "topology/pop.h"

#include <algorithm>
#include <functional>

#include "net/log.h"

namespace ef::topology {

namespace {

// Address plan, unique per (pop, peering) fleet-wide:
//  * pops 0..15 live in 172.16/12 — 172.(16+pop).0.peering, exactly the
//    historical plan, so every seeded world that fit it keeps bitwise-
//    identical addresses (and journal/bench output);
//  * pops 16..4095 overflow into 198.0.0.0/8 as 198.<pop:12><peering:12>,
//    which nothing else uses (clients sit in 100/8, BMP peer ids in 10/8),
//    unlocking the 64–512-PoP fleets bench_m12_fleet_parallel runs.
net::IpAddr neighbor_address(std::size_t pop, std::size_t peering) {
  if (pop < 16) {
    EF_CHECK(peering < 256, "address plan exceeded");
    return net::IpAddr::v4(0xac000000u |
                           ((16u + static_cast<std::uint32_t>(pop)) << 16) |
                           static_cast<std::uint32_t>(peering));
  }
  EF_CHECK(pop < 4096 && peering < 4096, "address plan exceeded");
  return net::IpAddr::v4(0xc6000000u | (static_cast<std::uint32_t>(pop) << 12) |
                         static_cast<std::uint32_t>(peering));
}

// Router loopbacks: 172.(16+pop).128.router for the first 16 pops,
// 199.<pop:16>.<router:8> beyond (disjoint from every other range above).
net::IpAddr router_address(std::size_t pop, int router) {
  if (pop < 16) {
    return net::IpAddr::v4(0xac000000u |
                           ((16u + static_cast<std::uint32_t>(pop)) << 16) |
                           (128u << 8) | static_cast<std::uint32_t>(router));
  }
  EF_CHECK(pop < 65536 && router >= 0 && router < 256,
           "address plan exceeded");
  return net::IpAddr::v4(0xc7000000u | (static_cast<std::uint32_t>(pop) << 8) |
                         static_cast<std::uint32_t>(router));
}

}  // namespace

Pop::Pop(const World& world, std::size_t pop_index)
    : world_(&world), pop_index_(pop_index) {
  EF_CHECK(pop_index < world.pops().size(), "pop index out of range");

  // Interfaces.
  const PopDef& def = this->def();
  for (std::size_t i = 0; i < def.interfaces.size(); ++i) {
    interfaces_.add(telemetry::InterfaceId(static_cast<std::uint32_t>(i)),
                    def.interfaces[i].capacity);
  }

  // Prefix table for LPM (sFlow aggregation, demand routing).
  for (const ClientAs& client : world.clients()) {
    for (const net::Prefix& prefix : client.prefixes) {
      prefix_table_.insert(prefix, prefix);
    }
  }

  build_routers();
  build_peerings();

  // Load the neighbors' originations first so the initial table download
  // arrives as batched updates when sessions establish, then converge.
  announce_neighbor_routes();
  for (auto& rt : peerings_) rt->neighbor->start_all_sessions(now_);
  for (auto& router : routers_) router->speaker->start_all_sessions(now_);
  pump();
}

void Pop::build_routers() {
  const PopDef& def = this->def();
  for (int r = 0; r < def.num_routers; ++r) {
    auto router = std::make_unique<Router>();
    router->key = static_cast<std::uint32_t>(pop_index_ * 16 +
                                             static_cast<std::size_t>(r));

    bgp::BgpSpeaker::Config config;
    config.local_as = world_->config().local_as;
    config.router_id = bgp::RouterId(router_address(pop_index_, r).v4_value());
    config.import_policy.local_as = config.local_as;
    router->speaker = std::make_unique<bgp::BgpSpeaker>(config);

    router->exporter = std::make_unique<bmp::BmpExporter>(
        def.name + "-pr" + std::to_string(r), router->key,
        [this, key = router->key](std::vector<std::uint8_t> bytes) {
          collector_.receive(key, bytes);
          if (bmp_tap_) bmp_tap_(key, bytes);
        });
    router->exporter->start();
    router->speaker->set_monitor(
        [exporter = router->exporter.get()](const bgp::MonitorEvent& event) {
          exporter->on_event(event);
        });
    routers_.push_back(std::move(router));
  }
}

void Pop::build_peerings() {
  const PopDef& def = this->def();
  peerings_.reserve(def.peerings.size());

  for (std::size_t i = 0; i < def.peerings.size(); ++i) {
    const PeeringDef& peering = def.peerings[i];
    auto rt = std::make_unique<PeeringRuntime>();
    rt->router_index = static_cast<int>(i) % def.num_routers;
    rt->address = neighbor_address(pop_index_, i);

    // The neighbor AS's speaker.
    bgp::BgpSpeaker::Config neighbor_config;
    neighbor_config.local_as = peering.as;
    neighbor_config.router_id = bgp::RouterId(rt->address.v4_value());
    neighbor_config.import_policy.local_as = peering.as;
    rt->neighbor = std::make_unique<bgp::BgpSpeaker>(neighbor_config);

    Router& router = *routers_[static_cast<std::size_t>(rt->router_index)];
    PeeringRuntime* rt_ptr = rt.get();

    // Router-side session.
    bgp::SessionConfig on_router;
    on_router.peer_as = peering.as;
    on_router.peer_type = peering.type;
    on_router.local_addr = router_address(pop_index_, rt->router_index);
    rt->on_router = router.speaker->add_neighbor(
        on_router, [this, rt_ptr](std::vector<std::uint8_t> bytes) {
          queue_.push_back(QueuedMessage{rt_ptr->neighbor.get(),
                                         rt_ptr->on_neighbor,
                                         std::move(bytes)});
        });

    // Neighbor-side session. Its local address is the NEXT_HOP the PoP
    // will see on every route from this peering.
    bgp::SessionConfig on_neighbor;
    on_neighbor.peer_as = world_->config().local_as;
    on_neighbor.peer_type = bgp::PeerType::kPrivatePeer;  // us, from outside
    on_neighbor.local_addr = rt->address;
    rt->on_neighbor = rt->neighbor->add_neighbor(
        on_neighbor,
        [this, rt_ptr, speaker = router.speaker.get()](
            std::vector<std::uint8_t> bytes) {
          queue_.push_back(
              QueuedMessage{speaker, rt_ptr->on_router, std::move(bytes)});
        });

    egress_by_address_[rt->address] =
        Egress{telemetry::InterfaceId(
                   static_cast<std::uint32_t>(peering.interface)),
               i, peering.type, peering.as};
    peerings_.push_back(std::move(rt));
  }
}

void Pop::announce_neighbor_routes() {
  const PopDef& def = this->def();
  for (std::size_t i = 0; i < def.peerings.size(); ++i) {
    const PeeringDef& peering = def.peerings[i];
    PeeringRuntime& rt = *peerings_[i];
    for (const AnnouncedRoute& route : peering.routes) {
      bgp::BgpSpeaker::Origination origination;
      origination.path_tail = bgp::AsPath(route.tail);
      for (const net::Prefix& prefix :
           world_->clients()[route.client].prefixes) {
        rt.neighbor->originate(prefix, origination, now_);
      }
    }
  }
}

void Pop::pump() {
  // Deliver queued messages until quiescent. Each delivery may enqueue
  // more (OPEN -> KEEPALIVE -> table download), but the protocol exchange
  // is acyclic, so this terminates.
  std::size_t delivered = 0;
  while (!queue_.empty()) {
    QueuedMessage msg = std::move(queue_.front());
    queue_.pop_front();
    msg.target->receive(msg.peer, msg.bytes, now_);
    EF_CHECK(++delivered < 10'000'000, "message pump did not quiesce");
  }
}

void Pop::resync_collector() {
  collector_ = bmp::BmpCollector();
  for (auto& router : routers_) {
    router->exporter->start();
    router->speaker->replay_to_monitor(now_);
  }
}

void Pop::replay_router_to_bmp(int router_index) {
  Router& router = *routers_[static_cast<std::size_t>(router_index)];
  router.exporter->start();
  router.speaker->replay_to_monitor(now_);
}

void Pop::tick(net::SimTime now) {
  now_ = std::max(now_, now);
  for (auto& router : routers_) router->speaker->tick(now_);
  for (auto& rt : peerings_) rt->neighbor->tick(now_);
  // Expire host-routing leases: a dead controller's entries drain here.
  std::erase_if(host_overrides_, [&](const auto& entry) {
    return entry.second.lease_until <= now_;
  });
  pump();
}

std::optional<Pop::Egress> Pop::egress_of_route(
    const bgp::Route& route) const {
  auto it = egress_by_address_.find(route.attrs.next_hop);
  if (it == egress_by_address_.end()) return std::nullopt;
  return it->second;
}

std::optional<Pop::Egress> Pop::egress_of(const net::Prefix& prefix) const {
  // Host-based overrides take precedence over BGP forwarding (the hosts
  // encapsulate straight to the chosen egress).
  auto host_it = host_overrides_.find(prefix);
  if (host_it != host_overrides_.end() &&
      host_it->second.lease_until > now_) {
    auto it = egress_by_address_.find(host_it->second.next_hop);
    if (it != egress_by_address_.end()) return it->second;
  }
  const bgp::Route* best = collector_.rib().best(prefix);
  if (!best) return std::nullopt;
  return egress_of_route(*best);
}

void Pop::install_host_override(const net::Prefix& prefix,
                                const net::IpAddr& next_hop,
                                net::SimTime lease_until) {
  EF_CHECK(egress_by_address_.contains(next_hop),
           "host override to unknown next hop " << next_hop.to_string());
  host_overrides_[prefix] = HostOverride{next_hop, lease_until};
}

void Pop::remove_host_override(const net::Prefix& prefix) {
  host_overrides_.erase(prefix);
}

std::vector<const bgp::Route*> Pop::ranked_routes(
    const net::Prefix& prefix) const {
  return collector_.rib().ranked(prefix);
}

std::map<telemetry::InterfaceId, net::Bandwidth> Pop::project_load(
    const telemetry::DemandMatrix& demand) const {
  std::map<telemetry::InterfaceId, net::Bandwidth> load;
  // Longest-prefix-match semantics: a controller-injected more-specific
  // (prefix split) captures its half of a demand prefix's flows. Splits
  // are bounded in depth, so probing the half-prefixes directly is cheap.
  const std::function<void(const net::Prefix&, net::Bandwidth, int)> route =
      [&](const net::Prefix& prefix, net::Bandwidth rate, int depth) {
        if (depth < 4 &&
            prefix.length() < net::address_bits(prefix.family())) {
          const net::Prefix low(prefix.address(), prefix.length() + 1);
          auto bytes = prefix.address().bytes();
          const int bit = prefix.length();
          bytes[static_cast<std::size_t>(bit / 8)] |=
              static_cast<std::uint8_t>(1u << (7 - bit % 8));
          const net::Prefix high(
              prefix.family() == net::Family::kV4
                  ? net::IpAddr::v4(
                        (static_cast<std::uint32_t>(bytes[0]) << 24) |
                        (static_cast<std::uint32_t>(bytes[1]) << 16) |
                        (static_cast<std::uint32_t>(bytes[2]) << 8) |
                        bytes[3])
                  : net::IpAddr::v6(bytes),
              prefix.length() + 1);
          const bool low_specific =
              !collector_.rib().candidates(low).empty() ||
              host_overrides_.contains(low);
          const bool high_specific =
              !collector_.rib().candidates(high).empty() ||
              host_overrides_.contains(high);
          if (low_specific || high_specific) {
            if (low_specific) {
              route(low, rate / 2, depth + 1);
            } else {
              const auto egress = egress_of(prefix);
              if (egress) load[egress->interface] += rate / 2;
            }
            if (high_specific) {
              route(high, rate / 2, depth + 1);
            } else {
              const auto egress = egress_of(prefix);
              if (egress) load[egress->interface] += rate / 2;
            }
            return;
          }
        }
        const auto egress = egress_of(prefix);
        if (egress) load[egress->interface] += rate;
      };
  demand.for_each([&](const net::Prefix& prefix, net::Bandwidth rate) {
    route(prefix, rate, 0);
  });
  return load;
}

bgp::PeerId Pop::attach_controller(bgp::BgpSpeaker& controller,
                                   int router_index) {
  EF_CHECK(router_index >= 0 && router_index < router_count(),
           "bad router index");
  Router& router = *routers_[static_cast<std::size_t>(router_index)];

  // Shared state so the two closures can route to each other's session id
  // even though the ids are assigned one after the other.
  auto ids = std::make_shared<std::pair<bgp::PeerId, bgp::PeerId>>();

  bgp::SessionConfig on_router;
  on_router.peer_as = world_->config().local_as;  // iBGP
  on_router.peer_type = bgp::PeerType::kController;
  on_router.local_addr = router_address(pop_index_, router_index);
  ids->first = router.speaker->add_neighbor(
      on_router,
      [this, ids, target = &controller](std::vector<std::uint8_t> bytes) {
        queue_.push_back(QueuedMessage{target, ids->second, std::move(bytes)});
      });

  bgp::SessionConfig on_controller;
  on_controller.peer_as = world_->config().local_as;
  on_controller.peer_type = bgp::PeerType::kController;
  on_controller.local_addr = net::IpAddr::v4(
      0x7f000000u | static_cast<std::uint32_t>(pop_index_ + 1));
  ids->second = controller.add_neighbor(
      on_controller,
      [this, ids, speaker = router.speaker.get()](
          std::vector<std::uint8_t> bytes) {
        queue_.push_back(
            QueuedMessage{speaker, ids->first, std::move(bytes)});
      });

  router.speaker->start_session(ids->first, now_);
  controller.start_session(ids->second, now_);
  pump();
  return ids->second;
}

net::IpAddr Pop::peering_address(std::size_t peering_index) const {
  EF_CHECK(peering_index < peerings_.size(), "bad peering index");
  return peerings_[peering_index]->address;
}

void Pop::set_peering_up(std::size_t peering_index, bool up,
                         net::SimTime now) {
  EF_CHECK(peering_index < peerings_.size(), "bad peering index");
  now_ = std::max(now_, now);
  PeeringRuntime& rt = *peerings_[peering_index];
  if (!up) {
    rt.neighbor->close_session(rt.on_neighbor, now_);
    pump();
    return;
  }
  // Restart both endpoints; Idle sessions ignore duplicate starts.
  rt.neighbor->start_session(rt.on_neighbor, now_);
  routers_[static_cast<std::size_t>(rt.router_index)]->speaker->start_session(
      rt.on_router, now_);
  pump();  // re-establishment re-announces the neighbor's originations
}

bool Pop::peering_up(std::size_t peering_index) const {
  EF_CHECK(peering_index < peerings_.size(), "bad peering index");
  const PeeringRuntime& rt = *peerings_[peering_index];
  const bgp::BgpSession* session = rt.neighbor->session(rt.on_neighbor);
  return session != nullptr && session->established();
}

std::vector<net::Prefix> Pop::reachable_prefixes() const {
  std::vector<net::Prefix> prefixes;
  collector_.rib().for_each_best(
      [&](const net::Prefix& prefix, const bgp::Route&) {
        prefixes.push_back(prefix);
      });
  std::sort(prefixes.begin(), prefixes.end());
  return prefixes;
}

}  // namespace ef::topology
