#include "topology/world.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "net/log.h"

namespace ef::topology {

namespace {

// Well-known transit ASNs, for flavour.
constexpr std::uint32_t kTransitAsns[] = {3356, 1299, 174, 6939, 2914};

double hash_jitter(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                   std::uint64_t c, double amplitude) {
  // SplitMix-style mix of the identifiers; deterministic in the seed.
  std::uint64_t x = seed ^ (a * 0x9e3779b97f4a7c15ull) ^
                    (b * 0xbf58476d1ce4e5b9ull) ^ (c * 0x94d049bb133111ebull);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  const double unit = static_cast<double>(x >> 11) * 0x1.0p-53;  // [0,1)
  return (unit * 2.0 - 1.0) * amplitude;
}

/// Preference rank of a peer type under the default egress ladder;
/// lower is better. Mirrors ImportPolicyConfig::type_local_pref.
int ladder_rank(bgp::PeerType type) {
  switch (type) {
    case bgp::PeerType::kPrivatePeer:
      return 0;
    case bgp::PeerType::kPublicPeer:
      return 1;
    case bgp::PeerType::kRouteServer:
      return 2;
    default:
      return 3;
  }
}

}  // namespace

World World::generate(const WorldConfig& config) {
  EF_CHECK(config.num_clients > config.private_peers_per_pop +
                                    config.public_peers_per_pop +
                                    config.route_server_peers_per_pop,
           "need more clients than per-PoP peer slots");
  EF_CHECK(config.num_clients <= 200, "client /16 address plan caps at 200");
  EF_CHECK(config.transits_per_pop <=
               static_cast<int>(std::size(kTransitAsns)),
           "at most " << std::size(kTransitAsns) << " transits supported");

  World world;
  world.config_ = config;
  net::Rng rng(config.seed);

  // ---- Clients ----------------------------------------------------------
  const std::size_t C = static_cast<std::size_t>(config.num_clients);
  net::ZipfDistribution zipf(C, config.client_zipf_exponent);
  world.clients_.resize(C);
  for (std::size_t c = 0; c < C; ++c) {
    ClientAs& client = world.clients_[c];
    client.as = bgp::AsNumber(30000 + static_cast<std::uint32_t>(c));
    client.weight = zipf.pmf(c + 1);
    client.base_rtt_ms = std::clamp(
        rng.lognormal(config.client_rtt_lognormal_mu,
                      config.client_rtt_lognormal_sigma),
        5.0, 300.0);
    const int prefix_count = static_cast<int>(rng.uniform_int(
        config.min_prefixes_per_client, config.max_prefixes_per_client));
    for (int j = 0; j < prefix_count; ++j) {
      // Client c owns 100.c.0.0/16; its prefixes are /24s inside it.
      const std::uint32_t base =
          (100u << 24) | (static_cast<std::uint32_t>(c) << 16) |
          (static_cast<std::uint32_t>(j) << 8);
      client.prefixes.emplace_back(net::IpAddr::v4(base), 24);
      world.prefix_owner_[client.prefixes.back()] = c;
    }
    // Dual-stack clients also announce 2001:db8:<c>:<j>::/64 prefixes.
    if (rng.bernoulli(config.ipv6_client_fraction)) {
      const int v6_count = static_cast<int>(
          rng.uniform_int(1, config.max_ipv6_prefixes_per_client));
      for (int j = 0; j < v6_count; ++j) {
        std::array<std::uint8_t, 16> bytes{};
        bytes[0] = 0x20;
        bytes[1] = 0x01;
        bytes[2] = 0x0d;
        bytes[3] = 0xb8;
        bytes[4] = static_cast<std::uint8_t>(c >> 8);
        bytes[5] = static_cast<std::uint8_t>(c);
        bytes[6] = static_cast<std::uint8_t>(j >> 8);
        bytes[7] = static_cast<std::uint8_t>(j);
        client.prefixes.emplace_back(net::IpAddr::v6(bytes), 64);
        world.prefix_owner_[client.prefixes.back()] = c;
      }
    }
  }

  // Per-client per-PoP affinity: one home PoP gets most of the client's
  // traffic; the rest spreads (users of an eyeball network cluster near
  // one serving region).
  const std::size_t P = static_cast<std::size_t>(config.num_pops);
  std::vector<std::vector<double>> affinity(C, std::vector<double>(P));
  for (std::size_t c = 0; c < C; ++c) {
    const std::size_t home =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(P) - 1));
    double total = 0;
    for (std::size_t p = 0; p < P; ++p) {
      affinity[c][p] = (p == home ? 1.0 : 0.12) * rng.uniform(0.7, 1.3);
      total += affinity[c][p];
    }
    for (std::size_t p = 0; p < P; ++p) affinity[c][p] /= total;
  }

  // ---- PoPs --------------------------------------------------------------
  world.pops_.resize(P);
  for (std::size_t p = 0; p < P; ++p) {
    PopDef& pop = world.pops_[p];
    // Single letters for the paper-scale worlds (stable names in every
    // existing exhibit); numeric past 'z' for the large parallel fleets.
    pop.name = p < 26 ? std::string("pop-") + static_cast<char>('a' + p)
                      : "pop-" + std::to_string(p);
    pop.num_routers = config.routers_per_pop;
    pop.peak_gbps = config.pop_peak_gbps;

    // Client demand share at this PoP (normalized to 1).
    pop.client_share.resize(C);
    double pop_total = 0;
    for (std::size_t c = 0; c < C; ++c) {
      pop.client_share[c] = world.clients_[c].weight * affinity[c][p];
      pop_total += pop.client_share[c];
    }
    for (double& share : pop.client_share) share /= pop_total;

    // Rank clients by local share; the heaviest get the closest peerings.
    std::vector<std::size_t> ranked(C);
    std::iota(ranked.begin(), ranked.end(), std::size_t{0});
    std::sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
      return pop.client_share[a] > pop.client_share[b];
    });

    const int n_private = config.private_peers_per_pop;
    const int n_public = config.public_peers_per_pop;
    const int n_rs = config.route_server_peers_per_pop;
    const int n_transit = config.transits_per_pop;
    const int n_ixp = config.ixp_ports_per_pop;

    // Interfaces: one per private peer, shared IXP ports, one per transit.
    for (int i = 0; i < n_private; ++i) {
      pop.interfaces.push_back(InterfaceDef{
          "pni-" +
              std::to_string(world.clients_[ranked[static_cast<std::size_t>(
                                                 i)]]
                                 .as.value()),
          net::Bandwidth::zero(), bgp::PeerType::kPrivatePeer});
    }
    for (int i = 0; i < n_ixp; ++i) {
      pop.interfaces.push_back(InterfaceDef{"ixp-" + std::to_string(i),
                                            net::Bandwidth::zero(),
                                            bgp::PeerType::kPublicPeer});
    }
    for (int i = 0; i < n_transit; ++i) {
      pop.interfaces.push_back(
          InterfaceDef{"transit-" + std::to_string(kTransitAsns[i]),
                       net::Bandwidth::zero(), bgp::PeerType::kTransit});
    }

    // Peerings.
    auto self_route = [](std::size_t client) {
      return AnnouncedRoute{client, {}};
    };
    int rank_cursor = 0;
    for (int i = 0; i < n_private; ++i, ++rank_cursor) {
      const std::size_t client = ranked[static_cast<std::size_t>(rank_cursor)];
      PeeringDef peering;
      peering.as = world.clients_[client].as;
      peering.type = bgp::PeerType::kPrivatePeer;
      peering.interface = static_cast<std::size_t>(i);
      peering.routes.push_back(self_route(client));
      peering.rtt_penalty_ms = rng.uniform(0.0, 1.5);
      pop.peerings.push_back(std::move(peering));
    }
    for (int i = 0; i < n_public; ++i, ++rank_cursor) {
      const std::size_t client = ranked[static_cast<std::size_t>(rank_cursor)];
      PeeringDef peering;
      peering.as = world.clients_[client].as;
      peering.type = bgp::PeerType::kPublicPeer;
      peering.interface = static_cast<std::size_t>(n_private + i % n_ixp);
      peering.routes.push_back(self_route(client));
      peering.rtt_penalty_ms = 1.5 + rng.uniform(0.0, 2.0);
      pop.peerings.push_back(std::move(peering));
    }
    for (int i = 0; i < n_rs; ++i, ++rank_cursor) {
      const std::size_t client = ranked[static_cast<std::size_t>(rank_cursor)];
      PeeringDef peering;
      peering.as = world.clients_[client].as;
      peering.type = bgp::PeerType::kRouteServer;
      peering.interface = static_cast<std::size_t>(n_private + i % n_ixp);
      peering.routes.push_back(self_route(client));
      peering.rtt_penalty_ms = 2.5 + rng.uniform(0.0, 2.0);
      pop.peerings.push_back(std::move(peering));
    }
    for (int t = 0; t < n_transit; ++t) {
      PeeringDef peering;
      peering.as = bgp::AsNumber(kTransitAsns[t]);
      peering.type = bgp::PeerType::kTransit;
      peering.interface =
          static_cast<std::size_t>(n_private + n_ixp + t);
      peering.rtt_penalty_ms = 8.0 + rng.uniform(0.0, 10.0);
      // Transit reaches every client, through the client's upstream chain.
      for (std::size_t c = 0; c < C; ++c) {
        AnnouncedRoute route;
        route.client = c;
        if (rng.bernoulli(config.transit_extra_hop_probability)) {
          route.tail.push_back(
              bgp::AsNumber(64900 + static_cast<std::uint32_t>(
                                        rng.uniform_int(0, 9))));
        }
        route.tail.push_back(world.clients_[c].as);
        peering.routes.push_back(std::move(route));
      }
      pop.peerings.push_back(std::move(peering));
    }

    // Customer cones and multihoming for the remaining (remote) clients.
    const std::size_t n_peer_sessions =
        static_cast<std::size_t>(n_private + n_public + n_rs);
    for (std::size_t r = static_cast<std::size_t>(rank_cursor); r < C; ++r) {
      const std::size_t client = ranked[r];
      if (rng.bernoulli(config.cone_probability)) {
        const std::size_t via = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(n_peer_sessions) - 1));
        pop.peerings[via].routes.push_back(
            AnnouncedRoute{client, {world.clients_[client].as}});
      }
    }
    for (std::size_t c = 0; c < C; ++c) {
      if (rng.bernoulli(config.multihome_probability)) {
        const std::size_t via = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(n_peer_sessions) - 1));
        // Skip if `via` already announces this client.
        bool already = false;
        for (const AnnouncedRoute& route : pop.peerings[via].routes) {
          already = already || route.client == c;
        }
        if (!already) {
          // Backup paths are commonly prepended (inbound TE): the client
          // wants its primary preferred, so the secondary's path is
          // longer and loses the AS-path tiebreak.
          AnnouncedRoute route{c, {world.clients_[c].as}};
          if (rng.bernoulli(0.5)) {
            route.tail.insert(route.tail.begin(), world.clients_[c].as);
          }
          pop.peerings[via].routes.push_back(std::move(route));
        }
      }
    }

    // ---- Capacity planning ----------------------------------------------
    // Attribute each client's peak share to the interface BGP would pick
    // by default (preference ladder, then shortest tail), then size each
    // interface to share × headroom.
    std::vector<double> iface_share(pop.interfaces.size(), 0.0);
    for (std::size_t c = 0; c < C; ++c) {
      int best_rank = 1000;
      std::size_t best_tail = 1000;
      std::size_t best_iface = 0;
      bool found = false;
      for (const PeeringDef& peering : pop.peerings) {
        for (const AnnouncedRoute& route : peering.routes) {
          if (route.client != c) continue;
          const int rank = ladder_rank(peering.type);
          if (rank < best_rank ||
              (rank == best_rank && route.tail.size() < best_tail)) {
            best_rank = rank;
            best_tail = route.tail.size();
            best_iface = peering.interface;
            found = true;
          }
        }
      }
      EF_CHECK(found, "client " << c << " unreachable at " << pop.name);
      iface_share[best_iface] += pop.client_share[c];
    }
    for (std::size_t i = 0; i < pop.interfaces.size(); ++i) {
      InterfaceDef& iface = pop.interfaces[i];
      double headroom = 1.0;
      switch (iface.role) {
        case bgp::PeerType::kPrivatePeer:
          headroom = std::clamp(
              rng.normal(config.private_headroom_mean,
                         config.private_headroom_stddev),
              config.private_headroom_min, config.private_headroom_max);
          break;
        case bgp::PeerType::kPublicPeer:
          headroom = config.ixp_headroom;
          break;
        default:
          headroom = config.transit_headroom;
          break;
      }
      double gbps =
          std::max(1.0, config.pop_peak_gbps * iface_share[i] * headroom);
      if (iface.role == bgp::PeerType::kTransit) {
        gbps = std::max(
            gbps, config.pop_peak_gbps * config.transit_min_fraction_of_peak);
      }
      iface.capacity = net::Bandwidth::gbps(gbps);
    }
  }

  return world;
}

std::optional<std::size_t> World::client_of_prefix(
    const net::Prefix& prefix) const {
  auto it = prefix_owner_.find(prefix);
  if (it == prefix_owner_.end()) return std::nullopt;
  return it->second;
}

double World::path_rtt_ms(std::size_t pop, std::size_t peering,
                          std::size_t client) const {
  EF_CHECK(pop < pops_.size() && client < clients_.size() &&
               peering < pops_[pop].peerings.size(),
           "path_rtt_ms out of range");
  const double jitter =
      hash_jitter(config_.seed, pop + 1, peering + 1, client + 1, 3.0);
  const double rtt = clients_[client].base_rtt_ms +
                     pops_[pop].peerings[peering].rtt_penalty_ms + jitter;
  return std::max(1.0, rtt);
}

net::Bandwidth World::peak_demand(std::size_t pop, std::size_t client) const {
  EF_CHECK(pop < pops_.size() && client < clients_.size(),
           "peak_demand out of range");
  return net::Bandwidth::gbps(pops_[pop].peak_gbps *
                              pops_[pop].client_share[client]);
}

}  // namespace ef::topology
