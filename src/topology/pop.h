// A live PoP: peering routers, neighbor ASes, BMP feeds, interfaces, and
// the message plumbing between them.
//
// Everything a production PoP would run is instantiated for real here:
// each peering is a genuine BGP session (wire-encoded messages both ways),
// each router exports BMP to the PoP collector, and forwarding state is
// derived from the routers' RIBs — so the Edge Fabric controller on top
// sees exactly the interfaces the paper's controller saw.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/speaker.h"
#include "bmp/collector.h"
#include "bmp/exporter.h"
#include "net/prefix_trie.h"
#include "telemetry/interface.h"
#include "telemetry/traffic.h"
#include "topology/world.h"

namespace ef::topology {

class Pop {
 public:
  /// Builds the PoP from its definition in the world, brings up every BGP
  /// session, and converges the initial routing table.
  Pop(const World& world, std::size_t pop_index);

  const std::string& name() const { return def().name; }
  std::size_t index() const { return pop_index_; }
  const World& world() const { return *world_; }
  const PopDef& def() const { return world_->pops()[pop_index_]; }

  /// PoP-wide multi-path RIB assembled from the routers' BMP feeds.
  const bmp::BmpCollector& collector() const { return collector_; }

  telemetry::InterfaceRegistry& interfaces() { return interfaces_; }
  const telemetry::InterfaceRegistry& interfaces() const {
    return interfaces_;
  }

  /// Where a given RIB route actually egresses (resolved via NEXT_HOP),
  /// or nullopt for routes that do not map to an egress port.
  struct Egress {
    telemetry::InterfaceId interface;
    std::size_t peering = 0;  // index into def().peerings
    bgp::PeerType type = bgp::PeerType::kTransit;
    bgp::AsNumber peer_as;
  };
  std::optional<Egress> egress_of_route(const bgp::Route& route) const;

  /// Egress of the current best route for `prefix` (including any
  /// controller overrides), or nullopt if unreachable.
  std::optional<Egress> egress_of(const net::Prefix& prefix) const;

  /// Candidate routes for `prefix`, ranked best-first.
  std::vector<const bgp::Route*> ranked_routes(
      const net::Prefix& prefix) const;

  /// Projects per-interface load if `demand` were forwarded along current
  /// best routes. Unreachable prefixes are skipped.
  std::map<telemetry::InterfaceId, net::Bandwidth> project_load(
      const telemetry::DemandMatrix& demand) const;

  /// Attaches an Edge Fabric controller speaker via a BGP session to one
  /// peering router. Returns the controller-side PeerId (use it to check
  /// session state). Call pump() after the controller announces.
  bgp::PeerId attach_controller(bgp::BgpSpeaker& controller,
                                int router_index = 0);

  /// The address of the peering session `peering_index` — what a
  /// controller override must use as NEXT_HOP to steer via that peer.
  net::IpAddr peering_address(std::size_t peering_index) const;

  /// Advances session timers on every router and neighbor.
  void tick(net::SimTime now);

  /// Delivers queued BGP messages until quiescent.
  void pump();

  /// Rebuilds the BMP collector from scratch by replaying every router's
  /// current state (the production "monitoring station restarted" path).
  /// The resulting view must equal the incrementally-built one; no BGP
  /// session is disturbed.
  void resync_collector();

  /// Tees every router's raw BMP byte stream (the same bytes the
  /// in-process collector consumes) to `tap` — the hook a live-feed
  /// adapter uses to publish the PoP's BMP feeds over real sockets.
  using BmpTap =
      std::function<void(std::uint32_t router_key,
                         const std::vector<std::uint8_t>& bytes)>;
  void set_bmp_tap(BmpTap tap) { bmp_tap_ = std::move(tap); }

  /// Replays one router's full current state through its BMP exporter
  /// (Initiation, PeerUps, the whole table) — the "monitoring session
  /// reconnected" path. Reaches the in-process collector AND the tap, so
  /// both stay byte-identical; replayed routes carry a fresh timestamp in
  /// both views.
  void replay_router_to_bmp(int router_index);

  /// Collector-facing key of a router (what the BMP tap reports).
  std::uint32_t router_key(int router_index) const {
    return routers_[static_cast<std::size_t>(router_index)]->key;
  }

  /// Failure injection: administratively closes / restarts the BGP
  /// session of one peering.
  void set_peering_up(std::size_t peering_index, bool up, net::SimTime now);
  bool peering_up(std::size_t peering_index) const;

  /// --- Host-based routing overrides (Espresso-style enforcement) ------
  /// Instead of injecting BGP routes, the controller can program the
  /// hosts/edge directly with an egress choice per prefix. Host state
  /// does not revert when the controller dies the way a BGP session
  /// teardown does, so every entry carries a lease and expires unless
  /// refreshed (purged on tick()).
  void install_host_override(const net::Prefix& prefix,
                             const net::IpAddr& next_hop,
                             net::SimTime lease_until);
  void remove_host_override(const net::Prefix& prefix);
  std::size_t host_override_count() const { return host_overrides_.size(); }

  /// Longest-prefix-match table of all prefixes announced to this PoP;
  /// used by the sFlow aggregation pipeline.
  const net::PrefixTrie<net::Prefix>& prefix_table() const {
    return prefix_table_;
  }

  /// All prefixes with at least one route, per the collector RIB.
  std::vector<net::Prefix> reachable_prefixes() const;

  bgp::BgpSpeaker& router(int index) { return *routers_[static_cast<std::size_t>(index)]->speaker; }
  int router_count() const { return static_cast<int>(routers_.size()); }

 private:
  struct Router {
    std::unique_ptr<bgp::BgpSpeaker> speaker;
    std::unique_ptr<bmp::BmpExporter> exporter;
    std::uint32_t key = 0;
  };
  struct PeeringRuntime {
    std::unique_ptr<bgp::BgpSpeaker> neighbor;  // the remote AS's speaker
    bgp::PeerId on_router;    // session id at the peering router
    bgp::PeerId on_neighbor;  // session id at the neighbor
    int router_index = 0;
    net::IpAddr address;      // neighbor-side session address (NEXT_HOP)
  };
  struct QueuedMessage {
    bgp::BgpSpeaker* target = nullptr;
    bgp::PeerId peer;
    std::vector<std::uint8_t> bytes;
  };

  void build_routers();
  void build_peerings();
  void announce_neighbor_routes();

  const World* world_;
  std::size_t pop_index_;
  bmp::BmpCollector collector_;
  telemetry::InterfaceRegistry interfaces_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<PeeringRuntime>> peerings_;
  struct HostOverride {
    net::IpAddr next_hop;
    net::SimTime lease_until;
  };

  std::deque<QueuedMessage> queue_;
  /// NEXT_HOP -> egress resolution, probed once per distinct next hop per
  /// allocation cycle (the allocator memoizes) and per prefix by
  /// egress_of(); hash-addressed because it is never iterated.
  std::unordered_map<net::IpAddr, Egress> egress_by_address_;
  std::map<net::Prefix, HostOverride> host_overrides_;
  net::PrefixTrie<net::Prefix> prefix_table_;
  BmpTap bmp_tap_;
  net::SimTime now_;
};

}  // namespace ef::topology
