#include "bmp/collector.h"

#include <cstring>

#include "net/log.h"

namespace ef::bmp {

std::optional<bgp::PeerType> peer_type_from_name(std::string_view name) {
  using bgp::PeerType;
  if (name == "private") return PeerType::kPrivatePeer;
  if (name == "public") return PeerType::kPublicPeer;
  if (name == "route-server") return PeerType::kRouteServer;
  if (name == "transit") return PeerType::kTransit;
  if (name == "controller") return PeerType::kController;
  if (name == "internal") return PeerType::kInternal;
  return std::nullopt;
}

bgp::PeerId BmpCollector::intern_peer(std::uint32_t router_key,
                                      const PerPeerHeader& header) {
  const auto key = std::make_pair(router_key, header.peer_addr);
  auto it = peer_ids_.find(key);
  if (it != peer_ids_.end()) return bgp::PeerId(it->second);
  const std::uint32_t id = next_peer_id_++;
  peer_ids_.emplace(key, id);
  PeerInfo info;
  info.router_key = router_key;
  auto name_it = router_names_.find(router_key);
  if (name_it != router_names_.end()) info.router_name = name_it->second;
  info.address = header.peer_addr;
  info.as = bgp::AsNumber(header.peer_as);
  info.bgp_id = bgp::RouterId(header.peer_bgp_id);
  peer_info_.emplace(id, std::move(info));
  return bgp::PeerId(id);
}

void BmpCollector::apply(std::uint32_t router_key, const BmpMessage& msg) {
  if (const auto* init = std::get_if<InitiationMsg>(&msg)) {
    ++stats_.initiations;
    router_names_[router_key] = init->sys_name;
    return;
  }
  if (std::holds_alternative<TerminationMsg>(msg)) {
    ++stats_.terminations;
    return;
  }
  if (const auto* up = std::get_if<PeerUpMsg>(&msg)) {
    ++stats_.peer_ups;
    const bgp::PeerId id = intern_peer(router_key, up->peer);
    PeerInfo& info = peer_info_.at(id.value());
    info.up = true;
    info.as = bgp::AsNumber(up->peer.peer_as);
    info.bgp_id = bgp::RouterId(up->peer.peer_bgp_id);
    for (const std::string& tlv : up->information) {
      constexpr std::string_view kPrefix = "peer-type=";
      if (tlv.rfind(kPrefix, 0) == 0) {
        if (auto type = peer_type_from_name(tlv.substr(kPrefix.size()))) {
          info.type = *type;
        }
      }
    }
    return;
  }
  if (const auto* down = std::get_if<PeerDownMsg>(&msg)) {
    ++stats_.peer_downs;
    const bgp::PeerId id = intern_peer(router_key, down->peer);
    peer_info_.at(id.value()).up = false;
    rib_.remove_peer(id);
    return;
  }
  if (const auto* rm = std::get_if<RouteMonitoringMsg>(&msg)) {
    ++stats_.route_monitorings;
    const bgp::PeerId id = intern_peer(router_key, rm->peer);
    const PeerInfo& info = peer_info_.at(id.value());

    for (const net::Prefix& prefix : rm->update.withdrawn) {
      rib_.withdraw(id, prefix);
    }
    if (!rm->update.nlri.empty()) {
      bgp::Route base;
      base.attrs = rm->update.attrs;
      base.learned_from = id;
      base.peer_type = info.type;
      base.neighbor_as = info.as;
      base.neighbor_router_id = info.bgp_id;
      base.learned_at = rm->peer.timestamp;
      for (const net::Prefix& prefix : rm->update.nlri) {
        base.prefix = prefix;
        rib_.announce(base);
      }
    }
    return;
  }
}

BmpCollector::ReceiveResult BmpCollector::receive(
    std::uint32_t router_key, std::span<const std::uint8_t> bytes) {
  ReceiveResult result;
  // A stream poisoned by a fatal framing error stays dead: bytes arriving
  // after the bad header sit at unknowable frame boundaries, and applying
  // them resynced-by-luck would corrupt the RIB silently. Only
  // drop_router (the disconnect/reconnect path) revives the key.
  if (const auto poison = poisoned_.find(router_key);
      poison != poisoned_.end()) {
    result.fatal = true;
    result.error = poison->second;
    result.reason = "stream poisoned by earlier fatal framing error";
    return result;
  }
  std::vector<std::uint8_t>& buf = pending_[router_key];
  buf.insert(buf.end(), bytes.begin(), bytes.end());

  std::size_t pos = 0;
  while (pos < buf.size()) {
    const FrameDecode frame = decode_frame(
        std::span<const std::uint8_t>(buf.data() + pos, buf.size() - pos));
    if (frame.status == FrameDecode::Status::kNeedMore) break;
    if (frame.status == FrameDecode::Status::kError) {
      ++stats_.malformed;
      result.error = frame.error;
      result.reason = frame.reason;
      if (!frame.recoverable()) {
        EF_LOG_WARN("fatal BMP framing error from router "
                    << router_key << ": " << frame.reason);
        result.fatal = true;
        poisoned_[router_key] = frame.error;
        buf.clear();
        pos = 0;
        break;
      }
      EF_LOG_WARN("skipping bad BMP frame from router " << router_key << ": "
                                                        << frame.reason);
      ++result.skipped;
      pos += frame.consumed;
      result.consumed += frame.consumed;
      continue;
    }
    apply(router_key, *frame.message);
    ++result.applied;
    pos += frame.consumed;
    result.consumed += frame.consumed;
  }

  if (pos > 0) buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(pos));
  if (buf.empty()) pending_.erase(router_key);
  return result;
}

void BmpCollector::drop_router(std::uint32_t router_key) {
  for (auto& [id, info] : peer_info_) {
    if (info.router_key != router_key) continue;
    if (info.up) {
      info.up = false;
      ++stats_.peer_downs;
    }
    rib_.remove_peer(bgp::PeerId(id));
  }
  pending_.erase(router_key);
  // Reconnect semantics: a fresh TCP session starts a fresh stream, so
  // the poison from the old one must not outlive it.
  poisoned_.erase(router_key);
}

const BmpCollector::PeerInfo* BmpCollector::peer(bgp::PeerId id) const {
  auto it = peer_info_.find(id.value());
  return it == peer_info_.end() ? nullptr : &it->second;
}

std::vector<bgp::PeerId> BmpCollector::peers() const {
  std::vector<bgp::PeerId> out;
  out.reserve(peer_info_.size());
  for (const auto& [id, info] : peer_info_) out.emplace_back(id);
  return out;
}

}  // namespace ef::bmp
