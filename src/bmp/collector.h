// BMP collector: terminates BMP feeds from every peering router in a PoP
// and assembles the PoP-wide multi-path RIB the Edge Fabric allocator
// consumes.
//
// This is the paper's key visibility mechanism: a best-only feed would
// hide the alternate routes that make detouring possible, so the collector
// mirrors the full post-policy Adj-RIB-In of every router.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/rib.h"
#include "bmp/wire.h"

namespace ef::bmp {

/// Parses the "peer-type=<name>" information TLV written by BmpExporter.
std::optional<bgp::PeerType> peer_type_from_name(std::string_view name);

class BmpCollector {
 public:
  explicit BmpCollector(bgp::DecisionConfig decision = {})
      : rib_(decision) {}

  /// Typed outcome of one receive() call.
  struct ReceiveResult {
    std::size_t consumed = 0;  // bytes drained from the stream buffer
    std::size_t applied = 0;   // messages applied to the RIB
    std::size_t skipped = 0;   // skippable bad frames (counted malformed)
    /// Unsyncable framing error (bad version/length/oversize): the
    /// router's pending buffer was dropped and the caller should close
    /// the underlying session.
    bool fatal = false;
    FrameErrorKind error = FrameErrorKind::kNone;
    std::string reason;
  };

  /// Feeds raw BMP bytes from the router identified by `router_key`.
  /// Chunks may split frames at any byte boundary: partial tails are
  /// buffered per router until the rest arrives. Skippable bad frames
  /// (unknown type, malformed body) are counted and skipped; header-level
  /// corruption is fatal for the stream AND poisons it — a
  /// length-prefixed stream has no resync point after a bad header, so
  /// every later byte would be applied at an arbitrary (wrong) frame
  /// boundary. The poison clears only when drop_router() models the
  /// reconnect.
  ReceiveResult receive(std::uint32_t router_key,
                        std::span<const std::uint8_t> bytes);

  /// True when `router_key`'s stream hit a fatal framing error and has
  /// not been drop_router()ed since.
  bool poisoned(std::uint32_t router_key) const {
    return poisoned_.contains(router_key);
  }

  /// Applies one already-decoded message (the daemon path: framing is
  /// done by io::FrameReassembler, decode by bmp::decode_frame).
  void apply(std::uint32_t router_key, const BmpMessage& msg);

  /// Tears down everything learned via `router_key`: routes from all of
  /// its peers leave the RIB, its sessions go down, buffered partial
  /// input is dropped. Peer interning survives, so a reconnecting router
  /// re-announces onto its original PeerIds. Used when a live BMP feed
  /// disconnects — withdrawals missed while it was away must not linger.
  void drop_router(std::uint32_t router_key);

  /// Metadata for a session, keyed by the synthetic collector-wide PeerId
  /// stamped on routes in rib().
  struct PeerInfo {
    std::uint32_t router_key = 0;
    std::string router_name;  // from the router's Initiation sysName
    net::IpAddr address;
    bgp::AsNumber as;
    bgp::RouterId bgp_id;
    bgp::PeerType type = bgp::PeerType::kPrivatePeer;
    bool up = false;
  };

  /// The merged PoP-wide multi-path RIB. Route::learned_from values are
  /// synthetic collector-wide PeerIds resolvable via peer().
  const bgp::Rib& rib() const { return rib_; }

  const PeerInfo* peer(bgp::PeerId id) const;
  std::vector<bgp::PeerId> peers() const;

  struct Stats {
    std::uint64_t initiations = 0;
    std::uint64_t peer_ups = 0;
    std::uint64_t peer_downs = 0;
    std::uint64_t route_monitorings = 0;
    std::uint64_t terminations = 0;
    std::uint64_t malformed = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  bgp::PeerId intern_peer(std::uint32_t router_key,
                          const PerPeerHeader& header);

  bgp::Rib rib_;
  // (router_key, peer address) -> synthetic peer id value.
  std::map<std::pair<std::uint32_t, net::IpAddr>, std::uint32_t> peer_ids_;
  std::map<std::uint32_t, PeerInfo> peer_info_;  // by synthetic id value
  std::map<std::uint32_t, std::string> router_names_;
  // Partial frame tails awaiting their next chunk, per router stream.
  std::map<std::uint32_t, std::vector<std::uint8_t>> pending_;
  // Streams dead after a fatal framing error (keyed to the error that
  // killed them); cleared by drop_router.
  std::map<std::uint32_t, FrameErrorKind> poisoned_;
  std::uint32_t next_peer_id_ = 1;
  Stats stats_;
};

}  // namespace ef::bmp
