// BMP collector: terminates BMP feeds from every peering router in a PoP
// and assembles the PoP-wide multi-path RIB the Edge Fabric allocator
// consumes.
//
// This is the paper's key visibility mechanism: a best-only feed would
// hide the alternate routes that make detouring possible, so the collector
// mirrors the full post-policy Adj-RIB-In of every router.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bgp/rib.h"
#include "bmp/wire.h"

namespace ef::bmp {

/// Parses the "peer-type=<name>" information TLV written by BmpExporter.
std::optional<bgp::PeerType> peer_type_from_name(std::string_view name);

class BmpCollector {
 public:
  explicit BmpCollector(bgp::DecisionConfig decision = {})
      : rib_(decision) {}

  /// Feeds raw BMP bytes from the router identified by `router_key`
  /// (one or more whole messages).
  void receive(std::uint32_t router_key,
               const std::vector<std::uint8_t>& bytes);

  /// Metadata for a session, keyed by the synthetic collector-wide PeerId
  /// stamped on routes in rib().
  struct PeerInfo {
    std::uint32_t router_key = 0;
    std::string router_name;  // from the router's Initiation sysName
    net::IpAddr address;
    bgp::AsNumber as;
    bgp::RouterId bgp_id;
    bgp::PeerType type = bgp::PeerType::kPrivatePeer;
    bool up = false;
  };

  /// The merged PoP-wide multi-path RIB. Route::learned_from values are
  /// synthetic collector-wide PeerIds resolvable via peer().
  const bgp::Rib& rib() const { return rib_; }

  const PeerInfo* peer(bgp::PeerId id) const;
  std::vector<bgp::PeerId> peers() const;

  struct Stats {
    std::uint64_t initiations = 0;
    std::uint64_t peer_ups = 0;
    std::uint64_t peer_downs = 0;
    std::uint64_t route_monitorings = 0;
    std::uint64_t terminations = 0;
    std::uint64_t malformed = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  bgp::PeerId intern_peer(std::uint32_t router_key,
                          const PerPeerHeader& header);
  void handle(std::uint32_t router_key, const BmpMessage& msg);

  bgp::Rib rib_;
  // (router_key, peer address) -> synthetic peer id value.
  std::map<std::pair<std::uint32_t, net::IpAddr>, std::uint32_t> peer_ids_;
  std::map<std::uint32_t, PeerInfo> peer_info_;  // by synthetic id value
  std::map<std::uint32_t, std::string> router_names_;
  std::uint32_t next_peer_id_ = 1;
  Stats stats_;
};

}  // namespace ef::bmp
