#include "bmp/wire.h"

#include <array>

#include "bgp/wire.h"
#include "net/log.h"

namespace ef::bmp {

namespace {

constexpr std::uint8_t kPeerFlagV6 = 0x80;  // V flag
constexpr std::uint8_t kPeerFlagPostPolicy = 0x40;  // L flag

constexpr std::uint16_t kInfoTlvString = 0;
constexpr std::uint16_t kInfoTlvSysDescr = 1;
constexpr std::uint16_t kInfoTlvSysName = 2;

void encode_per_peer(net::BufWriter& w, const PerPeerHeader& peer) {
  w.u8(0);  // peer type: Global Instance Peer
  std::uint8_t flags = 0;
  if (peer.peer_addr.is_v6()) flags |= kPeerFlagV6;
  if (peer.post_policy) flags |= kPeerFlagPostPolicy;
  w.u8(flags);
  w.u64(0);  // peer distinguisher
  if (peer.peer_addr.is_v6()) {
    w.bytes(peer.peer_addr.bytes().data(), 16);
  } else {
    for (int i = 0; i < 12; ++i) w.u8(0);
    w.u32(peer.peer_addr.v4_value());
  }
  w.u32(peer.peer_as);
  w.u32(peer.peer_bgp_id);
  const std::int64_t ms = peer.timestamp.millis_value();
  w.u32(static_cast<std::uint32_t>(ms / 1000));
  w.u32(static_cast<std::uint32_t>((ms % 1000) * 1000));
}

std::optional<PerPeerHeader> decode_per_peer(net::BufReader& r) {
  PerPeerHeader peer;
  const std::uint8_t peer_type = r.u8();
  if (peer_type != 0) return std::nullopt;
  const std::uint8_t flags = r.u8();
  peer.post_policy = (flags & kPeerFlagPostPolicy) != 0;
  r.u64();  // peer distinguisher
  std::array<std::uint8_t, 16> addr{};
  r.bytes(addr.data(), addr.size());
  if (flags & kPeerFlagV6) {
    peer.peer_addr = net::IpAddr::v6(addr);
  } else {
    peer.peer_addr =
        net::IpAddr::v4((static_cast<std::uint32_t>(addr[12]) << 24) |
                        (static_cast<std::uint32_t>(addr[13]) << 16) |
                        (static_cast<std::uint32_t>(addr[14]) << 8) |
                        addr[15]);
  }
  peer.peer_as = r.u32();
  peer.peer_bgp_id = r.u32();
  const std::uint32_t secs = r.u32();
  const std::uint32_t usecs = r.u32();
  peer.timestamp = net::SimTime::millis(
      static_cast<std::int64_t>(secs) * 1000 + usecs / 1000);
  if (!r.ok()) return std::nullopt;
  return peer;
}

void encode_info_tlv(net::BufWriter& w, std::uint16_t type,
                     const std::string& value) {
  w.u16(type);
  w.u16(static_cast<std::uint16_t>(value.size()));
  w.bytes(reinterpret_cast<const std::uint8_t*>(value.data()), value.size());
}

BmpMsgType type_of(const BmpMessage& msg) {
  struct Visitor {
    BmpMsgType operator()(const RouteMonitoringMsg&) const {
      return BmpMsgType::kRouteMonitoring;
    }
    BmpMsgType operator()(const PeerUpMsg&) const {
      return BmpMsgType::kPeerUp;
    }
    BmpMsgType operator()(const PeerDownMsg&) const {
      return BmpMsgType::kPeerDown;
    }
    BmpMsgType operator()(const InitiationMsg&) const {
      return BmpMsgType::kInitiation;
    }
    BmpMsgType operator()(const TerminationMsg&) const {
      return BmpMsgType::kTermination;
    }
  };
  return std::visit(Visitor{}, msg);
}

}  // namespace

std::vector<std::uint8_t> encode(const BmpMessage& msg) {
  net::BufWriter w;
  w.u8(kBmpVersion);
  w.u32(0);  // length, patched below
  w.u8(static_cast<std::uint8_t>(type_of(msg)));

  if (const auto* rm = std::get_if<RouteMonitoringMsg>(&msg)) {
    encode_per_peer(w, rm->peer);
    w.bytes(bgp::wire::encode(bgp::Message(rm->update)));
  } else if (const auto* up = std::get_if<PeerUpMsg>(&msg)) {
    encode_per_peer(w, up->peer);
    if (up->local_addr.is_v6()) {
      w.bytes(up->local_addr.bytes().data(), 16);
    } else {
      for (int i = 0; i < 12; ++i) w.u8(0);
      w.u32(up->local_addr.v4_value());
    }
    w.u16(up->local_port);
    w.u16(up->remote_port);
    // Sent/received OPENs: synthesize minimal OPENs from the header info.
    bgp::OpenMessage open;
    open.as = bgp::AsNumber(up->peer.peer_as);
    open.router_id = bgp::RouterId(up->peer.peer_bgp_id);
    const auto open_bytes = bgp::wire::encode(bgp::Message(open));
    w.bytes(open_bytes);  // sent OPEN
    w.bytes(open_bytes);  // received OPEN
    for (const std::string& info : up->information) {
      encode_info_tlv(w, kInfoTlvString, info);
    }
  } else if (const auto* down = std::get_if<PeerDownMsg>(&msg)) {
    encode_per_peer(w, down->peer);
    w.u8(static_cast<std::uint8_t>(down->reason));
  } else if (const auto* init = std::get_if<InitiationMsg>(&msg)) {
    encode_info_tlv(w, kInfoTlvSysName, init->sys_name);
    encode_info_tlv(w, kInfoTlvSysDescr, init->sys_descr);
  } else if (const auto* term = std::get_if<TerminationMsg>(&msg)) {
    w.u16(1);  // TLV type: reason
    w.u16(2);
    w.u16(term->reason);
  }

  w.patch_u32(1, static_cast<std::uint32_t>(w.size()));
  return w.take();
}

std::optional<BmpMessage> decode(net::BufReader& reader) {
  const std::uint8_t version = reader.u8();
  const std::uint32_t length = reader.u32();
  const std::uint8_t type = reader.u8();
  if (!reader.ok() || version != kBmpVersion || length < 6) {
    return std::nullopt;
  }
  net::BufReader body = reader.sub(length - 6);
  if (!reader.ok()) return std::nullopt;

  switch (static_cast<BmpMsgType>(type)) {
    case BmpMsgType::kRouteMonitoring: {
      RouteMonitoringMsg rm;
      auto peer = decode_per_peer(body);
      if (!peer) return std::nullopt;
      rm.peer = *peer;
      auto update = bgp::wire::decode(body);
      if (!update || !std::holds_alternative<bgp::UpdateMessage>(*update)) {
        return std::nullopt;
      }
      rm.update = std::get<bgp::UpdateMessage>(*update);
      return BmpMessage(rm);
    }
    case BmpMsgType::kPeerUp: {
      PeerUpMsg up;
      auto peer = decode_per_peer(body);
      if (!peer) return std::nullopt;
      up.peer = *peer;
      std::array<std::uint8_t, 16> addr{};
      body.bytes(addr.data(), addr.size());
      bool v6 = false;
      for (int i = 0; i < 12; ++i) v6 = v6 || addr[static_cast<std::size_t>(i)] != 0;
      up.local_addr =
          v6 ? net::IpAddr::v6(addr)
             : net::IpAddr::v4((static_cast<std::uint32_t>(addr[12]) << 24) |
                               (static_cast<std::uint32_t>(addr[13]) << 16) |
                               (static_cast<std::uint32_t>(addr[14]) << 8) |
                               addr[15]);
      up.local_port = body.u16();
      up.remote_port = body.u16();
      // Skip the two OPEN PDUs.
      for (int i = 0; i < 2; ++i) {
        auto open = bgp::wire::decode(body);
        if (!open) return std::nullopt;
      }
      while (body.ok() && body.remaining() >= 4) {
        const std::uint16_t tlv_type = body.u16();
        const std::uint16_t tlv_len = body.u16();
        net::BufReader tlv = body.sub(tlv_len);
        if (!body.ok()) return std::nullopt;
        if (tlv_type == kInfoTlvString) {
          std::string value(tlv_len, '\0');
          tlv.bytes(reinterpret_cast<std::uint8_t*>(value.data()), tlv_len);
          up.information.push_back(std::move(value));
        }
      }
      return BmpMessage(up);
    }
    case BmpMsgType::kPeerDown: {
      PeerDownMsg down;
      auto peer = decode_per_peer(body);
      if (!peer) return std::nullopt;
      down.peer = *peer;
      down.reason = static_cast<PeerDownReason>(body.u8());
      if (!body.ok()) return std::nullopt;
      return BmpMessage(down);
    }
    case BmpMsgType::kInitiation: {
      InitiationMsg init;
      while (body.ok() && body.remaining() >= 4) {
        const std::uint16_t tlv_type = body.u16();
        const std::uint16_t tlv_len = body.u16();
        net::BufReader tlv = body.sub(tlv_len);
        if (!body.ok()) return std::nullopt;
        std::string value(tlv_len, '\0');
        tlv.bytes(reinterpret_cast<std::uint8_t*>(value.data()), tlv_len);
        if (tlv_type == kInfoTlvSysName) init.sys_name = std::move(value);
        if (tlv_type == kInfoTlvSysDescr) init.sys_descr = std::move(value);
      }
      return BmpMessage(init);
    }
    case BmpMsgType::kTermination: {
      TerminationMsg term;
      if (body.remaining() >= 6) {
        body.u16();  // TLV type
        body.u16();  // TLV length
        term.reason = body.u16();
      }
      return BmpMessage(term);
    }
    case BmpMsgType::kStatisticsReport:
      return std::nullopt;  // not modelled
  }
  return std::nullopt;
}

std::optional<BmpMessage> decode(const std::vector<std::uint8_t>& buf) {
  net::BufReader reader(buf);
  return decode(reader);
}

namespace {

FrameDecode frame_error(FrameErrorKind kind, std::size_t consumed,
                        std::string reason) {
  FrameDecode result;
  result.status = FrameDecode::Status::kError;
  result.error = kind;
  result.consumed = consumed;
  result.reason = std::move(reason);
  return result;
}

bool supported_type(std::uint8_t type) {
  switch (static_cast<BmpMsgType>(type)) {
    case BmpMsgType::kRouteMonitoring:
    case BmpMsgType::kPeerDown:
    case BmpMsgType::kPeerUp:
    case BmpMsgType::kInitiation:
    case BmpMsgType::kTermination:
      return true;
    case BmpMsgType::kStatisticsReport:
    default:
      return false;
  }
}

}  // namespace

FrameDecode peek_frame(std::span<const std::uint8_t> data,
                       std::size_t max_frame) {
  FrameDecode result;
  if (data.size() < 6) {
    result.status = FrameDecode::Status::kNeedMore;
    result.need = 6;
    return result;
  }
  const std::uint8_t version = data[0];
  const std::uint32_t length = (static_cast<std::uint32_t>(data[1]) << 24) |
                               (static_cast<std::uint32_t>(data[2]) << 16) |
                               (static_cast<std::uint32_t>(data[3]) << 8) |
                               static_cast<std::uint32_t>(data[4]);
  if (version != kBmpVersion) {
    return frame_error(FrameErrorKind::kBadVersion, 0,
                       "BMP version " + std::to_string(version) +
                           " (expected 3)");
  }
  if (length < 6) {
    return frame_error(FrameErrorKind::kBadLength, 0,
                       "header length " + std::to_string(length) +
                           " below 6-byte common header");
  }
  if (length > max_frame) {
    return frame_error(FrameErrorKind::kOversized, 0,
                       "header length " + std::to_string(length) +
                           " above frame cap " + std::to_string(max_frame));
  }
  result.status = FrameDecode::Status::kOk;
  result.consumed = length;
  return result;
}

FrameDecode decode_frame(std::span<const std::uint8_t> data,
                         std::size_t max_frame) {
  FrameDecode head = peek_frame(data, max_frame);
  if (head.status != FrameDecode::Status::kOk) return head;
  const std::size_t length = head.consumed;
  if (data.size() < length) {
    FrameDecode result;
    result.status = FrameDecode::Status::kNeedMore;
    result.need = length;
    return result;
  }
  const std::uint8_t type = data[5];
  if (!supported_type(type)) {
    return frame_error(
        FrameErrorKind::kUnsupportedType, length,
        "unsupported BMP message type " + std::to_string(type));
  }
  net::BufReader reader(data.data(), length);
  auto msg = decode(reader);
  if (!msg) {
    return frame_error(FrameErrorKind::kMalformedBody, length,
                       "malformed body in BMP message type " +
                           std::to_string(type));
  }
  FrameDecode result;
  result.status = FrameDecode::Status::kOk;
  result.consumed = length;
  result.message = std::move(msg);
  return result;
}

}  // namespace ef::bmp
