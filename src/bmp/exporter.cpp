#include "bmp/exporter.h"

#include "net/log.h"

namespace ef::bmp {

BmpExporter::BmpExporter(std::string sys_name, std::uint32_t router_key,
                         SendFn send)
    : sys_name_(std::move(sys_name)),
      router_key_(router_key),
      send_(std::move(send)) {
  EF_CHECK(send_ != nullptr, "BMP exporter requires a transport");
}

net::IpAddr BmpExporter::peer_address(std::uint32_t router_key,
                                      bgp::PeerId peer) {
  // 10.0.0.0/8 carved as 10.<router:12><peer:12>; unique within a PoP.
  const std::uint32_t host =
      ((router_key & 0xfffu) << 12) | (peer.value() & 0xfffu);
  return net::IpAddr::v4(0x0a000000u | host);
}

void BmpExporter::start() {
  InitiationMsg init;
  init.sys_name = sys_name_;
  init.sys_descr = "edgefabric peering router";
  send_(encode(BmpMessage(init)));
}

PerPeerHeader BmpExporter::header_for(const bgp::MonitorEvent& event) const {
  PerPeerHeader peer;
  peer.post_policy = true;
  peer.peer_addr = peer_address(router_key_, event.peer);
  peer.peer_as = event.peer_as.value();
  peer.peer_bgp_id = event.peer_router_id.value();
  peer.timestamp = event.when;
  return peer;
}

void BmpExporter::on_event(const bgp::MonitorEvent& event) {
  switch (event.kind) {
    case bgp::MonitorEvent::Kind::kPeerUp: {
      PeerUpMsg up;
      up.peer = header_for(event);
      up.local_addr = net::IpAddr::v4(0x0a800000u | (router_key_ & 0xffffu));
      up.information.push_back(
          std::string("peer-type=") + bgp::peer_type_name(event.peer_type));
      send_(encode(BmpMessage(up)));
      return;
    }
    case bgp::MonitorEvent::Kind::kPeerDown: {
      PeerDownMsg down;
      down.peer = header_for(event);
      down.reason = PeerDownReason::kRemoteNoNotification;
      send_(encode(BmpMessage(down)));
      return;
    }
    case bgp::MonitorEvent::Kind::kRoute: {
      RouteMonitoringMsg rm;
      rm.peer = header_for(event);
      rm.update = event.update;
      send_(encode(BmpMessage(rm)));
      return;
    }
  }
}

}  // namespace ef::bmp
