// BMP (BGP Monitoring Protocol, RFC 7854) wire codec — the subset Edge
// Fabric needs: Initiation, Peer Up, Peer Down, and Route Monitoring
// (which wraps a verbatim BGP UPDATE PDU).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "bgp/message.h"
#include "net/bytes.h"
#include "net/ip.h"
#include "net/units.h"

namespace ef::bmp {

inline constexpr std::uint8_t kBmpVersion = 3;

enum class BmpMsgType : std::uint8_t {
  kRouteMonitoring = 0,
  kStatisticsReport = 1,
  kPeerDown = 2,
  kPeerUp = 3,
  kInitiation = 4,
  kTermination = 5,
};

/// RFC 7854 §4.2 per-peer header.
struct PerPeerHeader {
  bool post_policy = true;  // L flag: we export the post-policy Adj-RIB-In
  net::IpAddr peer_addr;
  std::uint32_t peer_as = 0;
  std::uint32_t peer_bgp_id = 0;
  net::SimTime timestamp;

  friend bool operator==(const PerPeerHeader&,
                         const PerPeerHeader&) = default;
};

struct RouteMonitoringMsg {
  PerPeerHeader peer;
  bgp::UpdateMessage update;  // carried as a full BGP UPDATE PDU

  friend bool operator==(const RouteMonitoringMsg&,
                         const RouteMonitoringMsg&) = default;
};

struct PeerUpMsg {
  PerPeerHeader peer;
  net::IpAddr local_addr;
  std::uint16_t local_port = 179;
  std::uint16_t remote_port = 179;
  /// Information TLV strings (type 0). Edge Fabric uses one to label the
  /// peering relationship ("peer-type=<name>"), which real deployments
  /// configure out-of-band.
  std::vector<std::string> information;

  friend bool operator==(const PeerUpMsg&, const PeerUpMsg&) = default;
};

/// Reason codes from RFC 7854 §4.9.
enum class PeerDownReason : std::uint8_t {
  kLocalNotification = 1,
  kLocalNoNotification = 2,
  kRemoteNotification = 3,
  kRemoteNoNotification = 4,
};

struct PeerDownMsg {
  PerPeerHeader peer;
  PeerDownReason reason = PeerDownReason::kRemoteNoNotification;

  friend bool operator==(const PeerDownMsg&, const PeerDownMsg&) = default;
};

struct InitiationMsg {
  std::string sys_name;
  std::string sys_descr;

  friend bool operator==(const InitiationMsg&,
                         const InitiationMsg&) = default;
};

struct TerminationMsg {
  std::uint16_t reason = 0;

  friend bool operator==(const TerminationMsg&,
                         const TerminationMsg&) = default;
};

using BmpMessage = std::variant<RouteMonitoringMsg, PeerUpMsg, PeerDownMsg,
                                InitiationMsg, TerminationMsg>;

std::vector<std::uint8_t> encode(const BmpMessage& msg);

/// Decodes one BMP message from the reader; nullopt on malformed input.
std::optional<BmpMessage> decode(net::BufReader& reader);
std::optional<BmpMessage> decode(const std::vector<std::uint8_t>& buf);

/// Frames larger than this are treated as stream corruption. Real BMP
/// messages top out far below 1 MiB; a bogus length field must not make
/// a consumer buffer gigabytes waiting for a frame that never completes.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

enum class FrameErrorKind : std::uint8_t {
  kNone = 0,
  kBadVersion,     // header version byte != 3 — stream unsyncable
  kBadLength,      // header length < 6 — stream unsyncable
  kOversized,      // header length > max_frame — stream unsyncable
  kUnsupportedType,  // well-framed but unmodelled message type (skippable)
  kMalformedBody,  // well-framed but the body failed to decode (skippable)
};

/// Typed result of decoding one frame from a byte stream.
struct FrameDecode {
  enum class Status : std::uint8_t { kOk, kNeedMore, kError };
  Status status = Status::kNeedMore;
  /// Bytes of input this frame covered. kOk: always the frame length.
  /// kError: the frame length for skippable errors (kUnsupportedType,
  /// kMalformedBody) so the caller can resync past the frame; 0 for
  /// header-level errors, where no resync point exists.
  std::size_t consumed = 0;
  /// kNeedMore: total bytes the frame requires before retrying.
  std::size_t need = 0;
  FrameErrorKind error = FrameErrorKind::kNone;
  std::string reason;
  std::optional<BmpMessage> message;  // set when kOk

  bool ok() const { return status == Status::kOk; }
  /// True when the stream can continue past this frame.
  bool recoverable() const {
    return status != Status::kError || consumed > 0;
  }
};

/// Sizes the frame at the head of `data` from its common header alone:
/// kNeedMore (need=6) below header size, kError for a bad version /
/// length, else kOk with consumed = the full frame length (which may
/// exceed data.size() — only the header must be present).
FrameDecode peek_frame(std::span<const std::uint8_t> data,
                       std::size_t max_frame = kMaxFrameBytes);

/// Decodes one whole frame from the head of `data`. Never reads past the
/// frame; trailing bytes are the next frame's problem.
FrameDecode decode_frame(std::span<const std::uint8_t> data,
                         std::size_t max_frame = kMaxFrameBytes);

}  // namespace ef::bmp
