// BMP exporter: runs "on" a peering router, translating the speaker's
// monitor events into BMP wire messages for the PoP collector.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bgp/speaker.h"
#include "bmp/wire.h"

namespace ef::bmp {

class BmpExporter {
 public:
  using SendFn = std::function<void(std::vector<std::uint8_t>)>;

  /// `router_key` distinguishes routers at the collector; it is also used
  /// to synthesize stable per-session peer addresses (10.r.p.0/32 style),
  /// standing in for the real neighbor addresses a production router knows.
  BmpExporter(std::string sys_name, std::uint32_t router_key, SendFn send);

  /// Sends the Initiation message; call once before wiring to a speaker.
  void start();

  /// Feed from BgpSpeaker::set_monitor.
  void on_event(const bgp::MonitorEvent& event);

  /// Synthetic address for a session; deterministic and collision-free
  /// for router_key < 2^12 and peer ids < 2^12.
  static net::IpAddr peer_address(std::uint32_t router_key,
                                  bgp::PeerId peer);

 private:
  PerPeerHeader header_for(const bgp::MonitorEvent& event) const;

  std::string sys_name_;
  std::uint32_t router_key_;
  SendFn send_;
};

}  // namespace ef::bmp
