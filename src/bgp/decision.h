// The BGP decision process (RFC 4271 §9.1.2), parameterized the way the
// peering routers in a PoP run it.
//
// Edge Fabric's egress preferences (private peer > public peer > route
// server > transit) are expressed through LOCAL_PREF by the import policy,
// so injected controller overrides — which carry a higher LOCAL_PREF —
// win at the first step without any router reconfiguration.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "bgp/route.h"

namespace ef::bgp {

/// Which rule decided a comparison; ordered by evaluation order.
enum class DecisionStep : std::uint8_t {
  kNoChoice = 0,      // zero or one candidate
  kLocalPref = 1,     // higher LOCAL_PREF wins
  kAsPathLength = 2,  // shorter AS_PATH wins
  kOrigin = 3,        // lower origin wins (IGP < EGP < INCOMPLETE)
  kMed = 4,           // lower MED wins (same neighbor AS unless configured)
  kRouteAge = 5,      // older route wins (stability)
  kRouterId = 6,      // lower neighbor router id wins
  kPeerId = 7,        // lower local session id wins (final, total order)
};

const char* decision_step_name(DecisionStep step);

struct DecisionConfig {
  /// Compare MED between routes from different neighbor ASes
  /// ("always-compare-med"). Off by default, as on most routers.
  bool compare_med_across_as = false;
  /// Prefer the oldest route before the router-id tiebreak (stability
  /// knob; on by default as on most deployments).
  bool prefer_oldest = true;

  friend bool operator==(const DecisionConfig&,
                         const DecisionConfig&) = default;
};

/// Compares two routes for the same prefix. Returns <0 if `a` is better,
/// >0 if `b` is better; never 0 (the PeerId step is a total order).
/// `step_out`, if non-null, receives the rule that decided.
int compare_routes(const Route& a, const Route& b, const DecisionConfig& config,
                   DecisionStep* step_out = nullptr);

/// Columnar decision key: every scalar the decision process consults,
/// extracted from a Route into one flat POD. A ranking over keys touches
/// one contiguous array instead of chasing each Route's AsPath vector
/// and scattered attribute fields — the SoA layout the RIB keeps as a
/// per-prefix sidecar so elections and rankings are linear scans.
struct RankKey {
  std::uint32_t local_pref = 0;   // effective LOCAL_PREF (higher wins)
  std::uint32_t path_len = 0;     // AS_PATH length (shorter wins)
  std::uint8_t origin = 0;        // Origin (lower wins)
  bool has_med = false;
  std::uint32_t med = 0;          // lower wins, same-AS gated
  std::uint32_t neighbor_as = 0;  // MED comparability gate
  std::int64_t learned_at_ms = 0; // older wins (stability)
  std::uint32_t router_id = 0;    // lower wins
  std::uint32_t peer_id = 0;      // lower wins (total order)

  friend bool operator==(const RankKey&, const RankKey&) = default;
};

/// Extracts the decision key of a route. compare_keys(make_rank_key(a),
/// make_rank_key(b), ...) decides identically to compare_routes(a, b, ...)
/// — the property DecisionKeysMatchRoutes locks in.
RankKey make_rank_key(const Route& route);

/// Key-space twin of compare_routes: same rules, same order, same
/// step_out semantics, but reads only the flat key fields.
int compare_keys(const RankKey& a, const RankKey& b,
                 const DecisionConfig& config,
                 DecisionStep* step_out = nullptr);

struct DecisionResult {
  /// Index into the candidate span, or npos if empty.
  std::size_t best_index = npos;
  /// Deepest tiebreak rule consulted while establishing the winner.
  DecisionStep deciding_step = DecisionStep::kNoChoice;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  bool has_best() const { return best_index != npos; }
};

/// Runs the decision process over all candidate routes for one prefix.
DecisionResult select_best(std::span<const Route> candidates,
                           const DecisionConfig& config);

/// Ranks all candidates from best to worst (indices into the span).
/// Used by the Edge Fabric allocator to walk detour options in BGP
/// preference order.
std::vector<std::size_t> rank_routes(std::span<const Route> candidates,
                                     const DecisionConfig& config);

/// Key-space election: identical result to select_best over the routes
/// the keys were extracted from, but a pure linear scan of the key
/// column.
DecisionResult select_best_keys(std::span<const RankKey> keys,
                                const DecisionConfig& config);

/// Key-space ranking: identical order to rank_routes over the source
/// routes. Fills `order` in place (cleared first) so a caller with a
/// cached vector ranks without allocating.
void rank_keys(std::span<const RankKey> keys, const DecisionConfig& config,
               std::vector<std::size_t>& order);

}  // namespace ef::bgp
