// The BGP decision process (RFC 4271 §9.1.2), parameterized the way the
// peering routers in a PoP run it.
//
// Edge Fabric's egress preferences (private peer > public peer > route
// server > transit) are expressed through LOCAL_PREF by the import policy,
// so injected controller overrides — which carry a higher LOCAL_PREF —
// win at the first step without any router reconfiguration.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "bgp/route.h"

namespace ef::bgp {

/// Which rule decided a comparison; ordered by evaluation order.
enum class DecisionStep : std::uint8_t {
  kNoChoice = 0,      // zero or one candidate
  kLocalPref = 1,     // higher LOCAL_PREF wins
  kAsPathLength = 2,  // shorter AS_PATH wins
  kOrigin = 3,        // lower origin wins (IGP < EGP < INCOMPLETE)
  kMed = 4,           // lower MED wins (same neighbor AS unless configured)
  kRouteAge = 5,      // older route wins (stability)
  kRouterId = 6,      // lower neighbor router id wins
  kPeerId = 7,        // lower local session id wins (final, total order)
};

const char* decision_step_name(DecisionStep step);

struct DecisionConfig {
  /// Compare MED between routes from different neighbor ASes
  /// ("always-compare-med"). Off by default, as on most routers.
  bool compare_med_across_as = false;
  /// Prefer the oldest route before the router-id tiebreak (stability
  /// knob; on by default as on most deployments).
  bool prefer_oldest = true;

  friend bool operator==(const DecisionConfig&,
                         const DecisionConfig&) = default;
};

/// Compares two routes for the same prefix. Returns <0 if `a` is better,
/// >0 if `b` is better; never 0 (the PeerId step is a total order).
/// `step_out`, if non-null, receives the rule that decided.
int compare_routes(const Route& a, const Route& b, const DecisionConfig& config,
                   DecisionStep* step_out = nullptr);

struct DecisionResult {
  /// Index into the candidate span, or npos if empty.
  std::size_t best_index = npos;
  /// Deepest tiebreak rule consulted while establishing the winner.
  DecisionStep deciding_step = DecisionStep::kNoChoice;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  bool has_best() const { return best_index != npos; }
};

/// Runs the decision process over all candidate routes for one prefix.
DecisionResult select_best(std::span<const Route> candidates,
                           const DecisionConfig& config);

/// Ranks all candidates from best to worst (indices into the span).
/// Used by the Edge Fabric allocator to walk detour options in BGP
/// preference order.
std::vector<std::size_t> rank_routes(std::span<const Route> candidates,
                                     const DecisionConfig& config);

}  // namespace ef::bgp
