#include "bgp/route.h"

#include <sstream>

namespace ef::bgp {

std::string PathAttributes::to_string() const {
  std::ostringstream os;
  os << "origin=" << origin_name(origin) << " path=[" << as_path.to_string()
     << "] nh=" << next_hop.to_string();
  if (has_med) os << " med=" << med.value();
  os << " lp=" << local_pref.value();
  if (!communities.empty()) {
    os << " comm=";
    for (std::size_t i = 0; i < communities.size(); ++i) {
      if (i > 0) os << ',';
      os << communities[i].to_string();
    }
  }
  return os.str();
}

std::string Route::to_string() const {
  std::ostringstream os;
  os << prefix.to_string() << " via " << neighbor_as << " ("
     << peer_type_name(peer_type) << ") " << attrs.to_string();
  return os.str();
}

}  // namespace ef::bgp
