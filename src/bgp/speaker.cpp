#include "bgp/speaker.h"

#include <algorithm>

#include "net/log.h"

namespace ef::bgp {

namespace {
// Chunk size for NLRI packing: comfortably under the 4096-byte message
// cap even for IPv6 prefixes with long AS paths.
constexpr std::size_t kNlriChunk = 128;
}  // namespace

BgpSpeaker::BgpSpeaker(Config config)
    : config_(std::move(config)),
      import_policy_(config_.import_policy),
      export_policy_(ExportPolicyConfig{config_.local_as, {}}),
      rib_(config_.decision) {}

PeerId BgpSpeaker::add_neighbor(SessionConfig session_config,
                                BgpSession::SendFn send) {
  session_config.local_as = config_.local_as;
  session_config.local_id = config_.router_id;
  const PeerId peer(next_peer_id_++);
  auto session = std::make_unique<BgpSession>(session_config, std::move(send));
  session->set_update_handler([this, peer](const UpdateMessage& update) {
    handle_update(peer, update, now_);
  });
  session->set_event_handler([this, peer](SessionEventType event) {
    handle_session_event(peer, event, now_);
  });
  neighbors_[peer.value()] = Neighbor{std::move(session)};
  return peer;
}

void BgpSpeaker::start_session(PeerId peer, net::SimTime now) {
  now_ = std::max(now_, now);
  if (auto* s = session(peer)) s->start(now);
}

void BgpSpeaker::start_all_sessions(net::SimTime now) {
  now_ = std::max(now_, now);
  for (auto& [id, neighbor] : neighbors_) neighbor.session->start(now);
}

void BgpSpeaker::receive(PeerId peer, const std::vector<std::uint8_t>& bytes,
                         net::SimTime now) {
  now_ = std::max(now_, now);
  if (auto* s = session(peer)) s->receive(bytes, now);
}

void BgpSpeaker::tick(net::SimTime now) {
  now_ = std::max(now_, now);
  for (auto& [id, neighbor] : neighbors_) neighbor.session->tick(now);
}

void BgpSpeaker::close_session(PeerId peer, net::SimTime now) {
  now_ = std::max(now_, now);
  if (auto* s = session(peer)) s->close(NotifyCode::kCease, now);
}

void BgpSpeaker::remove_neighbor(PeerId peer, net::SimTime now) {
  now_ = std::max(now_, now);
  auto it = neighbors_.find(peer.value());
  if (it == neighbors_.end()) return;
  if (it->second.session->state() != SessionState::kIdle) {
    it->second.session->close(NotifyCode::kCease, now);
  }
  neighbors_.erase(it);
}

BgpSession* BgpSpeaker::session(PeerId peer) {
  auto it = neighbors_.find(peer.value());
  return it == neighbors_.end() ? nullptr : it->second.session.get();
}

const BgpSession* BgpSpeaker::session(PeerId peer) const {
  auto it = neighbors_.find(peer.value());
  return it == neighbors_.end() ? nullptr : it->second.session.get();
}

std::vector<PeerId> BgpSpeaker::peer_ids() const {
  std::vector<PeerId> ids;
  ids.reserve(neighbors_.size());
  for (const auto& [id, neighbor] : neighbors_) ids.emplace_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void BgpSpeaker::handle_update(PeerId peer, const UpdateMessage& update,
                               net::SimTime now) {
  BgpSession* s = session(peer);
  EF_CHECK(s != nullptr, "update from unknown peer " << peer.value());

  UpdateMessage post_policy;  // what the monitor (BMP) sees

  for (const net::Prefix& prefix : update.withdrawn) {
    const RibChange change = rib_.withdraw(peer, prefix);
    post_policy.withdrawn.push_back(prefix);
    if (change.best_changed && on_best_change_) on_best_change_(prefix);
  }

  if (!update.nlri.empty()) {
    // All NLRI in one UPDATE share one attribute set, so run import policy
    // once on a representative route and clone the result per prefix.
    Route base;
    base.attrs = update.attrs;
    base.learned_from = peer;
    base.peer_type = s->config().peer_type;
    base.neighbor_as = s->peer_as();
    base.neighbor_router_id = s->peer_router_id();
    base.learned_at = now;
    base.prefix = update.nlri.front();

    std::optional<Route> accepted = import_policy_.apply(base);
    for (const net::Prefix& prefix : update.nlri) {
      if (accepted) {
        Route route = *accepted;
        route.prefix = prefix;
        const RibChange change = rib_.announce(route);
        post_policy.nlri.push_back(prefix);
        post_policy.attrs = route.attrs;
        if (change.best_changed && on_best_change_) on_best_change_(prefix);
      } else {
        // Policy rejection acts as a withdrawal of any previous route
        // from this peer (treat-as-withdraw, RFC 7606 spirit).
        const RibChange change = rib_.withdraw(peer, prefix);
        post_policy.withdrawn.push_back(prefix);
        if (change.best_changed && on_best_change_) on_best_change_(prefix);
      }
    }
  }

  if (monitor_ && !post_policy.empty()) {
    MonitorEvent event;
    event.kind = MonitorEvent::Kind::kRoute;
    event.peer = peer;
    event.peer_as = s->peer_as();
    event.peer_router_id = s->peer_router_id();
    event.peer_type = s->config().peer_type;
    event.update = std::move(post_policy);
    event.when = now;
    emit_monitor(std::move(event));
  }
}

void BgpSpeaker::handle_session_event(PeerId peer, SessionEventType type,
                                      net::SimTime now) {
  BgpSession* s = session(peer);
  EF_CHECK(s != nullptr, "event from unknown peer " << peer.value());

  if (type == SessionEventType::kEstablished) {
    MonitorEvent event;
    event.kind = MonitorEvent::Kind::kPeerUp;
    event.peer = peer;
    event.peer_as = s->peer_as();
    event.peer_router_id = s->peer_router_id();
    event.peer_type = s->config().peer_type;
    event.when = now;
    emit_monitor(std::move(event));
    announce_originations(peer);
    return;
  }

  // Session down: flush everything learned from it.
  const std::vector<net::Prefix> affected = rib_.remove_peer(peer);
  if (on_best_change_) {
    for (const net::Prefix& prefix : affected) on_best_change_(prefix);
  }
  MonitorEvent event;
  event.kind = MonitorEvent::Kind::kPeerDown;
  event.peer = peer;
  event.peer_as = s->peer_as();
  event.peer_router_id = s->peer_router_id();
  event.peer_type = s->config().peer_type;
  event.when = now;
  emit_monitor(std::move(event));
}

UpdateMessage BgpSpeaker::build_origination_update(
    const std::vector<net::Prefix>& prefixes, const Origination& origination,
    const SessionConfig& to_session) const {
  const PeerType to_type = to_session.peer_type;
  UpdateMessage update;
  update.nlri = prefixes;
  update.attrs.origin = Origin::kIgp;
  update.attrs.next_hop = origination.next_hop.value_or(to_session.local_addr);
  update.attrs.as_path = origination.path_tail;
  update.attrs.communities = origination.communities;
  if (origination.med) {
    update.attrs.med = *origination.med;
    update.attrs.has_med = true;
  }
  if (to_type == PeerType::kController || to_type == PeerType::kInternal) {
    // iBGP semantics: no prepend, LOCAL_PREF allowed.
    if (origination.local_pref) {
      update.attrs.local_pref = *origination.local_pref;
      update.attrs.has_local_pref = true;
    }
  } else {
    update.attrs = export_policy_.transform_for_ebgp(update.attrs);
    if (origination.med) {  // MED to a neighbor is legitimate inbound TE
      update.attrs.med = *origination.med;
      update.attrs.has_med = true;
    }
  }
  return update;
}

void BgpSpeaker::announce_originations(PeerId peer) {
  BgpSession* s = session(peer);
  if (!s || !s->established()) return;

  // Group prefixes that share an attribute set into batched updates, as a
  // real speaker would when draining its Adj-RIB-Out.
  std::vector<std::pair<const Origination*, std::vector<net::Prefix>>> groups;
  for (const auto& [prefix, origination] : originations_) {
    bool merged = false;
    for (auto& [key, prefixes] : groups) {
      if (*key == origination) {
        prefixes.push_back(prefix);
        merged = true;
        break;
      }
    }
    if (!merged) groups.push_back({&origination, {prefix}});
  }

  for (const auto& [origination, prefixes] : groups) {
    for (std::size_t i = 0; i < prefixes.size(); i += kNlriChunk) {
      std::vector<net::Prefix> chunk(
          prefixes.begin() + static_cast<std::ptrdiff_t>(i),
          prefixes.begin() + static_cast<std::ptrdiff_t>(
                                 std::min(i + kNlriChunk, prefixes.size())));
      s->send_update(
          build_origination_update(chunk, *origination, s->config()));
    }
  }
}

void BgpSpeaker::originate(const net::Prefix& prefix,
                           const Origination& origination, net::SimTime now) {
  now_ = std::max(now_, now);
  originations_[prefix] = origination;
  for (auto& [id, neighbor] : neighbors_) {
    BgpSession* s = neighbor.session.get();
    if (!s->established()) continue;
    s->send_update(
        build_origination_update({prefix}, origination, s->config()));
  }
}

void BgpSpeaker::withdraw_origination(const net::Prefix& prefix,
                                      net::SimTime now) {
  now_ = std::max(now_, now);
  if (originations_.erase(prefix) == 0) return;
  UpdateMessage update;
  update.withdrawn.push_back(prefix);
  for (auto& [id, neighbor] : neighbors_) {
    if (neighbor.session->established()) {
      neighbor.session->send_update(update);
    }
  }
}

void BgpSpeaker::send_withdraw(const std::vector<net::Prefix>& prefixes,
                               net::SimTime now) {
  if (prefixes.empty()) return;
  now_ = std::max(now_, now);
  UpdateMessage update;
  update.withdrawn = prefixes;
  for (auto& [id, neighbor] : neighbors_) {
    if (neighbor.session->established()) {
      neighbor.session->send_update(update);
    }
  }
}

void BgpSpeaker::set_originations(
    const std::map<net::Prefix, Origination>& originations,
    net::SimTime now) {
  now_ = std::max(now_, now);
  // Withdraw entries that disappeared.
  std::vector<net::Prefix> to_withdraw;
  for (const auto& [prefix, origination] : originations_) {
    if (!originations.contains(prefix)) to_withdraw.push_back(prefix);
  }
  for (const net::Prefix& prefix : to_withdraw) {
    withdraw_origination(prefix, now);
  }
  // Announce new or changed entries.
  for (const auto& [prefix, origination] : originations) {
    auto it = originations_.find(prefix);
    const bool unchanged =
        it != originations_.end() && it->second == origination;
    if (!unchanged) originate(prefix, origination, now);
  }
}

void BgpSpeaker::replay_to_monitor(net::SimTime now) {
  if (!monitor_) return;
  // Peer-ups first, so the station can intern session metadata.
  for (const auto& [id, neighbor] : neighbors_) {
    const BgpSession& session = *neighbor.session;
    if (!session.established()) continue;
    MonitorEvent event;
    event.kind = MonitorEvent::Kind::kPeerUp;
    event.peer = PeerId(id);
    event.peer_as = session.peer_as();
    event.peer_router_id = session.peer_router_id();
    event.peer_type = session.config().peer_type;
    event.when = now;
    emit_monitor(std::move(event));
  }
  // Then the full post-policy Adj-RIB-In, one route event per entry.
  rib_.for_each([&](const net::Prefix& prefix,
                    std::span<const Route> routes) {
    for (const Route& route : routes) {
      const BgpSession* session = this->session(route.learned_from);
      if (!session) continue;
      MonitorEvent event;
      event.kind = MonitorEvent::Kind::kRoute;
      event.peer = route.learned_from;
      event.peer_as = session->peer_as();
      event.peer_router_id = session->peer_router_id();
      event.peer_type = session->config().peer_type;
      event.update.nlri = {prefix};
      event.update.attrs = route.attrs;
      event.when = now;
      emit_monitor(std::move(event));
    }
  });
}

void BgpSpeaker::emit_monitor(MonitorEvent event) {
  if (monitor_) monitor_(event);
}

}  // namespace ef::bgp
