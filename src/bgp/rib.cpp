#include "bgp/rib.h"

#include <algorithm>
#include <atomic>

namespace ef::bgp {

std::uint64_t Rib::next_instance_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Rib::Rib(const Rib& other)
    : config_(other.config_),
      entries_(other.entries_),
      route_count_(other.route_count_),
      epoch_(other.epoch_),
      rank_stats_(other.rank_stats_),
      change_log_(other.change_log_),
      change_seq_(other.change_seq_),
      log_floor_(other.log_floor_) {}

Rib& Rib::operator=(const Rib& other) {
  if (this != &other) {
    config_ = other.config_;
    entries_ = other.entries_;
    route_count_ = other.route_count_;
    epoch_ = other.epoch_;
    rank_stats_ = other.rank_stats_;
    change_log_ = other.change_log_;
    change_seq_ = other.change_seq_;
    log_floor_ = other.log_floor_;
    instance_id_ = next_instance_id();  // storage differs: old views die
  }
  return *this;
}

void Rib::log_change(const net::Prefix& prefix) {
  // No duplicate suppression: a consumer whose cursor sits between two
  // identical entries must still see the second mutation. Consumers
  // dedup when they build their dirty set.
  if (change_log_.size() >= kChangeLogCap) {
    // Sliding retention: shed the oldest half instead of invalidating
    // wholesale. Cursors within the retained window replay unharmed;
    // only consumers further behind than the window read kTooOld, so a
    // consumer that drains every cycle never sees an artificial full
    // resync under sustained churn.
    const std::size_t drop = kChangeLogCap / 2;
    change_log_.erase(change_log_.begin(),
                      change_log_.begin() + static_cast<std::ptrdiff_t>(drop));
    log_floor_ += drop;
  }
  ++change_seq_;
  change_log_.push_back(prefix);
}

Rib::ChangeLogStatus Rib::changes_since(
    std::uint64_t since,
    const std::function<void(const net::Prefix&)>& fn) const {
  if (since < log_floor_) return ChangeLogStatus::kTooOld;
  for (std::uint64_t seq = since + 1; seq <= change_seq_; ++seq) {
    fn(change_log_[static_cast<std::size_t>(seq - log_floor_ - 1)]);
  }
  return ChangeLogStatus::kOk;
}

void Rib::reelect(Entry& entry) {
  // Election runs over the key column: one linear scan of flat PODs, no
  // per-comparison pointer chase into AsPath storage.
  const DecisionResult result = select_best_keys(entry.keys, config_);
  entry.best = result.best_index;
  entry.step = result.deciding_step;
}

RibChange Rib::announce(const Route& route) {
  Entry& entry = entries_[route.prefix];
  const Route* old_best =
      entry.best == DecisionResult::npos ? nullptr : &entry.routes[entry.best];
  const std::optional<Route> old_best_copy =
      old_best ? std::optional<Route>(*old_best) : std::nullopt;

  auto it = std::find_if(entry.routes.begin(), entry.routes.end(),
                         [&](const Route& r) {
                           return r.learned_from == route.learned_from;
                         });
  if (it != entry.routes.end()) {
    *it = route;  // implicit replace (RFC 4271 §9.1.1)
    entry.keys[static_cast<std::size_t>(it - entry.routes.begin())] =
        make_rank_key(route);
  } else {
    entry.routes.push_back(route);
    entry.keys.push_back(make_rank_key(route));
    ++route_count_;
  }
  ++entry.epoch;
  ++epoch_;
  log_change(route.prefix);
  reelect(entry);

  RibChange change;
  const Route& new_best = entry.routes[entry.best];
  change.best_changed = !old_best_copy || !(new_best == *old_best_copy);
  return change;
}

RibChange Rib::withdraw(PeerId peer, const net::Prefix& prefix) {
  RibChange change;
  auto map_it = entries_.find(prefix);
  if (map_it == entries_.end()) return change;
  Entry& entry = map_it->second;

  auto it = std::find_if(
      entry.routes.begin(), entry.routes.end(),
      [&](const Route& r) { return r.learned_from == peer; });
  if (it == entry.routes.end()) return change;

  const bool was_best =
      entry.best != DecisionResult::npos &&
      static_cast<std::size_t>(it - entry.routes.begin()) == entry.best;
  entry.keys.erase(entry.keys.begin() + (it - entry.routes.begin()));
  entry.routes.erase(it);
  --route_count_;
  ++entry.epoch;
  ++epoch_;
  log_change(prefix);

  if (entry.routes.empty()) {
    entries_.erase(map_it);
    change.best_changed = true;
    change.prefix_removed = true;
    return change;
  }
  reelect(entry);
  change.best_changed = was_best;
  return change;
}

std::vector<net::Prefix> Rib::remove_peer(PeerId peer) {
  std::vector<net::Prefix> affected;
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& entry = it->second;
    auto route_it = std::find_if(
        entry.routes.begin(), entry.routes.end(),
        [&](const Route& r) { return r.learned_from == peer; });
    if (route_it == entry.routes.end()) {
      ++it;
      continue;
    }
    const bool was_best =
        entry.best != DecisionResult::npos &&
        static_cast<std::size_t>(route_it - entry.routes.begin()) ==
            entry.best;
    entry.keys.erase(entry.keys.begin() + (route_it - entry.routes.begin()));
    entry.routes.erase(route_it);
    --route_count_;
    ++entry.epoch;
    ++epoch_;
    log_change(it->first);
    if (entry.routes.empty()) {
      affected.push_back(it->first);
      it = entries_.erase(it);
      continue;
    }
    reelect(entry);
    if (was_best) affected.push_back(it->first);
    ++it;
  }
  return affected;
}

const Route* Rib::best(const net::Prefix& prefix) const {
  auto it = entries_.find(prefix);
  if (it == entries_.end() || it->second.best == DecisionResult::npos) {
    return nullptr;
  }
  return &it->second.routes[it->second.best];
}

std::span<const Route> Rib::candidates(const net::Prefix& prefix) const {
  auto it = entries_.find(prefix);
  if (it == entries_.end()) return {};
  return it->second.routes;
}

std::vector<const Route*> Rib::ranked(const net::Prefix& prefix) const {
  // Single ranking code path: ranked() is the pointer-materialized view of
  // the same cached order the allocator's fast path consumes.
  const RankedView view = ranked_view(prefix);
  std::vector<const Route*> out;
  out.reserve(view.order.size());
  for (std::size_t index : view.order) out.push_back(&view.routes[index]);
  return out;
}

std::span<const std::size_t> Rib::ranked_cached(
    const net::Prefix& prefix) const {
  return ranked_view(prefix).order;
}

Rib::RankedView Rib::ranked_view(const net::Prefix& prefix) const {
  if (!entries_.contains(prefix)) return {};  // unknown: count nothing
  bool hit = false;
  const RankedView view = ranked_view_uncounted(prefix, hit);
  if (hit) {
    ++rank_stats_.hits;
  } else {
    ++rank_stats_.misses;
  }
  return view;
}

Rib::RankedView Rib::ranked_view_uncounted(const net::Prefix& prefix,
                                           bool& cache_hit) const {
  cache_hit = false;
  auto it = entries_.find(prefix);
  if (it == entries_.end()) return {};
  const Entry& entry = it->second;
  if (entry.ranked_epoch == entry.epoch) {
    cache_hit = true;
  } else {
    // Ranking scans the columnar key sidecar — contiguous PODs — instead
    // of re-deriving scalars from each Route on every comparison.
    rank_keys(entry.keys, config_, entry.ranked_order);
    entry.ranked_epoch = entry.epoch;
  }
  return {entry.routes, entry.ranked_order};
}

std::uint64_t Rib::prefix_epoch(const net::Prefix& prefix) const {
  auto it = entries_.find(prefix);
  return it == entries_.end() ? 0 : it->second.epoch;
}

std::optional<DecisionStep> Rib::deciding_step(
    const net::Prefix& prefix) const {
  auto it = entries_.find(prefix);
  if (it == entries_.end()) return std::nullopt;
  return it->second.step;
}

void Rib::for_each_best(
    const std::function<void(const net::Prefix&, const Route&)>& fn) const {
  for (const auto& [prefix, entry] : entries_) {
    if (entry.best != DecisionResult::npos) {
      fn(prefix, entry.routes[entry.best]);
    }
  }
}

void Rib::for_each(const std::function<void(const net::Prefix&,
                                            std::span<const Route>)>& fn)
    const {
  for (const auto& [prefix, entry] : entries_) {
    fn(prefix, entry.routes);
  }
}

}  // namespace ef::bgp
