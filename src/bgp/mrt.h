// MRT (RFC 6396) TABLE_DUMP_V2 export/import of a RIB — the archival
// format used by route collectors (RouteViews, RIPE RIS). Lets the
// PoP-wide RIB assembled by the BMP collector be dumped for offline
// analysis with standard tooling, and snapshots be reloaded in tests.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/units.h"

#include "bgp/rib.h"
#include "bgp/session.h"
#include "net/bytes.h"

namespace ef::bgp::mrt {

inline constexpr std::uint16_t kTypeTableDumpV2 = 13;
inline constexpr std::uint16_t kSubtypePeerIndexTable = 1;
inline constexpr std::uint16_t kSubtypeRibIpv4Unicast = 2;
inline constexpr std::uint16_t kSubtypeRibIpv6Unicast = 4;

struct PeerEntry {
  RouterId bgp_id;
  net::IpAddr address;
  AsNumber as;

  friend bool operator==(const PeerEntry&, const PeerEntry&) = default;
};

struct RibEntry {
  std::uint16_t peer_index = 0;
  net::SimTime originated;
  PathAttributes attrs;

  friend bool operator==(const RibEntry&, const RibEntry&) = default;
};

struct RibRecord {
  std::uint32_t sequence = 0;
  net::Prefix prefix;
  std::vector<RibEntry> entries;

  friend bool operator==(const RibRecord&, const RibRecord&) = default;
};

struct TableDump {
  RouterId collector_id;
  std::string view_name;
  std::vector<PeerEntry> peers;
  std::vector<RibRecord> records;
};

/// Serializes a dump as a sequence of MRT records (one PEER_INDEX_TABLE
/// followed by one RIB record per prefix), timestamped with `now`.
std::vector<std::uint8_t> encode(const TableDump& dump, net::SimTime now);

/// Parses an MRT byte stream produced by encode(). nullopt on malformed
/// input or unsupported record types.
std::optional<TableDump> decode(const std::vector<std::uint8_t>& bytes);

/// Builds a dump from a RIB. `peer_of` maps a route's PeerId to its
/// index-table entry (duplicates are merged by equality).
TableDump from_rib(const Rib& rib,
                   const std::function<PeerEntry(PeerId)>& peer_of,
                   RouterId collector_id, const std::string& view_name);

/// Restores a RIB from a dump (all entries re-announced; PeerIds are the
/// dump's peer indices).
Rib to_rib(const TableDump& dump, DecisionConfig decision = {});

// ---------------------------------------------------------------------
// BGP4MP (RFC 6396 §4.4): per-message logging of live BGP traffic, the
// format route collectors archive "updates" files in.

inline constexpr std::uint16_t kTypeBgp4mp = 16;
inline constexpr std::uint16_t kSubtypeMessageAs4 = 4;

struct Bgp4mpRecord {
  net::SimTime when;
  AsNumber peer_as;
  AsNumber local_as;
  net::IpAddr peer_addr;
  net::IpAddr local_addr;
  std::vector<std::uint8_t> bgp_pdu;  // one whole BGP message

  friend bool operator==(const Bgp4mpRecord&, const Bgp4mpRecord&) = default;
};

std::vector<std::uint8_t> encode_bgp4mp(const Bgp4mpRecord& record);

/// Parses a stream of BGP4MP records; nullopt on malformed input.
std::optional<std::vector<Bgp4mpRecord>> decode_bgp4mp_stream(
    const std::vector<std::uint8_t>& bytes);

/// Accumulates BGP4MP records; wrap a session transport with tap() to
/// archive everything a session sends.
class MessageLog {
 public:
  void append(Bgp4mpRecord record);

  /// Wraps `send` so every outbound message is logged before delivery.
  /// `now` is read at send time through the pointer (the simulation's
  /// clock advances after the wrapper is built).
  std::function<void(std::vector<std::uint8_t>)> tap(
      std::function<void(std::vector<std::uint8_t>)> send, AsNumber local_as,
      AsNumber peer_as, net::IpAddr local_addr, net::IpAddr peer_addr,
      const net::SimTime* now);

  const std::vector<Bgp4mpRecord>& records() const { return records_; }
  std::vector<std::uint8_t> serialize() const;

 private:
  std::vector<Bgp4mpRecord> records_;
};

}  // namespace ef::bgp::mrt
