// Routing information base: all candidate routes per prefix plus the
// decision-process winner.
//
// Unlike a plain forwarding table, the RIB keeps *every* accepted route —
// Edge Fabric's allocator needs the full set of egress options per prefix,
// which is exactly why the paper deploys BMP instead of a best-only feed.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "bgp/decision.h"
#include "bgp/route.h"

namespace ef::bgp {

/// Result of applying an announcement/withdrawal to the RIB.
struct RibChange {
  bool best_changed = false;    // the winning route differs from before
  bool prefix_removed = false;  // last route for the prefix went away
};

class Rib {
 public:
  explicit Rib(DecisionConfig config = {}) : config_(config) {}

  /// Inserts or replaces the route from `route.learned_from` for
  /// `route.prefix`, then re-runs the decision process.
  RibChange announce(const Route& route);

  /// Removes the route learned from `peer` for `prefix`, if any.
  RibChange withdraw(PeerId peer, const net::Prefix& prefix);

  /// Session teardown: drops every route learned from `peer`.
  /// Returns the prefixes whose best route changed or disappeared.
  std::vector<net::Prefix> remove_peer(PeerId peer);

  /// Best route for the prefix, or nullptr.
  const Route* best(const net::Prefix& prefix) const;

  /// All candidate routes for the prefix (unordered).
  std::span<const Route> candidates(const net::Prefix& prefix) const;

  /// Candidates ranked best-first by the decision process.
  std::vector<const Route*> ranked(const net::Prefix& prefix) const;

  /// Rule that decided the current best for the prefix.
  std::optional<DecisionStep> deciding_step(const net::Prefix& prefix) const;

  std::size_t prefix_count() const { return entries_.size(); }
  std::size_t route_count() const { return route_count_; }

  /// Visits (prefix, best route) for every reachable prefix.
  void for_each_best(
      const std::function<void(const net::Prefix&, const Route&)>& fn) const;

  /// Visits (prefix, all candidates) for every prefix.
  void for_each(const std::function<void(const net::Prefix&,
                                         std::span<const Route>)>& fn) const;

  const DecisionConfig& decision_config() const { return config_; }

 private:
  struct Entry {
    std::vector<Route> routes;
    std::size_t best = DecisionResult::npos;
    DecisionStep step = DecisionStep::kNoChoice;
  };

  void reelect(Entry& entry);

  DecisionConfig config_;
  std::unordered_map<net::Prefix, Entry> entries_;
  std::size_t route_count_ = 0;
};

}  // namespace ef::bgp
