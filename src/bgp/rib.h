// Routing information base: all candidate routes per prefix plus the
// decision-process winner.
//
// Unlike a plain forwarding table, the RIB keeps *every* accepted route —
// Edge Fabric's allocator needs the full set of egress options per prefix,
// which is exactly why the paper deploys BMP instead of a best-only feed.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "bgp/decision.h"
#include "bgp/route.h"

namespace ef::bgp {

/// Result of applying an announcement/withdrawal to the RIB.
struct RibChange {
  bool best_changed = false;    // the winning route differs from before
  bool prefix_removed = false;  // last route for the prefix went away
};

class Rib {
 public:
  explicit Rib(DecisionConfig config = {}) : config_(config) {}

  /// Inserts or replaces the route from `route.learned_from` for
  /// `route.prefix`, then re-runs the decision process.
  RibChange announce(const Route& route);

  /// Removes the route learned from `peer` for `prefix`, if any.
  RibChange withdraw(PeerId peer, const net::Prefix& prefix);

  /// Session teardown: drops every route learned from `peer`.
  /// Returns the prefixes whose best route changed or disappeared.
  std::vector<net::Prefix> remove_peer(PeerId peer);

  /// Best route for the prefix, or nullptr.
  const Route* best(const net::Prefix& prefix) const;

  /// All candidate routes for the prefix (unordered).
  std::span<const Route> candidates(const net::Prefix& prefix) const;

  /// Candidates ranked best-first by the decision process.
  std::vector<const Route*> ranked(const net::Prefix& prefix) const;

  /// Candidates ranked best-first, as indices into candidates(prefix).
  /// Served from a per-prefix cache that is recomputed only when the
  /// prefix's routes changed since the last call (epoch check), so the
  /// aggregate ranking cost is proportional to RIB churn, not RIB size.
  /// The span stays valid until the next mutation of this prefix. Not
  /// safe for concurrent calls on the same Rib (the cache fill mutates).
  std::span<const std::size_t> ranked_cached(const net::Prefix& prefix) const;

  /// Candidates plus their cached ranking in one lookup — what the
  /// allocator's hot loop uses instead of candidates() + ranked_cached()
  /// back to back. Same cache, same lifetime rules as ranked_cached().
  struct RankedView {
    std::span<const Route> routes;
    std::span<const std::size_t> order;  // indices into `routes`
  };
  RankedView ranked_view(const net::Prefix& prefix) const;

  /// ranked_view() minus the shared hit/miss accounting, for the sharded
  /// allocator's parallel arena rebuild. Concurrent calls are safe iff no
  /// two threads touch the SAME prefix (each entry's ranking cache is
  /// per-prefix state; the shared counters are the only cross-prefix
  /// mutable state and this variant leaves them alone) and nothing
  /// mutates the Rib meanwhile. `cache_hit` reports whether the ranking
  /// was served from cache; callers tally per shard and settle the
  /// books once via credit_rank_cache().
  RankedView ranked_view_uncounted(const net::Prefix& prefix,
                                   bool& cache_hit) const;

  /// Monotonic per-prefix mutation counter: moves on every announce /
  /// withdraw / remove_peer that touches the prefix. 0 for unknown
  /// prefixes; starts at 1 on first announce.
  std::uint64_t prefix_epoch(const net::Prefix& prefix) const;

  /// Whole-RIB mutation counter: moves whenever *any* prefix's epoch
  /// moves. Consumers holding RankedViews across calls (the allocator's
  /// workspace) may keep them only while (instance_id(), epoch()) is
  /// unchanged — any mutation may reallocate route storage.
  std::uint64_t epoch() const { return epoch_; }

  /// Process-unique id for this Rib. Copies get a fresh id (their route
  /// storage is distinct, so views into the source must not be carried
  /// over); moves keep it (the nodes move wholesale, views stay valid).
  std::uint64_t instance_id() const { return instance_id_; }

  /// Monotonic cursor into the change log. A consumer snapshots
  /// change_seq() after reading the RIB, then later asks
  /// changes_since(cursor, fn) for exactly the prefixes mutated in
  /// between — the dirty-set feed for incremental allocation cycles.
  std::uint64_t change_seq() const { return change_seq_; }

  enum class ChangeLogStatus {
    kOk,      // fn saw every prefix mutated after `since`
    kTooOld,  // log trimmed past `since`: caller must treat all as dirty
  };

  /// Replays the changed-prefix log after cursor `since` (exclusive)
  /// through `fn`; a prefix mutated repeatedly appears repeatedly, so
  /// callers dedup. The log retains the most recent kChangeLogCap-ish
  /// entries (sliding window): a cursor that fell behind the window gets
  /// kTooOld and the caller falls back to a full pass, while consumers
  /// that drain regularly replay forever.
  ChangeLogStatus changes_since(
      std::uint64_t since,
      const std::function<void(const net::Prefix&)>& fn) const;

  Rib(const Rib& other);
  Rib& operator=(const Rib& other);
  Rib(Rib&&) = default;
  Rib& operator=(Rib&&) = default;

  /// Aggregate ranked_cached() hit/miss counters since construction (or
  /// the last reset); the controller reports the per-cycle hit rate.
  struct RankCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  const RankCacheStats& rank_cache_stats() const { return rank_stats_; }
  void reset_rank_cache_stats() const { rank_stats_ = {}; }

  /// Counts `n` ranking-cache hits served without a per-prefix lookup —
  /// the allocator calls this when its epoch-guarded view reuse skips
  /// ranked_view() entirely, so the reported hit rate still reflects how
  /// many rankings were served from cache.
  void credit_rank_cache_hits(std::uint64_t n) const { rank_stats_.hits += n; }

  /// Settles the books after a batch of ranked_view_uncounted() calls:
  /// the sharded rebuild tallies hits/misses per shard off to the side
  /// and credits them here once, post-barrier, so the shared counters
  /// are never touched concurrently.
  void credit_rank_cache(std::uint64_t hits, std::uint64_t misses) const {
    rank_stats_.hits += hits;
    rank_stats_.misses += misses;
  }

  /// Rule that decided the current best for the prefix.
  std::optional<DecisionStep> deciding_step(const net::Prefix& prefix) const;

  std::size_t prefix_count() const { return entries_.size(); }
  std::size_t route_count() const { return route_count_; }

  /// Visits (prefix, best route) for every reachable prefix.
  void for_each_best(
      const std::function<void(const net::Prefix&, const Route&)>& fn) const;

  /// Visits (prefix, all candidates) for every prefix.
  void for_each(const std::function<void(const net::Prefix&,
                                         std::span<const Route>)>& fn) const;

  const DecisionConfig& decision_config() const { return config_; }

 private:
  struct Entry {
    std::vector<Route> routes;
    /// Columnar decision-key sidecar, kept 1:1 with `routes` at mutation
    /// time. Elections and rankings scan this flat array instead of
    /// chasing each Route's AsPath/attribute storage — the SoA layout
    /// that makes ranked_view() a linear scan.
    std::vector<RankKey> keys;
    std::size_t best = DecisionResult::npos;
    DecisionStep step = DecisionStep::kNoChoice;
    /// Bumped on every mutation of `routes`; lets consumers (and the
    /// ranking cache below) detect churn without diffing routes.
    std::uint64_t epoch = 1;
    /// Ranking cache: `ranked_order` is the key-space ranking computed at
    /// `ranked_epoch`; stale whenever ranked_epoch != epoch (0 = never
    /// computed). Mutable because the cache is an optimization, never an
    /// input — filling it on a const Rib does not change any decision.
    mutable std::uint64_t ranked_epoch = 0;
    mutable std::vector<std::size_t> ranked_order;
  };

  void reelect(Entry& entry);
  void log_change(const net::Prefix& prefix);

  static std::uint64_t next_instance_id();

  /// Change-log retention bound: at this size the oldest half is shed
  /// (cursors behind the retained window read kTooOld) so the log never
  /// grows without limit while no consumer drains it.
  static constexpr std::size_t kChangeLogCap = std::size_t{1} << 18;

  DecisionConfig config_;
  std::unordered_map<net::Prefix, Entry> entries_;
  std::size_t route_count_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t instance_id_ = next_instance_id();
  mutable RankCacheStats rank_stats_;
  /// Changed-prefix log: entry i holds the prefix mutated at sequence
  /// log_floor_ + 1 + i. Overflow sheds the oldest half (log_floor_
  /// advances past the shed entries) and clear-style invalidation raises
  /// log_floor_ to change_seq_; either way stale cursors read kTooOld
  /// rather than silently missing changes.
  std::vector<net::Prefix> change_log_;
  std::uint64_t change_seq_ = 0;
  std::uint64_t log_floor_ = 0;
};

}  // namespace ef::bgp
