#include "bgp/decision.h"

#include <algorithm>
#include <numeric>

namespace ef::bgp {

const char* decision_step_name(DecisionStep step) {
  switch (step) {
    case DecisionStep::kNoChoice:
      return "no-choice";
    case DecisionStep::kLocalPref:
      return "local-pref";
    case DecisionStep::kAsPathLength:
      return "as-path-length";
    case DecisionStep::kOrigin:
      return "origin";
    case DecisionStep::kMed:
      return "med";
    case DecisionStep::kRouteAge:
      return "route-age";
    case DecisionStep::kRouterId:
      return "router-id";
    case DecisionStep::kPeerId:
      return "peer-id";
  }
  return "?";
}

int compare_routes(const Route& a, const Route& b,
                   const DecisionConfig& config, DecisionStep* step_out) {
  auto decide = [&](DecisionStep step, int result) {
    if (step_out) *step_out = step;
    return result;
  };

  // 1. Highest LOCAL_PREF.
  if (a.effective_local_pref() != b.effective_local_pref()) {
    return decide(DecisionStep::kLocalPref,
                  a.effective_local_pref() > b.effective_local_pref() ? -1
                                                                      : 1);
  }
  // 2. Shortest AS_PATH.
  if (a.attrs.as_path.length() != b.attrs.as_path.length()) {
    return decide(DecisionStep::kAsPathLength,
                  a.attrs.as_path.length() < b.attrs.as_path.length() ? -1
                                                                      : 1);
  }
  // 3. Lowest origin.
  if (a.attrs.origin != b.attrs.origin) {
    return decide(DecisionStep::kOrigin,
                  a.attrs.origin < b.attrs.origin ? -1 : 1);
  }
  // 4. Lowest MED, only among routes from the same neighbor AS unless
  //    always-compare-med is set. A missing MED compares as 0 (RFC 4271
  //    default behaviour without missing-as-worst).
  if (config.compare_med_across_as || a.neighbor_as == b.neighbor_as) {
    const std::uint32_t med_a = a.attrs.has_med ? a.attrs.med.value() : 0;
    const std::uint32_t med_b = b.attrs.has_med ? b.attrs.med.value() : 0;
    if (med_a != med_b) {
      return decide(DecisionStep::kMed, med_a < med_b ? -1 : 1);
    }
  }
  // (eBGP-over-iBGP and IGP-cost steps do not discriminate in this model:
  // all egress routes are eBGP-learned and the PoP fabric cost is uniform.)

  // 5. Oldest route, for stability.
  if (config.prefer_oldest && a.learned_at != b.learned_at) {
    return decide(DecisionStep::kRouteAge, a.learned_at < b.learned_at ? -1 : 1);
  }
  // 6. Lowest neighbor router id.
  if (a.neighbor_router_id != b.neighbor_router_id) {
    return decide(DecisionStep::kRouterId,
                  a.neighbor_router_id < b.neighbor_router_id ? -1 : 1);
  }
  // 7. Lowest local session id — a total order, so ties cannot survive.
  return decide(DecisionStep::kPeerId, a.learned_from < b.learned_from ? -1 : 1);
}

RankKey make_rank_key(const Route& route) {
  RankKey key;
  key.local_pref = route.effective_local_pref().value();
  key.path_len = static_cast<std::uint32_t>(route.attrs.as_path.length());
  key.origin = static_cast<std::uint8_t>(route.attrs.origin);
  key.has_med = route.attrs.has_med;
  key.med = route.attrs.med.value();
  key.neighbor_as = route.neighbor_as.value();
  key.learned_at_ms = route.learned_at.millis_value();
  key.router_id = route.neighbor_router_id.value();
  key.peer_id = route.learned_from.value();
  return key;
}

int compare_keys(const RankKey& a, const RankKey& b,
                 const DecisionConfig& config, DecisionStep* step_out) {
  auto decide = [&](DecisionStep step, int result) {
    if (step_out) *step_out = step;
    return result;
  };

  // Mirror of compare_routes, rule for rule; see that function for the
  // rationale behind each step.
  if (a.local_pref != b.local_pref) {
    return decide(DecisionStep::kLocalPref, a.local_pref > b.local_pref ? -1 : 1);
  }
  if (a.path_len != b.path_len) {
    return decide(DecisionStep::kAsPathLength, a.path_len < b.path_len ? -1 : 1);
  }
  if (a.origin != b.origin) {
    return decide(DecisionStep::kOrigin, a.origin < b.origin ? -1 : 1);
  }
  if (config.compare_med_across_as || a.neighbor_as == b.neighbor_as) {
    const std::uint32_t med_a = a.has_med ? a.med : 0;
    const std::uint32_t med_b = b.has_med ? b.med : 0;
    if (med_a != med_b) {
      return decide(DecisionStep::kMed, med_a < med_b ? -1 : 1);
    }
  }
  if (config.prefer_oldest && a.learned_at_ms != b.learned_at_ms) {
    return decide(DecisionStep::kRouteAge,
                  a.learned_at_ms < b.learned_at_ms ? -1 : 1);
  }
  if (a.router_id != b.router_id) {
    return decide(DecisionStep::kRouterId, a.router_id < b.router_id ? -1 : 1);
  }
  return decide(DecisionStep::kPeerId, a.peer_id < b.peer_id ? -1 : 1);
}

DecisionResult select_best(std::span<const Route> candidates,
                           const DecisionConfig& config) {
  DecisionResult result;
  if (candidates.empty()) return result;
  result.best_index = 0;
  result.deciding_step = DecisionStep::kNoChoice;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    DecisionStep step = DecisionStep::kNoChoice;
    const int cmp = compare_routes(candidates[i],
                                   candidates[result.best_index], config,
                                   &step);
    if (cmp < 0) result.best_index = i;
    // Track the deepest rule consulted across the whole election; it tells
    // the analysis layer how contested the choice was.
    if (step > result.deciding_step) result.deciding_step = step;
  }
  return result;
}

std::vector<std::size_t> rank_routes(std::span<const Route> candidates,
                                     const DecisionConfig& config) {
  // The same-AS-only MED rule makes pairwise comparison non-transitive, so
  // sorting with it directly would not be a strict weak ordering. Rank by
  // repeated election instead — exactly how a router would pick "the best,
  // then the best of the rest". Candidate counts per prefix are small
  // (a handful of egress options), so O(n^2) is irrelevant.
  std::vector<std::size_t> remaining(candidates.size());
  std::iota(remaining.begin(), remaining.end(), std::size_t{0});
  std::vector<std::size_t> order;
  order.reserve(candidates.size());
  while (!remaining.empty()) {
    std::size_t best_pos = 0;
    for (std::size_t pos = 1; pos < remaining.size(); ++pos) {
      if (compare_routes(candidates[remaining[pos]],
                         candidates[remaining[best_pos]], config) < 0) {
        best_pos = pos;
      }
    }
    order.push_back(remaining[best_pos]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best_pos));
  }
  return order;
}

DecisionResult select_best_keys(std::span<const RankKey> keys,
                                const DecisionConfig& config) {
  DecisionResult result;
  if (keys.empty()) return result;
  result.best_index = 0;
  result.deciding_step = DecisionStep::kNoChoice;
  for (std::size_t i = 1; i < keys.size(); ++i) {
    DecisionStep step = DecisionStep::kNoChoice;
    const int cmp =
        compare_keys(keys[i], keys[result.best_index], config, &step);
    if (cmp < 0) result.best_index = i;
    if (step > result.deciding_step) result.deciding_step = step;
  }
  return result;
}

void rank_keys(std::span<const RankKey> keys, const DecisionConfig& config,
               std::vector<std::size_t>& order) {
  // Repeated election, exactly like rank_routes (the same-AS MED rule is
  // not a strict weak ordering, so no std::sort) — but each comparison is
  // a scan of two flat keys, never a pointer chase into a Route.
  order.clear();
  order.reserve(keys.size());
  std::vector<std::size_t> remaining(keys.size());
  std::iota(remaining.begin(), remaining.end(), std::size_t{0});
  while (!remaining.empty()) {
    std::size_t best_pos = 0;
    for (std::size_t pos = 1; pos < remaining.size(); ++pos) {
      if (compare_keys(keys[remaining[pos]], keys[remaining[best_pos]],
                       config) < 0) {
        best_pos = pos;
      }
    }
    order.push_back(remaining[best_pos]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best_pos));
  }
}

}  // namespace ef::bgp
