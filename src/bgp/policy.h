// Import and export policy, modelled after the egress policy a content
// provider's peering routers run.
//
// Import policy stamps LOCAL_PREF by peer type — the mechanism that makes
// BGP prefer peer routes over transit — tags routes with a community
// identifying the ingress peer type, and rejects loops. Export policy
// enforces the stub-network rule: never re-export learned routes to eBGP
// peers (a content provider is not a transit network).
#pragma once

#include <optional>
#include <vector>

#include "bgp/route.h"

namespace ef::bgp {

/// Community namespace used for bookkeeping tags. The value part encodes
/// the PeerType the route was learned from.
inline constexpr std::uint16_t kTagAsn = 64999;

constexpr Community peer_type_community(PeerType type) {
  return Community(kTagAsn, static_cast<std::uint16_t>(type));
}

/// Extracts the tagged ingress peer type, if present.
std::optional<PeerType> tagged_peer_type(const PathAttributes& attrs);

struct PolicyMatch {
  std::optional<PeerType> peer_type;
  std::optional<net::Prefix> prefix_within;  // route's prefix inside this
  std::optional<Community> has_community;

  bool matches(const Route& route) const;
};

struct PolicyAction {
  std::optional<LocalPref> set_local_pref;
  std::vector<Community> add_communities;
  int prepend_count = 0;  // prepend neighbor AS (inbound TE modelling)
  bool reject = false;
};

struct PolicyRule {
  PolicyMatch match;
  PolicyAction action;
};

struct ImportPolicyConfig {
  AsNumber local_as;
  /// Default LOCAL_PREF per egress peer type; index by PeerType value.
  /// Private peers are preferred, then public, then route servers, then
  /// transit — Edge Fabric's default preference ladder.
  std::uint32_t type_local_pref[kNumEgressPeerTypes] = {340, 320, 300, 200};
  /// LOCAL_PREF accepted from controller sessions (already set by the
  /// controller on injected routes).
  bool accept_controller_local_pref = true;
  std::vector<PolicyRule> rules;  // applied in order after defaults
};

class ImportPolicy {
 public:
  explicit ImportPolicy(ImportPolicyConfig config)
      : config_(std::move(config)) {}

  /// Processes a route learned from a neighbor. Returns nullopt if the
  /// route is rejected (loop, policy). On acceptance the route carries an
  /// effective LOCAL_PREF and a peer-type community tag.
  std::optional<Route> apply(Route route) const;

  const ImportPolicyConfig& config() const { return config_; }

 private:
  ImportPolicyConfig config_;
};

struct ExportPolicyConfig {
  AsNumber local_as;
  /// Prefixes this network originates (announced to everyone).
  std::vector<net::Prefix> originated;
};

class ExportPolicy {
 public:
  explicit ExportPolicy(ExportPolicyConfig config)
      : config_(std::move(config)) {}

  /// True if `route` may be advertised to a neighbor of type `to`.
  /// Self-originated routes go to every eBGP neighbor; learned routes go
  /// only to internal/controller sessions (stub network, no transit).
  bool should_export(const Route& route, PeerType to) const;

  /// Attribute rewrite when sending to an eBGP neighbor: prepend local AS,
  /// strip LOCAL_PREF and bookkeeping communities.
  PathAttributes transform_for_ebgp(PathAttributes attrs) const;

  const ExportPolicyConfig& config() const { return config_; }

 private:
  ExportPolicyConfig config_;
};

}  // namespace ef::bgp
