// Path attributes and routes as seen by RIBs and the decision process.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/as_path.h"
#include "bgp/types.h"
#include "net/ip.h"
#include "net/prefix.h"
#include "net/units.h"

namespace ef::bgp {

/// Identifies a BGP neighbor session on a router. Dense small integers,
/// assigned by the speaker; unique per speaker, not globally.
class PeerId {
 public:
  constexpr PeerId() = default;
  explicit constexpr PeerId(std::uint32_t value) : value_(value) {}
  constexpr std::uint32_t value() const { return value_; }
  friend constexpr auto operator<=>(PeerId, PeerId) = default;

 private:
  std::uint32_t value_ = 0;
};

/// The attribute set carried with an announcement.
struct PathAttributes {
  Origin origin = Origin::kIgp;
  AsPath as_path;
  net::IpAddr next_hop;
  Med med{0};
  bool has_med = false;
  LocalPref local_pref{100};
  bool has_local_pref = false;  // LOCAL_PREF is only sent on iBGP sessions
  std::vector<Community> communities;

  bool has_community(Community c) const {
    for (Community x : communities) {
      if (x == c) return true;
    }
    return false;
  }

  std::string to_string() const;

  friend bool operator==(const PathAttributes&,
                         const PathAttributes&) = default;
};

/// A route in a RIB: a prefix plus attributes, annotated with how and when
/// it was learned. The "learned" annotations are local bookkeeping, not
/// wire data.
struct Route {
  net::Prefix prefix;
  PathAttributes attrs;

  PeerId learned_from;                        // session it arrived on
  PeerType peer_type = PeerType::kTransit;    // session type (import policy)
  AsNumber neighbor_as;                       // neighbor's AS
  RouterId neighbor_router_id;                // neighbor's BGP identifier
  net::SimTime learned_at;                    // for oldest-route tiebreak

  /// Effective LOCAL_PREF used by the decision process: explicit attribute
  /// if present, otherwise the import-policy default stamped at ingest.
  LocalPref effective_local_pref() const { return attrs.local_pref; }

  std::string to_string() const;

  friend bool operator==(const Route&, const Route&) = default;
};

}  // namespace ef::bgp
