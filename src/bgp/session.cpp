#include "bgp/session.h"

#include <algorithm>

#include "net/log.h"

namespace ef::bgp {

const char* session_state_name(SessionState state) {
  switch (state) {
    case SessionState::kIdle:
      return "Idle";
    case SessionState::kOpenSent:
      return "OpenSent";
    case SessionState::kOpenConfirm:
      return "OpenConfirm";
    case SessionState::kEstablished:
      return "Established";
  }
  return "?";
}

BgpSession::BgpSession(SessionConfig config, SendFn send)
    : config_(config), send_(std::move(send)) {
  EF_CHECK(send_ != nullptr, "session requires a transport");
}

void BgpSession::send(const Message& msg, net::SimTime now) {
  last_sent_ = now;
  send_(wire::encode(msg));
}

void BgpSession::start(net::SimTime now) {
  if (state_ != SessionState::kIdle) return;
  OpenMessage open;
  open.as = config_.local_as;
  open.router_id = config_.local_id;
  open.hold_time_secs = config_.hold_time_secs;
  send(Message(open), now);
  last_received_ = now;
  state_ = SessionState::kOpenSent;
}

void BgpSession::receive(const std::vector<std::uint8_t>& bytes,
                         net::SimTime now) {
  net::BufReader reader(bytes);
  while (reader.ok() && reader.remaining() >= wire::kHeaderSize) {
    auto msg = wire::decode(reader);
    if (!msg) {
      ++stats_.malformed_received;
      go_down(now, true, NotifyCode::kMessageHeaderError);
      return;
    }
    handle(*msg, now);
    if (state_ == SessionState::kIdle) return;  // a NOTIFICATION closed us
  }
}

void BgpSession::handle(const Message& msg, net::SimTime now) {
  last_received_ = now;

  if (const auto* open = std::get_if<OpenMessage>(&msg)) {
    if (state_ != SessionState::kOpenSent) {
      go_down(now, true, NotifyCode::kFsmError);
      return;
    }
    if (config_.peer_as.value() != 0 && open->as != config_.peer_as) {
      EF_LOG_WARN("OPEN from unexpected " << open->as << ", expected "
                                          << config_.peer_as);
      go_down(now, true, NotifyCode::kOpenMessageError,
              kOpenSubcodeBadPeerAs);
      return;
    }
    // RFC 4271 §4.2: a hold time of 0 disables timers; 1 and 2 seconds
    // are unacceptable offers and must be rejected.
    if (open->hold_time_secs == 1 || open->hold_time_secs == 2) {
      EF_LOG_WARN("unacceptable hold time " << open->hold_time_secs
                                            << "s offered by " << open->as);
      go_down(now, true, NotifyCode::kOpenMessageError,
              kOpenSubcodeUnacceptableHoldTime);
      return;
    }
    learned_peer_as_ = open->as;
    learned_peer_id_ = open->router_id;
    negotiated_hold_secs_ =
        std::min(config_.hold_time_secs, open->hold_time_secs);
    ++stats_.keepalives_sent;
    send(Message(KeepaliveMessage{}), now);
    state_ = SessionState::kOpenConfirm;
    return;
  }

  if (std::holds_alternative<KeepaliveMessage>(msg)) {
    ++stats_.keepalives_received;
    if (state_ == SessionState::kOpenConfirm) {
      state_ = SessionState::kEstablished;
      if (on_event_) on_event_(SessionEventType::kEstablished);
    }
    return;
  }

  if (const auto* update = std::get_if<UpdateMessage>(&msg)) {
    if (state_ != SessionState::kEstablished) {
      go_down(now, true, NotifyCode::kFsmError);
      return;
    }
    ++stats_.updates_received;
    if (on_update_) on_update_(*update);
    return;
  }

  if (std::holds_alternative<NotificationMessage>(msg)) {
    go_down(now, false, NotifyCode::kCease);
    return;
  }
}

void BgpSession::tick(net::SimTime now) {
  if (state_ == SessionState::kIdle) return;

  const std::uint16_t hold = state_ == SessionState::kEstablished ||
                                     state_ == SessionState::kOpenConfirm
                                 ? negotiated_hold_secs_
                                 : config_.hold_time_secs;
  if (hold > 0 &&
      now - last_received_ > net::SimTime::seconds(hold)) {
    EF_LOG_INFO("hold timer expired on session to "
                << config_.peer_as << " in state "
                << session_state_name(state_));
    go_down(now, true, NotifyCode::kHoldTimerExpired);
    return;
  }

  // Keepalive at hold/3, the conventional rate.
  if (state_ == SessionState::kEstablished && hold > 0 &&
      now - last_sent_ >= net::SimTime::seconds(hold / 3.0)) {
    ++stats_.keepalives_sent;
    send(Message(KeepaliveMessage{}), now);
  }
}

void BgpSession::send_update(const UpdateMessage& update) {
  EF_CHECK(state_ == SessionState::kEstablished,
           "send_update on non-established session (state="
               << session_state_name(state_) << ")");
  ++stats_.updates_sent;
  send(Message(update), last_sent_);
}

void BgpSession::close(NotifyCode code, net::SimTime now) {
  if (state_ == SessionState::kIdle) return;
  go_down(now, true, code);
}

void BgpSession::go_down(net::SimTime now, bool notify_peer,
                         NotifyCode code, std::uint8_t subcode) {
  if (notify_peer && state_ != SessionState::kIdle) {
    NotificationMessage notify;
    notify.code = code;
    notify.subcode = subcode;
    send(Message(notify), now);
  }
  const bool was_up = state_ != SessionState::kIdle;
  state_ = SessionState::kIdle;
  if (was_up) {
    ++stats_.session_drops;
    if (on_event_) on_event_(SessionEventType::kDown);
  }
}

}  // namespace ef::bgp
