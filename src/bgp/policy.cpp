#include "bgp/policy.h"

#include <algorithm>

namespace ef::bgp {

std::optional<PeerType> tagged_peer_type(const PathAttributes& attrs) {
  for (Community c : attrs.communities) {
    if (c.asn() == kTagAsn &&
        c.value() < static_cast<std::uint16_t>(kNumEgressPeerTypes)) {
      return static_cast<PeerType>(c.value());
    }
  }
  return std::nullopt;
}

bool PolicyMatch::matches(const Route& route) const {
  if (peer_type && route.peer_type != *peer_type) return false;
  if (prefix_within && !prefix_within->contains(route.prefix)) return false;
  if (has_community && !route.attrs.has_community(*has_community)) {
    return false;
  }
  return true;
}

std::optional<Route> ImportPolicy::apply(Route route) const {
  // Loop prevention: reject any path that already contains our AS.
  if (route.attrs.as_path.contains(config_.local_as)) return std::nullopt;

  const auto type_index = static_cast<std::size_t>(route.peer_type);
  if (route.peer_type == PeerType::kController ||
      route.peer_type == PeerType::kInternal) {
    // Controller/iBGP sessions may carry LOCAL_PREF; keep it if allowed.
    if (!route.attrs.has_local_pref || !config_.accept_controller_local_pref) {
      route.attrs.local_pref = LocalPref(100);
    }
  } else {
    // eBGP: LOCAL_PREF is never accepted from a neighbor; stamp the
    // type-default preference ladder.
    route.attrs.local_pref =
        LocalPref(config_.type_local_pref[type_index]);
    route.attrs.has_local_pref = true;
    // Tag the ingress type so downstream consumers (controller, analysis)
    // can classify the route without consulting session tables.
    const Community tag = peer_type_community(route.peer_type);
    if (!route.attrs.has_community(tag)) {
      route.attrs.communities.push_back(tag);
    }
  }

  for (const PolicyRule& rule : config_.rules) {
    if (!rule.match.matches(route)) continue;
    if (rule.action.reject) return std::nullopt;
    if (rule.action.set_local_pref) {
      route.attrs.local_pref = *rule.action.set_local_pref;
      route.attrs.has_local_pref = true;
    }
    for (Community c : rule.action.add_communities) {
      if (!route.attrs.has_community(c)) route.attrs.communities.push_back(c);
    }
    if (rule.action.prepend_count > 0) {
      route.attrs.as_path = route.attrs.as_path.prepended(
          route.neighbor_as, rule.action.prepend_count);
    }
  }
  return route;
}

bool ExportPolicy::should_export(const Route& route, PeerType to) const {
  const bool self_originated =
      std::find(config_.originated.begin(), config_.originated.end(),
                route.prefix) != config_.originated.end();
  if (self_originated) return true;
  // Learned routes are visible internally (iBGP mesh, BMP, controller)
  // but are never re-exported to eBGP neighbors: a content provider is a
  // stub network, not a transit.
  return to == PeerType::kInternal || to == PeerType::kController;
}

PathAttributes ExportPolicy::transform_for_ebgp(PathAttributes attrs) const {
  attrs.as_path = attrs.as_path.prepended(config_.local_as);
  attrs.has_local_pref = false;
  attrs.local_pref = LocalPref(100);
  attrs.has_med = false;
  // Strip bookkeeping communities; they are local to this network.
  std::erase_if(attrs.communities,
                [](Community c) { return c.asn() == kTagAsn; });
  return attrs;
}

}  // namespace ef::bgp
