// A BGP speaker: sessions + policy + RIB, glued together.
//
// Both sides of the simulation reuse this class: the PoP's peering routers
// are speakers, every simulated neighbor AS is a speaker, and the Edge
// Fabric controller's injection endpoint is a speaker whose "originations"
// are the override routes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/policy.h"
#include "bgp/rib.h"
#include "bgp/session.h"

namespace ef::bgp {

/// Event stream consumed by the BMP exporter (post-policy Adj-RIB-In view).
struct MonitorEvent {
  enum class Kind : std::uint8_t { kPeerUp, kPeerDown, kRoute };
  Kind kind = Kind::kRoute;
  PeerId peer;
  AsNumber peer_as;
  RouterId peer_router_id;
  PeerType peer_type = PeerType::kPrivatePeer;
  UpdateMessage update;  // kRoute only
  net::SimTime when;
};

class BgpSpeaker {
 public:
  struct Config {
    AsNumber local_as;
    RouterId router_id;
    ImportPolicyConfig import_policy;
    DecisionConfig decision;
  };

  explicit BgpSpeaker(Config config);

  /// Registers a neighbor. `send` delivers wire bytes toward the peer.
  /// Returns the local session id.
  PeerId add_neighbor(SessionConfig session_config, BgpSession::SendFn send);

  void start_session(PeerId peer, net::SimTime now);
  void start_all_sessions(net::SimTime now);

  /// Delivers wire bytes that arrived from `peer`.
  void receive(PeerId peer, const std::vector<std::uint8_t>& bytes,
               net::SimTime now);

  /// Drives all session timers.
  void tick(net::SimTime now);

  /// Administratively closes one session.
  void close_session(PeerId peer, net::SimTime now);

  /// Forgets a neighbor entirely: closes the session if still up (which
  /// flushes its RIB entries) and drops it from the session table. The
  /// TCP-backed daemons use this to reap dead accepted sessions; the
  /// simulator's static meshes never need it.
  void remove_neighbor(PeerId peer, net::SimTime now);

  BgpSession* session(PeerId peer);
  const BgpSession* session(PeerId peer) const;
  std::vector<PeerId> peer_ids() const;

  /// Declares a prefix this speaker originates. `path_tail` models routes
  /// this AS re-announces for its customers (the tail is the downstream
  /// part of the AS path); empty for natively originated prefixes.
  /// Announced immediately to established sessions and on future
  /// session establishment. `local_pref` is only carried on
  /// internal/controller sessions (iBGP semantics).
  struct Origination {
    AsPath path_tail;
    std::optional<Med> med;
    std::optional<LocalPref> local_pref;
    std::vector<Community> communities;
    /// Overrides the announced NEXT_HOP (defaults to the session's local
    /// address). The Edge Fabric controller sets this to the target peer's
    /// address so routers forward via that peer.
    std::optional<net::IpAddr> next_hop;

    friend bool operator==(const Origination&, const Origination&) = default;
  };
  void originate(const net::Prefix& prefix, const Origination& origination,
                 net::SimTime now);

  /// Stops originating `prefix` and withdraws it from all sessions.
  void withdraw_origination(const net::Prefix& prefix, net::SimTime now);

  /// Sends an unconditional WITHDRAW for `prefixes` to every established
  /// session, regardless of the origination table. withdraw_origination
  /// is a no-op for prefixes this speaker never originated — but the
  /// enforcement auditor needs to purge router state the speaker has no
  /// record of (stale overrides surviving a controller restart, or a
  /// divergence injected by the chaos layer). Does not touch
  /// originations_.
  void send_withdraw(const std::vector<net::Prefix>& prefixes,
                     net::SimTime now);

  /// Replaces the full origination set in one pass, sending only the
  /// necessary announce/withdraw deltas (the Edge Fabric controller calls
  /// this every cycle with the new override set).
  void set_originations(
      const std::map<net::Prefix, Origination>& originations,
      net::SimTime now);

  const std::map<net::Prefix, Origination>& originations() const {
    return originations_;
  }

  Rib& rib() { return rib_; }
  const Rib& rib() const { return rib_; }

  const Config& config() const { return config_; }

  /// Monitor hook (BMP export). Fired on peer up/down and on every
  /// post-policy Adj-RIB-In change.
  void set_monitor(std::function<void(const MonitorEvent&)> fn) {
    monitor_ = std::move(fn);
  }

  /// Replays the current state (peer-ups for established sessions, then
  /// one route event per RIB entry) into the monitor hook — what a real
  /// router does when a BMP station (re)connects mid-flight, so a
  /// restarted collector converges to the same view without bouncing any
  /// BGP session.
  void replay_to_monitor(net::SimTime now);

  /// Fired whenever the Loc-RIB best route for a prefix changes (or the
  /// prefix becomes unreachable).
  void set_best_change_handler(std::function<void(const net::Prefix&)> fn) {
    on_best_change_ = std::move(fn);
  }

 private:
  struct Neighbor {
    std::unique_ptr<BgpSession> session;
  };

  void handle_update(PeerId peer, const UpdateMessage& update,
                     net::SimTime now);
  void handle_session_event(PeerId peer, SessionEventType event,
                            net::SimTime now);
  void announce_originations(PeerId peer);
  UpdateMessage build_origination_update(
      const std::vector<net::Prefix>& prefixes, const Origination& origination,
      const SessionConfig& to_session) const;
  void emit_monitor(MonitorEvent event);

  Config config_;
  ImportPolicy import_policy_;
  ExportPolicy export_policy_;
  Rib rib_;
  std::unordered_map<std::uint32_t, Neighbor> neighbors_;
  std::map<net::Prefix, Origination> originations_;
  std::function<void(const MonitorEvent&)> monitor_;
  std::function<void(const net::Prefix&)> on_best_change_;
  std::uint32_t next_peer_id_ = 1;
  net::SimTime now_;  // last time observed via receive/tick
};

}  // namespace ef::bgp
