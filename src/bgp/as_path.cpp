#include "bgp/as_path.h"

#include <algorithm>
#include <ostream>

namespace ef::bgp {

bool AsPath::contains(AsNumber as) const {
  return std::find(ases_.begin(), ases_.end(), as) != ases_.end();
}

AsPath AsPath::prepended(AsNumber as, int count) const {
  std::vector<AsNumber> out;
  out.reserve(ases_.size() + static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(as);
  out.insert(out.end(), ases_.begin(), ases_.end());
  return AsPath(std::move(out));
}

std::string AsPath::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < ases_.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(ases_[i].value());
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const AsPath& path) {
  return os << path.to_string();
}

}  // namespace ef::bgp
