// BGP wire codec: RFC 4271 message framing and path attributes, with
// 4-octet AS numbers (RFC 6793 behaviour assumed negotiated) and IPv6
// reachability via MP_REACH_NLRI / MP_UNREACH_NLRI (RFC 4760).
//
// The codec is lossless for the attribute subset this library uses
// (ORIGIN, AS_PATH, NEXT_HOP, MED, LOCAL_PREF, COMMUNITIES); unknown
// optional attributes are skipped on decode.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/message.h"
#include "net/bytes.h"

namespace ef::bgp::wire {

inline constexpr std::size_t kHeaderSize = 19;
inline constexpr std::size_t kMaxMessageSize = 4096;

/// Serializes one message, including the 19-byte header.
std::vector<std::uint8_t> encode(const Message& msg);

/// Decodes exactly one message from the front of `reader`. Returns nullopt
/// on malformed input (reader position is then unspecified).
std::optional<Message> decode(net::BufReader& reader);

/// Convenience: decode from a full buffer that holds exactly one message.
std::optional<Message> decode(const std::vector<std::uint8_t>& buf);

/// Encodes just the attribute block of an UPDATE (used by tests).
std::vector<std::uint8_t> encode_path_attributes(const PathAttributes& attrs,
                                                 net::Family nlri_family);

/// Encodes the attribute block for one RIB entry of `prefix` (MRT
/// TABLE_DUMP_V2 payload): classic attributes for IPv4; IPv6 reachability
/// carried in MP_REACH_NLRI with the prefix inline.
std::vector<std::uint8_t> encode_rib_attributes(const PathAttributes& attrs,
                                                const net::Prefix& prefix);

/// Decodes an attribute block produced by encode_rib_attributes.
/// Returns nullopt on malformed input.
std::optional<PathAttributes> decode_rib_attributes(
    const std::vector<std::uint8_t>& block);

}  // namespace ef::bgp::wire
