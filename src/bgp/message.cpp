#include "bgp/message.h"

namespace ef::bgp {

MessageType message_type(const Message& msg) {
  struct Visitor {
    MessageType operator()(const OpenMessage&) const {
      return MessageType::kOpen;
    }
    MessageType operator()(const UpdateMessage&) const {
      return MessageType::kUpdate;
    }
    MessageType operator()(const NotificationMessage&) const {
      return MessageType::kNotification;
    }
    MessageType operator()(const KeepaliveMessage&) const {
      return MessageType::kKeepalive;
    }
  };
  return std::visit(Visitor{}, msg);
}

}  // namespace ef::bgp
