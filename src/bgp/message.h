// BGP message types exchanged over sessions (RFC 4271 §4).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "bgp/route.h"
#include "net/prefix.h"

namespace ef::bgp {

enum class MessageType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepalive = 4,
};

struct OpenMessage {
  AsNumber as;
  RouterId router_id;
  std::uint16_t hold_time_secs = 90;

  friend bool operator==(const OpenMessage&, const OpenMessage&) = default;
};

/// One UPDATE: withdrawals plus announcements sharing one attribute set.
/// IPv4 NLRI travel in the classic fields; IPv6 NLRI are carried in
/// MP_REACH_NLRI / MP_UNREACH_NLRI (RFC 4760) by the wire codec — callers
/// just put prefixes of either family here.
struct UpdateMessage {
  std::vector<net::Prefix> withdrawn;
  PathAttributes attrs;
  std::vector<net::Prefix> nlri;

  bool empty() const { return withdrawn.empty() && nlri.empty(); }

  friend bool operator==(const UpdateMessage&,
                         const UpdateMessage&) = default;
};

/// Error codes from RFC 4271 §4.5 (subset used by the simulator).
enum class NotifyCode : std::uint8_t {
  kMessageHeaderError = 1,
  kOpenMessageError = 2,
  kUpdateMessageError = 3,
  kHoldTimerExpired = 4,
  kFsmError = 5,
  kCease = 6,
};

/// OPEN Message Error subcodes (RFC 4271 §6.2, subset).
inline constexpr std::uint8_t kOpenSubcodeBadPeerAs = 2;
inline constexpr std::uint8_t kOpenSubcodeUnacceptableHoldTime = 6;

struct NotificationMessage {
  NotifyCode code = NotifyCode::kCease;
  std::uint8_t subcode = 0;

  friend bool operator==(const NotificationMessage&,
                         const NotificationMessage&) = default;
};

struct KeepaliveMessage {
  friend bool operator==(const KeepaliveMessage&,
                         const KeepaliveMessage&) = default;
};

using Message = std::variant<OpenMessage, UpdateMessage, NotificationMessage,
                             KeepaliveMessage>;

MessageType message_type(const Message& msg);

}  // namespace ef::bgp
