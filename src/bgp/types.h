// Core BGP identity and attribute scalar types.
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

namespace ef::bgp {

/// 4-octet autonomous system number (RFC 6793).
class AsNumber {
 public:
  constexpr AsNumber() = default;
  explicit constexpr AsNumber(std::uint32_t value) : value_(value) {}

  constexpr std::uint32_t value() const { return value_; }

  friend constexpr auto operator<=>(AsNumber, AsNumber) = default;

 private:
  std::uint32_t value_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, AsNumber as) {
  return os << "AS" << as.value();
}

/// BGP identifier (RFC 4271 §4.2); conventionally an IPv4 address.
class RouterId {
 public:
  constexpr RouterId() = default;
  explicit constexpr RouterId(std::uint32_t value) : value_(value) {}
  constexpr std::uint32_t value() const { return value_; }
  friend constexpr auto operator<=>(RouterId, RouterId) = default;

 private:
  std::uint32_t value_ = 0;
};

/// LOCAL_PREF attribute value. Higher is preferred.
class LocalPref {
 public:
  constexpr LocalPref() = default;
  explicit constexpr LocalPref(std::uint32_t value) : value_(value) {}
  constexpr std::uint32_t value() const { return value_; }
  friend constexpr auto operator<=>(LocalPref, LocalPref) = default;

 private:
  std::uint32_t value_ = 100;  // common default
};

/// MULTI_EXIT_DISC attribute value. Lower is preferred.
class Med {
 public:
  constexpr Med() = default;
  explicit constexpr Med(std::uint32_t value) : value_(value) {}
  constexpr std::uint32_t value() const { return value_; }
  friend constexpr auto operator<=>(Med, Med) = default;

 private:
  std::uint32_t value_ = 0;
};

enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

constexpr const char* origin_name(Origin origin) {
  switch (origin) {
    case Origin::kIgp:
      return "IGP";
    case Origin::kEgp:
      return "EGP";
    case Origin::kIncomplete:
      return "INCOMPLETE";
  }
  return "?";
}

/// Standard community (RFC 1997): 16-bit ASN : 16-bit value.
class Community {
 public:
  constexpr Community() = default;
  constexpr Community(std::uint16_t asn, std::uint16_t value)
      : raw_((static_cast<std::uint32_t>(asn) << 16) | value) {}
  explicit constexpr Community(std::uint32_t raw) : raw_(raw) {}

  constexpr std::uint32_t raw() const { return raw_; }
  constexpr std::uint16_t asn() const {
    return static_cast<std::uint16_t>(raw_ >> 16);
  }
  constexpr std::uint16_t value() const {
    return static_cast<std::uint16_t>(raw_);
  }

  std::string to_string() const {
    return std::to_string(asn()) + ':' + std::to_string(value());
  }

  friend constexpr auto operator<=>(Community, Community) = default;

 private:
  std::uint32_t raw_ = 0;
};

/// How a route was learned; drives import policy and the egress-type
/// accounting in the evaluation (Table 1 / Fig. 7).
enum class PeerType : std::uint8_t {
  kPrivatePeer = 0,  // PNI: dedicated private interconnect
  kPublicPeer = 1,   // bilateral session over a shared IXP fabric
  kRouteServer = 2,  // multilateral session via IXP route server
  kTransit = 3,      // paid transit provider
  kController = 4,   // Edge Fabric controller injection session
  kInternal = 5,     // iBGP within the PoP
};

constexpr const char* peer_type_name(PeerType type) {
  switch (type) {
    case PeerType::kPrivatePeer:
      return "private";
    case PeerType::kPublicPeer:
      return "public";
    case PeerType::kRouteServer:
      return "route-server";
    case PeerType::kTransit:
      return "transit";
    case PeerType::kController:
      return "controller";
    case PeerType::kInternal:
      return "internal";
  }
  return "?";
}

constexpr int kNumEgressPeerTypes = 4;  // private, public, RS, transit

}  // namespace ef::bgp

template <>
struct std::hash<ef::bgp::AsNumber> {
  std::size_t operator()(const ef::bgp::AsNumber& as) const noexcept {
    return std::hash<std::uint32_t>{}(as.value());
  }
};
