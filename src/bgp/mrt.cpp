#include "bgp/mrt.h"

#include <algorithm>
#include <array>
#include <map>

#include "bgp/policy.h"
#include "bgp/wire.h"
#include "net/log.h"

namespace ef::bgp::mrt {

namespace {

// Peer-type bits in the PEER_INDEX_TABLE (RFC 6396 §4.3.1).
constexpr std::uint8_t kPeerFlagIpv6 = 0x01;
constexpr std::uint8_t kPeerFlagAs4 = 0x02;

void write_record_header(net::BufWriter& w, net::SimTime now,
                         std::uint16_t subtype, std::size_t body_size) {
  w.u32(static_cast<std::uint32_t>(now.millis_value() / 1000));
  w.u16(kTypeTableDumpV2);
  w.u16(subtype);
  w.u32(static_cast<std::uint32_t>(body_size));
}

void write_prefix(net::BufWriter& w, const net::Prefix& prefix) {
  w.u8(static_cast<std::uint8_t>(prefix.length()));
  const int nbytes = (prefix.length() + 7) / 8;
  w.bytes(prefix.address().bytes().data(), static_cast<std::size_t>(nbytes));
}

std::optional<net::Prefix> read_prefix(net::BufReader& r,
                                       net::Family family) {
  const int bitlen = r.u8();
  if (!r.ok() || bitlen > net::address_bits(family)) return std::nullopt;
  std::array<std::uint8_t, 16> bytes{};
  r.bytes(bytes.data(), static_cast<std::size_t>((bitlen + 7) / 8));
  if (!r.ok()) return std::nullopt;
  const net::IpAddr addr =
      family == net::Family::kV4
          ? net::IpAddr::v4((static_cast<std::uint32_t>(bytes[0]) << 24) |
                            (static_cast<std::uint32_t>(bytes[1]) << 16) |
                            (static_cast<std::uint32_t>(bytes[2]) << 8) |
                            bytes[3])
          : net::IpAddr::v6(bytes);
  return net::Prefix(addr, bitlen);
}

}  // namespace

std::vector<std::uint8_t> encode(const TableDump& dump, net::SimTime now) {
  net::BufWriter out;

  // --- PEER_INDEX_TABLE ---------------------------------------------
  {
    net::BufWriter body;
    body.u32(dump.collector_id.value());
    body.u16(static_cast<std::uint16_t>(dump.view_name.size()));
    body.bytes(reinterpret_cast<const std::uint8_t*>(dump.view_name.data()),
               dump.view_name.size());
    body.u16(static_cast<std::uint16_t>(dump.peers.size()));
    for (const PeerEntry& peer : dump.peers) {
      std::uint8_t flags = kPeerFlagAs4;  // always 4-octet AS
      if (peer.address.is_v6()) flags |= kPeerFlagIpv6;
      body.u8(flags);
      body.u32(peer.bgp_id.value());
      if (peer.address.is_v6()) {
        body.bytes(peer.address.bytes().data(), 16);
      } else {
        body.u32(peer.address.v4_value());
      }
      body.u32(peer.as.value());
    }
    write_record_header(out, now, kSubtypePeerIndexTable, body.size());
    out.bytes(body.data());
  }

  // --- RIB records -----------------------------------------------------
  for (const RibRecord& record : dump.records) {
    net::BufWriter body;
    body.u32(record.sequence);
    write_prefix(body, record.prefix);
    body.u16(static_cast<std::uint16_t>(record.entries.size()));
    for (const RibEntry& entry : record.entries) {
      body.u16(entry.peer_index);
      body.u32(static_cast<std::uint32_t>(
          entry.originated.millis_value() / 1000));
      const std::vector<std::uint8_t> attrs =
          wire::encode_rib_attributes(entry.attrs, record.prefix);
      body.u16(static_cast<std::uint16_t>(attrs.size()));
      body.bytes(attrs);
    }
    write_record_header(out, now,
                        record.prefix.family() == net::Family::kV4
                            ? kSubtypeRibIpv4Unicast
                            : kSubtypeRibIpv6Unicast,
                        body.size());
    out.bytes(body.data());
  }

  return out.take();
}

std::optional<TableDump> decode(const std::vector<std::uint8_t>& bytes) {
  TableDump dump;
  net::BufReader reader(bytes);
  bool have_index = false;

  while (reader.ok() && reader.remaining() >= 12) {
    reader.u32();  // timestamp
    const std::uint16_t type = reader.u16();
    const std::uint16_t subtype = reader.u16();
    const std::uint32_t length = reader.u32();
    net::BufReader body = reader.sub(length);
    if (!reader.ok() || type != kTypeTableDumpV2) return std::nullopt;

    if (subtype == kSubtypePeerIndexTable) {
      dump.collector_id = RouterId(body.u32());
      const std::uint16_t name_len = body.u16();
      dump.view_name.assign(name_len, '\0');
      body.bytes(reinterpret_cast<std::uint8_t*>(dump.view_name.data()),
                 name_len);
      const std::uint16_t peer_count = body.u16();
      for (int i = 0; i < peer_count; ++i) {
        PeerEntry peer;
        const std::uint8_t flags = body.u8();
        peer.bgp_id = RouterId(body.u32());
        if (flags & kPeerFlagIpv6) {
          std::array<std::uint8_t, 16> addr{};
          body.bytes(addr.data(), addr.size());
          peer.address = net::IpAddr::v6(addr);
        } else {
          peer.address = net::IpAddr::v4(body.u32());
        }
        peer.as = AsNumber((flags & kPeerFlagAs4)
                               ? body.u32()
                               : body.u16());
        dump.peers.push_back(peer);
      }
      if (!body.ok()) return std::nullopt;
      have_index = true;
      continue;
    }

    if (subtype == kSubtypeRibIpv4Unicast ||
        subtype == kSubtypeRibIpv6Unicast) {
      if (!have_index) return std::nullopt;  // index table must come first
      RibRecord record;
      record.sequence = body.u32();
      const auto prefix =
          read_prefix(body, subtype == kSubtypeRibIpv4Unicast
                                ? net::Family::kV4
                                : net::Family::kV6);
      if (!prefix) return std::nullopt;
      record.prefix = *prefix;
      const std::uint16_t entry_count = body.u16();
      for (int i = 0; i < entry_count; ++i) {
        RibEntry entry;
        entry.peer_index = body.u16();
        entry.originated =
            net::SimTime::seconds(static_cast<double>(body.u32()));
        const std::uint16_t attr_len = body.u16();
        std::vector<std::uint8_t> attrs(attr_len);
        body.bytes(attrs.data(), attr_len);
        if (!body.ok()) return std::nullopt;
        auto decoded = wire::decode_rib_attributes(attrs);
        if (!decoded) return std::nullopt;
        entry.attrs = *decoded;
        record.entries.push_back(std::move(entry));
      }
      dump.records.push_back(std::move(record));
      continue;
    }

    return std::nullopt;  // unsupported subtype
  }

  if (!reader.ok() || !have_index) return std::nullopt;
  return dump;
}

TableDump from_rib(const Rib& rib,
                   const std::function<PeerEntry(PeerId)>& peer_of,
                   RouterId collector_id, const std::string& view_name) {
  TableDump dump;
  dump.collector_id = collector_id;
  dump.view_name = view_name;

  std::map<PeerId, std::uint16_t> index_of;
  auto intern = [&](PeerId peer) -> std::uint16_t {
    auto it = index_of.find(peer);
    if (it != index_of.end()) return it->second;
    const auto index = static_cast<std::uint16_t>(dump.peers.size());
    dump.peers.push_back(peer_of(peer));
    index_of.emplace(peer, index);
    return index;
  };

  // Deterministic ordering: collect and sort prefixes.
  std::vector<net::Prefix> prefixes;
  rib.for_each([&](const net::Prefix& prefix, std::span<const Route>) {
    prefixes.push_back(prefix);
  });
  std::sort(prefixes.begin(), prefixes.end());

  std::uint32_t sequence = 0;
  for (const net::Prefix& prefix : prefixes) {
    RibRecord record;
    record.sequence = sequence++;
    record.prefix = prefix;
    for (const Route& route : rib.candidates(prefix)) {
      RibEntry entry;
      entry.peer_index = intern(route.learned_from);
      entry.originated = route.learned_at;
      entry.attrs = route.attrs;
      record.entries.push_back(std::move(entry));
    }
    dump.records.push_back(std::move(record));
  }
  return dump;
}

Rib to_rib(const TableDump& dump, DecisionConfig decision) {
  Rib rib(decision);
  for (const RibRecord& record : dump.records) {
    for (const RibEntry& entry : record.entries) {
      EF_CHECK(entry.peer_index < dump.peers.size(),
               "MRT peer index out of range");
      const PeerEntry& peer = dump.peers[entry.peer_index];
      Route route;
      route.prefix = record.prefix;
      route.attrs = entry.attrs;
      route.learned_from = PeerId(entry.peer_index);
      route.neighbor_as = peer.as;
      route.neighbor_router_id = peer.bgp_id;
      route.learned_at = entry.originated;
      route.peer_type =
          tagged_peer_type(entry.attrs).value_or(bgp::PeerType::kTransit);
      rib.announce(route);
    }
  }
  return rib;
}

std::vector<std::uint8_t> encode_bgp4mp(const Bgp4mpRecord& record) {
  net::BufWriter body;
  body.u32(record.peer_as.value());
  body.u32(record.local_as.value());
  body.u16(0);  // interface index
  const bool v6 = record.peer_addr.is_v6();
  body.u16(v6 ? 2 : 1);  // AFI
  if (v6) {
    body.bytes(record.peer_addr.bytes().data(), 16);
    body.bytes(record.local_addr.bytes().data(), 16);
  } else {
    body.u32(record.peer_addr.v4_value());
    body.u32(record.local_addr.v4_value());
  }
  body.bytes(record.bgp_pdu);

  net::BufWriter out;
  out.u32(static_cast<std::uint32_t>(record.when.millis_value() / 1000));
  out.u16(kTypeBgp4mp);
  out.u16(kSubtypeMessageAs4);
  out.u32(static_cast<std::uint32_t>(body.size()));
  out.bytes(body.data());
  return out.take();
}

std::optional<std::vector<Bgp4mpRecord>> decode_bgp4mp_stream(
    const std::vector<std::uint8_t>& bytes) {
  std::vector<Bgp4mpRecord> records;
  net::BufReader reader(bytes);
  while (reader.ok() && reader.remaining() >= 12) {
    Bgp4mpRecord record;
    record.when = net::SimTime::seconds(static_cast<double>(reader.u32()));
    const std::uint16_t type = reader.u16();
    const std::uint16_t subtype = reader.u16();
    const std::uint32_t length = reader.u32();
    net::BufReader body = reader.sub(length);
    if (!reader.ok() || type != kTypeBgp4mp ||
        subtype != kSubtypeMessageAs4) {
      return std::nullopt;
    }
    record.peer_as = AsNumber(body.u32());
    record.local_as = AsNumber(body.u32());
    body.u16();  // interface index
    const std::uint16_t afi = body.u16();
    if (afi == 1) {
      record.peer_addr = net::IpAddr::v4(body.u32());
      record.local_addr = net::IpAddr::v4(body.u32());
    } else if (afi == 2) {
      std::array<std::uint8_t, 16> addr{};
      body.bytes(addr.data(), addr.size());
      record.peer_addr = net::IpAddr::v6(addr);
      body.bytes(addr.data(), addr.size());
      record.local_addr = net::IpAddr::v6(addr);
    } else {
      return std::nullopt;
    }
    record.bgp_pdu.resize(body.remaining());
    body.bytes(record.bgp_pdu.data(), record.bgp_pdu.size());
    if (!body.ok()) return std::nullopt;
    records.push_back(std::move(record));
  }
  if (!reader.ok()) return std::nullopt;
  return records;
}

void MessageLog::append(Bgp4mpRecord record) {
  records_.push_back(std::move(record));
}

std::function<void(std::vector<std::uint8_t>)> MessageLog::tap(
    std::function<void(std::vector<std::uint8_t>)> send, AsNumber local_as,
    AsNumber peer_as, net::IpAddr local_addr, net::IpAddr peer_addr,
    const net::SimTime* now) {
  return [this, send = std::move(send), local_as, peer_as, local_addr,
          peer_addr, now](std::vector<std::uint8_t> bytes) {
    Bgp4mpRecord record;
    record.when = now ? *now : net::SimTime();
    record.local_as = local_as;
    record.peer_as = peer_as;
    record.local_addr = local_addr;
    record.peer_addr = peer_addr;
    record.bgp_pdu = bytes;
    append(std::move(record));
    send(std::move(bytes));
  };
}

std::vector<std::uint8_t> MessageLog::serialize() const {
  net::BufWriter out;
  for (const Bgp4mpRecord& record : records_) {
    out.bytes(encode_bgp4mp(record));
  }
  return out.take();
}

}  // namespace ef::bgp::mrt
