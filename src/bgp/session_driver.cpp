#include "bgp/session_driver.h"

#include "net/log.h"

namespace ef::bgp {

io::Peek peek_bgp_frame(std::span<const std::uint8_t> prefix) {
  io::Peek peek;
  if (prefix.size() < wire::kHeaderSize) {
    peek.status = io::PeekStatus::kNeedMore;
    peek.len = wire::kHeaderSize;
    return peek;
  }
  for (std::size_t i = 0; i < 16; ++i) {
    if (prefix[i] != 0xff) {
      peek.status = io::PeekStatus::kError;
      peek.reason = "bad BGP marker";
      return peek;
    }
  }
  const std::size_t len = (static_cast<std::size_t>(prefix[16]) << 8) |
                          static_cast<std::size_t>(prefix[17]);
  if (len < wire::kHeaderSize) {
    peek.status = io::PeekStatus::kError;
    peek.reason = "BGP length below header size";
    return peek;
  }
  if (len > wire::kMaxMessageSize) {
    peek.status = io::PeekStatus::kError;
    peek.reason = "BGP length above maximum message size";
    return peek;
  }
  peek.status = io::PeekStatus::kFrame;
  peek.len = len;
  return peek;
}

net::SimTime wall_now() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  const auto elapsed = std::chrono::steady_clock::now() - epoch;
  return net::SimTime::millis(
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
          .count());
}

SessionDriver::SessionDriver(io::EventLoop& loop, io::Fd fd, Config config)
    : loop_(loop),
      config_(config),
      conn_(std::in_place, std::move(fd)),
      frames_(peek_bgp_frame, wire::kMaxMessageSize) {
  EF_CHECK(conn_->fd() >= 0, "session driver requires a connected fd");
  io::set_nonblocking(conn_->fd());
  interest_ = io::kRead;
  loop_.watch(conn_->fd(), interest_,
              [this](std::uint32_t ready) { on_ready(ready); });
}

SessionDriver::~SessionDriver() {
  if (tick_timer_) loop_.cancel_timer(*tick_timer_);
  if (conn_ && loop_.watched(conn_->fd())) loop_.unwatch(conn_->fd());
}

void SessionDriver::bind(BgpSession& session) {
  session_ = &session;
  if (!tick_timer_) {
    tick_timer_ =
        loop_.call_every(config_.tick_period, [this] { on_tick(); });
  }
}

void SessionDriver::transmit(std::vector<std::uint8_t> bytes) {
  if (!up_ || !conn_) return;
  conn_->send(bytes);
  if (conn_->broken()) {
    teardown("write backlog overflow", true);
    return;
  }
  update_interest();
}

void SessionDriver::close() {
  if (session_ && session_->state() != SessionState::kIdle) {
    // The NOTIFICATION rides out on the still-open connection before the
    // fd goes away below.
    session_->close(NotifyCode::kCease, wall_now());
    if (conn_) conn_->flush();
  }
  teardown("administrative close", false);
}

void SessionDriver::fail(const std::string& reason) {
  teardown(reason, true);
}

void SessionDriver::kill() {
  if (!up_) return;
  up_ = false;
  if (tick_timer_) {
    loop_.cancel_timer(*tick_timer_);
    tick_timer_.reset();
  }
  if (conn_ && loop_.watched(conn_->fd())) loop_.unwatch(conn_->fd());
  // Deliberately NOT closing conn_: the socket stays open and silent so
  // the peer's hold timer — not a FIN — is what tears the session down.
}

void SessionDriver::on_ready(std::uint32_t ready) {
  if (!up_ || !conn_) return;

  if (ready & (io::kRead | io::kError | io::kHangup)) {
    const bool open = conn_->read_some();
    const std::span<const std::uint8_t> chunk = conn_->readable();
    if (!chunk.empty()) {
      stats_.bytes_in += chunk.size();
      frames_.feed(chunk, [this](std::span<const std::uint8_t> frame) {
        ++stats_.frames_in;
        if (session_) {
          session_->receive(
              std::vector<std::uint8_t>(frame.begin(), frame.end()),
              wall_now());
        }
      });
      conn_->consume(chunk.size());
    }
    if (!up_ || !conn_) return;  // receive() may have torn us down
    if (frames_.poisoned()) {
      teardown("unframeable stream: " + frames_.poison_reason(), true);
      return;
    }
    if (session_ && session_->state() == SessionState::kIdle) {
      teardown("session closed by peer", true);
      return;
    }
    if (!open) {
      teardown("peer closed connection", true);
      return;
    }
  }

  if (ready & io::kWrite) {
    conn_->flush();
    if (conn_->broken()) {
      teardown("socket write error", true);
      return;
    }
    update_interest();
  }
}

void SessionDriver::on_tick() {
  if (!up_ || !session_) return;
  session_->tick(wall_now());
  if (!up_ || !conn_) return;  // a hold-expiry NOTIFICATION may tear down
  conn_->flush();
  update_interest();
  if (session_->state() == SessionState::kIdle) {
    // tick() only drops a session via its hold timer.
    teardown("hold timer expired", true);
  }
}

void SessionDriver::update_interest() {
  if (!up_ || !conn_) return;
  const std::uint32_t want =
      conn_->wants_write() ? (io::kRead | io::kWrite) : io::kRead;
  if (want != interest_) {
    interest_ = want;
    loop_.rearm(conn_->fd(), interest_);
  }
}

void SessionDriver::teardown(const std::string& reason, bool report) {
  if (!up_) return;
  up_ = false;
  if (tick_timer_) {
    loop_.cancel_timer(*tick_timer_);
    tick_timer_.reset();
  }
  if (conn_) {
    if (loop_.watched(conn_->fd())) loop_.unwatch(conn_->fd());
    conn_.reset();  // closes the fd
  }
  if (session_ && session_->state() != SessionState::kIdle) {
    // The transport is gone; the NOTIFICATION this emits is dropped by
    // transmit() (up_ is false) but the FSM and its owner see the drop.
    session_->close(NotifyCode::kCease, wall_now());
  }
  if (report && on_down_) on_down_(reason);
}

std::unique_ptr<BgpListener> BgpListener::open(io::EventLoop& loop,
                                               std::uint16_t port,
                                               AcceptFn on_accept) {
  std::optional<io::TcpListener> listener = io::TcpListener::open(port);
  if (!listener) return nullptr;
  return std::unique_ptr<BgpListener>(
      new BgpListener(loop, std::move(*listener), std::move(on_accept)));
}

BgpListener::BgpListener(io::EventLoop& loop, io::TcpListener listener,
                         AcceptFn on_accept)
    : loop_(loop),
      listener_(std::move(listener)),
      on_accept_(std::move(on_accept)) {
  loop_.watch(listener_.fd(), io::kRead,
              [this](std::uint32_t) { on_ready(); });
}

BgpListener::~BgpListener() {
  if (loop_.watched(listener_.fd())) loop_.unwatch(listener_.fd());
}

void BgpListener::on_ready() {
  for (;;) {
    io::Fd fd = listener_.accept_one();
    if (!fd.valid()) break;
    ++accepted_;
    on_accept_(std::move(fd));
  }
}

}  // namespace ef::bgp
