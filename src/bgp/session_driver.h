// TCP transport for the BGP session FSM: binds the callback-transport
// BgpSession to io::TcpConn / io::EventLoop so OPEN/UPDATE/KEEPALIVE
// actually cross a socket, with wall-clock keepalive and hold timers.
//
// BgpSession stays clockless and transport-free (the simulator and the
// chaos harness depend on that); SessionDriver owns everything a live
// session needs around it: the connection, RFC 4271 framing via
// FrameReassembler, a periodic tick timer, and teardown when either side
// dies. The fail-safe headline depends on one deliberate wrinkle:
// kill() silences the driver *without* closing the socket, so the peer
// learns of our death only when its hold timer expires — exactly the
// controller-crash story from the paper (§4.3).
//
// Threading: every method must run on the loop thread (or before the
// loop starts). Construct drivers from accept/dial handlers; call
// cross-thread via EventLoop::run_sync.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bgp/session.h"
#include "io/event_loop.h"
#include "io/frame.h"
#include "io/socket.h"
#include "net/units.h"

namespace ef::bgp {

/// PeekFn for RFC 4271 framing: 16 bytes of 0xff marker, then a u16
/// total length in [19, 4096]. Anything else poisons the stream.
io::Peek peek_bgp_frame(std::span<const std::uint8_t> prefix);

/// Wall-clock time for the live BGP plane, as a SimTime measured from a
/// process-wide steady_clock epoch. Every driver in the process shares
/// the epoch, so timestamps are comparable across sessions.
net::SimTime wall_now();

/// SessionDriver knobs (namespace-scope so it can serve as a default
/// argument below — same workaround as BackoffConfig).
struct SessionDriverConfig {
  /// How often session timers are advanced (keepalive send, hold-timer
  /// expiry check). Must be well under hold_time/3 to keep sessions up.
  std::chrono::milliseconds tick_period{500};
};

/// Drives one BgpSession over one TCP connection.
class SessionDriver {
 public:
  using Config = SessionDriverConfig;

  /// Transport death report: EOF, framing poison, write-backlog
  /// overflow, or the session itself going Idle (hold expiry,
  /// NOTIFICATION, FSM error).
  using DownFn = std::function<void(const std::string& reason)>;

  /// Takes ownership of a connected socket. Must run on the loop thread
  /// (or before the loop starts).
  SessionDriver(io::EventLoop& loop, io::Fd fd,
                Config config = Config());
  ~SessionDriver();
  SessionDriver(const SessionDriver&) = delete;
  SessionDriver& operator=(const SessionDriver&) = delete;

  /// Attaches the FSM (non-owning: BgpSpeaker owns its sessions). The
  /// session's SendFn should be this driver's transmit(). Starts the
  /// tick timer.
  void bind(BgpSession& session);

  /// The session's SendFn target: queues wire bytes on the connection.
  /// Silently dropped once the transport is down.
  void transmit(std::vector<std::uint8_t> bytes);

  bool transport_up() const { return up_; }
  BgpSession* session() { return session_; }
  int fd() const { return conn_ ? conn_->fd() : -1; }
  void set_down_handler(DownFn fn) { on_down_ = std::move(fn); }

  /// Orderly teardown: takes the session down (NOTIFICATION Cease if it
  /// was up), closes the socket, fires nothing (the owner asked).
  void close();

  /// Forced transport failure that *does* report: tears the connection
  /// down as if the peer reset it, so the down handler fires and the
  /// owner's reconnect machinery (Announcer redial) kicks in. The chaos
  /// layer uses this to inject deterministic session flaps; close() is
  /// silent by contract and kill() deliberately leaks the socket.
  void fail(const std::string& reason);

  /// Silent death for fail-safe drills: stops ticking and reading but
  /// keeps the socket OPEN and sends no NOTIFICATION or FIN — the peer
  /// sees only silence until its hold timer expires. The fd is released
  /// when the driver is destroyed, so keep the driver alive for as long
  /// as the silence should last.
  void kill();

  struct Stats {
    std::uint64_t bytes_in = 0;
    std::uint64_t frames_in = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void on_ready(std::uint32_t ready);
  void on_tick();
  void update_interest();
  /// Transport death: unwatch + close fd; optionally drops the session
  /// (no NOTIFICATION can be delivered — the transport is gone) and
  /// reports to the owner.
  void teardown(const std::string& reason, bool report);

  io::EventLoop& loop_;
  Config config_;
  std::optional<io::TcpConn> conn_;
  io::FrameReassembler frames_;
  BgpSession* session_ = nullptr;
  std::optional<io::EventLoop::TimerId> tick_timer_;
  DownFn on_down_;
  bool up_ = true;
  std::uint32_t interest_ = 0;
  Stats stats_;
};

/// Accepts BGP transport connections and hands each accepted fd to the
/// owner (which wraps it in a SessionDriver + speaker neighbor).
class BgpListener {
 public:
  using AcceptFn = std::function<void(io::Fd fd)>;

  /// Binds 127.0.0.1:`port` (0 = ephemeral). nullptr when the bind
  /// fails. Must run on the loop thread (or before the loop starts).
  static std::unique_ptr<BgpListener> open(io::EventLoop& loop,
                                           std::uint16_t port,
                                           AcceptFn on_accept);
  ~BgpListener();
  BgpListener(const BgpListener&) = delete;
  BgpListener& operator=(const BgpListener&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  std::uint64_t accepted() const { return accepted_; }

 private:
  BgpListener(io::EventLoop& loop, io::TcpListener listener,
              AcceptFn on_accept);
  void on_ready();

  io::EventLoop& loop_;
  io::TcpListener listener_;
  AcceptFn on_accept_;
  std::uint64_t accepted_ = 0;
};

}  // namespace ef::bgp
