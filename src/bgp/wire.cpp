#include "bgp/wire.h"

#include <algorithm>
#include <array>

#include "net/log.h"

namespace ef::bgp::wire {

namespace {

// Path attribute type codes (IANA registry).
constexpr std::uint8_t kAttrOrigin = 1;
constexpr std::uint8_t kAttrAsPath = 2;
constexpr std::uint8_t kAttrNextHop = 3;
constexpr std::uint8_t kAttrMed = 4;
constexpr std::uint8_t kAttrLocalPref = 5;
constexpr std::uint8_t kAttrCommunities = 8;
constexpr std::uint8_t kAttrMpReach = 14;
constexpr std::uint8_t kAttrMpUnreach = 15;

// Attribute flag bits.
constexpr std::uint8_t kFlagOptional = 0x80;
constexpr std::uint8_t kFlagTransitive = 0x40;
constexpr std::uint8_t kFlagExtendedLength = 0x10;

// OPEN optional parameter / capability codes.
constexpr std::uint8_t kOptParamCapability = 2;
constexpr std::uint8_t kCapFourOctetAs = 65;
constexpr std::uint16_t kAsTrans = 23456;

constexpr std::uint16_t kAfiIpv6 = 2;
constexpr std::uint8_t kSafiUnicast = 1;

void write_prefix(net::BufWriter& w, const net::Prefix& prefix) {
  w.u8(static_cast<std::uint8_t>(prefix.length()));
  const int nbytes = (prefix.length() + 7) / 8;
  w.bytes(prefix.address().bytes().data(), static_cast<std::size_t>(nbytes));
}

std::optional<net::Prefix> read_prefix(net::BufReader& r,
                                       net::Family family) {
  const int bitlen = r.u8();
  if (!r.ok() || bitlen > net::address_bits(family)) return std::nullopt;
  std::array<std::uint8_t, 16> bytes{};
  const std::size_t nbytes = static_cast<std::size_t>((bitlen + 7) / 8);
  r.bytes(bytes.data(), nbytes);
  if (!r.ok()) return std::nullopt;
  net::IpAddr addr =
      family == net::Family::kV4
          ? net::IpAddr::v4((static_cast<std::uint32_t>(bytes[0]) << 24) |
                            (static_cast<std::uint32_t>(bytes[1]) << 16) |
                            (static_cast<std::uint32_t>(bytes[2]) << 8) |
                            bytes[3])
          : net::IpAddr::v6(bytes);
  return net::Prefix(addr, bitlen);
}

// IPv4 next hops on IPv6 sessions travel as ::ffff:a.b.c.d.
std::array<std::uint8_t, 16> v6_bytes_for_next_hop(const net::IpAddr& nh) {
  if (nh.is_v6()) return nh.bytes();
  std::array<std::uint8_t, 16> bytes{};
  bytes[10] = 0xff;
  bytes[11] = 0xff;
  const auto& v4 = nh.bytes();
  std::copy(v4.begin(), v4.begin() + 4, bytes.begin() + 12);
  return bytes;
}

net::IpAddr next_hop_from_v6_bytes(const std::array<std::uint8_t, 16>& b) {
  bool mapped = b[10] == 0xff && b[11] == 0xff;
  for (int i = 0; i < 10; ++i) mapped = mapped && b[static_cast<std::size_t>(i)] == 0;
  if (mapped) {
    return net::IpAddr::v4((static_cast<std::uint32_t>(b[12]) << 24) |
                           (static_cast<std::uint32_t>(b[13]) << 16) |
                           (static_cast<std::uint32_t>(b[14]) << 8) | b[15]);
  }
  return net::IpAddr::v6(b);
}

void write_attr(net::BufWriter& w, std::uint8_t flags, std::uint8_t type,
                const std::vector<std::uint8_t>& payload) {
  if (payload.size() > 255) flags |= kFlagExtendedLength;
  w.u8(flags);
  w.u8(type);
  if (flags & kFlagExtendedLength) {
    w.u16(static_cast<std::uint16_t>(payload.size()));
  } else {
    w.u8(static_cast<std::uint8_t>(payload.size()));
  }
  w.bytes(payload);
}

void encode_attributes(net::BufWriter& w, const UpdateMessage& update) {
  const PathAttributes& attrs = update.attrs;

  bool has_v4_nlri = false;
  bool has_v6_nlri = false;
  for (const auto& p : update.nlri) {
    (p.family() == net::Family::kV4 ? has_v4_nlri : has_v6_nlri) = true;
  }
  std::vector<net::Prefix> v6_withdrawn;
  for (const auto& p : update.withdrawn) {
    if (p.family() == net::Family::kV6) v6_withdrawn.push_back(p);
  }

  const bool needs_attrs = !update.nlri.empty();

  // ORIGIN
  if (needs_attrs) {
    write_attr(w, kFlagTransitive, kAttrOrigin,
               {static_cast<std::uint8_t>(attrs.origin)});
  }

  // AS_PATH: a single AS_SEQUENCE segment of 4-octet ASNs.
  if (needs_attrs) {
    net::BufWriter body;
    if (!attrs.as_path.empty()) {
      EF_CHECK(attrs.as_path.length() <= 255,
               "AS_PATH too long to encode in one segment");
      body.u8(2);  // AS_SEQUENCE
      body.u8(static_cast<std::uint8_t>(attrs.as_path.length()));
      for (AsNumber as : attrs.as_path.ases()) body.u32(as.value());
    }
    write_attr(w, kFlagTransitive, kAttrAsPath, body.data());
  }

  // NEXT_HOP: classic attribute only when the update carries IPv4 NLRI.
  if (has_v4_nlri) {
    net::BufWriter body;
    body.u32(attrs.next_hop.is_v4() ? attrs.next_hop.v4_value() : 0);
    write_attr(w, kFlagTransitive, kAttrNextHop, body.data());
  }

  if (needs_attrs && attrs.has_med) {
    net::BufWriter body;
    body.u32(attrs.med.value());
    write_attr(w, kFlagOptional, kAttrMed, body.data());
  }

  if (needs_attrs && attrs.has_local_pref) {
    net::BufWriter body;
    body.u32(attrs.local_pref.value());
    write_attr(w, kFlagTransitive, kAttrLocalPref, body.data());
  }

  if (needs_attrs && !attrs.communities.empty()) {
    net::BufWriter body;
    for (Community c : attrs.communities) body.u32(c.raw());
    write_attr(w, kFlagOptional | kFlagTransitive, kAttrCommunities,
               body.data());
  }

  // MP_REACH_NLRI for IPv6 announcements.
  if (has_v6_nlri) {
    net::BufWriter body;
    body.u16(kAfiIpv6);
    body.u8(kSafiUnicast);
    const auto nh = v6_bytes_for_next_hop(attrs.next_hop);
    body.u8(16);
    body.bytes(nh.data(), nh.size());
    body.u8(0);  // reserved
    for (const auto& p : update.nlri) {
      if (p.family() == net::Family::kV6) write_prefix(body, p);
    }
    write_attr(w, kFlagOptional, kAttrMpReach, body.data());
  }

  // MP_UNREACH_NLRI for IPv6 withdrawals.
  if (!v6_withdrawn.empty()) {
    net::BufWriter body;
    body.u16(kAfiIpv6);
    body.u8(kSafiUnicast);
    for (const auto& p : v6_withdrawn) write_prefix(body, p);
    write_attr(w, kFlagOptional, kAttrMpUnreach, body.data());
  }
}

bool decode_attributes(net::BufReader& r, UpdateMessage& update) {
  PathAttributes& attrs = update.attrs;
  while (r.remaining() > 0) {
    const std::uint8_t flags = r.u8();
    const std::uint8_t type = r.u8();
    const std::size_t len =
        (flags & kFlagExtendedLength) ? r.u16() : r.u8();
    if (!r.ok()) return false;
    net::BufReader body = r.sub(len);
    if (!r.ok()) return false;

    switch (type) {
      case kAttrOrigin: {
        const std::uint8_t v = body.u8();
        if (v > 2) return false;
        attrs.origin = static_cast<Origin>(v);
        break;
      }
      case kAttrAsPath: {
        std::vector<AsNumber> ases;
        while (body.remaining() > 0) {
          const std::uint8_t seg_type = body.u8();
          const std::uint8_t count = body.u8();
          if (!body.ok() || seg_type != 2) return false;  // AS_SET rejected
          for (int i = 0; i < count; ++i) ases.emplace_back(body.u32());
        }
        if (!body.ok()) return false;
        attrs.as_path = AsPath(std::move(ases));
        break;
      }
      case kAttrNextHop: {
        attrs.next_hop = net::IpAddr::v4(body.u32());
        break;
      }
      case kAttrMed: {
        attrs.med = Med(body.u32());
        attrs.has_med = true;
        break;
      }
      case kAttrLocalPref: {
        attrs.local_pref = LocalPref(body.u32());
        attrs.has_local_pref = true;
        break;
      }
      case kAttrCommunities: {
        if (len % 4 != 0) return false;
        for (std::size_t i = 0; i < len / 4; ++i) {
          attrs.communities.emplace_back(body.u32());
        }
        break;
      }
      case kAttrMpReach: {
        const std::uint16_t afi = body.u16();
        const std::uint8_t safi = body.u8();
        const std::uint8_t nh_len = body.u8();
        if (afi != kAfiIpv6 || safi != kSafiUnicast || nh_len != 16) {
          return false;
        }
        std::array<std::uint8_t, 16> nh{};
        body.bytes(nh.data(), nh.size());
        attrs.next_hop = next_hop_from_v6_bytes(nh);
        body.u8();  // reserved
        while (body.ok() && body.remaining() > 0) {
          auto p = read_prefix(body, net::Family::kV6);
          if (!p) return false;
          update.nlri.push_back(*p);
        }
        break;
      }
      case kAttrMpUnreach: {
        const std::uint16_t afi = body.u16();
        const std::uint8_t safi = body.u8();
        if (afi != kAfiIpv6 || safi != kSafiUnicast) return false;
        while (body.ok() && body.remaining() > 0) {
          auto p = read_prefix(body, net::Family::kV6);
          if (!p) return false;
          update.withdrawn.push_back(*p);
        }
        break;
      }
      default:
        // Unknown attribute: skip (body reader already consumed it).
        break;
    }
    if (!body.ok()) return false;
  }
  return r.ok();
}

void encode_open(net::BufWriter& w, const OpenMessage& open) {
  w.u8(4);  // version
  const std::uint32_t as = open.as.value();
  w.u16(as > 0xffff ? kAsTrans : static_cast<std::uint16_t>(as));
  w.u16(open.hold_time_secs);
  w.u32(open.router_id.value());
  // One optional parameter: the 4-octet-AS capability carrying the real AS.
  net::BufWriter cap;
  cap.u8(kOptParamCapability);
  cap.u8(6);  // param length: cap code + cap len + 4-byte AS
  cap.u8(kCapFourOctetAs);
  cap.u8(4);
  cap.u32(as);
  w.u8(static_cast<std::uint8_t>(cap.size()));
  w.bytes(cap.data());
}

std::optional<OpenMessage> decode_open(net::BufReader& r) {
  OpenMessage open;
  const std::uint8_t version = r.u8();
  if (version != 4) return std::nullopt;
  std::uint32_t as = r.u16();
  open.hold_time_secs = r.u16();
  open.router_id = RouterId(r.u32());
  const std::uint8_t opt_len = r.u8();
  if (!r.ok()) return std::nullopt;
  net::BufReader params = r.sub(opt_len);
  if (!r.ok()) return std::nullopt;
  while (params.remaining() > 0) {
    const std::uint8_t param_type = params.u8();
    const std::uint8_t param_len = params.u8();
    net::BufReader param = params.sub(param_len);
    if (!params.ok()) return std::nullopt;
    if (param_type != kOptParamCapability) continue;
    while (param.remaining() > 0) {
      const std::uint8_t cap_code = param.u8();
      const std::uint8_t cap_len = param.u8();
      net::BufReader cap = param.sub(cap_len);
      if (!param.ok()) return std::nullopt;
      if (cap_code == kCapFourOctetAs && cap_len == 4) {
        as = cap.u32();
      }
    }
  }
  open.as = AsNumber(as);
  return open;
}

}  // namespace

std::vector<std::uint8_t> encode_path_attributes(const PathAttributes& attrs,
                                                 net::Family nlri_family) {
  UpdateMessage update;
  update.attrs = attrs;
  // A dummy NLRI of the requested family forces the full attribute set.
  update.nlri.push_back(net::Prefix(
      nlri_family == net::Family::kV4
          ? net::IpAddr::v4(0)
          : net::IpAddr::v6(std::array<std::uint8_t, 16>{}),
      0));
  net::BufWriter w;
  encode_attributes(w, update);
  return w.take();
}

std::vector<std::uint8_t> encode_rib_attributes(const PathAttributes& attrs,
                                                const net::Prefix& prefix) {
  UpdateMessage update;
  update.attrs = attrs;
  update.nlri.push_back(prefix);
  net::BufWriter w;
  encode_attributes(w, update);
  return w.take();
}

std::optional<PathAttributes> decode_rib_attributes(
    const std::vector<std::uint8_t>& block) {
  net::BufReader reader(block);
  UpdateMessage update;
  if (!decode_attributes(reader, update)) return std::nullopt;
  return update.attrs;
}

std::vector<std::uint8_t> encode(const Message& msg) {
  net::BufWriter w;
  for (int i = 0; i < 16; ++i) w.u8(0xff);  // marker
  w.u16(0);                                 // length, patched below
  w.u8(static_cast<std::uint8_t>(message_type(msg)));

  if (const auto* open = std::get_if<OpenMessage>(&msg)) {
    encode_open(w, *open);
  } else if (const auto* update = std::get_if<UpdateMessage>(&msg)) {
    // Withdrawn routes (IPv4 only in the classic field).
    net::BufWriter withdrawn;
    for (const auto& p : update->withdrawn) {
      if (p.family() == net::Family::kV4) write_prefix(withdrawn, p);
    }
    w.u16(static_cast<std::uint16_t>(withdrawn.size()));
    w.bytes(withdrawn.data());

    net::BufWriter attrs;
    encode_attributes(attrs, *update);
    w.u16(static_cast<std::uint16_t>(attrs.size()));
    w.bytes(attrs.data());

    for (const auto& p : update->nlri) {
      if (p.family() == net::Family::kV4) write_prefix(w, p);
    }
  } else if (const auto* notify = std::get_if<NotificationMessage>(&msg)) {
    w.u8(static_cast<std::uint8_t>(notify->code));
    w.u8(notify->subcode);
  }
  // KEEPALIVE: header only.

  EF_CHECK(w.size() <= kMaxMessageSize,
           "BGP message exceeds 4096 bytes: " << w.size());
  w.patch_u16(16, static_cast<std::uint16_t>(w.size()));
  return w.take();
}

std::optional<Message> decode(net::BufReader& reader) {
  for (int i = 0; i < 16; ++i) {
    if (reader.u8() != 0xff) return std::nullopt;
  }
  const std::uint16_t length = reader.u16();
  const std::uint8_t type = reader.u8();
  if (!reader.ok() || length < kHeaderSize || length > kMaxMessageSize) {
    return std::nullopt;
  }
  net::BufReader body = reader.sub(length - kHeaderSize);
  if (!reader.ok()) return std::nullopt;

  switch (static_cast<MessageType>(type)) {
    case MessageType::kOpen: {
      auto open = decode_open(body);
      if (!open) return std::nullopt;
      return Message(*open);
    }
    case MessageType::kUpdate: {
      UpdateMessage update;
      const std::uint16_t wlen = body.u16();
      net::BufReader withdrawn = body.sub(wlen);
      if (!body.ok()) return std::nullopt;
      while (withdrawn.remaining() > 0) {
        auto p = read_prefix(withdrawn, net::Family::kV4);
        if (!p) return std::nullopt;
        update.withdrawn.push_back(*p);
      }
      const std::uint16_t alen = body.u16();
      net::BufReader attrs = body.sub(alen);
      if (!body.ok()) return std::nullopt;
      if (!decode_attributes(attrs, update)) return std::nullopt;
      while (body.remaining() > 0) {
        auto p = read_prefix(body, net::Family::kV4);
        if (!p) return std::nullopt;
        update.nlri.push_back(*p);
      }
      return Message(update);
    }
    case MessageType::kNotification: {
      NotificationMessage notify;
      notify.code = static_cast<NotifyCode>(body.u8());
      notify.subcode = body.u8();
      if (!body.ok()) return std::nullopt;
      return Message(notify);
    }
    case MessageType::kKeepalive:
      return Message(KeepaliveMessage{});
  }
  return std::nullopt;
}

std::optional<Message> decode(const std::vector<std::uint8_t>& buf) {
  net::BufReader reader(buf);
  return decode(reader);
}

}  // namespace ef::bgp::wire
