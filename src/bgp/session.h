// A single BGP session endpoint: simplified FSM, keepalive/hold timers,
// and RFC 4271 wire encoding on everything that crosses the transport.
//
// The transport is a callback supplied by the host (the simulator wires
// two sessions back-to-back; tests can capture and corrupt bytes). The
// hold-timer path is load-bearing for Edge Fabric's fail-safe: when the
// controller process dies, its injection session's hold timer expires and
// the routers drop every injected override, reverting to vanilla BGP.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "bgp/message.h"
#include "bgp/wire.h"
#include "net/units.h"

namespace ef::bgp {

enum class SessionState : std::uint8_t {
  kIdle = 0,
  kOpenSent = 1,
  kOpenConfirm = 2,
  kEstablished = 3,
};

const char* session_state_name(SessionState state);

enum class SessionEventType : std::uint8_t { kEstablished, kDown };

struct SessionConfig {
  AsNumber local_as;
  RouterId local_id;
  AsNumber peer_as;            // expected; 0 = accept any
  PeerType peer_type = PeerType::kPrivatePeer;
  /// Hold-time offer. RFC 4271 §4.2: 0 disables keepalives and the hold
  /// timer entirely; 1 and 2 are unacceptable and rejected in negotiation.
  std::uint16_t hold_time_secs = 90;
  net::IpAddr local_addr;      // advertised as NEXT_HOP on our announcements
};

class BgpSession {
 public:
  using SendFn = std::function<void(std::vector<std::uint8_t>)>;
  using UpdateFn = std::function<void(const UpdateMessage&)>;
  using EventFn = std::function<void(SessionEventType)>;

  BgpSession(SessionConfig config, SendFn send);

  void set_update_handler(UpdateFn fn) { on_update_ = std::move(fn); }
  void set_event_handler(EventFn fn) { on_event_ = std::move(fn); }

  /// Initiates the session: sends OPEN, moves to OpenSent.
  void start(net::SimTime now);

  /// Feeds received wire bytes (one or more whole messages).
  void receive(const std::vector<std::uint8_t>& bytes, net::SimTime now);

  /// Drives timers; call at least every few seconds of simulated time.
  /// Sends keepalives and enforces hold-timer expiry.
  void tick(net::SimTime now);

  /// Sends an UPDATE; only legal when established.
  void send_update(const UpdateMessage& update);

  /// Administrative close: NOTIFICATION(Cease) then down.
  void close(NotifyCode code, net::SimTime now);

  SessionState state() const { return state_; }
  bool established() const { return state_ == SessionState::kEstablished; }
  const SessionConfig& config() const { return config_; }

  /// Peer identity learned from its OPEN; meaningful once past OpenSent.
  AsNumber peer_as() const { return learned_peer_as_; }
  RouterId peer_router_id() const { return learned_peer_id_; }

  /// Negotiated hold time (min of both sides' offers).
  std::uint16_t negotiated_hold_secs() const { return negotiated_hold_secs_; }

  struct Stats {
    std::uint64_t updates_sent = 0;
    std::uint64_t updates_received = 0;
    std::uint64_t keepalives_sent = 0;
    std::uint64_t keepalives_received = 0;
    std::uint64_t malformed_received = 0;
    std::uint64_t session_drops = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void send(const Message& msg, net::SimTime now);
  void handle(const Message& msg, net::SimTime now);
  void go_down(net::SimTime now, bool notify_peer, NotifyCode code,
               std::uint8_t subcode = 0);

  SessionConfig config_;
  SendFn send_;
  UpdateFn on_update_;
  EventFn on_event_;

  SessionState state_ = SessionState::kIdle;
  AsNumber learned_peer_as_;
  RouterId learned_peer_id_;
  std::uint16_t negotiated_hold_secs_ = 0;
  net::SimTime last_received_;
  net::SimTime last_sent_;
  Stats stats_;
};

}  // namespace ef::bgp
