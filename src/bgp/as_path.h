// AS_PATH attribute: an ordered AS_SEQUENCE of 4-octet AS numbers.
//
// AS_SET segments are obsolete in practice (RFC 6472) and are not modelled;
// the wire codec rejects them.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "bgp/types.h"

namespace ef::bgp {

class AsPath {
 public:
  AsPath() = default;
  AsPath(std::initializer_list<AsNumber> ases) : ases_(ases) {}
  explicit AsPath(std::vector<AsNumber> ases) : ases_(std::move(ases)) {}

  /// Path length as used by the decision process (number of ASes,
  /// counting prepends).
  std::size_t length() const { return ases_.size(); }
  bool empty() const { return ases_.empty(); }

  /// First AS (the neighbor that advertised the route); requires !empty().
  AsNumber first() const { return ases_.front(); }
  /// Last AS (the origin of the prefix); requires !empty().
  AsNumber origin_as() const { return ases_.back(); }

  const std::vector<AsNumber>& ases() const { return ases_; }

  /// Loop detection: true if `as` appears anywhere in the path.
  bool contains(AsNumber as) const;

  /// Returns a copy with `as` prepended `count` times (as a speaker does
  /// when propagating a route to an eBGP neighbor).
  AsPath prepended(AsNumber as, int count = 1) const;

  std::string to_string() const;

  friend bool operator==(const AsPath&, const AsPath&) = default;

 private:
  std::vector<AsNumber> ases_;
};

std::ostream& operator<<(std::ostream& os, const AsPath& path);

}  // namespace ef::bgp
