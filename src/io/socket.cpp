#include "io/socket.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/log.h"

namespace ef::io {

namespace {

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::size_t open_fd_count() {
  std::size_t count = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count > 3 ? count - 3 : 0;  // ".", "..", and the DIR's own fd
}

std::optional<TcpListener> TcpListener::open(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return std::nullopt;
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  const sockaddr_in addr = loopback(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    return std::nullopt;
  }
  if (::listen(fd.get(), 64) != 0) return std::nullopt;
  TcpListener listener;
  listener.port_ = bound_port(fd.get());
  listener.fd_ = std::move(fd);
  return listener;
}

Fd TcpListener::accept_one() {
  const int fd = ::accept4(fd_.get(), nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) return Fd();
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Fd(fd);
}

TcpConn::TcpConn(Fd fd, std::size_t max_backlog)
    : fd_(std::move(fd)), max_backlog_(max_backlog) {}

bool TcpConn::read_some() {
  if (broken_) return false;
  // Compact once the consumed prefix dominates, so the buffer does not
  // creep unboundedly under a slow parser.
  if (read_pos_ > 4096 && read_pos_ * 2 > read_buf_.size()) {
    read_buf_.erase(read_buf_.begin(),
                    read_buf_.begin() + static_cast<std::ptrdiff_t>(read_pos_));
    read_pos_ = 0;
  }
  bool open = true;
  for (;;) {
    std::uint8_t chunk[16384];
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof chunk, 0);
    if (n > 0) {
      read_buf_.insert(read_buf_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      open = false;  // orderly EOF
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    broken_ = true;
    open = false;
    break;
  }
  return open;
}

void TcpConn::consume(std::size_t n) {
  read_pos_ += n;
  EF_CHECK(read_pos_ <= read_buf_.size(), "consume past end of read buffer");
  if (read_pos_ == read_buf_.size()) {
    read_buf_.clear();
    read_pos_ = 0;
  }
}

bool TcpConn::send(std::span<const std::uint8_t> data) {
  if (broken_) return false;
  write_buf_.insert(write_buf_.end(), data.begin(), data.end());
  if (!flush()) return false;
  if (write_buf_.size() - write_pos_ > max_backlog_) {
    broken_ = true;  // peer is not reading; shed it rather than buffer
    return false;
  }
  return true;
}

bool TcpConn::flush() {
  if (broken_) return false;
  while (write_pos_ < write_buf_.size()) {
    const ssize_t n = ::send(fd_.get(), write_buf_.data() + write_pos_,
                             write_buf_.size() - write_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      write_pos_ += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    broken_ = true;
    return false;
  }
  if (write_pos_ == write_buf_.size()) {
    write_buf_.clear();
    write_pos_ = 0;
  } else if (write_pos_ > 65536) {
    write_buf_.erase(
        write_buf_.begin(),
        write_buf_.begin() + static_cast<std::ptrdiff_t>(write_pos_));
    write_pos_ = 0;
  }
  return true;
}

std::optional<UdpSocket> UdpSocket::bind(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return std::nullopt;
  // As much kernel buffer as the host allows: sFlow bursts between loop
  // iterations land here. (Silently capped by net.core.rmem_max.)
  const int want = 8 << 20;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &want, sizeof want);
  const sockaddr_in addr = loopback(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    return std::nullopt;
  }
  UdpSocket sock;
  sock.port_ = bound_port(fd.get());
  sock.fd_ = std::move(fd);
  return sock;
}

std::size_t UdpSocket::drain(
    const std::function<void(std::span<const std::uint8_t>)>& sink) {
  std::size_t count = 0;
  for (;;) {
    std::uint8_t buf[65536];
    const ssize_t n = ::recv(fd_.get(), buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained
    }
    sink(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
    ++count;
  }
  return count;
}

bool UdpSocket::send_to(int fd, std::uint16_t port,
                        std::span<const std::uint8_t> data) {
  const sockaddr_in addr = loopback(port);
  for (;;) {
    const ssize_t n =
        ::sendto(fd, data.data(), data.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    if (n == static_cast<ssize_t>(data.size())) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
}

Fd connect_tcp(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Fd();
  const sockaddr_in addr = loopback(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    return Fd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool send_all(int fd, std::span<const std::uint8_t> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::vector<std::uint8_t> recv_some(int fd, std::size_t max) {
  std::vector<std::uint8_t> out(max);
  for (;;) {
    const ssize_t n = ::recv(fd, out.data(), out.size(), 0);
    if (n < 0 && errno == EINTR) continue;
    out.resize(n > 0 ? static_cast<std::size_t>(n) : 0);
    return out;
  }
}

Fd connect_udp(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Fd();
  const sockaddr_in addr = loopback(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    return Fd();
  }
  return fd;
}

}  // namespace ef::io
