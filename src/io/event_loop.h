// Epoll-based event loop: the reactor under the efd controller daemon.
//
// One loop owns one epoll instance plus a monotonic timer heap, an
// eventfd wakeup channel for cross-thread posts, and (optionally) a
// signalfd for SIGINT/SIGTERM-style shutdown. Everything user-visible
// runs on the loop thread: fd handlers, timer callbacks, posted
// functions, and signal handlers never race each other, so the daemon's
// ingest state needs no locks of its own.
//
// The loop is deliberately small — level-triggered by default (a handler
// that drains partially is re-armed for free), with opt-in edge
// triggering for high-rate fds whose handlers always drain to EAGAIN.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace ef::io {

/// Interest / readiness bits. kRead/kWrite select epoll interest;
/// kEdge switches the fd to edge-triggered (EPOLLET). Handlers receive
/// the readiness subset plus kError/kHangup when the kernel reports them.
enum Interest : std::uint32_t {
  kRead = 1u << 0,
  kWrite = 1u << 1,
  kEdge = 1u << 2,    // registration-only flag, never reported
  kError = 1u << 3,   // reported only (EPOLLERR)
  kHangup = 1u << 4,  // reported only (EPOLLHUP / EPOLLRDHUP)
};

class EventLoop {
 public:
  using FdHandler = std::function<void(std::uint32_t ready)>;
  using TimerId = std::uint64_t;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with the given Interest bits. The loop never owns or
  /// closes the fd; unwatch it before closing. Safe to call from handlers.
  void watch(int fd, std::uint32_t interest, FdHandler handler);

  /// Changes the interest set of a watched fd (e.g. add kWrite while a
  /// connection has queued output, drop it when the queue drains).
  void rearm(int fd, std::uint32_t interest);

  /// Deregisters the fd. Safe to call from inside its own handler (the
  /// in-flight dispatch batch skips it afterwards).
  void unwatch(int fd);

  bool watched(int fd) const { return handlers_.contains(fd); }

  /// One-shot timer on the monotonic clock. Fires once after `delay`.
  TimerId call_after(std::chrono::nanoseconds delay,
                     std::function<void()> fn);

  /// Periodic timer; first fire after `period`, then every `period`
  /// (fixed schedule — a slow callback does not shift later deadlines).
  TimerId call_every(std::chrono::nanoseconds period,
                     std::function<void()> fn);

  void cancel_timer(TimerId id);

  /// Enqueues `fn` to run on the loop thread. Thread-safe; wakes the loop
  /// via the eventfd if it is blocked in epoll_wait.
  void post(std::function<void()> fn);

  /// Runs `fn` on the loop thread and blocks until it returned. Safe from
  /// any thread; from the loop thread itself it runs inline.
  void run_sync(std::function<void()> fn);

  /// Routes `signals` (e.g. {SIGINT, SIGTERM}) into `handler` via a
  /// signalfd. The signals must already be blocked in every thread of the
  /// process (block them in main() before spawning threads), otherwise
  /// default dispositions race the signalfd.
  void watch_signals(std::initializer_list<int> signals,
                     std::function<void(int)> handler);

  /// Dispatches until stop(). Must be called from exactly one thread; that
  /// thread becomes the loop thread.
  void run();

  /// Thread-safe; makes run() return after the current dispatch batch.
  void stop();

  /// Single iteration: waits at most `timeout` (clamped by the next timer
  /// deadline), dispatches ready fds, posted functions, and due timers.
  /// Returns the number of callbacks dispatched. For tests and manual
  /// pumping; run() is a loop around this.
  std::size_t poll_once(std::chrono::milliseconds timeout);

  struct Stats {
    std::uint64_t iterations = 0;
    std::uint64_t fd_dispatches = 0;
    std::uint64_t timer_fires = 0;
    std::uint64_t posts_run = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Handler {
    std::uint32_t interest = 0;
    FdHandler fn;
    bool alive = true;  // cleared by unwatch; in-flight batches check it
  };
  struct Timer {
    std::chrono::steady_clock::time_point deadline;
    TimerId id = 0;
    // Min-heap on deadline; id breaks ties so firing order is stable.
    bool operator>(const Timer& other) const {
      if (deadline != other.deadline) return deadline > other.deadline;
      return id > other.id;
    }
  };
  struct TimerState {
    std::function<void()> fn;
    std::chrono::nanoseconds period{0};  // 0 = one-shot
  };

  TimerId arm_timer(std::chrono::nanoseconds delay,
                    std::chrono::nanoseconds period,
                    std::function<void()> fn);
  int next_timer_timeout_ms(std::chrono::milliseconds cap) const;
  std::size_t run_due_timers();
  std::size_t drain_posted();
  static std::uint32_t to_epoll(std::uint32_t interest);

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;    // eventfd
  int signal_fd_ = -1;    // signalfd, when watch_signals was called
  std::function<void(int)> signal_handler_;

  std::unordered_map<int, std::shared_ptr<Handler>> handlers_;
  std::vector<Timer> timer_heap_;  // std::push_heap/pop_heap with greater
  std::unordered_map<TimerId, TimerState> timers_;
  TimerId next_timer_id_ = 1;

  std::mutex post_mutex_;
  std::deque<std::function<void()>> posted_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::thread::id loop_thread_{};

  Stats stats_;
};

}  // namespace ef::io
