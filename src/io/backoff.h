// Reconnect pacing: exponential backoff with seeded jitter and a capped
// retry budget.
//
// Backoff is a pure schedule — it owns no clock and no socket. Callers
// ask `next()` for the delay before the upcoming attempt (in whatever
// tick unit they feed in: milliseconds for the event loop, simulation
// steps for the chaos harness) and `reset()` it after a successful
// connect. Keeping the schedule clockless is what lets the fault
// harness replay the exact same reconnect cadence under simulated time
// that the daemon would use under wall time.
//
// Reconnector binds a Backoff to an EventLoop: it schedules dial
// attempts with call_after, reports each outcome, and stops once the
// retry budget is spent.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>

#include "io/event_loop.h"
#include "net/rng.h"

namespace ef::io {

/// Schedule parameters (namespace-scope so it can serve as a default
/// argument below).
struct BackoffConfig {
  /// Delay before the first retry, in caller-defined ticks.
  std::uint64_t base = 1;
  /// Ceiling on the un-jittered delay.
  std::uint64_t cap = 64;
  /// Growth factor between consecutive retries.
  double multiplier = 2.0;
  /// Fraction of the delay drawn uniformly as additive jitter
  /// (0 = none, 0.5 = up to +50%). Seeded, so replays agree.
  double jitter = 0.0;
  /// Attempts allowed before `next()` reports exhaustion. 0 = unlimited.
  std::uint32_t max_retries = 0;
  std::uint64_t seed = 1;
};

/// Deterministic exponential backoff schedule.
class Backoff {
 public:
  using Config = BackoffConfig;

  explicit Backoff(Config config = Config())
      : config_(config), rng_(config.seed) {}

  /// Delay (in ticks) to wait before the next attempt, or nullopt when
  /// the retry budget is exhausted.
  std::optional<std::uint64_t> next();

  /// Successful connect: the next failure starts the schedule over.
  void reset();

  std::uint32_t attempts() const { return attempts_; }
  bool exhausted() const {
    return config_.max_retries != 0 && attempts_ >= config_.max_retries;
  }

 private:
  Config config_;
  net::Rng rng_;
  std::uint32_t attempts_ = 0;
};

/// Drives repeated dial attempts on an EventLoop using a Backoff
/// schedule (ticks are interpreted as milliseconds).
class Reconnector {
 public:
  /// Attempts the connection; returns true on success.
  using Dial = std::function<bool()>;
  /// Called once the dial succeeds (`true`) or the budget is spent
  /// (`false`).
  using Done = std::function<void(bool connected)>;

  Reconnector(EventLoop& loop, Backoff::Config config, Dial dial, Done done)
      : loop_(loop),
        backoff_(config),
        dial_(std::move(dial)),
        done_(std::move(done)) {}

  ~Reconnector() { cancel(); }

  Reconnector(const Reconnector&) = delete;
  Reconnector& operator=(const Reconnector&) = delete;

  /// Dials immediately; on failure schedules retries per the backoff
  /// schedule. Safe to call again after completion.
  void start();

  /// Stops any pending retry without invoking the done callback.
  void cancel();

  std::uint32_t attempts() const { return backoff_.attempts(); }

 private:
  void attempt();

  EventLoop& loop_;
  Backoff backoff_;
  Dial dial_;
  Done done_;
  std::optional<EventLoop::TimerId> pending_;
};

}  // namespace ef::io
