// Deterministic fault injection for the ingest path.
//
// A FaultInjector sits between a traffic source and a socket and decides,
// per protocol message, whether to deliver it verbatim or mangled. Each
// message's randomness is derived from (seed, message index), so two runs
// with the same seed and the same message sequence produce byte-identical
// fault schedules — that is what lets `eftool chaos` replay a failure
// scenario and assert the controller's degradation ladder reacts
// identically both times — and a scripted override at one index never
// shifts the seeded decision at any other.
//
// Faults are frame-aligned on purpose. BMP is a self-delimiting stream,
// so dropping or duplicating a *whole* message never desyncs the
// reassembler; corrupting the 6-byte header (version flip) is the
// deterministic way to poison it; truncation models a sender that died
// mid-write and must be followed by a disconnect. Byte-level faults
// inside a TCP stream would be repaired by TCP itself and teach us
// nothing about the daemon.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/rng.h"

namespace ef::io {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kDrop,           // message silently discarded
  kDuplicate,      // message delivered twice
  kCorruptBody,    // payload byte flipped past the header
  kCorruptHeader,  // framing header mangled (poisons the stream)
  kTruncate,       // prefix delivered, then the connection must close
  kDisconnect,     // message delivered, then the connection must close
};

const char* fault_kind_name(FaultKind kind);

/// Seeded per-message fault probabilities. Checked in declaration order;
/// the first matching draw wins, so rates are independent per kind.
struct FaultConfig {
  std::uint64_t seed = 1;
  double drop = 0.0;
  double duplicate = 0.0;
  double corrupt_body = 0.0;
  double corrupt_header = 0.0;
  double truncate = 0.0;
  double disconnect = 0.0;
  /// Probability of silently discarding a *withdraw-bearing* message
  /// (one the caller flags via apply()'s withdraw_bearing). Models a
  /// router or filter that swallows withdraws while letting announces
  /// through — the divergence class the enforcement auditor exists to
  /// catch. Rolled only after every seeded kind above declined, so
  /// enabling it never shifts their draws.
  double swallow_withdraw = 0.0;
};

/// A scripted fault: force `kind` on the `at`-th message (0-based) seen
/// by the injector. Scripted entries override the seeded draw, which
/// lets tests walk an exact scenario while keeping the seeded machinery
/// in the loop.
struct ScriptedFault {
  std::uint64_t at = 0;
  FaultKind kind = FaultKind::kNone;
};

/// What the caller must do with one message.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  /// Bytes to transmit (empty for kDrop). For kDuplicate the message
  /// appears twice back to back; for kTruncate only a strict prefix.
  std::vector<std::uint8_t> bytes;
  /// The mangling will poison a framed reader (header corruption).
  bool expect_poison = false;
  /// The connection must be closed after sending `bytes`.
  bool close_after = false;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config,
                         std::vector<ScriptedFault> script = {});

  /// Decides the fate of one whole protocol message. `header_len` is the
  /// protocol's framing-header size (6 for BMP): header corruption flips
  /// a byte inside it, body corruption strictly past it.
  /// `withdraw_bearing` marks messages eligible for the swallow_withdraw
  /// roll (BGP UPDATEs with a non-empty withdrawn-routes field); leaving
  /// it false keeps the decision byte-identical to older callers.
  FaultDecision apply(std::span<const std::uint8_t> message,
                      std::size_t header_len, bool withdraw_bearing = false);

  /// Messages inspected so far (the index the script addresses).
  std::uint64_t seen() const { return seen_; }

  struct Stats {
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t truncated = 0;
    std::uint64_t disconnects = 0;
    /// Withdraw-bearing messages swallowed (also counted in dropped).
    std::uint64_t withdraws_swallowed = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  FaultKind draw(std::uint64_t index, net::Rng& rng);

  FaultConfig config_;
  std::vector<ScriptedFault> script_;
  std::uint64_t seen_ = 0;
  Stats stats_;
};

}  // namespace ef::io
