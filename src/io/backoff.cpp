#include "io/backoff.h"

#include <algorithm>
#include <cmath>

namespace ef::io {

std::optional<std::uint64_t> Backoff::next() {
  if (exhausted()) return std::nullopt;
  double delay = static_cast<double>(config_.base) *
                 std::pow(std::max(1.0, config_.multiplier),
                          static_cast<double>(attempts_));
  delay = std::min(delay, static_cast<double>(config_.cap));
  if (config_.jitter > 0.0) {
    delay += delay * config_.jitter * rng_.next_double();
  }
  ++attempts_;
  return static_cast<std::uint64_t>(std::llround(delay));
}

void Backoff::reset() { attempts_ = 0; }

void Reconnector::start() {
  cancel();
  backoff_.reset();
  attempt();
}

void Reconnector::cancel() {
  if (pending_) {
    loop_.cancel_timer(*pending_);
    pending_.reset();
  }
}

void Reconnector::attempt() {
  pending_.reset();
  if (dial_()) {
    backoff_.reset();
    if (done_) done_(true);
    return;
  }
  auto delay = backoff_.next();
  if (!delay) {
    if (done_) done_(false);
    return;
  }
  pending_ = loop_.call_after(std::chrono::milliseconds(*delay),
                              [this] { attempt(); });
}

}  // namespace ef::io
