#include "io/fault.h"

#include <algorithm>

namespace ef::io {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kCorruptBody: return "corrupt-body";
    case FaultKind::kCorruptHeader: return "corrupt-header";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kDisconnect: return "disconnect";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultConfig config,
                             std::vector<ScriptedFault> script)
    : config_(config), script_(std::move(script)) {
  std::sort(script_.begin(), script_.end(),
            [](const ScriptedFault& a, const ScriptedFault& b) {
              return a.at < b.at;
            });
}

FaultKind FaultInjector::draw(std::uint64_t index, net::Rng& rng) {
  for (const ScriptedFault& s : script_) {
    if (s.at == index) return s.kind;
    if (s.at > index) break;
  }
  // One draw per kind, whether or not an earlier kind already matched,
  // so the kind chosen is independent of the other kinds' rates.
  FaultKind chosen = FaultKind::kNone;
  auto roll = [&](double p, FaultKind kind) {
    if (rng.bernoulli(p) && chosen == FaultKind::kNone) chosen = kind;
  };
  roll(config_.drop, FaultKind::kDrop);
  roll(config_.duplicate, FaultKind::kDuplicate);
  roll(config_.corrupt_body, FaultKind::kCorruptBody);
  roll(config_.corrupt_header, FaultKind::kCorruptHeader);
  roll(config_.truncate, FaultKind::kTruncate);
  roll(config_.disconnect, FaultKind::kDisconnect);
  return chosen;
}

FaultDecision FaultInjector::apply(std::span<const std::uint8_t> message,
                                   std::size_t header_len,
                                   bool withdraw_bearing) {
  const std::uint64_t index = seen_++;
  // Each message gets its own generator derived from (seed, index), so
  // its fate — kind and mangling alike — is independent of every other
  // message's. A scripted override or a fault that consumes extra draws
  // (truncate length, corrupt position) can never shift the seeded
  // decision at any later index.
  net::Rng rng(config_.seed ^ (0x9E3779B97F4A7C15ull * (index + 1)));
  FaultKind kind = draw(index, rng);

  // The swallow roll comes strictly after the six seeded kinds (and only
  // for withdraw-bearing messages), so turning it on cannot perturb any
  // other decision — the replay-alignment property chaos --verify pins.
  bool swallowed = false;
  if (kind == FaultKind::kNone && withdraw_bearing &&
      rng.bernoulli(config_.swallow_withdraw)) {
    kind = FaultKind::kDrop;
    swallowed = true;
  }

  // Faults that need room to act degrade to kNone on messages too small
  // to carry them, keeping the decision well-defined for any input.
  if (kind == FaultKind::kCorruptBody && message.size() <= header_len) {
    kind = FaultKind::kNone;
  }
  if (kind == FaultKind::kCorruptHeader &&
      (header_len == 0 || message.size() < header_len)) {
    kind = FaultKind::kNone;
  }
  if (kind == FaultKind::kTruncate && message.size() < 2) {
    kind = FaultKind::kNone;
  }

  FaultDecision out;
  out.kind = kind;
  switch (kind) {
    case FaultKind::kNone:
      out.bytes.assign(message.begin(), message.end());
      ++stats_.delivered;
      break;
    case FaultKind::kDrop:
      ++stats_.dropped;
      if (swallowed) ++stats_.withdraws_swallowed;
      break;
    case FaultKind::kDuplicate:
      out.bytes.reserve(message.size() * 2);
      out.bytes.insert(out.bytes.end(), message.begin(), message.end());
      out.bytes.insert(out.bytes.end(), message.begin(), message.end());
      ++stats_.delivered;
      ++stats_.duplicated;
      break;
    case FaultKind::kCorruptBody: {
      out.bytes.assign(message.begin(), message.end());
      std::size_t pos = header_len + static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<int>(message.size() - header_len) - 1));
      out.bytes[pos] ^= 0xFF;
      ++stats_.delivered;
      ++stats_.corrupted;
      break;
    }
    case FaultKind::kCorruptHeader:
      out.bytes.assign(message.begin(), message.end());
      // Flip the first header byte (the BMP version): deterministically
      // unframeable, so the reader poisons instead of resyncing wrong.
      out.bytes[0] ^= 0xFF;
      out.expect_poison = true;
      ++stats_.delivered;
      ++stats_.corrupted;
      break;
    case FaultKind::kTruncate: {
      std::size_t keep = 1 + static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<int>(message.size()) - 2));
      out.bytes.assign(message.begin(), message.begin() + keep);
      out.close_after = true;
      ++stats_.truncated;
      ++stats_.disconnects;
      break;
    }
    case FaultKind::kDisconnect:
      out.bytes.assign(message.begin(), message.end());
      out.close_after = true;
      ++stats_.delivered;
      ++stats_.disconnects;
      break;
  }
  return out;
}

}  // namespace ef::io
