#include "io/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/signalfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <csignal>
#include <cstring>

#include "net/log.h"

namespace ef::io {

namespace {

/// Upper bound on one epoll_wait batch. Bigger batches amortize the
/// syscall; the loop re-polls immediately when the batch was full.
constexpr int kMaxEvents = 64;

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  EF_CHECK(epoll_fd_ >= 0, "epoll_create1 failed: " << std::strerror(errno));
  wakeup_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  EF_CHECK(wakeup_fd_ >= 0, "eventfd failed: " << std::strerror(errno));
  watch(wakeup_fd_, kRead, [this](std::uint32_t) {
    std::uint64_t drained = 0;
    while (::read(wakeup_fd_, &drained, sizeof drained) > 0) {
    }
  });
}

EventLoop::~EventLoop() {
  if (signal_fd_ >= 0) ::close(signal_fd_);
  if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::uint32_t EventLoop::to_epoll(std::uint32_t interest) {
  std::uint32_t events = 0;
  if (interest & kRead) events |= EPOLLIN;
  if (interest & kWrite) events |= EPOLLOUT;
  if (interest & kEdge) events |= EPOLLET;
  events |= EPOLLRDHUP;  // see peer half-close without a read() probe
  return events;
}

void EventLoop::watch(int fd, std::uint32_t interest, FdHandler handler) {
  EF_CHECK(fd >= 0, "watch on negative fd");
  EF_CHECK(!handlers_.contains(fd), "fd " << fd << " already watched");
  auto state = std::make_shared<Handler>();
  state->interest = interest;
  state->fn = std::move(handler);
  ::epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  const int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  EF_CHECK(rc == 0, "epoll_ctl ADD fd " << fd << ": "
                                        << std::strerror(errno));
  handlers_.emplace(fd, std::move(state));
}

void EventLoop::rearm(int fd, std::uint32_t interest) {
  auto it = handlers_.find(fd);
  EF_CHECK(it != handlers_.end(), "rearm of unwatched fd " << fd);
  if (it->second->interest == interest) return;
  it->second->interest = interest;
  ::epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  const int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  EF_CHECK(rc == 0, "epoll_ctl MOD fd " << fd << ": "
                                        << std::strerror(errno));
}

void EventLoop::unwatch(int fd) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
  it->second->alive = false;  // in-flight dispatch batch skips it
  handlers_.erase(it);
  // Removal can race a concurrently-closed fd; EBADF/ENOENT are benign.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

EventLoop::TimerId EventLoop::arm_timer(std::chrono::nanoseconds delay,
                                        std::chrono::nanoseconds period,
                                        std::function<void()> fn) {
  const TimerId id = next_timer_id_++;
  timers_.emplace(id, TimerState{std::move(fn), period});
  timer_heap_.push_back(
      Timer{std::chrono::steady_clock::now() + delay, id});
  std::push_heap(timer_heap_.begin(), timer_heap_.end(),
                 std::greater<Timer>{});
  return id;
}

EventLoop::TimerId EventLoop::call_after(std::chrono::nanoseconds delay,
                                         std::function<void()> fn) {
  return arm_timer(delay, std::chrono::nanoseconds{0}, std::move(fn));
}

EventLoop::TimerId EventLoop::call_every(std::chrono::nanoseconds period,
                                         std::function<void()> fn) {
  EF_CHECK(period.count() > 0, "periodic timer needs a positive period");
  return arm_timer(period, period, std::move(fn));
}

void EventLoop::cancel_timer(TimerId id) {
  timers_.erase(id);  // heap entry becomes a tombstone, dropped on pop
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wakeup_fd_, &one, sizeof one);  // EAGAIN: already pending
}

void EventLoop::run_sync(std::function<void()> fn) {
  if (running_.load(std::memory_order_acquire) &&
      std::this_thread::get_id() == loop_thread_) {
    fn();
    return;
  }
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  post([&] {
    fn();
    {
      std::lock_guard<std::mutex> lock(m);
      done = true;
    }
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return done; });
}

void EventLoop::watch_signals(std::initializer_list<int> signals,
                              std::function<void(int)> handler) {
  EF_CHECK(signal_fd_ < 0, "watch_signals called twice");
  sigset_t mask;
  sigemptyset(&mask);
  for (int sig : signals) sigaddset(&mask, sig);
  signal_fd_ = ::signalfd(-1, &mask, SFD_CLOEXEC | SFD_NONBLOCK);
  EF_CHECK(signal_fd_ >= 0, "signalfd failed: " << std::strerror(errno));
  signal_handler_ = std::move(handler);
  watch(signal_fd_, kRead, [this](std::uint32_t) {
    ::signalfd_siginfo info;
    while (::read(signal_fd_, &info, sizeof info) ==
           static_cast<ssize_t>(sizeof info)) {
      if (signal_handler_) signal_handler_(static_cast<int>(info.ssi_signo));
    }
  });
}

int EventLoop::next_timer_timeout_ms(std::chrono::milliseconds cap) const {
  if (timer_heap_.empty()) return static_cast<int>(cap.count());
  const auto now = std::chrono::steady_clock::now();
  const auto until = timer_heap_.front().deadline - now;
  if (until.count() <= 0) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(until).count() + 1;
  return static_cast<int>(std::min<long long>(ms, cap.count()));
}

std::size_t EventLoop::run_due_timers() {
  std::size_t fired = 0;
  const auto now = std::chrono::steady_clock::now();
  while (!timer_heap_.empty() && timer_heap_.front().deadline <= now) {
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(),
                  std::greater<Timer>{});
    const Timer due = timer_heap_.back();
    timer_heap_.pop_back();
    auto it = timers_.find(due.id);
    if (it == timers_.end()) continue;  // cancelled tombstone
    if (it->second.period.count() > 0) {
      // Fixed schedule: the next deadline advances from the *previous*
      // deadline, so a slow callback does not drift the period.
      timer_heap_.push_back(Timer{due.deadline + it->second.period, due.id});
      std::push_heap(timer_heap_.begin(), timer_heap_.end(),
                     std::greater<Timer>{});
      it->second.fn();
    } else {
      auto fn = std::move(it->second.fn);
      timers_.erase(it);
      fn();
    }
    ++fired;
    ++stats_.timer_fires;
  }
  return fired;
}

std::size_t EventLoop::drain_posted() {
  std::deque<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) {
    fn();
    ++stats_.posts_run;
  }
  return batch.size();
}

std::size_t EventLoop::poll_once(std::chrono::milliseconds timeout) {
  ++stats_.iterations;
  ::epoll_event events[kMaxEvents];
  const int timeout_ms = next_timer_timeout_ms(timeout);
  int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
  if (n < 0) {
    EF_CHECK(errno == EINTR, "epoll_wait: " << std::strerror(errno));
    n = 0;
  }
  std::size_t dispatched = 0;
  for (int i = 0; i < n; ++i) {
    auto it = handlers_.find(events[i].data.fd);
    if (it == handlers_.end()) continue;
    // Hold a reference: the handler may unwatch (and erase) itself.
    const std::shared_ptr<Handler> handler = it->second;
    if (!handler->alive) continue;
    std::uint32_t ready = 0;
    if (events[i].events & EPOLLIN) ready |= kRead;
    if (events[i].events & EPOLLOUT) ready |= kWrite;
    if (events[i].events & EPOLLERR) ready |= kError;
    if (events[i].events & (EPOLLHUP | EPOLLRDHUP)) ready |= kHangup;
    handler->fn(ready);
    ++dispatched;
    ++stats_.fd_dispatches;
  }
  dispatched += drain_posted();
  dispatched += run_due_timers();
  return dispatched;
}

void EventLoop::run() {
  loop_thread_ = std::this_thread::get_id();
  running_.store(true, std::memory_order_release);
  while (!stop_.load(std::memory_order_acquire)) {
    poll_once(std::chrono::milliseconds(200));
  }
  running_.store(false, std::memory_order_release);
  stop_.store(false, std::memory_order_release);  // allow re-run
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  post([] {});  // wake the loop if it is parked in epoll_wait
}

}  // namespace ef::io
