// Stream framing: turns the arbitrary byte chunks a TCP socket delivers
// back into whole protocol frames.
//
// FrameReassembler is protocol-agnostic — a PeekFn inspects the buffered
// prefix and answers "how long is the next frame?" (or "need more bytes",
// or "this stream is broken"). The BMP peek lives with the BMP codec
// (bmp::peek_frame); this layer only owns buffering, resync-free error
// poisoning, and the max-frame guard that keeps a hostile or corrupt feed
// from ballooning daemon memory.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include <vector>

namespace ef::io {

enum class PeekStatus : std::uint8_t {
  kFrame,     // a whole frame's length is known (and may be buffered)
  kNeedMore,  // prefix too short to size the frame
  kError,     // stream is unframeable from here on (no resync point)
};

struct Peek {
  PeekStatus status = PeekStatus::kNeedMore;
  /// kFrame: total frame length in bytes. kNeedMore: minimum buffered
  /// bytes required before peeking again.
  std::size_t len = 0;
  const char* reason = "";  // kError only
};

using PeekFn = std::function<Peek(std::span<const std::uint8_t>)>;

/// Reassembles length-delimited frames from a chunked byte stream.
class FrameReassembler {
 public:
  using FrameSink = std::function<void(std::span<const std::uint8_t>)>;

  explicit FrameReassembler(PeekFn peek, std::size_t max_frame = 1u << 20)
      : peek_(std::move(peek)), max_frame_(max_frame) {}

  /// Appends `chunk` and emits every now-complete frame into `sink`.
  /// Returns frames emitted. Once poisoned (peek error or a frame above
  /// `max_frame`), all further input is dropped — a length-prefixed
  /// stream has no resync point after a bad header, so the owner should
  /// close the connection.
  std::size_t feed(std::span<const std::uint8_t> chunk,
                   const FrameSink& sink);

  bool poisoned() const { return poisoned_; }
  const std::string& poison_reason() const { return poison_reason_; }
  std::size_t buffered() const { return buf_.size() - pos_; }

  /// Drops buffered bytes and clears poisoning (fresh connection).
  void reset();

  struct Stats {
    std::uint64_t bytes_in = 0;
    std::uint64_t frames_out = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  PeekFn peek_;
  std::size_t max_frame_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  bool poisoned_ = false;
  std::string poison_reason_;
  Stats stats_;
};

}  // namespace ef::io
