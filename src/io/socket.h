// Non-blocking TCP/UDP socket wrappers for the ingest service, plus the
// blocking client-side helpers the feed tools use.
//
// Daemon side (non-blocking, loop-driven): TcpListener accepts BMP
// sessions, TcpConn owns per-connection read/write buffers with
// backpressure, UdpSocket drains sFlow datagrams. Feeder side (blocking):
// connect_tcp/send_all keep eftool-feed and the simulator adapter simple —
// the kernel's socket buffers plus TCP flow control are the backpressure.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace ef::io {

/// RAII fd. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

bool set_nonblocking(int fd);

/// Counts this process's open file descriptors (via /proc/self/fd) — the
/// fd-leak assertion the ingest tests use.
std::size_t open_fd_count();

/// Non-blocking loopback/any-address TCP listener. port 0 = ephemeral.
class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:`port`. Returns nullopt on failure
  /// (port in use, ...).
  static std::optional<TcpListener> open(std::uint16_t port);

  int fd() const { return fd_.get(); }
  std::uint16_t port() const { return port_; }

  /// Accepts one pending connection as a non-blocking fd, or an invalid
  /// Fd when the backlog is empty (EAGAIN).
  Fd accept_one();

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

/// One accepted TCP connection with owned buffers.
///
/// Reading: read_some() drains the socket into an internal buffer the
/// caller consumes via readable()/consume(). Writing: send() appends to a
/// bounded write queue and flushes opportunistically; the caller rearms
/// kWrite interest while wants_write() and calls flush() on writability.
/// A write queue above `max_backlog` bytes marks the connection broken —
/// a peer that stops reading cannot pin unbounded daemon memory.
class TcpConn {
 public:
  explicit TcpConn(Fd fd, std::size_t max_backlog = 4u << 20);

  int fd() const { return fd_.get(); }
  bool broken() const { return broken_; }

  /// Drains the socket. Returns false when the peer closed (EOF) or the
  /// connection errored; readable() may still hold a final chunk.
  bool read_some();

  std::span<const std::uint8_t> readable() const {
    return {read_buf_.data() + read_pos_, read_buf_.size() - read_pos_};
  }
  void consume(std::size_t n);

  /// Queues and opportunistically flushes. False once broken (backlog
  /// overflow or socket error).
  bool send(std::span<const std::uint8_t> data);
  bool flush();
  bool wants_write() const { return !write_buf_.empty(); }
  std::size_t write_backlog() const { return write_buf_.size(); }

 private:
  Fd fd_;
  std::vector<std::uint8_t> read_buf_;
  std::size_t read_pos_ = 0;
  std::vector<std::uint8_t> write_buf_;
  std::size_t write_pos_ = 0;
  std::size_t max_backlog_;
  bool broken_ = false;
};

/// Non-blocking UDP socket bound to 127.0.0.1:`port` (0 = ephemeral).
class UdpSocket {
 public:
  static std::optional<UdpSocket> bind(std::uint16_t port);

  int fd() const { return fd_.get(); }
  std::uint16_t port() const { return port_; }

  /// Drains every queued datagram into `sink`. Returns datagrams seen.
  std::size_t drain(
      const std::function<void(std::span<const std::uint8_t>)>& sink);

  /// One datagram to 127.0.0.1:`port` (client direction; also usable on
  /// an unbound socket).
  static bool send_to(int fd, std::uint16_t port,
                      std::span<const std::uint8_t> data);

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

/// Blocking client connect to 127.0.0.1:`port` (feed tools).
Fd connect_tcp(std::uint16_t port);

/// Blocking full write. False on error/EPIPE.
bool send_all(int fd, std::span<const std::uint8_t> data);

/// Blocking read of at most `max` bytes; empty vector on EOF/error.
std::vector<std::uint8_t> recv_some(int fd, std::size_t max = 65536);

/// Opens a blocking UDP fd "connected" to 127.0.0.1:`port`.
Fd connect_udp(std::uint16_t port);

}  // namespace ef::io
