#include "io/frame.h"

#include <sstream>

namespace ef::io {

std::size_t FrameReassembler::feed(std::span<const std::uint8_t> chunk,
                                   const FrameSink& sink) {
  stats_.bytes_in += chunk.size();
  if (poisoned_) return 0;
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());

  std::size_t emitted = 0;
  for (;;) {
    const std::span<const std::uint8_t> view(buf_.data() + pos_,
                                             buf_.size() - pos_);
    const Peek peek = peek_(view);
    if (peek.status == PeekStatus::kError) {
      poisoned_ = true;
      poison_reason_ = peek.reason;
      break;
    }
    if (peek.status == PeekStatus::kNeedMore) break;
    if (peek.len > max_frame_) {
      poisoned_ = true;
      std::ostringstream os;
      os << "frame of " << peek.len << " bytes exceeds max " << max_frame_;
      poison_reason_ = os.str();
      break;
    }
    if (view.size() < peek.len) break;  // length known, body still partial
    sink(view.subspan(0, peek.len));
    pos_ += peek.len;
    ++emitted;
    ++stats_.frames_out;
  }

  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 65536 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return emitted;
}

void FrameReassembler::reset() {
  buf_.clear();
  pos_ = 0;
  poisoned_ = false;
  poison_reason_.clear();
}

}  // namespace ef::io
