#include "sim/live_feed.h"

#include "net/log.h"

namespace ef::sim {

namespace wire = telemetry::wire;

LiveFeed::LiveFeed(Simulation& sim, Config config, Sync sync)
    : sim_(&sim), config_(config), sync_(std::move(sync)) {
  sampled_mode_ = sim.config().use_sflow_estimate;
  topology::Pop& pop = sim.pop();
  for (int r = 0; r < pop.router_count(); ++r) {
    key_to_router_[pop.router_key(r)] = r;
  }
  bmp_conns_.resize(static_cast<std::size_t>(pop.router_count()));

  pop.set_bmp_tap([this](std::uint32_t key,
                         const std::vector<std::uint8_t>& bytes) {
    on_bmp_bytes(key, bytes);
  });
  if (sampled_mode_) {
    sim.set_sample_tap([this](const telemetry::FlowSample& sample) {
      queue_record(wire::SflowRecord(sample));
    });
  } else {
    sim.set_estimate_tap([this](const telemetry::DemandMatrix& estimate,
                                net::SimTime) {
      // Collect deterministically: DemandMatrix iteration order is
      // unordered, but the daemon rebuilds a keyed matrix, so the wire
      // order is immaterial to decisions. Ship as-is.
      estimate.for_each(
          [this](const net::Prefix& prefix, net::Bandwidth rate) {
            queue_record(wire::SflowRecord(wire::DemandRate{prefix, rate}));
          });
    });
  }
}

LiveFeed::~LiveFeed() {
  sim_->pop().set_bmp_tap(nullptr);
  sim_->set_sample_tap(nullptr);
  sim_->set_estimate_tap(nullptr);
}

void LiveFeed::connect() {
  sflow_fd_ = io::connect_udp(config_.sflow_port);
  EF_CHECK(sflow_fd_.valid(), "live feed: cannot open sFlow UDP socket");
  topology::Pop& pop = sim_->pop();
  for (int r = 0; r < pop.router_count(); ++r) {
    bmp_conns_[static_cast<std::size_t>(r)] =
        io::connect_tcp(config_.bmp_port);
    EF_CHECK(bmp_conns_[static_cast<std::size_t>(r)].valid(),
             "live feed: cannot connect BMP for router " << r);
    pop.replay_router_to_bmp(r);
  }
  EF_CHECK(sync_.bmp_bytes(bmp_bytes_sent_),
           "live feed: daemon did not consume the initial BMP replay");
}

void LiveFeed::on_bmp_bytes(std::uint32_t router_key,
                            const std::vector<std::uint8_t>& bytes) {
  const auto it = key_to_router_.find(router_key);
  EF_CHECK(it != key_to_router_.end(),
           "live feed: BMP bytes from unknown router key " << router_key);
  io::Fd& conn = bmp_conns_[static_cast<std::size_t>(it->second)];
  if (!conn.valid()) {
    bmp_bytes_dropped_ += bytes.size();  // session down: feed loses these
    return;
  }
  EF_CHECK(io::send_all(conn.get(), bytes),
           "live feed: BMP send failed for router " << it->second);
  bmp_bytes_sent_ += bytes.size();
}

void LiveFeed::queue_record(wire::SflowRecord record) {
  pending_records_.push_back(std::move(record));
  if (pending_records_.size() >= config_.records_per_datagram) {
    flush_records(false);
  }
}

void LiveFeed::flush_records(bool force) {
  if (pending_records_.empty()) return;
  if (!force && pending_records_.size() < config_.records_per_datagram) {
    return;
  }
  const std::vector<std::uint8_t> datagram =
      wire::encode_datagram(pending_records_);
  pending_records_.clear();
  EF_CHECK(io::UdpSocket::send_to(sflow_fd_.get(), config_.sflow_port,
                                  datagram),
           "live feed: sFlow datagram send failed");
  ++datagrams_sent_;
  pace();
}

void LiveFeed::pace() {
  if (datagrams_sent_ - last_paced_ < config_.pace_window) return;
  EF_CHECK(sync_.datagrams(datagrams_sent_),
           "live feed: daemon fell behind on sFlow datagrams");
  last_paced_ = datagrams_sent_;
}

void LiveFeed::send_marker(net::SimTime window_end, net::SimTime cycle_now) {
  // Everything belonging to this window must be inside the daemon before
  // the marker closes it.
  flush_records(true);
  EF_CHECK(sync_.datagrams(datagrams_sent_),
           "live feed: daemon fell behind before window close");
  last_paced_ = datagrams_sent_;

  const wire::SflowRecord marker(wire::WindowClose{window_end, cycle_now});
  const std::vector<std::uint8_t> datagram =
      wire::encode_datagram(std::span<const wire::SflowRecord>(&marker, 1));
  EF_CHECK(io::UdpSocket::send_to(sflow_fd_.get(), config_.sflow_port,
                                  datagram),
           "live feed: window-close marker send failed");
  ++datagrams_sent_;
  ++windows_sent_;
}

bool LiveFeed::step() {
  if (!sim_->advance()) return false;
  const net::SimTime now = sim_->now();
  const net::SimTime window_end = now + sim_->config().step;

  // The daemon must hold this step's full route view before its cycle.
  EF_CHECK(sync_.bmp_bytes(bmp_bytes_sent_),
           "live feed: daemon fell behind on BMP bytes");

  send_marker(window_end, now);
  EF_CHECK(sync_.windows(windows_sent_),
           "live feed: daemon did not close window " << windows_sent_);
  return true;
}

bool LiveFeed::router_connected(int r) const {
  return bmp_conns_[static_cast<std::size_t>(r)].valid();
}

void LiveFeed::disconnect_router(int r) {
  io::Fd& conn = bmp_conns_[static_cast<std::size_t>(r)];
  EF_CHECK(conn.valid(), "live feed: router " << r << " already down");
  conn.reset();  // close; daemon sees EOF and purges the router
  ++disconnects_;
  EF_CHECK(sync_.disconnects(disconnects_),
           "live feed: daemon did not register disconnect of router " << r);
}

void LiveFeed::reconnect_router(int r) {
  io::Fd& conn = bmp_conns_[static_cast<std::size_t>(r)];
  EF_CHECK(!conn.valid(), "live feed: router " << r << " still connected");
  conn = io::connect_tcp(config_.bmp_port);
  EF_CHECK(conn.valid(), "live feed: reconnect failed for router " << r);
  sim_->pop().replay_router_to_bmp(r);
  EF_CHECK(sync_.bmp_bytes(bmp_bytes_sent_),
           "live feed: daemon did not consume the reconnect replay");
}

}  // namespace ef::sim
