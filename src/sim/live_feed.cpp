#include "sim/live_feed.h"

#include <algorithm>

#include "net/log.h"

namespace ef::sim {

namespace wire = telemetry::wire;

LiveFeed::LiveFeed(Simulation& sim, Config config, Sync sync)
    : sim_(&sim), config_(std::move(config)), sync_(std::move(sync)) {
  sampled_mode_ = sim.config().use_sflow_estimate;
  topology::Pop& pop = sim.pop();
  for (int r = 0; r < pop.router_count(); ++r) {
    key_to_router_[pop.router_key(r)] = r;
  }
  bmp_conns_.resize(static_cast<std::size_t>(pop.router_count()));
  if (config_.faults || !config_.fault_script.empty()) {
    injector_.emplace(config_.faults.value_or(io::FaultConfig{}),
                      config_.fault_script);
  }
  if (config_.reconnect) {
    reconnect_backoff_.reserve(static_cast<std::size_t>(pop.router_count()));
    for (int r = 0; r < pop.router_count(); ++r) {
      io::Backoff::Config per_router = *config_.reconnect;
      // Decorrelate jitter across routers while keeping each router's
      // schedule a pure function of (seed, router index).
      per_router.seed += static_cast<std::uint64_t>(r);
      reconnect_backoff_.emplace_back(per_router);
    }
  }

  pop.set_bmp_tap([this](std::uint32_t key,
                         const std::vector<std::uint8_t>& bytes) {
    on_bmp_bytes(key, bytes);
  });
  if (sampled_mode_) {
    sim.set_sample_tap([this](const telemetry::FlowSample& sample) {
      queue_record(wire::SflowRecord(sample));
    });
  } else {
    sim.set_estimate_tap([this](const telemetry::DemandMatrix& estimate,
                                net::SimTime) {
      // Collect deterministically: DemandMatrix iteration order is
      // unordered, but the daemon rebuilds a keyed matrix, so the wire
      // order is immaterial to decisions. Ship as-is.
      estimate.for_each(
          [this](const net::Prefix& prefix, net::Bandwidth rate) {
            queue_record(wire::SflowRecord(wire::DemandRate{prefix, rate}));
          });
    });
  }
}

LiveFeed::~LiveFeed() {
  sim_->pop().set_bmp_tap(nullptr);
  sim_->set_sample_tap(nullptr);
  sim_->set_estimate_tap(nullptr);
}

void LiveFeed::connect() {
  sflow_fd_ = io::connect_udp(config_.sflow_port);
  EF_CHECK(sflow_fd_.valid(), "live feed: cannot open sFlow UDP socket");
  topology::Pop& pop = sim_->pop();
  for (int r = 0; r < pop.router_count(); ++r) {
    bmp_conns_[static_cast<std::size_t>(r)] =
        io::connect_tcp(config_.bmp_port);
    EF_CHECK(bmp_conns_[static_cast<std::size_t>(r)].valid(),
             "live feed: cannot connect BMP for router " << r);
    pop.replay_router_to_bmp(r);
  }
  EF_CHECK(sync_.bmp_bytes(bmp_bytes_sent_),
           "live feed: daemon did not consume the initial BMP replay");
}

void LiveFeed::on_bmp_bytes(std::uint32_t router_key,
                            const std::vector<std::uint8_t>& bytes) {
  const auto it = key_to_router_.find(router_key);
  EF_CHECK(it != key_to_router_.end(),
           "live feed: BMP bytes from unknown router key " << router_key);
  const int router = it->second;
  io::Fd& conn = bmp_conns_[static_cast<std::size_t>(router)];
  if (!conn.valid()) {
    bmp_bytes_dropped_ += bytes.size();  // session down: feed loses these
    return;
  }
  if (!injector_) {
    EF_CHECK(io::send_all(conn.get(), bytes),
             "live feed: BMP send failed for router " << router);
    bmp_bytes_sent_ += bytes.size();
    return;
  }

  // Chaos: the tap delivers exactly one BMP message per call, so the
  // injector's frame-aligned faults stay deterministic on the stream.
  // The BMP common header is 6 bytes (version u8, length u32, type u8).
  const io::FaultDecision decision = injector_->apply(bytes, 6);
  if (!decision.bytes.empty()) {
    EF_CHECK(io::send_all(conn.get(), decision.bytes),
             "live feed: BMP send failed for router " << router);
    // Delivered bytes count on both sides — the daemon's byte counter
    // includes poisoned and truncated input, so the barrier stays exact.
    bmp_bytes_sent_ += decision.bytes.size();
  }
  if (decision.kind == io::FaultKind::kDrop) {
    bmp_bytes_dropped_ += bytes.size();
  }
  if (decision.expect_poison || decision.close_after) {
    // Poison: the daemon will sever once it reads the mangled header.
    // Truncate/disconnect: we sever. Either way the router is down and
    // the daemon registers one disconnect.
    mark_router_down(router);
  }
}

void LiveFeed::mark_router_down(int r) {
  io::Fd& conn = bmp_conns_[static_cast<std::size_t>(r)];
  if (conn.valid()) conn.reset();
  ++disconnects_;
  ++router_downs_;
  EF_CHECK(sync_.disconnects(disconnects_),
           "live feed: daemon did not register loss of router " << r);
  if (config_.reconnect) {
    if (const auto delay =
            reconnect_backoff_[static_cast<std::size_t>(r)].next()) {
      reconnect_at_[r] =
          step_index_ + std::max<std::uint64_t>(1, *delay);
    }
    // Budget exhausted: the router stays down (capped retry budget).
  }
}

void LiveFeed::attempt_reconnects(std::uint64_t step) {
  std::vector<int> due;
  for (const auto& [router, at] : reconnect_at_) {
    if (at <= step) due.push_back(router);
  }
  for (int r : due) {
    reconnect_at_.erase(r);
    ++reconnect_attempts_;
    io::Fd conn = io::connect_tcp(config_.bmp_port);
    if (!conn.valid()) {
      if (const auto delay =
              reconnect_backoff_[static_cast<std::size_t>(r)].next()) {
        reconnect_at_[r] = step + std::max<std::uint64_t>(1, *delay);
      }
      continue;
    }
    bmp_conns_[static_cast<std::size_t>(r)] = std::move(conn);
    reconnect_backoff_[static_cast<std::size_t>(r)].reset();
    ++reconnects_ok_;
    // Replay flows back through on_bmp_bytes, so the injector can fault
    // the replay itself — and a re-poisoned session goes down again.
    sim_->pop().replay_router_to_bmp(r);
    if (router_connected(r)) {
      EF_CHECK(sync_.bmp_bytes(bmp_bytes_sent_),
               "live feed: daemon did not consume reconnect replay of "
                   << r);
    }
  }
}

void LiveFeed::queue_record(wire::SflowRecord record) {
  if (dropping_demand_) {
    ++demand_records_dropped_;
    return;
  }
  pending_records_.push_back(std::move(record));
  if (pending_records_.size() >= config_.records_per_datagram) {
    flush_records(false);
  }
}

void LiveFeed::flush_records(bool force) {
  if (pending_records_.empty()) return;
  if (!force && pending_records_.size() < config_.records_per_datagram) {
    return;
  }
  const std::vector<std::uint8_t> datagram =
      wire::encode_datagram(pending_records_);
  pending_records_.clear();
  EF_CHECK(io::UdpSocket::send_to(sflow_fd_.get(), config_.sflow_port,
                                  datagram),
           "live feed: sFlow datagram send failed");
  ++datagrams_sent_;
  pace();
}

void LiveFeed::pace() {
  if (datagrams_sent_ - last_paced_ < config_.pace_window) return;
  EF_CHECK(sync_.datagrams(datagrams_sent_),
           "live feed: daemon fell behind on sFlow datagrams");
  last_paced_ = datagrams_sent_;
}

void LiveFeed::send_marker(net::SimTime window_end, net::SimTime cycle_now) {
  // Everything belonging to this window must be inside the daemon before
  // the marker closes it.
  flush_records(true);
  EF_CHECK(sync_.datagrams(datagrams_sent_),
           "live feed: daemon fell behind before window close");
  last_paced_ = datagrams_sent_;

  const wire::SflowRecord marker(wire::WindowClose{window_end, cycle_now});
  const std::vector<std::uint8_t> datagram =
      wire::encode_datagram(std::span<const wire::SflowRecord>(&marker, 1));
  EF_CHECK(io::UdpSocket::send_to(sflow_fd_.get(), config_.sflow_port,
                                  datagram),
           "live feed: window-close marker send failed");
  ++datagrams_sent_;
  ++windows_sent_;
}

bool LiveFeed::step() {
  const std::uint64_t step = step_index_++;
  if (!reconnect_at_.empty()) attempt_reconnects(step);
  dropping_demand_ = config_.drop_demand && config_.drop_demand(step);
  if (!sim_->advance()) return false;
  const net::SimTime now = sim_->now();
  const net::SimTime window_end = now + sim_->config().step;

  // The daemon must hold this step's full route view before its cycle.
  EF_CHECK(sync_.bmp_bytes(bmp_bytes_sent_),
           "live feed: daemon fell behind on BMP bytes");

  send_marker(window_end, now);
  EF_CHECK(sync_.windows(windows_sent_),
           "live feed: daemon did not close window " << windows_sent_);
  return true;
}

bool LiveFeed::router_connected(int r) const {
  return bmp_conns_[static_cast<std::size_t>(r)].valid();
}

void LiveFeed::disconnect_router(int r) {
  io::Fd& conn = bmp_conns_[static_cast<std::size_t>(r)];
  EF_CHECK(conn.valid(), "live feed: router " << r << " already down");
  // Close; daemon sees EOF and purges the router. With a reconnect
  // schedule configured this also books the backoff'd redial.
  mark_router_down(r);
}

void LiveFeed::reconnect_router(int r) {
  io::Fd& conn = bmp_conns_[static_cast<std::size_t>(r)];
  EF_CHECK(!conn.valid(), "live feed: router " << r << " still connected");
  reconnect_at_.erase(r);  // manual reconnect supersedes the schedule
  conn = io::connect_tcp(config_.bmp_port);
  EF_CHECK(conn.valid(), "live feed: reconnect failed for router " << r);
  sim_->pop().replay_router_to_bmp(r);
  EF_CHECK(sync_.bmp_bytes(bmp_bytes_sent_),
           "live feed: daemon did not consume the reconnect replay");
}

}  // namespace ef::sim
