// LiveFeed: publishes a running Simulation's telemetry over real
// loopback sockets, in the exact shape the efd daemon ingests.
//
// The simulation stays the single source of truth — its own in-process
// controller keeps making decisions — while every BMP byte its routers
// export and every sFlow sample (or, in direct mode, every demand
// estimate) is mirrored onto sockets. A daemon fed this stream must
// reach bitwise-identical override decisions; the loopback integration
// test asserts exactly that.
//
// Pacing: each step runs in lockstep. BMP bytes go out during
// advance(); then the feed waits until the daemon consumed them, ships
// the step's sFlow datagrams (with a pacing barrier so loopback UDP
// receive buffers never overflow), and finally sends the window-close
// marker and waits for the daemon's cycle logic to finish. The Sync
// hooks supply the daemon-side counters — std::functions so this layer
// does not depend on the service library (an out-of-process feeder can
// poll GET /status instead).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "io/backoff.h"
#include "io/fault.h"
#include "io/socket.h"
#include "sim/simulation.h"
#include "telemetry/sflow_wire.h"

namespace ef::sim {

class LiveFeed {
 public:
  struct Config {
    std::uint16_t bmp_port = 0;    // daemon's BMP listener
    std::uint16_t sflow_port = 0;  // daemon's EFS1 UDP port
    std::chrono::milliseconds barrier_timeout{15000};
    /// Records per EFS1 datagram.
    std::size_t records_per_datagram = 64;
    /// Datagrams in flight between pacing barriers; bounded so loopback
    /// UDP receive buffers cannot overflow (dropped datagrams would
    /// silently skew the daemon's estimate).
    std::size_t pace_window = 32;

    // --- chaos mode (all off by default) -------------------------------
    /// Seeded per-message fault injection on the BMP streams. Faults are
    /// frame-aligned (see io/fault.h); a fault that kills a connection
    /// marks the router down exactly as a real session loss would.
    std::optional<io::FaultConfig> faults;
    /// Scripted faults layered over the seeded draw (`at` indexes BMP
    /// messages across all routers, in tap order).
    std::vector<io::ScriptedFault> fault_script;
    /// Auto-reconnect schedule for downed routers, in *simulation steps*
    /// (tick = one step()), so chaos replays reconnect at identical feed
    /// times. Unset: downed routers stay down until reconnect_router().
    std::optional<io::Backoff::Config> reconnect;
    /// Demand blackout: when set and true for a step index (0-based),
    /// that step's demand records are dropped — window-close markers
    /// still go out, which is precisely the "feed alive, data stale"
    /// input the daemon's ladder must catch.
    std::function<bool(std::uint64_t)> drop_demand;
  };

  /// Daemon-progress probes. Each blocks (up to the barrier timeout)
  /// until the daemon's counter reaches the given total and returns
  /// whether it did.
  struct Sync {
    std::function<bool(std::uint64_t)> bmp_bytes;
    std::function<bool(std::uint64_t)> datagrams;
    std::function<bool(std::uint64_t)> windows;
    std::function<bool(std::uint64_t)> disconnects;
  };

  /// `sim` must outlive the feed. Installs the simulation's BMP, sample,
  /// and estimate taps (whichever apply); don't install competing taps.
  LiveFeed(Simulation& sim, Config config, Sync sync);
  ~LiveFeed();

  LiveFeed(const LiveFeed&) = delete;
  LiveFeed& operator=(const LiveFeed&) = delete;

  /// Opens one BMP connection per router and replays current state into
  /// the daemon (both views re-stamp route ages identically).
  void connect();

  /// One lockstep step: sim.advance() + publish + barriers. Returns
  /// false when the simulation finished. EF_CHECKs on barrier timeout —
  /// a stuck daemon is a test failure, not something to limp past.
  bool step();

  /// Failure injection: severs router `r`'s BMP connection and waits
  /// until the daemon registered the disconnect (and purged the routes).
  void disconnect_router(int r);
  /// Reopens router `r`'s connection and replays its state.
  void reconnect_router(int r);
  bool router_connected(int r) const;

  std::uint64_t bmp_bytes_sent() const { return bmp_bytes_sent_; }
  std::uint64_t bmp_bytes_dropped() const { return bmp_bytes_dropped_; }
  std::uint64_t datagrams_sent() const { return datagrams_sent_; }
  std::uint64_t windows_sent() const { return windows_sent_; }
  std::uint64_t steps_run() const { return step_index_; }
  // Chaos-mode accounting.
  std::uint64_t router_downs() const { return router_downs_; }
  std::uint64_t reconnect_attempts() const { return reconnect_attempts_; }
  std::uint64_t reconnects_ok() const { return reconnects_ok_; }
  std::uint64_t demand_records_dropped() const {
    return demand_records_dropped_;
  }
  const io::FaultInjector* injector() const {
    return injector_ ? &*injector_ : nullptr;
  }

 private:
  void on_bmp_bytes(std::uint32_t router_key,
                    const std::vector<std::uint8_t>& bytes);
  /// Severs router `r` (feed side), waits for the daemon to register it,
  /// and schedules an auto-reconnect when configured.
  void mark_router_down(int r);
  void attempt_reconnects(std::uint64_t step);
  void queue_record(telemetry::wire::SflowRecord record);
  void flush_records(bool force);
  void send_marker(net::SimTime window_end, net::SimTime cycle_now);
  void pace();

  Simulation* sim_;
  Config config_;
  Sync sync_;
  bool sampled_mode_ = false;  // sim uses the sFlow estimate pipeline

  std::map<std::uint32_t, int> key_to_router_;
  std::vector<io::Fd> bmp_conns_;  // by router index; invalid = down
  io::Fd sflow_fd_;

  std::vector<telemetry::wire::SflowRecord> pending_records_;
  std::uint64_t bmp_bytes_sent_ = 0;
  std::uint64_t bmp_bytes_dropped_ = 0;
  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t windows_sent_ = 0;
  std::uint64_t disconnects_ = 0;
  std::uint64_t last_paced_ = 0;

  // Chaos state.
  std::optional<io::FaultInjector> injector_;
  std::vector<io::Backoff> reconnect_backoff_;  // per router
  std::map<int, std::uint64_t> reconnect_at_;   // router -> due step
  std::uint64_t step_index_ = 0;
  bool dropping_demand_ = false;
  std::uint64_t router_downs_ = 0;
  std::uint64_t reconnect_attempts_ = 0;
  std::uint64_t reconnects_ok_ = 0;
  std::uint64_t demand_records_dropped_ = 0;
};

}  // namespace ef::sim
