#include "sim/fleet.h"

namespace ef::sim {

Fleet::Fleet(const topology::World& world, SimulationConfig config) {
  members_.reserve(world.pops().size());
  for (std::size_t p = 0; p < world.pops().size(); ++p) {
    Member member;
    member.pop = std::make_unique<topology::Pop>(world, p);
    member.simulation = std::make_unique<Simulation>(*member.pop, config);
    members_.push_back(std::move(member));
  }
  advanced_.assign(members_.size(), 0);
}

bool Fleet::advance() {
  bool any = false;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    advanced_[i] = members_[i].simulation->advance() ? 1 : 0;
    any = any || advanced_[i] != 0;
  }
  return any;
}

bool Fleet::advance(runtime::ThreadPool& pool) {
  // Each worker writes only its own member's simulation state and its own
  // advanced_ slot; the World is immutable; parallel_for's join barrier
  // publishes every write before we read the slots below.
  pool.parallel_for(members_.size(), [this](std::size_t i) {
    advanced_[i] = members_[i].simulation->advance() ? 1 : 0;
  });
  for (std::uint8_t flag : advanced_) {
    if (flag) return true;
  }
  return false;
}

void Fleet::run(
    const std::function<void(std::size_t, const StepRecord&)>& observer,
    RunOptions options) {
  const unsigned threads = runtime::ThreadPool::resolve_threads(
      options.threads == 0 ? 0 : options.threads);

  if (options.threads == 1 || threads == 1) {
    // Serial path: no pool. Advancing member i and observing it before
    // member i+1 advances is indistinguishable from barrier order because
    // members share nothing mutable and observers run between steps.
    while (true) {
      bool any = false;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        advanced_[i] = members_[i].simulation->advance() ? 1 : 0;
        if (advanced_[i]) {
          observer(i, members_[i].simulation->last());
          any = true;
        }
      }
      if (!any) return;
    }
  }

  runtime::ThreadPool pool(threads);
  while (advance(pool)) {
    // Post-barrier: deterministic PoP-index order, calling thread only.
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (advanced_[i]) observer(i, members_[i].simulation->last());
    }
  }
}

}  // namespace ef::sim
