#include "sim/fleet.h"

namespace ef::sim {

Fleet::Fleet(const topology::World& world, SimulationConfig config) {
  members_.reserve(world.pops().size());
  for (std::size_t p = 0; p < world.pops().size(); ++p) {
    Member member;
    member.pop = std::make_unique<topology::Pop>(world, p);
    member.simulation = std::make_unique<Simulation>(*member.pop, config);
    members_.push_back(std::move(member));
  }
}

bool Fleet::advance() {
  bool any = false;
  for (Member& member : members_) {
    any = member.simulation->advance() || any;
  }
  return any;
}

void Fleet::run(
    const std::function<void(std::size_t, const StepRecord&)>& observer) {
  while (true) {
    bool any = false;
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (members_[i].simulation->advance()) {
        observer(i, members_[i].simulation->last());
        any = true;
      }
    }
    if (!any) return;
  }
}

}  // namespace ef::sim
