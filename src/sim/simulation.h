// Simulation harness: steps simulated time, drives the demand generator,
// telemetry, and (optionally) the Edge Fabric controller against one PoP.
//
// Use run() for a whole experiment, or advance() to interleave several
// simulations (see Fleet).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "core/controller.h"
#include "dataplane/dataplane.h"
#include "telemetry/interface.h"
#include "telemetry/sflow.h"
#include "topology/pop.h"
#include "workload/demand.h"
#include "workload/flowgen.h"

namespace ef::sim {

struct SimulationConfig {
  net::SimTime duration = net::SimTime::hours(48);
  net::SimTime step = net::SimTime::seconds(60);
  workload::DemandConfig demand;

  /// When false, the PoP runs vanilla BGP (the paper's "without Edge
  /// Fabric" counterfactual).
  bool controller_enabled = true;
  core::ControllerConfig controller;

  /// When set, demand fed to the controller goes through the sFlow
  /// sampling pipeline (sample → aggregate → scale → smooth) instead of
  /// being the exact matrix, reproducing the estimation error the real
  /// controller sees. Costs simulation time; the long benches leave it
  /// off.
  bool use_sflow_estimate = false;
  /// Sampling rate applied to the generator's macro packets. The flow
  /// generator emits at most ~200k aggregated packets per step, so a
  /// 1-in-N here corresponds to a much higher real-world sFlow rate
  /// (each macro packet stands for many wire packets).
  std::uint32_t sflow_sample_rate = 10;
  /// EWMA weight for smoothing successive sFlow windows before the
  /// controller sees them.
  double sflow_smoothing_alpha = 0.4;
  /// Macro-packet synthesis knobs for the sFlow path (heavy-tailed
  /// packet sizes stress the estimator; see telemetry tests).
  workload::FlowGenConfig flowgen;
  /// Size-dependent ("smart") sampling threshold in bytes; 0 keeps the
  /// uniform 1-in-N sampler. Applied to both the sampler and the
  /// aggregator, preserving the matched-parameters invariant.
  double sflow_size_threshold = 0.0;

  /// Telemetry staleness: the controller sees demand from this many steps
  /// ago (production collection pipelines lag by a collection window).
  /// 0 = perfect, instantaneous telemetry.
  int telemetry_lag_steps = 0;

  /// Peering-session flaps: expected flaps per hour across the PoP
  /// (0 = stable sessions). Each flap takes one random peering down for
  /// `peer_flap_duration`, exercising withdrawal/reconvergence and the
  /// controller's reaction to a changed route set mid-run.
  double peer_flap_rate_per_hour = 0.0;
  net::SimTime peer_flap_duration = net::SimTime::minutes(5);

  /// Flow-level dataplane emulation (off by default). When enabled,
  /// each step additionally hashes a heavy-tailed flow population onto
  /// egress interfaces and services bounded queues, filling
  /// StepRecord::dataplane with *measured* drops, queue delay, and
  /// reorder events alongside the projected load.
  dataplane::DataplaneConfig dataplane;
};

struct StepRecord {
  net::SimTime when;
  /// True offered demand per interface along current forwarding.
  std::map<telemetry::InterfaceId, net::Bandwidth> load;
  /// Total demand this step.
  net::Bandwidth total_demand;
  /// Demand above interface capacity (would be dropped/congested).
  net::Bandwidth overload;
  /// Controller cycle stats, when a cycle ran this step.
  std::optional<core::CycleStats> controller;
  /// Peering sessions currently down (flap injection).
  std::size_t peerings_down = 0;
  /// Measured dataplane stats, when dataplane emulation is enabled.
  std::optional<dataplane::DataplaneStepStats> dataplane;
};

class Simulation {
 public:
  Simulation(topology::Pop& pop, SimulationConfig config);

  /// Executes one step. Returns false when the configured duration has
  /// been exhausted (in which case no step was executed).
  bool advance();

  /// The record of the most recent step.
  const StepRecord& last() const { return last_; }

  /// Runs to completion, invoking `observer` once per step.
  void run(const std::function<void(const StepRecord&)>& observer);

  core::Controller* controller() { return controller_.get(); }
  /// Non-null iff config().dataplane.enabled.
  const dataplane::Dataplane* dataplane() const { return dataplane_.get(); }
  topology::Pop& pop() { return *pop_; }
  net::SimTime now() const { return now_; }
  const SimulationConfig& config() const { return config_; }

  /// Installs a per-cycle observer (snapshot sink) on the embedded
  /// controller; see core::Controller::set_cycle_observer. No-op when the
  /// controller is disabled.
  void set_cycle_observer(core::Controller::CycleObserver observer);

  /// Tees every emitted sFlow sample (post-sampling, pre-aggregation) to
  /// `tap` — what a live-feed adapter publishes over UDP. Only fires when
  /// `use_sflow_estimate` is on.
  using SampleTap = std::function<void(const telemetry::FlowSample&)>;
  void set_sample_tap(SampleTap tap) { sample_tap_ = std::move(tap); }

  /// Tees the demand estimate handed to the controller each step (after
  /// lag/sampling/smoothing, whichever are configured). A live-feed
  /// adapter in direct mode ships this as precomputed demand records.
  using EstimateTap =
      std::function<void(const telemetry::DemandMatrix&, net::SimTime now)>;
  void set_estimate_tap(EstimateTap tap) { estimate_tap_ = std::move(tap); }

 private:
  topology::Pop* pop_;
  SimulationConfig config_;
  workload::DemandGenerator demand_gen_;
  std::unique_ptr<core::Controller> controller_;
  net::SimTime next_cycle_;
  net::SimTime now_;
  bool first_step_ = true;

  // sFlow estimation path (optional).
  std::unique_ptr<workload::FlowGenerator> flowgen_;
  std::unique_ptr<telemetry::TrafficAggregator> aggregator_;
  std::unique_ptr<telemetry::SflowSampler> sampler_;
  telemetry::DemandSmoother smoother_;
  SampleTap sample_tap_;
  EstimateTap estimate_tap_;

  std::deque<telemetry::DemandMatrix> history_;  // staleness model

  // Flow-level dataplane emulation (optional).
  std::unique_ptr<dataplane::Dataplane> dataplane_;

  // Flap injection state.
  net::Rng flap_rng_;
  std::map<std::size_t, net::SimTime> down_until_;  // peering -> restore time

  StepRecord last_;
};

}  // namespace ef::sim
