// Fleet: every PoP in the world running its own Edge Fabric controller —
// the deployment shape from the paper (a controller per PoP, dozens of
// PoPs, no cross-PoP coordination needed). Because the PoPs share nothing
// mutable, a step of the whole fleet is embarrassingly parallel: each
// PoP's cycle runs on a runtime::ThreadPool worker, a per-step join
// barrier closes the step, and observers then fire in PoP-index order so
// output stays bitwise-identical to a serial run. The threading model is
// specified in docs/PARALLELISM.md.
//
// Allocation fast path: each member's Controller owns one persistent
// Allocator::Workspace and its Pop's RIB carries the per-prefix ranking
// cache, so every PoP's warm-cycle state is confined to its own worker —
// the fleet stays shared-nothing and the parallel/serial equivalence
// argument is untouched (caches never feed back into decisions; see
// DESIGN.md §10).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/thread_pool.h"
#include "sim/simulation.h"

namespace ef::sim {

/// Options for Fleet::run.
struct RunOptions {
  /// Worker threads for per-PoP advances. 0 = auto (one per hardware
  /// thread, via runtime::ThreadPool::resolve_threads); 1 = the serial
  /// path (no pool, no barrier — exactly the historical behaviour).
  /// Any N produces bitwise-identical observer output and journals.
  unsigned threads = 1;
};

class Fleet {
 public:
  /// One Pop + Simulation per PoP in the world, all sharing the same
  /// per-PoP configuration (each PoP still gets its own demand phase and
  /// noise streams via its index).
  Fleet(const topology::World& world, SimulationConfig config);

  /// Advances every PoP by one step, serially in index order. Returns
  /// false once all simulations have exhausted their duration.
  ///
  /// Unlike the historical strictly-lockstep loop this is the *serial
  /// special case* of the step barrier: the parallel overload runs the
  /// same per-PoP advances on a pool and joins before returning, and the
  /// two are state-for-state interchangeable because members share no
  /// mutable state (see docs/PARALLELISM.md).
  bool advance();

  /// Advances every PoP by one step concurrently on `pool`. Returns after
  /// the join barrier: every member's step is complete and its StepRecord
  /// slot (see last_records via Simulation::last) is readable from the
  /// calling thread. Returns false once all simulations are exhausted.
  bool advance(runtime::ThreadPool& pool);

  /// True if member `index` advanced during the most recent advance()
  /// (members whose duration is exhausted stop advancing first when
  /// durations differ).
  bool advanced(std::size_t index) const { return advanced_[index] != 0; }

  /// Runs to completion; `observer(pop_index, record)` per PoP per step.
  /// With options.threads == 1 (the default) steps run serially; with
  /// threads != 1 each step's per-PoP cycles run concurrently on a
  /// fixed-size pool. In both modes the observer is invoked on the calling
  /// thread only, after the step's join barrier, in ascending PoP-index
  /// order — so journals, tables, and replay output are bitwise-identical
  /// across thread counts. Observers may freely touch the PoP/Simulation
  /// they were invoked for; touching *other* members from the observer is
  /// allowed too (no member is mid-step while observers run).
  void run(const std::function<void(std::size_t, const StepRecord&)>& observer,
           RunOptions options = {});

  std::size_t size() const { return members_.size(); }
  topology::Pop& pop(std::size_t index) { return *members_[index].pop; }
  Simulation& simulation(std::size_t index) {
    return *members_[index].simulation;
  }
  core::Controller* controller(std::size_t index) {
    return members_[index].simulation->controller();
  }

 private:
  struct Member {
    std::unique_ptr<topology::Pop> pop;
    std::unique_ptr<Simulation> simulation;
  };
  std::vector<Member> members_;
  /// Pre-sized slot vector, one flag per member, written by at most one
  /// worker per step and read only after the join barrier.
  std::vector<std::uint8_t> advanced_;
};

}  // namespace ef::sim
