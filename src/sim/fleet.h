// Fleet: every PoP in the world running its own Edge Fabric controller,
// advanced in lockstep — the deployment shape from the paper (a
// controller per PoP, dozens of PoPs, no cross-PoP coordination needed).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/simulation.h"

namespace ef::sim {

class Fleet {
 public:
  /// One Pop + Simulation per PoP in the world, all sharing the same
  /// per-PoP configuration (each PoP still gets its own demand phase and
  /// noise streams via its index).
  Fleet(const topology::World& world, SimulationConfig config);

  /// Advances every PoP by one step. Returns false once all simulations
  /// have exhausted their duration.
  bool advance();

  /// Runs to completion; `observer(pop_index, record)` per PoP per step.
  void run(const std::function<void(std::size_t, const StepRecord&)>&
               observer);

  std::size_t size() const { return members_.size(); }
  topology::Pop& pop(std::size_t index) { return *members_[index].pop; }
  Simulation& simulation(std::size_t index) {
    return *members_[index].simulation;
  }
  core::Controller* controller(std::size_t index) {
    return members_[index].simulation->controller();
  }

 private:
  struct Member {
    std::unique_ptr<topology::Pop> pop;
    std::unique_ptr<Simulation> simulation;
  };
  std::vector<Member> members_;
};

}  // namespace ef::sim
