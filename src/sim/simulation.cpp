#include "sim/simulation.h"

#include "net/log.h"

namespace ef::sim {

Simulation::Simulation(topology::Pop& pop, SimulationConfig config)
    : pop_(&pop),
      config_(config),
      demand_gen_(pop.world(), pop.index(), config.demand),
      smoother_(config.sflow_smoothing_alpha),
      flap_rng_(config.demand.seed ^ 0xf1a9f1a9u ^ (pop.index() << 8)) {
  if (config_.controller_enabled) {
    controller_ = std::make_unique<core::Controller>(pop, config_.controller);
    controller_->connect();
  }
  if (config_.dataplane.enabled) {
    dataplane_ = std::make_unique<dataplane::Dataplane>(
        pop.interfaces(), config_.dataplane, pop.index());
  }
  if (config_.use_sflow_estimate) {
    flowgen_ = std::make_unique<workload::FlowGenerator>(config_.flowgen);
    aggregator_ = std::make_unique<telemetry::TrafficAggregator>(
        pop_->prefix_table(), config_.sflow_sample_rate);
    sampler_ = std::make_unique<telemetry::SflowSampler>(
        config_.sflow_sample_rate, config_.demand.seed ^ 0xabcdef,
        [this](const telemetry::FlowSample& sample) {
          aggregator_->ingest(sample);
          if (sample_tap_) sample_tap_(sample);
        });
    if (config_.sflow_size_threshold > 0.0) {
      sampler_->set_size_threshold(config_.sflow_size_threshold);
      aggregator_->set_size_threshold(config_.sflow_size_threshold);
    }
  }
}

void Simulation::set_cycle_observer(core::Controller::CycleObserver observer) {
  if (controller_) controller_->set_cycle_observer(std::move(observer));
}

bool Simulation::advance() {
  const net::SimTime next = first_step_ ? net::SimTime() : now_ + config_.step;
  if (next > config_.duration) return false;
  first_step_ = false;
  now_ = next;

  // Flap injection: restore sessions whose outage ended, then roll for
  // new flaps (Poisson-ish: at most one arrival per step).
  if (config_.peer_flap_rate_per_hour > 0) {
    for (auto it = down_until_.begin(); it != down_until_.end();) {
      if (it->second <= now_) {
        pop_->set_peering_up(it->first, true, now_);
        it = down_until_.erase(it);
      } else {
        ++it;
      }
    }
    const double step_hours = config_.step.seconds_value() / 3600.0;
    if (flap_rng_.bernoulli(
            std::min(1.0, config_.peer_flap_rate_per_hour * step_hours))) {
      const std::size_t victim = static_cast<std::size_t>(
          flap_rng_.uniform_int(
              0, static_cast<std::int64_t>(pop_->def().peerings.size()) - 1));
      if (!down_until_.contains(victim)) {
        pop_->set_peering_up(victim, false, now_);
        down_until_[victim] = now_ + config_.peer_flap_duration;
      }
    }
  }

  const telemetry::DemandMatrix demand = demand_gen_.step(now_);

  // Telemetry: what the controller believes the demand is.
  const telemetry::DemandMatrix* estimate = &demand;
  if (config_.telemetry_lag_steps > 0) {
    history_.push_back(demand);
    while (history_.size() >
           static_cast<std::size_t>(config_.telemetry_lag_steps) + 1) {
      history_.pop_front();
    }
    estimate = &history_.front();
  }
  if (config_.use_sflow_estimate) {
    flowgen_->generate(
        demand, now_, config_.step,
        [this](const net::Prefix& prefix)
            -> std::optional<telemetry::InterfaceId> {
          const auto egress = pop_->egress_of(prefix);
          if (!egress) return std::nullopt;
          return egress->interface;
        },
        [this](const telemetry::FlowSample& packet) {
          sampler_->offer(packet);
        });
    estimate =
        &smoother_.update(aggregator_->finalize_window(now_ + config_.step));
  }

  if (estimate_tap_) estimate_tap_(*estimate, now_);

  StepRecord record;
  record.when = now_;
  record.total_demand = demand.total();
  record.peerings_down = down_until_.size();

  // Controller cycle when due.
  if (controller_) controller_->tick(now_);
  if (controller_ && now_ >= next_cycle_) {
    record.controller = controller_->run_cycle(*estimate, now_);
    next_cycle_ = now_ + config_.controller.cycle_period;
  }

  // Ground truth: forward the *actual* demand along current routes.
  record.load = pop_->project_load(demand);
  for (const auto& [iface, load] : record.load) {
    const net::Bandwidth capacity = pop_->interfaces().capacity(iface);
    if (load > capacity) record.overload += load - capacity;
  }

  // Measured truth: hash the step's flow population onto the same
  // post-override routes and service the interface queues. Runs after
  // the controller cycle (flows see this step's placements) and does
  // not feed back into the controller — it measures what the existing
  // control loop actually did to packets.
  if (dataplane_) {
    record.dataplane = dataplane_->step(
        demand, now_, config_.step,
        [this](const net::Prefix& prefix,
               std::vector<dataplane::WcmpEgress>& out) {
          const std::uint32_t want = std::max(1u, config_.dataplane.wcmp_paths);
          if (want <= 1) {
            const auto egress = pop_->egress_of(prefix);
            if (egress) out.push_back({egress->interface, 1.0});
            return;
          }
          // WCMP: spread across the prefix's best distinct interfaces
          // with geometrically decaying weights, best path first.
          double weight = 1.0;
          for (const bgp::Route* route : pop_->ranked_routes(prefix)) {
            const auto egress = pop_->egress_of_route(*route);
            if (!egress) continue;
            bool seen = false;
            for (const auto& c : out) {
              if (c.interface == egress->interface) {
                seen = true;
                break;
              }
            }
            if (seen) continue;
            out.push_back({egress->interface, weight});
            weight *= config_.dataplane.wcmp_weight_ratio;
            if (out.size() >= want) break;
          }
        });
  }

  pop_->tick(now_);
  last_ = std::move(record);
  return true;
}

void Simulation::run(const std::function<void(const StepRecord&)>& observer) {
  while (advance()) observer(last_);
}

}  // namespace ef::sim
