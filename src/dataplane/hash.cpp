#include "dataplane/hash.h"

#include <cmath>
#include <cstring>
#include <limits>

namespace ef::dataplane {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

// splitmix64 finalizer: cheap avalanche so correlated inputs (same flow
// hashed against consecutive interface ids) decorrelate fully.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Uniform in (0, 1]: never 0 so ln(u) below is finite and negative.
inline double to_unit(std::uint64_t x) {
  return (static_cast<double>(x >> 11) + 1.0) * 0x1.0p-53;
}

}  // namespace

std::uint64_t flow_hash(const FlowKey& key) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, key.src.bytes().data(), key.src.bytes().size());
  h = fnv1a(h, key.dst.bytes().data(), key.dst.bytes().size());
  std::uint16_t sp = key.src_port;
  std::uint16_t dp = key.dst_port;
  h = fnv1a(h, &sp, sizeof(sp));
  h = fnv1a(h, &dp, sizeof(dp));
  h = fnv1a(h, &key.protocol, sizeof(key.protocol));
  return h;
}

std::uint32_t EcmpHasher::slot_of(std::uint64_t flow_hash_value,
                                  telemetry::InterfaceId iface) const {
  // A distinct stream from pick(): rotating the flow hash first keeps
  // slot spread independent of the rendezvous draw for the same pair.
  std::uint64_t h = mix64((flow_hash_value << 1 | flow_hash_value >> 63) ^
                          (salt_ + 0x5851f42d4c957f2dull) ^
                          (static_cast<std::uint64_t>(iface.value()) << 32));
  return static_cast<std::uint32_t>(h % slots_);
}

telemetry::InterfaceId EcmpHasher::pick(
    std::uint64_t flow_hash_value,
    std::span<const WcmpEgress> candidates) const {
  bool any_positive = false;
  for (const auto& c : candidates) {
    if (c.weight > 0.0) {
      any_positive = true;
      break;
    }
  }

  telemetry::InterfaceId best = candidates.empty()
                                    ? telemetry::InterfaceId{0}
                                    : candidates.front().interface;
  double best_score = -std::numeric_limits<double>::infinity();
  bool found = false;
  for (const auto& c : candidates) {
    double weight = c.weight;
    if (any_positive) {
      if (weight <= 0.0) continue;
    } else {
      weight = 1.0;  // degenerate set: treat as plain ECMP
    }
    std::uint64_t draw =
        mix64(flow_hash_value ^ salt_ ^
              (static_cast<std::uint64_t>(c.interface.value()) *
               0x9e3779b97f4a7c15ull));
    double u = to_unit(draw);
    // Rendezvous score: exponential draw with rate 1/weight. The argmax
    // over candidates realizes an exact weighted split, and each flow's
    // per-candidate draw is independent of the other candidates — the
    // source of the minimal-disruption property.
    double score = -weight / std::log(u);
    if (score > best_score ||
        (score == best_score && found && c.interface < best)) {
      best_score = score;
      best = c.interface;
      found = true;
    }
  }
  return best;
}

}  // namespace ef::dataplane
