// Flow table with consistent-hash stickiness.
//
// Tracks where each live 5-tuple flow was last placed (egress interface
// + member-link slot) and, on every placement, compares the fresh
// rendezvous pick against the remembered one. Because EcmpHasher::pick
// is a pure function of (flow, candidate set), a flow's placement can
// only differ from last step when its prefix's candidate set changed —
// i.e. when the controller re-placed the prefix or a peering flapped.
// Each such move is one `flows_moved` tick and (for flows that carried
// bytes in flight) one `reorder_events` tick: packets already queued on
// the old path race packets on the new one.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "dataplane/hash.h"
#include "net/units.h"

namespace ef::dataplane {

/// Result of placing one flow for the current step.
struct FlowAssignment {
  telemetry::InterfaceId interface{0};
  std::uint32_t slot = 0;
  bool is_new = false;        ///< first time this flow was seen
  bool moved = false;         ///< existing flow landed on a different interface
  bool slot_changed = false;  ///< same interface, different member slot
};

class FlowTable {
 public:
  explicit FlowTable(EcmpHasher hasher) : hasher_(hasher) {}

  const EcmpHasher& hasher() const { return hasher_; }

  /// Places `key` on one of `candidates` and records the assignment.
  /// `now` refreshes the flow's idle clock.
  FlowAssignment assign(const FlowKey& key,
                        std::span<const WcmpEgress> candidates,
                        net::SimTime now);

  /// Drops flows idle since before `now - idle_timeout`. Returns how
  /// many were evicted. Keeps the table bounded across long runs and
  /// models real flow expiry (a returning 5-tuple re-hashes fresh, which
  /// is NOT a reorder — the old flow is gone).
  std::size_t expire_idle(net::SimTime now, net::SimTime idle_timeout);

  std::size_t active_flows() const { return entries_.size(); }

  /// Cumulative counters since construction.
  std::uint64_t flows_seen() const { return flows_seen_; }
  std::uint64_t flows_moved() const { return flows_moved_; }
  std::uint64_t reorder_events() const { return reorder_events_; }
  std::uint64_t slot_moves() const { return slot_moves_; }

  void clear() { entries_.clear(); }

 private:
  struct Entry {
    telemetry::InterfaceId interface{0};
    std::uint32_t slot = 0;
    net::SimTime last_seen{};
  };

  EcmpHasher hasher_;
  std::unordered_map<FlowKey, Entry, FlowKeyHash> entries_;
  std::uint64_t flows_seen_ = 0;
  std::uint64_t flows_moved_ = 0;
  std::uint64_t reorder_events_ = 0;
  std::uint64_t slot_moves_ = 0;
};

}  // namespace ef::dataplane
