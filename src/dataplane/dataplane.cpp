#include "dataplane/dataplane.h"

#include <algorithm>
#include <cmath>

namespace ef::dataplane {
namespace {

workload::FlowMixConfig salted(workload::FlowMixConfig cfg,
                               std::uint64_t base_seed,
                               std::uint64_t salt) {
  cfg.seed = base_seed ^ (salt * 0x2545f4914f6cdd1dull);
  return cfg;
}

}  // namespace

Dataplane::Dataplane(const telemetry::InterfaceRegistry& registry,
                     DataplaneConfig config, std::uint64_t seed_salt)
    : config_(config),
      mix_(salted(config.flows, config.seed, seed_salt)),
      table_(EcmpHasher(config.ecmp_slots, config.seed ^ seed_salt)),
      bank_(registry,
            net::SimTime::millis(static_cast<std::int64_t>(
                std::max(0.0, config.queue_depth_ms)))) {}

DataplaneStepStats Dataplane::step(const telemetry::DemandMatrix& demand,
                                   net::SimTime now, net::SimTime dt,
                                   const ResolvePaths& resolve) {
  DataplaneStepStats stats;
  const double window_secs = dt.seconds_value();

  const std::uint64_t new_before = table_.flows_seen();
  const std::uint64_t moved_before = table_.flows_moved();
  const std::uint64_t reorder_before = table_.reorder_events();

  std::vector<WcmpEgress> candidates;
  mix_.step(demand, [&](const net::Prefix& prefix, net::Bandwidth rate,
                        std::span<const workload::FlowSpec> flows) {
    // Integral byte budget for this prefix this step. Demand rates are
    // integral bps, so this is exact for the common step sizes and at
    // worst truncates sub-byte remainders deterministically.
    const auto prefix_bytes = static_cast<std::uint64_t>(
        rate.bits_per_sec() * window_secs / 8.0);
    if (prefix_bytes == 0 || flows.empty()) return;

    candidates.clear();
    resolve(prefix, candidates);
    if (candidates.empty()) {
      stats.unroutable_bytes += prefix_bytes;
      return;
    }
    // DSCP-marked altpath flows steer onto the alternate candidate set
    // (everything but the best path) when one exists — the paper's
    // per-flow alternate-path mechanism.
    const std::span<const WcmpEgress> all(candidates);
    const std::span<const WcmpEgress> alt =
        all.size() > 1 ? all.subspan(1) : all;

    // Split the prefix's bytes across its flows by byte_share, keeping
    // the sum exact: flow i gets floor(cum_i) - floor(cum_{i-1}) bytes
    // of the budget, so per-prefix bytes are conserved to the byte.
    double cum = 0.0;
    std::uint64_t given = 0;
    FlowKey key;
    for (const auto& flow : flows) {
      cum += flow.byte_share;
      const auto upto = std::min(
          prefix_bytes,
          static_cast<std::uint64_t>(cum * static_cast<double>(prefix_bytes)));
      const std::uint64_t flow_bytes = upto > given ? upto - given : 0;
      given = upto;

      key.src = flow.src;
      key.dst = flow.dst;
      key.src_port = flow.src_port;
      key.dst_port = flow.dst_port;
      key.protocol = flow.protocol;
      const bool altpath = flow.dscp != 0 && all.size() > 1;
      FlowAssignment where =
          table_.assign(key, altpath ? alt : all, now);
      if (flow_bytes > 0) {
        bank_.offer(where.interface, flow_bytes);
        stats.offered_bytes += flow_bytes;
      }
    }
  });

  stats.flows_new = table_.flows_seen() - new_before;
  stats.flows_moved = table_.flows_moved() - moved_before;
  stats.reorder_events = table_.reorder_events() - reorder_before;
  stats.flows_expired = table_.expire_idle(
      now, net::SimTime::seconds(std::max(0.0, config_.flow_idle_timeout_s)));
  stats.flows_active = table_.active_flows();

  stats.interfaces = bank_.advance(dt);
  for (const auto& [iface, qs] : stats.interfaces) {
    stats.delivered_bytes += qs.delivered_bytes;
    stats.dropped_bytes += qs.dropped_bytes;
    stats.queued_bytes += qs.queued_bytes;
    stats.max_queue_delay_ms = std::max(stats.max_queue_delay_ms,
                                        qs.queue_delay_ms);
  }

  totals_.offered_bytes += stats.offered_bytes;
  totals_.delivered_bytes += stats.delivered_bytes;
  totals_.dropped_bytes += stats.dropped_bytes;
  totals_.unroutable_bytes += stats.unroutable_bytes;
  totals_.flows_moved += stats.flows_moved;
  totals_.reorder_events += stats.reorder_events;
  ++totals_.steps;
  return stats;
}

}  // namespace ef::dataplane
