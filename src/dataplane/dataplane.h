// The dataplane emulation layer: ties the heavy-tailed flow population
// (workload::FlowMix), the ECMP/WCMP hasher, the sticky flow table, and
// the per-interface queue bank into one step() the simulator and efd
// call once per step/cycle.
//
// Where the rest of the library *projects* per-interface load
// (rate-per-prefix summed onto the BGP best path), this layer *measures*
// what the hashed flows actually experience: bytes delivered at line
// rate, bytes tail-dropped, queue delay, and — when the controller's
// override churn re-paths a prefix — how many flows moved and reordered.
//
// Determinism: the only randomness is inside FlowMix's per-prefix
// seeded streams; hashing and queueing are pure functions. Two runs
// with the same seed and the same override sequence produce bitwise
// identical stats, which keeps journal record/replay exact.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dataplane/flow_table.h"
#include "dataplane/hash.h"
#include "dataplane/queue.h"
#include "telemetry/traffic.h"
#include "workload/flowmix.h"

namespace ef::dataplane {

struct DataplaneConfig {
  /// Off by default: the dataplane rides behind a knob so existing
  /// projected-load runs are untouched.
  bool enabled = false;
  std::uint64_t seed = 17;
  /// Member-link slots per interface (LAG/ECMP fan-out).
  std::uint32_t ecmp_slots = 16;
  /// Queue depth in milliseconds of buffering at line rate.
  double queue_depth_ms = 50.0;
  /// Flows idle this long are expired (a returning 5-tuple is new).
  double flow_idle_timeout_s = 300.0;
  /// Max egress candidates per prefix: 1 = destination-based single
  /// path, >1 = WCMP split across the prefix's best paths.
  std::uint32_t wcmp_paths = 1;
  /// Geometric weight decay for WCMP: path k gets weight ratio^k.
  double wcmp_weight_ratio = 0.5;
  workload::FlowMixConfig flows;
};

/// Per-step measurements. Byte counters satisfy, cumulatively:
///   offered == delivered + dropped + queued(end) (per interface),
/// and offered == routed demand bytes - rounding_slack (see step()).
struct DataplaneStepStats {
  std::size_t flows_active = 0;
  std::uint64_t flows_new = 0;
  std::uint64_t flows_moved = 0;
  std::uint64_t reorder_events = 0;
  std::uint64_t flows_expired = 0;
  std::uint64_t offered_bytes = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t queued_bytes = 0;
  std::uint64_t unroutable_bytes = 0;
  double max_queue_delay_ms = 0.0;
  /// Per-interface breakdown in registry (ascending-id) order.
  std::vector<std::pair<telemetry::InterfaceId, QueueStats>> interfaces;
};

/// Running totals across every step since construction.
struct DataplaneTotals {
  std::uint64_t offered_bytes = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t unroutable_bytes = 0;
  std::uint64_t flows_moved = 0;
  std::uint64_t reorder_events = 0;
  std::uint64_t steps = 0;
};

class Dataplane {
 public:
  /// Fills `out` with the egress candidates for `prefix`, best first
  /// (empty = unroutable). The caller decides what "candidates" means:
  /// the sim uses the PoP's post-override best path (and, under WCMP,
  /// the ranked alternates); efd uses controller overrides + its RIB.
  using ResolvePaths =
      std::function<void(const net::Prefix&, std::vector<WcmpEgress>&)>;

  /// `seed_salt` separates streams of different PoPs in a fleet.
  Dataplane(const telemetry::InterfaceRegistry& registry,
            DataplaneConfig config, std::uint64_t seed_salt = 0);

  /// Hashes the step's flow population onto egress interfaces and
  /// services every queue over [now, now+dt).
  DataplaneStepStats step(const telemetry::DemandMatrix& demand,
                          net::SimTime now, net::SimTime dt,
                          const ResolvePaths& resolve);

  const DataplaneConfig& config() const { return config_; }
  const FlowTable& flow_table() const { return table_; }
  const workload::FlowMix& flow_mix() const { return mix_; }
  const DataplaneTotals& totals() const { return totals_; }
  const QueueBank& queues() const { return bank_; }

 private:
  DataplaneConfig config_;
  workload::FlowMix mix_;
  FlowTable table_;
  QueueBank bank_;
  DataplaneTotals totals_;
};

}  // namespace ef::dataplane
