// Flow-level ECMP/WCMP hashing: the deterministic 5-tuple hash a real
// egress router applies when it spreads flows across interface member
// links, and the weighted rendezvous pick that splits one prefix's
// demand across several egresses (WCMP-style multipath).
//
// Everything here is a pure function of (flow key, candidate set): no
// table state, no RNG. That purity is what makes flow placement
// consistent — a flow only moves when its prefix's candidate set
// actually changes — and what keeps dataplane runs bitwise replayable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ip.h"
#include "telemetry/interface.h"

namespace ef::dataplane {

/// 5-tuple identity of one transport flow. DSCP is deliberately NOT part
/// of the key: routers hash the 5-tuple, and a remark must not re-path a
/// flow (markings ride along as metadata on the workload side).
struct FlowKey {
  net::IpAddr src;
  net::IpAddr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 6;  // TCP

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

/// FNV-1a over the 5-tuple's significant bytes. Stable across runs and
/// processes — flow placement must survive record/replay.
std::uint64_t flow_hash(const FlowKey& key);

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& key) const noexcept {
    return static_cast<std::size_t>(flow_hash(key));
  }
};

/// One egress candidate for a prefix, with its WCMP weight. A singleton
/// candidate set (weight irrelevant) is plain destination-based
/// forwarding; several candidates make a weighted multipath group.
struct WcmpEgress {
  telemetry::InterfaceId interface;
  double weight = 1.0;

  friend bool operator==(const WcmpEgress&, const WcmpEgress&) = default;
};

/// Deterministic ECMP/WCMP hasher.
///
/// Interface pick: weighted rendezvous (highest-random-weight) hashing.
/// Each candidate scores -weight / ln(u) with u derived from
/// hash(flow, interface); the flow lands on the argmax. Rendezvous
/// hashing gives the consistency property the flow table leans on:
/// adding/removing/re-weighting one candidate only moves flows into or
/// out of THAT candidate — flows between two untouched candidates never
/// shuffle (unlike modulo hashing, where a set change re-deals
/// everything).
///
/// Slot pick: an independent hash of (flow, interface) modulo the
/// member-link slot count — the per-interface LAG/ECMP fan-out whose
/// imbalance under elephant flows the dataplane measures.
class EcmpHasher {
 public:
  explicit EcmpHasher(std::uint32_t slots = 16, std::uint64_t salt = 0)
      : slots_(slots == 0 ? 1 : slots), salt_(salt) {}

  std::uint32_t slots() const { return slots_; }

  /// Member-link slot of the flow on `iface`, in [0, slots()).
  std::uint32_t slot_of(std::uint64_t flow_hash_value,
                        telemetry::InterfaceId iface) const;

  /// Weighted rendezvous pick over `candidates` (non-empty; entries with
  /// weight <= 0 are skipped unless all are, in which case weights are
  /// treated as equal). Deterministic ties break toward the lower
  /// interface id.
  telemetry::InterfaceId pick(std::uint64_t flow_hash_value,
                              std::span<const WcmpEgress> candidates) const;

 private:
  std::uint32_t slots_;
  std::uint64_t salt_;
};

}  // namespace ef::dataplane
