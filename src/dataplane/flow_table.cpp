#include "dataplane/flow_table.h"

namespace ef::dataplane {

FlowAssignment FlowTable::assign(const FlowKey& key,
                                 std::span<const WcmpEgress> candidates,
                                 net::SimTime now) {
  std::uint64_t h = flow_hash(key);
  FlowAssignment out;
  out.interface = hasher_.pick(h, candidates);
  out.slot = hasher_.slot_of(h, out.interface);

  auto [it, inserted] = entries_.try_emplace(key);
  Entry& entry = it->second;
  if (inserted) {
    ++flows_seen_;
    out.is_new = true;
  } else {
    if (entry.interface != out.interface) {
      out.moved = true;
      ++flows_moved_;
      // An interface change re-paths in-flight packets onto a path with
      // different queue occupancy: count one reordering event per moved
      // flow. A slot change within the same interface is milder (same
      // queue in this model) but still a member-link re-hash.
      ++reorder_events_;
    } else if (entry.slot != out.slot) {
      out.slot_changed = true;
      ++slot_moves_;
    }
  }
  entry.interface = out.interface;
  entry.slot = out.slot;
  entry.last_seen = now;
  return out;
}

std::size_t FlowTable::expire_idle(net::SimTime now, net::SimTime idle_timeout) {
  std::size_t evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.last_seen + idle_timeout < now) {
      it = entries_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace ef::dataplane
