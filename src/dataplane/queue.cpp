#include "dataplane/queue.h"

#include <cmath>

namespace ef::dataplane {
namespace {

std::uint64_t bytes_in(net::Bandwidth rate, net::SimTime span) {
  double b = rate.bits_per_sec() * span.seconds_value() / 8.0;
  if (b <= 0.0) return 0;
  return static_cast<std::uint64_t>(b);
}

}  // namespace

InterfaceQueue::InterfaceQueue(net::Bandwidth capacity, net::SimTime max_depth)
    : capacity_(capacity), max_depth_bytes_(bytes_in(capacity, max_depth)) {}

QueueStats InterfaceQueue::advance(net::SimTime dt) {
  QueueStats stats;
  stats.offered_bytes = pending_bytes_;

  const std::uint64_t service = bytes_in(capacity_, dt);
  const std::uint64_t work = queued_bytes_ + pending_bytes_;
  pending_bytes_ = 0;

  stats.delivered_bytes = work < service ? work : service;
  std::uint64_t backlog = work - stats.delivered_bytes;
  if (backlog > max_depth_bytes_) {
    stats.dropped_bytes = backlog - max_depth_bytes_;
    backlog = max_depth_bytes_;
  }
  queued_bytes_ = backlog;
  stats.queued_bytes = backlog;

  const double cap_bytes_per_sec = capacity_.bits_per_sec() / 8.0;
  stats.queue_delay_ms =
      cap_bytes_per_sec > 0.0
          ? static_cast<double>(backlog) / cap_bytes_per_sec * 1e3
          : 0.0;
  return stats;
}

QueueBank::QueueBank(const telemetry::InterfaceRegistry& registry,
                     net::SimTime max_depth) {
  order_.reserve(registry.size());
  for (std::size_t i = 0; i < registry.size(); ++i) {
    telemetry::InterfaceId id = registry.id_at(i);
    order_.push_back(id);
    queues_.emplace(id, InterfaceQueue(registry.capacity(id), max_depth));
  }
}

void QueueBank::offer(telemetry::InterfaceId iface, std::uint64_t bytes) {
  auto it = queues_.find(iface);
  if (it == queues_.end()) {
    unroutable_bytes_ += bytes;
    return;
  }
  it->second.offer(bytes);
}

std::vector<std::pair<telemetry::InterfaceId, QueueStats>> QueueBank::advance(
    net::SimTime dt) {
  std::vector<std::pair<telemetry::InterfaceId, QueueStats>> out;
  out.reserve(order_.size());
  for (telemetry::InterfaceId id : order_) {
    out.emplace_back(id, queues_.at(id).advance(dt));
  }
  return out;
}

const InterfaceQueue* QueueBank::find(telemetry::InterfaceId iface) const {
  auto it = queues_.find(iface);
  return it == queues_.end() ? nullptr : &it->second;
}

}  // namespace ef::dataplane
