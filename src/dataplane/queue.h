// Per-egress-interface queue and tail-drop model.
//
// Fluid approximation of an output queue: each step the interface
// serves at its capacity, excess bytes accumulate in a bounded queue,
// and overflow beyond the queue's depth is tail-dropped. This replaces
// "projected load > capacity" claims with measured drops and queue
// delay — the two quantities an operator actually sees.
//
// The recurrence conserves bytes exactly (all quantities are integral
// byte counts): offered = delivered + dropped + Δqueued. The
// conservation test in tests/dataplane leans on that identity.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/units.h"
#include "telemetry/interface.h"

namespace ef::dataplane {

/// One step's measurements for a single interface queue.
struct QueueStats {
  std::uint64_t offered_bytes = 0;    ///< arrivals this step
  std::uint64_t delivered_bytes = 0;  ///< served at line rate
  std::uint64_t dropped_bytes = 0;    ///< tail-dropped (queue full)
  std::uint64_t queued_bytes = 0;     ///< backlog at end of step
  double queue_delay_ms = 0.0;        ///< backlog / capacity at end of step
};

class InterfaceQueue {
 public:
  /// `capacity` is the service rate; `max_depth` bounds the queue in
  /// time units (depth_bytes = capacity * max_depth), matching how
  /// router buffers are provisioned (e.g. "50 ms of buffering").
  InterfaceQueue(net::Bandwidth capacity, net::SimTime max_depth);

  /// Accumulates arrivals for the in-progress step.
  void offer(std::uint64_t bytes) { pending_bytes_ += bytes; }

  /// Serves one step of length `dt` and returns its measurements.
  /// Service order is FIFO-fluid: the pre-existing backlog drains ahead
  /// of this step's arrivals, and arrivals beyond the depth bound are
  /// tail-dropped.
  QueueStats advance(net::SimTime dt);

  std::uint64_t queued_bytes() const { return queued_bytes_; }
  std::uint64_t max_depth_bytes() const { return max_depth_bytes_; }
  net::Bandwidth capacity() const { return capacity_; }

 private:
  net::Bandwidth capacity_;
  std::uint64_t max_depth_bytes_ = 0;
  std::uint64_t pending_bytes_ = 0;  // arrivals offered this step
  std::uint64_t queued_bytes_ = 0;   // backlog carried between steps
};

/// The bank of queues for every egress interface at one PoP, built from
/// the same InterfaceRegistry the allocator reads capacities from.
class QueueBank {
 public:
  QueueBank(const telemetry::InterfaceRegistry& registry,
            net::SimTime max_depth);

  /// Routes arrivals to the owning queue; unknown interfaces are
  /// dropped on the floor (counted as offered+dropped in totals).
  void offer(telemetry::InterfaceId iface, std::uint64_t bytes);

  /// Advances every queue one step and returns per-interface stats in
  /// registry order (deterministic).
  std::vector<std::pair<telemetry::InterfaceId, QueueStats>> advance(
      net::SimTime dt);

  const InterfaceQueue* find(telemetry::InterfaceId iface) const;
  std::uint64_t unroutable_bytes() const { return unroutable_bytes_; }

 private:
  std::vector<telemetry::InterfaceId> order_;
  std::unordered_map<telemetry::InterfaceId, InterfaceQueue> queues_;
  std::uint64_t unroutable_bytes_ = 0;
};

}  // namespace ef::dataplane
