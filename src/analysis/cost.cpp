#include "analysis/cost.h"

namespace ef::analysis {

void CostModel::sample(
    const std::map<telemetry::InterfaceId, net::Bandwidth>& load) {
  ++sample_count_;
  for (const auto& [iface, role] : roles_) {
    auto it = load.find(iface);
    rates_[iface].add(it == load.end() ? 0.0 : it->second.mbps_value());
  }
}

double CostModel::p95_mbps(telemetry::InterfaceId iface) const {
  auto it = rates_.find(iface);
  if (it == rates_.end() || it->second.empty()) return 0;
  return it->second.percentile(95);
}

CostModel::Bill CostModel::bill() const {
  Bill bill;
  for (const auto& [iface, role] : roles_) {
    switch (role) {
      case bgp::PeerType::kTransit:
        bill.transit_p95_mbps += p95_mbps(iface);
        break;
      case bgp::PeerType::kPrivatePeer:
        bill.port_dollars += config_.pni_port_dollars;
        break;
      case bgp::PeerType::kPublicPeer:
      case bgp::PeerType::kRouteServer:
        bill.port_dollars += config_.ixp_port_dollars;
        break;
      default:
        break;
    }
  }
  bill.transit_dollars =
      bill.transit_p95_mbps * config_.transit_dollars_per_mbps;
  return bill;
}

}  // namespace ef::analysis
