#include "analysis/metrics.h"

#include <algorithm>
#include <cstdio>
#include <iostream>

namespace ef::analysis {

void UtilizationTracker::record(
    net::SimTime now,
    const std::map<telemetry::InterfaceId, net::Bandwidth>& load) {
  const double dt_secs =
      times_.empty() ? 0.0 : (now - times_.back()).seconds_value();
  times_.push_back(now);

  interfaces_->for_each([&](telemetry::InterfaceId id,
                            const telemetry::InterfaceState& state) {
    auto it = load.find(id);
    const double bps =
        it == load.end() ? 0.0 : it->second.bits_per_sec();
    const double capacity = state.capacity.bits_per_sec();
    const double util = capacity > 0 ? bps / capacity : 0.0;
    utilization_[id].push_back(util);
    load_bps_[id].push_back(bps);
    all_samples_.add(util);
    if (dt_secs > 0) {
      total_offered_bits_ += bps * dt_secs;
      if (bps > capacity) total_excess_bits_ += (bps - capacity) * dt_secs;
    }
  });
}

std::map<telemetry::InterfaceId, double> UtilizationTracker::peak_utilization()
    const {
  std::map<telemetry::InterfaceId, double> peaks;
  for (const auto& [id, series] : utilization_) {
    peaks[id] = series.empty()
                    ? 0.0
                    : *std::max_element(series.begin(), series.end());
  }
  return peaks;
}

double UtilizationTracker::overloaded_fraction(double threshold) const {
  if (all_samples_.empty()) return 0;
  return 1.0 - all_samples_.fraction_at_most(threshold);
}

std::vector<UtilizationTracker::Episode> UtilizationTracker::episodes(
    double threshold) const {
  std::vector<Episode> episodes;
  for (const auto& [id, series] : utilization_) {
    const auto& loads = load_bps_.at(id);
    const double capacity_bps =
        interfaces_->capacity(id).bits_per_sec();
    bool open = false;
    Episode current;
    for (std::size_t i = 0; i < series.size(); ++i) {
      const bool over = series[i] > threshold;
      const double dt_secs =
          i + 1 < times_.size()
              ? (times_[i + 1] - times_[i]).seconds_value()
              : (i > 0 ? (times_[i] - times_[i - 1]).seconds_value() : 0.0);
      if (over && !open) {
        open = true;
        current = Episode{};
        current.interface = id;
        current.start = times_[i];
      }
      if (over) {
        current.peak_utilization =
            std::max(current.peak_utilization, series[i]);
        current.excess_bits +=
            std::max(0.0, loads[i] - capacity_bps) * dt_secs;
        current.end = i + 1 < times_.size() ? times_[i + 1] : times_[i];
      }
      if (!over && open) {
        open = false;
        episodes.push_back(current);
      }
    }
    if (open) episodes.push_back(current);
  }
  std::sort(episodes.begin(), episodes.end(),
            [](const Episode& a, const Episode& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.interface < b.interface;
            });
  return episodes;
}

double UtilizationTracker::excess_traffic_fraction() const {
  if (total_offered_bits_ <= 0) return 0;
  return total_excess_bits_ / total_offered_bits_;
}

void DetourTracker::record_cycle(
    const core::CycleStats& stats,
    const std::map<net::Prefix, core::Override>& active,
    net::Bandwidth total_demand) {
  ++cycles_;
  override_counts_.add(static_cast<double>(stats.overrides_active));

  net::Bandwidth detoured;
  std::map<net::Prefix, const core::Override*> current;
  for (const auto& [prefix, override_entry] : active) {
    current[prefix] = &override_entry;
    detoured += override_entry.rate;
    target_bits_[override_entry.target_type] +=
        override_entry.rate.bits_per_sec();
    ++target_counts_[override_entry.target_type];
  }
  detoured_fraction_.add(total_demand > net::Bandwidth::zero()
                             ? detoured / total_demand
                             : 0.0);

  // Lifetimes and flaps.
  for (const auto& [prefix, override_entry] : current) {
    if (!active_since_cycle_.contains(prefix)) {
      active_since_cycle_[prefix] = cycles_;
      ++times_overridden_[prefix];
    }
  }
  for (auto it = active_since_cycle_.begin();
       it != active_since_cycle_.end();) {
    if (!current.contains(it->first)) {
      lifetimes_.add(static_cast<double>(cycles_ - it->second));
      it = active_since_cycle_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t DetourTracker::flapping_prefixes() const {
  std::size_t flapping = 0;
  for (const auto& [prefix, count] : times_overridden_) {
    if (count > 1) ++flapping;
  }
  return flapping;
}

TablePrinter::TablePrinter(std::vector<std::string> headers,
                           std::vector<int> widths)
    : headers_(std::move(headers)), widths_(std::move(widths)) {
  if (widths_.empty()) {
    widths_.resize(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      widths_[i] = std::max<int>(12, static_cast<int>(headers_[i].size()) + 2);
    }
  }
}

void TablePrinter::print_header() const {
  std::string line;
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%-*s", widths_[i], headers_[i].c_str());
    line += buf;
  }
  std::cout << line << '\n';
  std::cout << std::string(line.size(), '-') << '\n';
}

void TablePrinter::print_row(const std::vector<std::string>& cells) const {
  std::string line;
  for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%-*s", widths_[i], cells[i].c_str());
    line += buf;
  }
  std::cout << line << '\n';
}

std::string TablePrinter::fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string TablePrinter::pct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace ef::analysis
