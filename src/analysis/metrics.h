// Experiment metrics: utilization series, overload episodes, detour
// accounting, override churn — the quantities the paper's tables and
// figures report.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/controller.h"
#include "net/stats.h"
#include "telemetry/interface.h"

namespace ef::analysis {

/// Per-interface utilization over time. Feed one load snapshot per step.
class UtilizationTracker {
 public:
  explicit UtilizationTracker(const telemetry::InterfaceRegistry& interfaces)
      : interfaces_(&interfaces) {}

  void record(net::SimTime now,
              const std::map<telemetry::InterfaceId, net::Bandwidth>& load);

  /// All (interface, step) utilization samples.
  const net::CdfBuilder& utilization_samples() const { return all_samples_; }

  /// Peak utilization per interface.
  std::map<telemetry::InterfaceId, double> peak_utilization() const;

  /// Fraction of (interface, step) samples above `threshold`.
  double overloaded_fraction(double threshold = 1.0) const;

  /// Contiguous spans where one interface stayed above `threshold`.
  struct Episode {
    telemetry::InterfaceId interface;
    net::SimTime start;
    net::SimTime end;  // exclusive: first step back below threshold
    double peak_utilization = 0;
    /// Traffic above capacity integrated over the episode (bits).
    double excess_bits = 0;
  };
  std::vector<Episode> episodes(double threshold = 1.0) const;

  /// Total traffic above capacity across all samples, as a fraction of
  /// total offered traffic (the "would-be-dropped" share).
  double excess_traffic_fraction() const;

  std::size_t steps() const { return times_.size(); }

 private:
  const telemetry::InterfaceRegistry* interfaces_;
  std::vector<net::SimTime> times_;
  std::map<telemetry::InterfaceId, std::vector<double>> utilization_;
  std::map<telemetry::InterfaceId, std::vector<double>> load_bps_;
  net::CdfBuilder all_samples_;
  double total_offered_bits_ = 0;
  double total_excess_bits_ = 0;
};

/// Tracks controller cycles: detoured share, target types, override
/// lifetimes and flaps.
class DetourTracker {
 public:
  /// `active` is the controller's post-cycle override set
  /// (Controller::active_overrides()), which includes hysteresis-retained
  /// and performance overrides on top of the allocation's.
  void record_cycle(const core::CycleStats& stats,
                    const std::map<net::Prefix, core::Override>& active,
                    net::Bandwidth total_demand);

  /// Per-cycle fraction of total demand that was detoured.
  const net::CdfBuilder& detoured_fraction() const {
    return detoured_fraction_;
  }
  /// Per-cycle count of active overrides.
  const net::CdfBuilder& override_counts() const { return override_counts_; }

  /// Detoured traffic (bit-cycles) by detour-target peer type.
  const std::map<bgp::PeerType, double>& target_rate_share() const {
    return target_bits_;
  }
  /// Override count by detour-target peer type.
  const std::map<bgp::PeerType, std::size_t>& target_counts() const {
    return target_counts_;
  }

  /// Completed override lifetimes (cycles between add and remove).
  const net::CdfBuilder& override_lifetime_cycles() const {
    return lifetimes_;
  }

  /// Prefixes that were added/removed more than once (flapping).
  std::size_t flapping_prefixes() const;
  std::size_t total_overridden_prefixes() const {
    return times_overridden_.size();
  }
  std::size_t cycles() const { return cycles_; }

 private:
  net::CdfBuilder detoured_fraction_;
  net::CdfBuilder override_counts_;
  net::CdfBuilder lifetimes_;
  std::map<bgp::PeerType, double> target_bits_;
  std::map<bgp::PeerType, std::size_t> target_counts_;
  std::map<net::Prefix, std::size_t> active_since_cycle_;
  std::map<net::Prefix, std::size_t> times_overridden_;
  std::size_t cycles_ = 0;
};

/// Fixed-width table output for the bench binaries.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::vector<int> widths = {});
  void print_header() const;
  void print_row(const std::vector<std::string>& cells) const;

  static std::string fmt(double value, int decimals = 2);
  static std::string pct(double fraction, int decimals = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

}  // namespace ef::analysis
