// Egress cost accounting: industry-style 95th-percentile billing on
// transit, flat-ish costs on peering ports. Edge Fabric's detours push
// peak traffic onto transit — this model quantifies that bill, the other
// side of the "don't drop packets" ledger.
#pragma once

#include <map>

#include "bgp/types.h"
#include "net/stats.h"
#include "telemetry/interface.h"

namespace ef::analysis {

struct CostConfig {
  /// Transit price per Mbps per month at the 95th percentile (blended
  /// commodity rate).
  double transit_dollars_per_mbps = 0.30;
  /// Amortized monthly cost per public/IXP port (membership + port fee).
  double ixp_port_dollars = 2500.0;
  /// Amortized monthly cost per PNI port (cross-connect + optics).
  double pni_port_dollars = 800.0;
};

/// Collects per-interface rate samples (call once per billing sample,
/// conventionally every 5 minutes) and produces a monthly-equivalent
/// bill using 95th-percentile billing for transit.
class CostModel {
 public:
  CostModel(CostConfig config,
            std::map<telemetry::InterfaceId, bgp::PeerType> interface_roles)
      : config_(config), roles_(std::move(interface_roles)) {}

  /// Records one billing sample of per-interface load.
  void sample(const std::map<telemetry::InterfaceId, net::Bandwidth>& load);

  struct Bill {
    /// 95th-percentile transit rate across all transit ports (Mbps).
    double transit_p95_mbps = 0;
    double transit_dollars = 0;
    double port_dollars = 0;  // PNI + IXP port fees
    double total_dollars() const { return transit_dollars + port_dollars; }
  };

  /// Monthly-equivalent bill from the samples so far.
  Bill bill() const;

  /// 95th-percentile rate (Mbps) for one interface.
  double p95_mbps(telemetry::InterfaceId iface) const;

  std::size_t samples() const { return sample_count_; }

 private:
  CostConfig config_;
  std::map<telemetry::InterfaceId, bgp::PeerType> roles_;
  std::map<telemetry::InterfaceId, net::CdfBuilder> rates_;
  std::size_t sample_count_ = 0;
};

}  // namespace ef::analysis
