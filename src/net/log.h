// Minimal leveled logger used across the library.
//
// Logging is intentionally tiny: benches and simulations run millions of
// events, so anything below the configured level must cost one branch.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace ef {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are suppressed.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, std::string_view msg);
}  // namespace detail

}  // namespace ef

#define EF_LOG(level, expr)                                          \
  do {                                                               \
    if (static_cast<int>(level) >= static_cast<int>(ef::log_level())) { \
      std::ostringstream ef_log_oss_;                                \
      ef_log_oss_ << expr;                                           \
      ef::detail::log_emit(level, ef_log_oss_.str());                \
    }                                                                \
  } while (0)

#define EF_LOG_DEBUG(expr) EF_LOG(ef::LogLevel::kDebug, expr)
#define EF_LOG_INFO(expr) EF_LOG(ef::LogLevel::kInfo, expr)
#define EF_LOG_WARN(expr) EF_LOG(ef::LogLevel::kWarn, expr)
#define EF_LOG_ERROR(expr) EF_LOG(ef::LogLevel::kError, expr)

// Fatal invariant check. Used for programming errors, not recoverable
// conditions; recoverable failures are reported through return values.
#define EF_CHECK(cond, expr)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream ef_chk_oss_;                                 \
      ef_chk_oss_ << "CHECK failed: " #cond " at " << __FILE__ << ':' \
                  << __LINE__ << ": " << expr;                        \
      std::cerr << ef_chk_oss_.str() << std::endl;                    \
      std::abort();                                                   \
    }                                                                 \
  } while (0)
