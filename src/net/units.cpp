#include "net/units.h"

#include <cstdio>

namespace ef::net {

std::string Bandwidth::to_string() const {
  char buf[64];
  const double bps = bps_;
  if (bps >= 1e9 || bps <= -1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fGbps", bps / 1e9);
  } else if (bps >= 1e6 || bps <= -1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fMbps", bps / 1e6);
  } else if (bps >= 1e3 || bps <= -1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fKbps", bps / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fbps", bps);
  }
  return buf;
}

std::ostream& operator<<(std::ostream& os, Bandwidth bw) {
  return os << bw.to_string();
}

std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.seconds_value() << 's';
}

}  // namespace ef::net
