// Strong numeric types shared across modules: bandwidth, byte counts,
// simulated time. These exist so an interface cannot silently confuse
// Mbps with Gbps or seconds with milliseconds.
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

namespace ef::net {

/// Bandwidth / traffic rate in bits per second. Value type; arithmetic
/// keeps the unit.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;

  static constexpr Bandwidth bps(double v) { return Bandwidth(v); }
  static constexpr Bandwidth kbps(double v) { return Bandwidth(v * 1e3); }
  static constexpr Bandwidth mbps(double v) { return Bandwidth(v * 1e6); }
  static constexpr Bandwidth gbps(double v) { return Bandwidth(v * 1e9); }
  static constexpr Bandwidth zero() { return Bandwidth(0); }

  constexpr double bits_per_sec() const { return bps_; }
  constexpr double mbps_value() const { return bps_ / 1e6; }
  constexpr double gbps_value() const { return bps_ / 1e9; }

  constexpr Bandwidth operator+(Bandwidth o) const {
    return Bandwidth(bps_ + o.bps_);
  }
  constexpr Bandwidth operator-(Bandwidth o) const {
    return Bandwidth(bps_ - o.bps_);
  }
  constexpr Bandwidth operator*(double f) const { return Bandwidth(bps_ * f); }
  constexpr Bandwidth operator/(double f) const { return Bandwidth(bps_ / f); }
  /// Ratio of two rates (e.g. utilization = demand / capacity).
  constexpr double operator/(Bandwidth o) const { return bps_ / o.bps_; }

  Bandwidth& operator+=(Bandwidth o) {
    bps_ += o.bps_;
    return *this;
  }
  Bandwidth& operator-=(Bandwidth o) {
    bps_ -= o.bps_;
    return *this;
  }

  friend constexpr auto operator<=>(Bandwidth, Bandwidth) = default;

  std::string to_string() const;

 private:
  explicit constexpr Bandwidth(double bps) : bps_(bps) {}
  double bps_ = 0;
};

std::ostream& operator<<(std::ostream& os, Bandwidth bw);

/// Simulated time: milliseconds since simulation start.
class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime millis(std::int64_t ms) { return SimTime(ms); }
  static constexpr SimTime seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1000.0));
  }
  static constexpr SimTime minutes(double m) { return seconds(m * 60.0); }
  static constexpr SimTime hours(double h) { return seconds(h * 3600.0); }

  constexpr std::int64_t millis_value() const { return ms_; }
  constexpr double seconds_value() const {
    return static_cast<double>(ms_) / 1000.0;
  }

  constexpr SimTime operator+(SimTime o) const { return SimTime(ms_ + o.ms_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(ms_ - o.ms_); }
  SimTime& operator+=(SimTime o) {
    ms_ += o.ms_;
    return *this;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

 private:
  explicit constexpr SimTime(std::int64_t ms) : ms_(ms) {}
  std::int64_t ms_ = 0;
};

std::ostream& operator<<(std::ostream& os, SimTime t);

}  // namespace ef::net
