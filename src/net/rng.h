// Deterministic random number generation.
//
// All stochastic behaviour in the library flows through Rng so that every
// simulation, test, and bench is exactly reproducible from a seed.
// The core generator is xoshiro256** (public domain, Blackman & Vigna).
#pragma once

#include <cstdint>
#include <vector>

namespace ef::net {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Normal via Box-Muller.
  double normal(double mean, double stddev);

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Pareto with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  /// Derives an independent child generator (for per-component streams).
  Rng fork();

 private:
  std::uint64_t state_[4];
};

/// Zipf distribution over ranks 1..n with exponent s: P(k) ∝ k^-s.
/// Sampling is O(log n) via binary search over the precomputed CDF.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double exponent);

  /// Samples a rank in [1, n].
  std::size_t sample(Rng& rng) const;

  /// Probability mass of rank k (1-based).
  double pmf(std::size_t rank) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[k-1] = P(rank <= k)
};

}  // namespace ef::net
