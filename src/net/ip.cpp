#include "net/ip.h"

#include <charconv>
#include <cstdio>
#include <ostream>
#include <vector>

namespace ef::net {

namespace {

std::optional<IpAddr> parse_v4(std::string_view text) {
  std::uint32_t value = 0;
  int octets = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  while (p < end) {
    unsigned int octet = 0;
    auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || next == p || octet > 255) return std::nullopt;
    // Reject leading zeros such as "01" which some parsers read as octal.
    if (next - p > 1 && *p == '0') return std::nullopt;
    value = (value << 8) | octet;
    ++octets;
    p = next;
    if (p < end) {
      if (*p != '.' || octets == 4) return std::nullopt;
      ++p;
      if (p == end) return std::nullopt;  // trailing dot
    }
  }
  if (octets != 4) return std::nullopt;
  return IpAddr::v4(value);
}

std::optional<int> parse_hex_group(std::string_view group) {
  if (group.empty() || group.size() > 4) return std::nullopt;
  unsigned int value = 0;
  auto [next, ec] =
      std::from_chars(group.data(), group.data() + group.size(), value, 16);
  if (ec != std::errc{} || next != group.data() + group.size()) {
    return std::nullopt;
  }
  return static_cast<int>(value);
}

std::optional<IpAddr> parse_v6(std::string_view text) {
  // Split on "::" first; each side is a list of ':'-separated hex groups.
  std::vector<int> head;
  std::vector<int> tail;
  bool has_gap = false;

  auto split_groups = [](std::string_view part,
                         std::vector<int>& out) -> bool {
    if (part.empty()) return true;
    std::size_t start = 0;
    while (true) {
      std::size_t colon = part.find(':', start);
      std::string_view group = colon == std::string_view::npos
                                   ? part.substr(start)
                                   : part.substr(start, colon - start);
      auto value = parse_hex_group(group);
      if (!value) return false;
      out.push_back(*value);
      if (colon == std::string_view::npos) break;
      start = colon + 1;
    }
    return true;
  };

  std::size_t gap = text.find("::");
  if (gap != std::string_view::npos) {
    has_gap = true;
    if (text.find("::", gap + 1) != std::string_view::npos) {
      return std::nullopt;  // at most one "::"
    }
    if (!split_groups(text.substr(0, gap), head)) return std::nullopt;
    if (!split_groups(text.substr(gap + 2), tail)) return std::nullopt;
  } else {
    if (!split_groups(text, head)) return std::nullopt;
  }

  std::size_t total = head.size() + tail.size();
  if (has_gap ? total > 7 : total != 8) return std::nullopt;

  std::array<std::uint8_t, 16> bytes{};
  std::size_t i = 0;
  for (int group : head) {
    bytes[i++] = static_cast<std::uint8_t>(group >> 8);
    bytes[i++] = static_cast<std::uint8_t>(group & 0xff);
  }
  i = 16 - tail.size() * 2;
  for (int group : tail) {
    bytes[i++] = static_cast<std::uint8_t>(group >> 8);
    bytes[i++] = static_cast<std::uint8_t>(group & 0xff);
  }
  return IpAddr::v6(bytes);
}

}  // namespace

std::optional<IpAddr> IpAddr::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) return parse_v6(text);
  return parse_v4(text);
}

IpAddr IpAddr::masked(int prefix_len) const {
  IpAddr out = *this;
  const int total = address_bits(family_);
  if (prefix_len < 0) prefix_len = 0;
  if (prefix_len > total) prefix_len = total;
  for (int bit = prefix_len; bit < total; ++bit) {
    out.bytes_[static_cast<std::size_t>(bit / 8)] &=
        static_cast<std::uint8_t>(~(1u << (7 - bit % 8)));
  }
  return out;
}

std::string IpAddr::to_string() const {
  char buf[64];
  if (family_ == Family::kV4) {
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", bytes_[0], bytes_[1],
                  bytes_[2], bytes_[3]);
    return buf;
  }
  // IPv6: RFC 5952 canonical form — compress the longest run of zero groups.
  std::uint16_t groups[8];
  for (int i = 0; i < 8; ++i) {
    groups[i] = static_cast<std::uint16_t>(
        (bytes_[static_cast<std::size_t>(i * 2)] << 8) |
        bytes_[static_cast<std::size_t>(i * 2 + 1)]);
  }
  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[j] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;  // do not compress a single zero group

  std::string out;
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof(buf), "%x", groups[i]);
    out += buf;
    ++i;
  }
  if (out.empty()) out = "::";
  return out;
}

std::ostream& operator<<(std::ostream& os, const IpAddr& addr) {
  return os << addr.to_string();
}

}  // namespace ef::net
