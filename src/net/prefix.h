// CIDR prefixes, canonicalized (host bits cleared on construction).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/ip.h"

namespace ef::net {

/// An immutable CIDR prefix such as 203.0.113.0/24 or 2001:db8::/32.
///
/// The address is always stored masked to the prefix length, so two
/// Prefix values compare equal iff they denote the same address block.
class Prefix {
 public:
  /// Default-constructs 0.0.0.0/0.
  Prefix() = default;

  /// Canonicalizes: host bits beyond `length` are cleared and the length
  /// is clamped to the family's address width.
  Prefix(const IpAddr& addr, int length);

  /// Parses "203.0.113.0/24" or "2001:db8::/32". A bare address parses
  /// as a host prefix (/32 or /128). Returns nullopt on malformed input.
  static std::optional<Prefix> parse(std::string_view text);

  const IpAddr& address() const { return addr_; }
  int length() const { return length_; }
  Family family() const { return addr_.family(); }

  /// True if `addr` falls inside this block (families must match).
  bool contains(const IpAddr& addr) const;

  /// True if `other` is equal to or more specific than this block.
  bool contains(const Prefix& other) const;

  std::string to_string() const;

  friend auto operator<=>(const Prefix& a, const Prefix& b) {
    if (auto c = a.addr_ <=> b.addr_; c != 0) return c;
    return a.length_ <=> b.length_;
  }
  friend bool operator==(const Prefix&, const Prefix&) = default;

 private:
  IpAddr addr_;
  int length_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Prefix& prefix);

}  // namespace ef::net

template <>
struct std::hash<ef::net::Prefix> {
  std::size_t operator()(const ef::net::Prefix& p) const noexcept {
    std::size_t h = std::hash<ef::net::IpAddr>{}(p.address());
    return h ^ (static_cast<std::size_t>(p.length()) * 0x9e3779b97f4a7c15ull);
  }
};
