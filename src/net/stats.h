// Small statistics toolkit: EWMA, online moments, and an exact
// percentile/CDF builder used by the analysis and bench layers.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace ef::net {

/// Exponentially weighted moving average. `alpha` is the weight of a new
/// sample (0 < alpha <= 1); higher alpha reacts faster.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void update(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
    } else {
      value_ += alpha_ * (sample - value_);
    }
  }

  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  void reset() {
    value_ = 0;
    initialized_ = false;
  }

 private:
  double alpha_;
  double value_ = 0;
  bool initialized_ = false;
};

/// Welford online mean/variance plus min/max.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Collects samples and answers exact percentile queries; also renders
/// CDF point series for the benches. Sorting is deferred and cached.
class CdfBuilder {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Exact percentile, p in [0, 100]. Requires at least one sample.
  double percentile(double p) const;

  double median() const { return percentile(50); }

  /// Fraction of samples <= x.
  double fraction_at_most(double x) const;

  /// Evenly spaced (value, cumulative fraction) points for plotting;
  /// at most `max_points` entries.
  std::vector<std::pair<double, double>> cdf_points(
      std::size_t max_points = 50) const;

  /// "p50=… p90=… p99=… max=…" one-liner for logs and bench output.
  std::string summary() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace ef::net
