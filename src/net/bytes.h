// Bounds-checked big-endian byte buffer reader/writer, used by the BGP
// (RFC 4271) and BMP (RFC 7854) wire codecs.
//
// The reader never throws: out-of-bounds reads set a sticky error flag and
// return zeros, so codecs can decode speculatively and check ok() once.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace ef::net {

class BufWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(const std::uint8_t* data, std::size_t len) {
    buf_.insert(buf_.end(), data, data + len);
  }
  void bytes(const std::vector<std::uint8_t>& data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Overwrites a previously written 16-bit length field at `offset`.
  void patch_u16(std::size_t offset, std::uint16_t v) {
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }
  void patch_u32(std::size_t offset, std::uint32_t v) {
    buf_[offset] = static_cast<std::uint8_t>(v >> 24);
    buf_[offset + 1] = static_cast<std::uint8_t>(v >> 16);
    buf_[offset + 2] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 3] = static_cast<std::uint8_t>(v);
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class BufReader {
 public:
  BufReader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}
  explicit BufReader(const std::vector<std::uint8_t>& buf)
      : BufReader(buf.data(), buf.size()) {}

  std::uint8_t u8() {
    if (!require(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    if (!require(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(
        (data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!require(4)) return 0;  // atomic: no partial-word reads
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_++];
    return v;
  }
  std::uint64_t u64() {
    if (!require(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_++];
    return v;
  }
  /// Copies `len` bytes into `out`; zero-fills on underflow.
  void bytes(std::uint8_t* out, std::size_t len) {
    if (!require(len)) {
      std::memset(out, 0, len);
      return;
    }
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
  }
  void skip(std::size_t len) {
    if (require(len)) pos_ += len;
  }

  /// A sub-reader over the next `len` bytes (consumed from this reader).
  BufReader sub(std::size_t len) {
    if (!require(len)) return BufReader(nullptr, 0);
    BufReader r(data_ + pos_, len);
    pos_ += len;
    return r;
  }

  std::size_t remaining() const { return len_ - pos_; }
  bool ok() const { return ok_; }
  /// Marks the reader failed (e.g. semantic error found by a codec).
  void fail() { ok_ = false; }

 private:
  bool require(std::size_t n) {
    if (!ok_ || len_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ef::net
