#include "net/prefix.h"

#include <charconv>
#include <ostream>

namespace ef::net {

Prefix::Prefix(const IpAddr& addr, int length) {
  const int max_len = address_bits(addr.family());
  if (length < 0) length = 0;
  if (length > max_len) length = max_len;
  length_ = length;
  addr_ = addr.masked(length);
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  std::size_t slash = text.rfind('/');
  if (slash == std::string_view::npos) {
    auto addr = IpAddr::parse(text);
    if (!addr) return std::nullopt;
    return Prefix(*addr, address_bits(addr->family()));
  }
  auto addr = IpAddr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  int length = -1;
  auto [next, ec] = std::from_chars(
      len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || next != len_text.data() + len_text.size()) {
    return std::nullopt;
  }
  if (length < 0 || length > address_bits(addr->family())) {
    return std::nullopt;
  }
  return Prefix(*addr, length);
}

bool Prefix::contains(const IpAddr& addr) const {
  if (addr.family() != addr_.family()) return false;
  return addr.masked(length_) == addr_;
}

bool Prefix::contains(const Prefix& other) const {
  if (other.family() != family() || other.length_ < length_) return false;
  return other.addr_.masked(length_) == addr_;
}

std::string Prefix::to_string() const {
  return addr_.to_string() + '/' + std::to_string(length_);
}

std::ostream& operator<<(std::ostream& os, const Prefix& prefix) {
  return os << prefix.to_string();
}

}  // namespace ef::net
