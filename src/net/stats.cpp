#include "net/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "net/log.h"

namespace ef::net {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void CdfBuilder::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double CdfBuilder::percentile(double p) const {
  EF_CHECK(!samples_.empty(), "percentile of empty sample set");
  ensure_sorted();
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  // Linear interpolation between closest ranks.
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double CdfBuilder::fraction_at_most(double x) const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> CdfBuilder::cdf_points(
    std::size_t max_points) const {
  std::vector<std::pair<double, double>> points;
  if (samples_.empty() || max_points == 0) return points;
  ensure_sorted();
  const std::size_t n = samples_.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_points);
  for (std::size_t i = 0; i < n; i += step) {
    points.emplace_back(samples_[i],
                        static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (points.back().first != samples_.back()) {
    points.emplace_back(samples_.back(), 1.0);
  } else {
    points.back().second = 1.0;
  }
  return points;
}

std::string CdfBuilder::summary() const {
  if (samples_.empty()) return "(no samples)";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu p10=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
                samples_.size(), percentile(10), percentile(50),
                percentile(90), percentile(99), percentile(100));
  return buf;
}

}  // namespace ef::net
