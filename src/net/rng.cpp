#include "net/rng.h"

#include <algorithm>
#include <cmath>

#include "net/log.h"

namespace ef::net {

namespace {

// SplitMix64, used to expand the seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  EF_CHECK(lo <= hi, "uniform_int: lo=" << lo << " hi=" << hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  EF_CHECK(mean > 0, "exponential mean must be positive, got " << mean);
  double u;
  do {
    u = next_double();
  } while (u <= 0);  // avoid log(0)
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0);
  const double u2 = next_double();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  EF_CHECK(xm > 0 && alpha > 0,
           "pareto requires xm>0, alpha>0; got xm=" << xm << " a=" << alpha);
  double u;
  do {
    u = next_double();
  } while (u <= 0);
  return xm / std::pow(u, 1.0 / alpha);
}

Rng Rng::fork() { return Rng(next_u64()); }

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent) {
  EF_CHECK(n > 0, "Zipf over empty support");
  cdf_.resize(n);
  double total = 0;
  for (std::size_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), exponent);
    cdf_[k - 1] = total;
  }
  for (auto& v : cdf_) v /= total;
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.next_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::pmf(std::size_t rank) const {
  EF_CHECK(rank >= 1 && rank <= cdf_.size(), "Zipf pmf rank out of range");
  const double lo = rank == 1 ? 0.0 : cdf_[rank - 2];
  return cdf_[rank - 1] - lo;
}

}  // namespace ef::net
