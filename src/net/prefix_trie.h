// Binary radix trie keyed by CIDR prefix, with longest-prefix match.
//
// The trie is path-uncompressed (one node per bit); for the prefix counts
// used here (tens of thousands) this is simple and fast enough, and keeps
// deletion trivial. IPv4 and IPv6 keys live in separate roots.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "net/ip.h"
#include "net/prefix.h"

namespace ef::net {

template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() = default;

  /// Inserts or replaces the value at `prefix`. Returns true on insert,
  /// false on replace.
  bool insert(const Prefix& prefix, T value) {
    Node* node = descend_create(prefix);
    bool inserted = !node->value.has_value();
    node->value = std::move(value);
    if (inserted) ++size_;
    return inserted;
  }

  /// Exact-match lookup.
  T* find(const Prefix& prefix) {
    Node* node = descend(prefix);
    return (node && node->value) ? &*node->value : nullptr;
  }
  const T* find(const Prefix& prefix) const {
    return const_cast<PrefixTrie*>(this)->find(prefix);
  }

  /// Longest-prefix match for a host address. Returns the matching
  /// (prefix, value) with the greatest length, or nullopt.
  std::optional<std::pair<Prefix, const T*>> longest_match(
      const IpAddr& addr) const {
    const Node* node = root_for(addr.family());
    const Node* best = nullptr;
    int best_len = -1;
    int depth = 0;
    const int max_depth = address_bits(addr.family());
    while (node) {
      if (node->value) {
        best = node;
        best_len = depth;
      }
      if (depth == max_depth) break;
      node = node->child[addr.bit(depth) ? 1 : 0].get();
      ++depth;
    }
    if (!best) return std::nullopt;
    return std::make_pair(Prefix(addr, best_len), &*best->value);
  }

  /// Removes the entry at `prefix` if present. Returns true if removed.
  /// (Interior nodes are left in place; they are reclaimed on destruction.)
  bool erase(const Prefix& prefix) {
    Node* node = descend(prefix);
    if (!node || !node->value) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Visits every (prefix, value) in unspecified order.
  void for_each(
      const std::function<void(const Prefix&, const T&)>& fn) const {
    walk(v4_root_.get(), Family::kV4, IpAddr::v4(0), 0, fn);
    std::array<std::uint8_t, 16> zero{};
    walk(v6_root_.get(), Family::kV6, IpAddr::v6(zero), 0, fn);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    v4_root_.reset();
    v6_root_.reset();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> child[2];
  };

  const Node* root_for(Family family) const {
    return family == Family::kV4 ? v4_root_.get() : v6_root_.get();
  }

  Node* descend(const Prefix& prefix) {
    std::unique_ptr<Node>& root =
        prefix.family() == Family::kV4 ? v4_root_ : v6_root_;
    Node* node = root.get();
    for (int depth = 0; node && depth < prefix.length(); ++depth) {
      node = node->child[prefix.address().bit(depth) ? 1 : 0].get();
    }
    return node;
  }

  Node* descend_create(const Prefix& prefix) {
    std::unique_ptr<Node>& root =
        prefix.family() == Family::kV4 ? v4_root_ : v6_root_;
    if (!root) root = std::make_unique<Node>();
    Node* node = root.get();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      auto& slot = node->child[prefix.address().bit(depth) ? 1 : 0];
      if (!slot) slot = std::make_unique<Node>();
      node = slot.get();
    }
    return node;
  }

  // Rebuilds the prefix for each visited node by setting bits on the way
  // down; `addr` carries the bits chosen so far.
  void walk(const Node* node, Family family, IpAddr addr, int depth,
            const std::function<void(const Prefix&, const T&)>& fn) const {
    if (!node) return;
    if (node->value) fn(Prefix(addr, depth), *node->value);
    if (depth == address_bits(family)) return;
    if (node->child[0]) {
      walk(node->child[0].get(), family, addr, depth + 1, fn);
    }
    if (node->child[1]) {
      walk(node->child[1].get(), family, with_bit(addr, depth), depth + 1,
           fn);
    }
  }

  static IpAddr with_bit(const IpAddr& addr, int index) {
    auto bytes = addr.bytes();
    bytes[static_cast<std::size_t>(index / 8)] |=
        static_cast<std::uint8_t>(1u << (7 - index % 8));
    return addr.family() == Family::kV4
               ? IpAddr::v4((static_cast<std::uint32_t>(bytes[0]) << 24) |
                            (static_cast<std::uint32_t>(bytes[1]) << 16) |
                            (static_cast<std::uint32_t>(bytes[2]) << 8) |
                            bytes[3])
               : IpAddr::v6(bytes);
  }

  std::unique_ptr<Node> v4_root_;
  std::unique_ptr<Node> v6_root_;
  std::size_t size_ = 0;
};

}  // namespace ef::net
