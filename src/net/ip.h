// IP addresses (IPv4 and IPv6) as immutable value types.
//
// Both families share one representation: a 128-bit big-endian byte array.
// IPv4 addresses occupy the first 4 bytes and carry Family::kV4, so bit
// indexing (needed by the prefix trie) is uniform across families.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ef::net {

enum class Family : std::uint8_t { kV4 = 4, kV6 = 6 };

/// Number of significant bits in an address of the given family.
constexpr int address_bits(Family family) {
  return family == Family::kV4 ? 32 : 128;
}

/// An immutable IPv4 or IPv6 address.
class IpAddr {
 public:
  /// Default-constructs the IPv4 unspecified address 0.0.0.0.
  constexpr IpAddr() = default;

  /// Builds an IPv4 address from a host-order 32-bit value.
  static constexpr IpAddr v4(std::uint32_t host_order) {
    IpAddr a;
    a.family_ = Family::kV4;
    a.bytes_[0] = static_cast<std::uint8_t>(host_order >> 24);
    a.bytes_[1] = static_cast<std::uint8_t>(host_order >> 16);
    a.bytes_[2] = static_cast<std::uint8_t>(host_order >> 8);
    a.bytes_[3] = static_cast<std::uint8_t>(host_order);
    return a;
  }

  /// Builds an IPv6 address from 16 big-endian bytes.
  static constexpr IpAddr v6(const std::array<std::uint8_t, 16>& bytes) {
    IpAddr a;
    a.family_ = Family::kV6;
    a.bytes_ = bytes;
    return a;
  }

  /// Parses dotted-quad IPv4 ("192.0.2.1") or RFC 4291 IPv6 ("2001:db8::1").
  /// Returns nullopt on malformed input.
  static std::optional<IpAddr> parse(std::string_view text);

  constexpr Family family() const { return family_; }
  constexpr bool is_v4() const { return family_ == Family::kV4; }
  constexpr bool is_v6() const { return family_ == Family::kV6; }

  /// Host-order 32-bit value; only meaningful for IPv4 addresses.
  constexpr std::uint32_t v4_value() const {
    return (static_cast<std::uint32_t>(bytes_[0]) << 24) |
           (static_cast<std::uint32_t>(bytes_[1]) << 16) |
           (static_cast<std::uint32_t>(bytes_[2]) << 8) |
           static_cast<std::uint32_t>(bytes_[3]);
  }

  /// Raw big-endian bytes (16 for v6; first 4 significant for v4).
  constexpr const std::array<std::uint8_t, 16>& bytes() const {
    return bytes_;
  }

  /// Bit `index` counted from the most significant bit (0-based).
  constexpr bool bit(int index) const {
    return (bytes_[static_cast<std::size_t>(index / 8)] >>
            (7 - index % 8)) & 1u;
  }

  /// Returns a copy with all bits at positions >= prefix_len cleared.
  IpAddr masked(int prefix_len) const;

  std::string to_string() const;

  friend constexpr auto operator<=>(const IpAddr& a, const IpAddr& b) {
    if (auto c = a.family_ <=> b.family_; c != 0) return c;
    return a.bytes_ <=> b.bytes_;
  }
  friend constexpr bool operator==(const IpAddr&, const IpAddr&) = default;

 private:
  std::array<std::uint8_t, 16> bytes_{};
  Family family_ = Family::kV4;
};

std::ostream& operator<<(std::ostream& os, const IpAddr& addr);

}  // namespace ef::net

template <>
struct std::hash<ef::net::IpAddr> {
  std::size_t operator()(const ef::net::IpAddr& a) const noexcept {
    // FNV-1a over the 17 significant bytes.
    std::size_t h = 1469598103934665603ull;
    for (std::uint8_t b : a.bytes()) {
      h = (h ^ b) * 1099511628211ull;
    }
    h = (h ^ static_cast<std::uint8_t>(a.family())) * 1099511628211ull;
    return h;
  }
};
