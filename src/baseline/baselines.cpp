#include "baseline/baselines.h"

#include "bgp/decision.h"

namespace ef::baseline {

std::map<telemetry::InterfaceId, net::Bandwidth> bgp_only_load(
    const topology::Pop& pop, const telemetry::DemandMatrix& demand) {
  std::map<telemetry::InterfaceId, net::Bandwidth> load;
  const bgp::Rib& rib = pop.collector().rib();
  demand.for_each([&](const net::Prefix& prefix, net::Bandwidth rate) {
    const auto candidates = rib.candidates(prefix);
    const auto order = bgp::rank_routes(candidates, rib.decision_config());
    for (std::size_t index : order) {
      const bgp::Route& route = candidates[index];
      if (route.peer_type == bgp::PeerType::kController) continue;
      const auto egress = pop.egress_of_route(route);
      if (!egress) continue;
      load[egress->interface] += rate;
      break;
    }
  });
  return load;
}

StaticTe::StaticTe(topology::Pop& pop, core::ControllerConfig config)
    : controller_(pop, config) {
  controller_.connect();
}

core::CycleStats StaticTe::install(
    const telemetry::DemandMatrix& planning_demand, net::SimTime now) {
  return controller_.run_cycle(planning_demand, now);
}

void StaticTe::uninstall(net::SimTime now) { controller_.shutdown(now); }

}  // namespace ef::baseline
