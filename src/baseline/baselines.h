// Baselines the paper's evaluation compares against:
//  * vanilla BGP ("without Edge Fabric") — the counterfactual projector
//    below, or a Simulation with the controller disabled;
//  * static traffic engineering — overrides computed once from planning
//    demand and never updated, modelling the pre-Edge-Fabric practice of
//    hand-tuned router policy that cannot track demand.
#pragma once

#include <map>

#include "core/controller.h"
#include "telemetry/traffic.h"
#include "topology/pop.h"

namespace ef::baseline {

/// Per-interface load if pure BGP (controller routes ignored) forwarded
/// `demand`. This is the "without Edge Fabric" projection even while a
/// controller is running.
std::map<telemetry::InterfaceId, net::Bandwidth> bgp_only_load(
    const topology::Pop& pop, const telemetry::DemandMatrix& demand);

/// Static TE baseline: run the Edge Fabric allocator once against a
/// planning-time demand snapshot and leave the overrides in place.
class StaticTe {
 public:
  explicit StaticTe(topology::Pop& pop, core::ControllerConfig config = {});

  /// Computes and installs the static override set.
  core::CycleStats install(const telemetry::DemandMatrix& planning_demand,
                           net::SimTime now);

  /// Removes the static overrides.
  void uninstall(net::SimTime now);

  /// Keeps the injection session alive (keepalives). Call at least every
  /// hold/3 of simulated time, like any BGP speaker.
  void tick(net::SimTime now) { controller_.tick(now); }

  const std::map<net::Prefix, core::Override>& overrides() const {
    return controller_.active_overrides();
  }

 private:
  core::Controller controller_;
};

}  // namespace ef::baseline
