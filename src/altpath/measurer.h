// Alternate-path measurement: samples flows onto the k-th preferred path
// via DSCP policy routing and aggregates per-(prefix, rank) RTT
// statistics — the stand-in for the paper's server-side eBPF sampling.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "altpath/perf_model.h"
#include "altpath/policy_routing.h"
#include "telemetry/traffic.h"

namespace ef::altpath {

struct MeasurerConfig {
  std::uint64_t seed = 17;
  /// Flows sampled per prefix per round onto the primary path.
  int primary_samples_per_round = 8;
  /// Flows sampled per prefix per round onto each alternate rank.
  int alternate_samples_per_round = 4;
  /// Alternate ranks measured (1 = 2nd preference, 2 = 3rd, ...).
  int max_rank = 2;
  /// Gaussian measurement noise on each RTT observation (ms).
  double noise_ms = 2.0;
  /// Rolling window per (prefix, rank).
  std::size_t window_samples = 64;
  /// Skip prefixes below this demand (not worth measuring).
  net::Bandwidth min_rate = net::Bandwidth::mbps(1);
};

class AltPathMeasurer {
 public:
  AltPathMeasurer(const topology::Pop& pop, const PerfModel& model,
                  MeasurerConfig config = {});

  /// One measurement round over the currently-demanded prefixes.
  void run_round(const telemetry::DemandMatrix& demand, net::SimTime now);

  struct PathReport {
    double median_rtt_ms = 0;
    double p90_rtt_ms = 0;
    std::size_t samples = 0;
  };

  /// Rolling report for (prefix, rank); rank 0 = primary path.
  std::optional<PathReport> report(const net::Prefix& prefix,
                                   int rank) const;

  /// All prefixes with at least `min_samples` on both rank 0 and `rank`,
  /// with the median RTT difference (alternate − primary); negative means
  /// the alternate is faster.
  std::vector<std::pair<net::Prefix, double>> alt_minus_primary(
      int rank, std::size_t min_samples) const;

  std::uint64_t observations() const { return observations_; }

 private:
  void observe(const net::Prefix& prefix, int rank, double rtt_ms);

  const topology::Pop* pop_;
  const PerfModel* model_;
  MeasurerConfig config_;
  PolicyRouter policy_;
  net::Rng rng_;
  std::map<std::pair<net::Prefix, int>, std::deque<double>> windows_;
  std::uint64_t observations_ = 0;
};

}  // namespace ef::altpath
