#include "altpath/measurer.h"

#include <algorithm>

namespace ef::altpath {

AltPathMeasurer::AltPathMeasurer(const topology::Pop& pop,
                                 const PerfModel& model,
                                 MeasurerConfig config)
    : pop_(&pop),
      model_(&model),
      config_(config),
      policy_(pop),
      rng_(config.seed) {}

void AltPathMeasurer::observe(const net::Prefix& prefix, int rank,
                              double rtt_ms) {
  auto& window = windows_[{prefix, rank}];
  window.push_back(rtt_ms);
  while (window.size() > config_.window_samples) window.pop_front();
  ++observations_;
}

void AltPathMeasurer::run_round(const telemetry::DemandMatrix& demand,
                                net::SimTime) {
  demand.for_each([&](const net::Prefix& prefix, net::Bandwidth rate) {
    if (rate < config_.min_rate) return;
    for (int rank = 0; rank <= config_.max_rank; ++rank) {
      const bgp::Route* route =
          policy_.natural_route(prefix, rank);
      if (!route) continue;
      const auto truth = model_->rtt_ms(prefix, *route);
      if (!truth) continue;
      const int samples = rank == 0 ? config_.primary_samples_per_round
                                    : config_.alternate_samples_per_round;
      for (int i = 0; i < samples; ++i) {
        observe(prefix, rank,
                std::max(0.5, *truth + rng_.normal(0, config_.noise_ms)));
      }
    }
  });
}

std::optional<AltPathMeasurer::PathReport> AltPathMeasurer::report(
    const net::Prefix& prefix, int rank) const {
  auto it = windows_.find({prefix, rank});
  if (it == windows_.end() || it->second.empty()) return std::nullopt;
  std::vector<double> sorted(it->second.begin(), it->second.end());
  std::sort(sorted.begin(), sorted.end());
  PathReport report;
  report.samples = sorted.size();
  report.median_rtt_ms = sorted[sorted.size() / 2];
  report.p90_rtt_ms = sorted[std::min(sorted.size() - 1,
                                      sorted.size() * 9 / 10)];
  return report;
}

std::vector<std::pair<net::Prefix, double>>
AltPathMeasurer::alt_minus_primary(int rank, std::size_t min_samples) const {
  std::vector<std::pair<net::Prefix, double>> diffs;
  for (const auto& [key, window] : windows_) {
    const auto& [prefix, key_rank] = key;
    if (key_rank != 0) continue;
    const auto primary = report(prefix, 0);
    const auto alternate = report(prefix, rank);
    if (!primary || !alternate) continue;
    if (primary->samples < min_samples || alternate->samples < min_samples) {
      continue;
    }
    diffs.emplace_back(prefix,
                       alternate->median_rtt_ms - primary->median_rtt_ms);
  }
  std::sort(diffs.begin(), diffs.end());
  return diffs;
}

}  // namespace ef::altpath
