// Ground-truth path performance: the stand-in for the real Internet's
// response to where we send traffic.
//
// RTT of (prefix, egress option) = the world's geographic/topological
// component + a congestion penalty that grows once the egress interface's
// utilization passes a knee, plus loss beyond capacity. This gives the
// measurement subsystem something honest to measure: alternates through
// idle ports genuinely beat a congested preferred path, which is the
// effect the paper's Fig. on alternate-path performance reports.
#pragma once

#include <map>
#include <optional>

#include "bgp/route.h"
#include "telemetry/interface.h"
#include "topology/pop.h"

namespace ef::altpath {

struct PerfModelConfig {
  /// Utilization where queueing delay becomes noticeable.
  double congestion_knee = 0.90;
  /// Added ms per unit of utilization above the knee (linear ramp);
  /// at util 1.0 with knee 0.9 this adds slope*0.1 ms.
  double congestion_slope_ms = 400.0;
  /// Cap on the queueing penalty (buffers are finite).
  double max_penalty_ms = 120.0;
};

class PerfModel {
 public:
  PerfModel(const topology::Pop& pop, PerfModelConfig config = {});

  /// Updates the utilization the congestion model sees. Call once per
  /// simulation step with the actual per-interface load.
  void set_interface_load(
      const std::map<telemetry::InterfaceId, net::Bandwidth>& load);

  /// Ground-truth RTT (ms) for traffic to `prefix` egressing via `route`,
  /// at current congestion. nullopt if the route has no egress mapping or
  /// the prefix has no known owner.
  std::optional<double> rtt_ms(const net::Prefix& prefix,
                               const bgp::Route& route) const;

  /// Loss rate on an interface: zero below capacity, excess fraction above.
  double loss_rate(telemetry::InterfaceId iface) const;

  /// Utilization (load / capacity) of an interface; 0 if never set.
  double utilization(telemetry::InterfaceId iface) const;

  const PerfModelConfig& config() const { return config_; }

 private:
  const topology::Pop* pop_;
  PerfModelConfig config_;
  std::map<telemetry::InterfaceId, net::Bandwidth> load_;
};

}  // namespace ef::altpath
