#include "altpath/perf_model.h"

#include <algorithm>

namespace ef::altpath {

PerfModel::PerfModel(const topology::Pop& pop, PerfModelConfig config)
    : pop_(&pop), config_(config) {}

void PerfModel::set_interface_load(
    const std::map<telemetry::InterfaceId, net::Bandwidth>& load) {
  load_ = load;
}

double PerfModel::utilization(telemetry::InterfaceId iface) const {
  auto it = load_.find(iface);
  if (it == load_.end()) return 0;
  const net::Bandwidth capacity = pop_->interfaces().capacity(iface);
  if (capacity <= net::Bandwidth::zero()) return 0;
  return it->second / capacity;
}

double PerfModel::loss_rate(telemetry::InterfaceId iface) const {
  const double util = utilization(iface);
  if (util <= 1.0) return 0;
  return 1.0 - 1.0 / util;  // excess fraction dropped
}

std::optional<double> PerfModel::rtt_ms(const net::Prefix& prefix,
                                        const bgp::Route& route) const {
  const auto egress = pop_->egress_of_route(route);
  if (!egress) return std::nullopt;
  const auto client = pop_->world().client_of_prefix(prefix);
  if (!client) return std::nullopt;

  const double base = pop_->world().path_rtt_ms(pop_->index(),
                                                egress->peering, *client);
  const double util = utilization(egress->interface);
  double penalty = 0;
  if (util > config_.congestion_knee) {
    penalty = std::min(config_.max_penalty_ms,
                       (util - config_.congestion_knee) *
                           config_.congestion_slope_ms);
  }
  return base + penalty;
}

}  // namespace ef::altpath
