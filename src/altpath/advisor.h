// Performance-aware steering: turns alternate-path measurements into
// override recommendations for the controller (paper §6's extension of
// the capacity-driven allocator).
#pragma once

#include <vector>

#include "altpath/measurer.h"
#include "core/allocator.h"

namespace ef::altpath {

struct AdvisorConfig {
  /// An alternate must beat the primary's median RTT by at least this
  /// many ms before we steer (avoids flapping on noise).
  double min_improvement_ms = 5.0;
  /// Minimum samples on both paths before acting.
  std::size_t min_samples = 16;
  /// Highest alternate rank considered.
  int max_rank = 2;
  /// Skip prefixes below this demand.
  net::Bandwidth min_rate = net::Bandwidth::mbps(1);
};

class PerfAwareAdvisor {
 public:
  PerfAwareAdvisor(const topology::Pop& pop, const AltPathMeasurer& measurer,
                   AdvisorConfig config = {});

  /// Recommended performance overrides for the current demand. The
  /// controller enforces capacity headroom; this only proposes.
  std::vector<core::Override> advise(
      const telemetry::DemandMatrix& demand) const;

 private:
  const topology::Pop* pop_;
  const AltPathMeasurer* measurer_;
  AdvisorConfig config_;
  PolicyRouter policy_;
};

}  // namespace ef::altpath
