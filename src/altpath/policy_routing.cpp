#include "altpath/policy_routing.h"

#include "net/log.h"

namespace ef::altpath {

std::vector<const bgp::Route*> PolicyRouter::natural_ranked(
    const net::Prefix& prefix) const {
  std::vector<const bgp::Route*> natural;
  for (const bgp::Route* route : pop_->ranked_routes(prefix)) {
    if (route->peer_type != bgp::PeerType::kController) {
      natural.push_back(route);
    }
  }
  return natural;
}

const bgp::Route* PolicyRouter::route(const net::Prefix& prefix,
                                      std::uint8_t dscp) const {
  if (dscp == 0) {
    // Normal forwarding, overrides included.
    return pop_->collector().rib().best(prefix);
  }
  return natural_route(prefix, dscp);  // dscp k -> k-th alternate
}

const bgp::Route* PolicyRouter::natural_route(const net::Prefix& prefix,
                                              int rank) const {
  const auto natural = natural_ranked(prefix);
  if (rank < 0 || natural.size() <= static_cast<std::size_t>(rank)) {
    return nullptr;
  }
  return natural[static_cast<std::size_t>(rank)];
}

std::optional<topology::Pop::Egress> PolicyRouter::egress(
    const net::Prefix& prefix, std::uint8_t dscp) const {
  const bgp::Route* selected = route(prefix, dscp);
  if (!selected) return std::nullopt;
  return pop_->egress_of_route(*selected);
}

std::size_t PolicyRouter::path_count(const net::Prefix& prefix) const {
  return natural_ranked(prefix).size();
}

DscpMarker::DscpMarker(double fraction_per_rank, int max_rank,
                       std::uint64_t seed)
    : fraction_per_rank_(fraction_per_rank),
      max_rank_(max_rank),
      rng_(seed) {
  EF_CHECK(fraction_per_rank >= 0 && fraction_per_rank * max_rank <= 1.0,
           "DSCP marking fractions exceed 1");
  EF_CHECK(max_rank >= 1 && max_rank <= 63, "DSCP rank out of range");
}

std::uint8_t DscpMarker::mark() {
  const double u = rng_.next_double();
  for (int k = 1; k <= max_rank_; ++k) {
    if (u < fraction_per_rank_ * k) return static_cast<std::uint8_t>(k);
  }
  return 0;
}

}  // namespace ef::altpath
