#include "altpath/advisor.h"

namespace ef::altpath {

PerfAwareAdvisor::PerfAwareAdvisor(const topology::Pop& pop,
                                   const AltPathMeasurer& measurer,
                                   AdvisorConfig config)
    : pop_(&pop), measurer_(&measurer), config_(config), policy_(pop) {}

std::vector<core::Override> PerfAwareAdvisor::advise(
    const telemetry::DemandMatrix& demand) const {
  std::vector<core::Override> overrides;

  demand.for_each([&](const net::Prefix& prefix, net::Bandwidth rate) {
    if (rate < config_.min_rate) return;
    const auto primary = measurer_->report(prefix, 0);
    if (!primary || primary->samples < config_.min_samples) return;

    // Pick the best-measured alternate that clears the improvement bar.
    int best_rank = 0;
    double best_median = primary->median_rtt_ms - config_.min_improvement_ms;
    for (int rank = 1; rank <= config_.max_rank; ++rank) {
      const auto alt = measurer_->report(prefix, rank);
      if (!alt || alt->samples < config_.min_samples) continue;
      if (alt->median_rtt_ms < best_median) {
        best_median = alt->median_rtt_ms;
        best_rank = rank;
      }
    }
    if (best_rank == 0) return;

    const bgp::Route* primary_route = policy_.natural_route(prefix, 0);
    const bgp::Route* alt_route =
        policy_.natural_route(prefix, best_rank);
    if (!primary_route || !alt_route) return;
    const auto from = pop_->egress_of_route(*primary_route);
    const auto target = pop_->egress_of_route(*alt_route);
    if (!from || !target || from->interface == target->interface) return;

    core::Override override_entry;
    override_entry.prefix = prefix;
    override_entry.rate = rate;
    override_entry.next_hop = alt_route->attrs.next_hop;
    override_entry.as_path = alt_route->attrs.as_path;
    override_entry.from_interface = from->interface;
    override_entry.target_interface = target->interface;
    override_entry.from_type = from->type;
    override_entry.target_type = target->type;
    overrides.push_back(std::move(override_entry));
  });

  return overrides;
}

}  // namespace ef::altpath
