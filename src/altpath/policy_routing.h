// DSCP-based policy routing: the router-side half of alternate-path
// measurement.
//
// The paper's servers stamp a small fraction of flows with DSCP values;
// peering routers carry policy routes that send DSCP k onto the k-th
// BGP-preferred path instead of the best one. PolicyRouter reproduces
// that forwarding behaviour on top of the PoP's RIB; DscpMarker is the
// host-side stamping.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/rng.h"
#include "topology/pop.h"

namespace ef::altpath {

/// DSCP 0 = normal forwarding; DSCP k (1-based) = use the k-th ranked
/// *natural* path (controller overrides excluded, as in the paper: the
/// measurement must see BGP's view, not Edge Fabric's).
class PolicyRouter {
 public:
  explicit PolicyRouter(const topology::Pop& pop) : pop_(&pop) {}

  /// The route DSCP `dscp` would take for `prefix`; nullptr if there is
  /// no such path (fewer than dscp+1 natural routes).
  const bgp::Route* route(const net::Prefix& prefix, std::uint8_t dscp) const;

  /// The `rank`-th natural path regardless of active overrides (rank 0 =
  /// BGP's preferred path). This is what measurement compares against:
  /// an active override must not hide the path it replaced.
  const bgp::Route* natural_route(const net::Prefix& prefix, int rank) const;

  /// The egress that route resolves to.
  std::optional<topology::Pop::Egress> egress(const net::Prefix& prefix,
                                              std::uint8_t dscp) const;

  /// Number of natural (non-controller) routes available for `prefix`.
  std::size_t path_count(const net::Prefix& prefix) const;

 private:
  std::vector<const bgp::Route*> natural_ranked(
      const net::Prefix& prefix) const;
  const topology::Pop* pop_;
};

/// Stamps outgoing flows: with probability `fraction_per_rank` each, a
/// flow is assigned DSCP 1..max_rank; otherwise DSCP 0 (default path).
class DscpMarker {
 public:
  DscpMarker(double fraction_per_rank, int max_rank, std::uint64_t seed);

  std::uint8_t mark();

  double fraction_per_rank() const { return fraction_per_rank_; }
  int max_rank() const { return max_rank_; }

 private:
  double fraction_per_rank_;
  int max_rank_;
  net::Rng rng_;
};

}  // namespace ef::altpath
