// Per-destination-prefix traffic demand: the common currency between the
// workload generator, the sFlow pipeline, and the Edge Fabric allocator.
#pragma once

#include <functional>
#include <unordered_map>

#include "net/prefix.h"
#include "net/units.h"

namespace ef::telemetry {

/// Egress demand per destination prefix at one PoP, in bits per second.
class DemandMatrix {
 public:
  void set(const net::Prefix& prefix, net::Bandwidth rate);
  void add(const net::Prefix& prefix, net::Bandwidth rate);

  /// Zero for unknown prefixes.
  net::Bandwidth rate(const net::Prefix& prefix) const;

  net::Bandwidth total() const;
  std::size_t prefix_count() const { return rates_.size(); }

  void for_each(
      const std::function<void(const net::Prefix&, net::Bandwidth)>& fn)
      const;

  void clear() { rates_.clear(); }

 private:
  std::unordered_map<net::Prefix, net::Bandwidth> rates_;
};

/// Exponentially smooths successive demand estimates. Sampled telemetry
/// (sFlow) is noisy per window; the controller consumes a smoothed view,
/// as the production pipeline averages over collection windows.
class DemandSmoother {
 public:
  /// `alpha` is the weight of the newest window (0 < alpha <= 1).
  explicit DemandSmoother(double alpha) : alpha_(alpha) {}

  /// Folds in one window's estimate and returns the smoothed matrix.
  const DemandMatrix& update(const DemandMatrix& estimate);

  const DemandMatrix& current() const { return smoothed_; }
  void reset() { smoothed_.clear(); }

 private:
  double alpha_;
  DemandMatrix smoothed_;
};

}  // namespace ef::telemetry
