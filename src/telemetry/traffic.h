// Per-destination-prefix traffic demand: the common currency between the
// workload generator, the sFlow pipeline, and the Edge Fabric allocator.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/prefix.h"
#include "net/units.h"

namespace ef::telemetry {

/// Egress demand per destination prefix at one PoP, in bits per second.
///
/// Every stored rate is quantized to an integral number of bits per
/// second (sub-bps resolution is below anything the sampled telemetry
/// can distinguish). Integral doubles below 2^53 sum exactly, so any
/// sum over demand rates — total(), the allocator's per-interface
/// projections — is independent of summation order. That is the
/// property the incremental allocation ledger leans on: subtracting a
/// prefix's old rate and adding its new one lands on bitwise the same
/// load a full in-order recompute produces.
class DemandMatrix {
 public:
  DemandMatrix() = default;
  /// Copies get a fresh instance_id(): the copy's traversal order is not
  /// guaranteed to match the source's, so caches keyed on the source must
  /// not carry over. Moves keep the id (the table moves wholesale).
  DemandMatrix(const DemandMatrix& other);
  DemandMatrix& operator=(const DemandMatrix& other);
  DemandMatrix(DemandMatrix&&) = default;
  DemandMatrix& operator=(DemandMatrix&&) = default;

  void set(const net::Prefix& prefix, net::Bandwidth rate);
  void add(const net::Prefix& prefix, net::Bandwidth rate);

  /// Multiplies every rate in place; membership (and therefore traversal
  /// order and membership_epoch()) is untouched.
  void scale(double factor);

  /// Zero for unknown prefixes.
  net::Bandwidth rate(const net::Prefix& prefix) const;

  /// Pointer to the stored rate, or nullptr for unknown prefixes — lets
  /// hot paths distinguish "absent" from "zero" with a single lookup.
  const net::Bandwidth* find(const net::Prefix& prefix) const;

  net::Bandwidth total() const;
  std::size_t prefix_count() const { return rates_.size(); }

  void for_each(
      const std::function<void(const net::Prefix&, net::Bandwidth)>& fn)
      const;

  /// Same traversal as for_each() but statically dispatched, for hot
  /// paths that walk every entry each cycle (the allocator's rate
  /// refresh) and cannot afford a type-erased call per element.
  template <typename Fn>
  void visit(Fn&& fn) const {
    for (const auto& [prefix, rate] : rates_) fn(prefix, rate);
  }

  void clear() {
    rates_.clear();
    ++membership_epoch_;
    invalidate_change_log();
  }

  /// Moves whenever the *prefix set* may have changed (insert or clear);
  /// rate-only set()/add()/scale() calls leave it alone. While
  /// (instance_id(), membership_epoch()) is unchanged the for_each
  /// traversal order is stable, which lets the allocator's workspace
  /// cache its demand traversal mapping across rate refreshes.
  std::uint64_t membership_epoch() const { return membership_epoch_; }

  /// Process-unique identity of this matrix (see the copy constructor).
  std::uint64_t instance_id() const { return instance_id_; }

  /// Monotonic cursor into the changed-prefix log — the demand-side
  /// twin of bgp::Rib::change_seq(). set()/add() log a prefix only when
  /// its stored rate actually changes; scale(1.0) is a no-op; scale()
  /// with any other factor and clear() invalidate the log wholesale
  /// (every outstanding cursor reads kTooOld). The log is a sliding
  /// window (kChangeLogCap): overflow sheds the oldest half, so only
  /// cursors that fell behind the window — not every consumer — pay a
  /// full resync under sustained churn.
  std::uint64_t change_seq() const { return change_seq_; }

  enum class ChangeLogStatus { kOk, kTooOld };

  /// Replays the changed-prefix log after cursor `since` (exclusive);
  /// repeated mutations of one prefix appear repeatedly, callers dedup.
  /// Each entry carries the stored rate immediately after that mutation,
  /// so the LAST entry replayed for a prefix equals its current rate —
  /// consumers that keep only the newest entry per prefix never need a
  /// rate lookup. (A later remove-by-clear() invalidates the log, so a
  /// kOk replay can never hand out a stale rate.)
  ChangeLogStatus changes_since(
      std::uint64_t since,
      const std::function<void(const net::Prefix&, net::Bandwidth)>& fn)
      const;

 private:
  static std::uint64_t next_instance_id();

  void log_change(const net::Prefix& prefix, net::Bandwidth rate_after);
  void invalidate_change_log() {
    ++change_seq_;
    change_log_.clear();
    log_floor_ = change_seq_;
  }

  static constexpr std::size_t kChangeLogCap = std::size_t{1} << 18;

  std::unordered_map<net::Prefix, net::Bandwidth> rates_;
  std::uint64_t membership_epoch_ = 0;
  std::uint64_t instance_id_ = next_instance_id();
  std::vector<std::pair<net::Prefix, net::Bandwidth>> change_log_;
  std::uint64_t change_seq_ = 0;
  std::uint64_t log_floor_ = 0;
};

/// Exponentially smooths successive demand estimates. Sampled telemetry
/// (sFlow) is noisy per window; the controller consumes a smoothed view,
/// as the production pipeline averages over collection windows.
class DemandSmoother {
 public:
  /// `alpha` is the weight of the newest window (0 < alpha <= 1).
  explicit DemandSmoother(double alpha) : alpha_(alpha) {}

  /// Folds in one window's estimate and returns the smoothed matrix.
  const DemandMatrix& update(const DemandMatrix& estimate);

  const DemandMatrix& current() const { return smoothed_; }
  void reset() { smoothed_.clear(); }

 private:
  double alpha_;
  DemandMatrix smoothed_;
};

}  // namespace ef::telemetry
