// Per-destination-prefix traffic demand: the common currency between the
// workload generator, the sFlow pipeline, and the Edge Fabric allocator.
#pragma once

#include <functional>
#include <unordered_map>

#include "net/prefix.h"
#include "net/units.h"

namespace ef::telemetry {

/// Egress demand per destination prefix at one PoP, in bits per second.
class DemandMatrix {
 public:
  DemandMatrix() = default;
  /// Copies get a fresh instance_id(): the copy's traversal order is not
  /// guaranteed to match the source's, so caches keyed on the source must
  /// not carry over. Moves keep the id (the table moves wholesale).
  DemandMatrix(const DemandMatrix& other);
  DemandMatrix& operator=(const DemandMatrix& other);
  DemandMatrix(DemandMatrix&&) = default;
  DemandMatrix& operator=(DemandMatrix&&) = default;

  void set(const net::Prefix& prefix, net::Bandwidth rate);
  void add(const net::Prefix& prefix, net::Bandwidth rate);

  /// Multiplies every rate in place; membership (and therefore traversal
  /// order and membership_epoch()) is untouched.
  void scale(double factor);

  /// Zero for unknown prefixes.
  net::Bandwidth rate(const net::Prefix& prefix) const;

  /// Pointer to the stored rate, or nullptr for unknown prefixes — lets
  /// hot paths distinguish "absent" from "zero" with a single lookup.
  const net::Bandwidth* find(const net::Prefix& prefix) const;

  net::Bandwidth total() const;
  std::size_t prefix_count() const { return rates_.size(); }

  void for_each(
      const std::function<void(const net::Prefix&, net::Bandwidth)>& fn)
      const;

  /// Same traversal as for_each() but statically dispatched, for hot
  /// paths that walk every entry each cycle (the allocator's rate
  /// refresh) and cannot afford a type-erased call per element.
  template <typename Fn>
  void visit(Fn&& fn) const {
    for (const auto& [prefix, rate] : rates_) fn(prefix, rate);
  }

  void clear() {
    rates_.clear();
    ++membership_epoch_;
  }

  /// Moves whenever the *prefix set* may have changed (insert or clear);
  /// rate-only set()/add()/scale() calls leave it alone. While
  /// (instance_id(), membership_epoch()) is unchanged the for_each
  /// traversal order is stable, which lets the allocator's workspace
  /// cache its demand traversal mapping across rate refreshes.
  std::uint64_t membership_epoch() const { return membership_epoch_; }

  /// Process-unique identity of this matrix (see the copy constructor).
  std::uint64_t instance_id() const { return instance_id_; }

 private:
  static std::uint64_t next_instance_id();

  std::unordered_map<net::Prefix, net::Bandwidth> rates_;
  std::uint64_t membership_epoch_ = 0;
  std::uint64_t instance_id_ = next_instance_id();
};

/// Exponentially smooths successive demand estimates. Sampled telemetry
/// (sFlow) is noisy per window; the controller consumes a smoothed view,
/// as the production pipeline averages over collection windows.
class DemandSmoother {
 public:
  /// `alpha` is the weight of the newest window (0 < alpha <= 1).
  explicit DemandSmoother(double alpha) : alpha_(alpha) {}

  /// Folds in one window's estimate and returns the smoothed matrix.
  const DemandMatrix& update(const DemandMatrix& estimate);

  const DemandMatrix& current() const { return smoothed_; }
  void reset() { smoothed_.clear(); }

 private:
  double alpha_;
  DemandMatrix smoothed_;
};

}  // namespace ef::telemetry
