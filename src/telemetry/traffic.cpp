#include "telemetry/traffic.h"

namespace ef::telemetry {

void DemandMatrix::set(const net::Prefix& prefix, net::Bandwidth rate) {
  rates_[prefix] = rate;
}

void DemandMatrix::add(const net::Prefix& prefix, net::Bandwidth rate) {
  rates_[prefix] += rate;
}

net::Bandwidth DemandMatrix::rate(const net::Prefix& prefix) const {
  auto it = rates_.find(prefix);
  return it == rates_.end() ? net::Bandwidth::zero() : it->second;
}

net::Bandwidth DemandMatrix::total() const {
  net::Bandwidth sum;
  for (const auto& [prefix, rate] : rates_) sum += rate;
  return sum;
}

void DemandMatrix::for_each(
    const std::function<void(const net::Prefix&, net::Bandwidth)>& fn) const {
  for (const auto& [prefix, rate] : rates_) fn(prefix, rate);
}

const DemandMatrix& DemandSmoother::update(const DemandMatrix& estimate) {
  // Decay every existing entry, then blend in the new window. Prefixes
  // absent from the new estimate decay toward zero rather than sticking.
  DemandMatrix next;
  smoothed_.for_each([&](const net::Prefix& prefix, net::Bandwidth rate) {
    next.set(prefix, rate * (1.0 - alpha_));
  });
  estimate.for_each([&](const net::Prefix& prefix, net::Bandwidth rate) {
    next.add(prefix, rate * alpha_);
  });
  smoothed_ = std::move(next);
  return smoothed_;
}

}  // namespace ef::telemetry
