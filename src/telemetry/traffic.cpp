#include "telemetry/traffic.h"

#include <atomic>

namespace ef::telemetry {

std::uint64_t DemandMatrix::next_instance_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

DemandMatrix::DemandMatrix(const DemandMatrix& other)
    : rates_(other.rates_), membership_epoch_(other.membership_epoch_) {}

DemandMatrix& DemandMatrix::operator=(const DemandMatrix& other) {
  if (this != &other) {
    rates_ = other.rates_;
    membership_epoch_ = other.membership_epoch_;
    instance_id_ = next_instance_id();
  }
  return *this;
}

void DemandMatrix::set(const net::Prefix& prefix, net::Bandwidth rate) {
  if (rates_.insert_or_assign(prefix, rate).second) ++membership_epoch_;
}

void DemandMatrix::add(const net::Prefix& prefix, net::Bandwidth rate) {
  auto [it, inserted] = rates_.try_emplace(prefix);
  it->second += rate;
  if (inserted) ++membership_epoch_;
}

void DemandMatrix::scale(double factor) {
  for (auto& [prefix, rate] : rates_) rate = rate * factor;
}

net::Bandwidth DemandMatrix::rate(const net::Prefix& prefix) const {
  auto it = rates_.find(prefix);
  return it == rates_.end() ? net::Bandwidth::zero() : it->second;
}

const net::Bandwidth* DemandMatrix::find(const net::Prefix& prefix) const {
  auto it = rates_.find(prefix);
  return it == rates_.end() ? nullptr : &it->second;
}

net::Bandwidth DemandMatrix::total() const {
  net::Bandwidth sum;
  for (const auto& [prefix, rate] : rates_) sum += rate;
  return sum;
}

void DemandMatrix::for_each(
    const std::function<void(const net::Prefix&, net::Bandwidth)>& fn) const {
  for (const auto& [prefix, rate] : rates_) fn(prefix, rate);
}

const DemandMatrix& DemandSmoother::update(const DemandMatrix& estimate) {
  // Decay every existing entry, then blend in the new window. Prefixes
  // absent from the new estimate decay toward zero rather than sticking.
  // Done in place (same arithmetic as rebuilding from scratch) so the
  // matrix keeps its identity across windows: when the prefix membership
  // is stable, downstream caches keyed on (instance_id, membership_epoch)
  // — the allocator workspace's demand traversal mapping — stay valid.
  smoothed_.scale(1.0 - alpha_);
  estimate.for_each([&](const net::Prefix& prefix, net::Bandwidth rate) {
    smoothed_.add(prefix, rate * alpha_);
  });
  return smoothed_;
}

}  // namespace ef::telemetry
