#include "telemetry/traffic.h"

#include <atomic>
#include <cmath>

namespace ef::telemetry {

namespace {

/// Rate quantization: integral bits per second (see the class comment).
net::Bandwidth quantize(net::Bandwidth rate) {
  return net::Bandwidth::bps(
      static_cast<double>(std::llround(rate.bits_per_sec())));
}

}  // namespace

std::uint64_t DemandMatrix::next_instance_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

DemandMatrix::DemandMatrix(const DemandMatrix& other)
    : rates_(other.rates_),
      membership_epoch_(other.membership_epoch_),
      change_log_(other.change_log_),
      change_seq_(other.change_seq_),
      log_floor_(other.log_floor_) {}

DemandMatrix& DemandMatrix::operator=(const DemandMatrix& other) {
  if (this != &other) {
    rates_ = other.rates_;
    membership_epoch_ = other.membership_epoch_;
    change_log_ = other.change_log_;
    change_seq_ = other.change_seq_;
    log_floor_ = other.log_floor_;
    instance_id_ = next_instance_id();
  }
  return *this;
}

void DemandMatrix::log_change(const net::Prefix& prefix,
                              net::Bandwidth rate_after) {
  if (change_log_.size() >= kChangeLogCap) {
    // Sliding retention: shed the oldest half instead of invalidating
    // wholesale. Cursors within the retained window replay as if nothing
    // happened; only consumers further behind than the window read
    // kTooOld. A steady consumer that drains every cycle therefore never
    // sees an artificial full-resync, no matter how long it runs.
    const std::size_t drop = kChangeLogCap / 2;
    change_log_.erase(change_log_.begin(),
                      change_log_.begin() + static_cast<std::ptrdiff_t>(drop));
    log_floor_ += drop;
  }
  ++change_seq_;
  change_log_.emplace_back(prefix, rate_after);
}

DemandMatrix::ChangeLogStatus DemandMatrix::changes_since(
    std::uint64_t since,
    const std::function<void(const net::Prefix&, net::Bandwidth)>& fn) const {
  if (since < log_floor_) return ChangeLogStatus::kTooOld;
  for (std::uint64_t seq = since + 1; seq <= change_seq_; ++seq) {
    const auto& [prefix, rate_after] =
        change_log_[static_cast<std::size_t>(seq - log_floor_ - 1)];
    fn(prefix, rate_after);
  }
  return ChangeLogStatus::kOk;
}

void DemandMatrix::set(const net::Prefix& prefix, net::Bandwidth rate) {
  const net::Bandwidth stored = quantize(rate);
  auto [it, inserted] = rates_.try_emplace(prefix, stored);
  if (inserted) {
    ++membership_epoch_;
    log_change(prefix, stored);
    return;
  }
  // Value-comparing assign: a resend of an unchanged rate (the direct
  // sFlow feed re-reporting a stable prefix every window) costs no log
  // entry, which is what keeps steady-state dirty sets proportional to
  // real drift rather than feed size.
  if (it->second == stored) return;
  it->second = stored;
  log_change(prefix, stored);
}

void DemandMatrix::add(const net::Prefix& prefix, net::Bandwidth rate) {
  auto [it, inserted] = rates_.try_emplace(prefix);
  if (inserted) {
    it->second = quantize(rate);
    ++membership_epoch_;
    log_change(prefix, it->second);
    return;
  }
  const net::Bandwidth updated = quantize(it->second + rate);
  if (it->second == updated) return;  // delta rounds to nothing
  it->second = updated;
  log_change(prefix, updated);
}

void DemandMatrix::scale(double factor) {
  if (factor == 1.0) return;
  for (auto& [prefix, rate] : rates_) rate = quantize(rate * factor);
  // Every entry changed: cheaper to invalidate than to log the world.
  invalidate_change_log();
}

net::Bandwidth DemandMatrix::rate(const net::Prefix& prefix) const {
  auto it = rates_.find(prefix);
  return it == rates_.end() ? net::Bandwidth::zero() : it->second;
}

const net::Bandwidth* DemandMatrix::find(const net::Prefix& prefix) const {
  auto it = rates_.find(prefix);
  return it == rates_.end() ? nullptr : &it->second;
}

net::Bandwidth DemandMatrix::total() const {
  net::Bandwidth sum;
  for (const auto& [prefix, rate] : rates_) sum += rate;
  return sum;
}

void DemandMatrix::for_each(
    const std::function<void(const net::Prefix&, net::Bandwidth)>& fn) const {
  for (const auto& [prefix, rate] : rates_) fn(prefix, rate);
}

const DemandMatrix& DemandSmoother::update(const DemandMatrix& estimate) {
  // Decay every existing entry, then blend in the new window. Prefixes
  // absent from the new estimate decay toward zero rather than sticking.
  // Done in place (same arithmetic as rebuilding from scratch) so the
  // matrix keeps its identity across windows: when the prefix membership
  // is stable, downstream caches keyed on (instance_id, membership_epoch)
  // — the allocator workspace's demand traversal mapping — stay valid.
  smoothed_.scale(1.0 - alpha_);
  estimate.for_each([&](const net::Prefix& prefix, net::Bandwidth rate) {
    smoothed_.add(prefix, rate * alpha_);
  });
  return smoothed_;
}

}  // namespace ef::telemetry
