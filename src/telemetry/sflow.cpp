#include "telemetry/sflow.h"

#include "net/log.h"

namespace ef::telemetry {

SflowSampler::SflowSampler(std::uint32_t sample_rate, std::uint64_t seed,
                           EmitFn emit)
    : sample_rate_(sample_rate), rng_(seed), emit_(std::move(emit)) {
  EF_CHECK(sample_rate_ >= 1, "sample rate must be >= 1");
  EF_CHECK(emit_ != nullptr, "sampler requires an emit sink");
}

void SflowSampler::offer(const FlowSample& packet) {
  ++offered_;
  if (sample_rate_ == 1 || rng_.bernoulli(1.0 / sample_rate_)) {
    ++emitted_;
    emit_(packet);
  }
}

TrafficAggregator::TrafficAggregator(
    const net::PrefixTrie<net::Prefix>& prefix_table,
    std::uint32_t sample_rate)
    : prefix_table_(prefix_table), sample_rate_(sample_rate) {
  EF_CHECK(sample_rate_ >= 1, "sample rate must be >= 1");
}

void TrafficAggregator::ingest(const FlowSample& sample) {
  const auto match = prefix_table_.longest_match(sample.dst);
  if (!match) {
    ++unmatched_;
    return;
  }
  window_bytes_[*match->second] += sample.packet_bytes;
}

DemandMatrix TrafficAggregator::finalize_window(net::SimTime now) {
  DemandMatrix demand;
  const double secs = (now - window_start_).seconds_value();
  if (secs > 0) {
    for (const auto& [prefix, bytes] : window_bytes_) {
      // Scale sampled bytes back up by the sampling rate.
      const double bps = static_cast<double>(bytes) *
                         static_cast<double>(sample_rate_) * 8.0 / secs;
      demand.set(prefix, net::Bandwidth::bps(bps));
    }
  }
  window_bytes_.clear();
  window_start_ = now;
  return demand;
}

}  // namespace ef::telemetry
