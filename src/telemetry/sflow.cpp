#include "telemetry/sflow.h"

#include <algorithm>

#include "net/log.h"

namespace ef::telemetry {

SflowSampler::SflowSampler(std::uint32_t sample_rate, std::uint64_t seed,
                           EmitFn emit)
    : sample_rate_(sample_rate), rng_(seed), emit_(std::move(emit)) {
  EF_CHECK(sample_rate_ >= 1, "sample rate must be >= 1");
  EF_CHECK(emit_ != nullptr, "sampler requires an emit sink");
}

void SflowSampler::set_size_threshold(double bytes) {
  EF_CHECK(bytes > 0, "size threshold must be > 0");
  size_threshold_ = bytes;
}

void SflowSampler::offer(const FlowSample& packet) {
  ++offered_;
  if (size_threshold_ > 0.0) {
    const double p =
        static_cast<double>(packet.packet_bytes) / size_threshold_;
    if (p >= 1.0 || rng_.bernoulli(p)) {
      ++emitted_;
      emit_(packet);
    }
    return;
  }
  if (sample_rate_ == 1 || rng_.bernoulli(1.0 / sample_rate_)) {
    ++emitted_;
    emit_(packet);
  }
}

TrafficAggregator::TrafficAggregator(
    const net::PrefixTrie<net::Prefix>& prefix_table,
    std::uint32_t sample_rate)
    : prefix_table_(prefix_table), sample_rate_(sample_rate) {
  EF_CHECK(sample_rate_ >= 1, "sample rate must be >= 1");
}

void TrafficAggregator::set_size_threshold(double bytes) {
  EF_CHECK(bytes > 0, "size threshold must be > 0");
  size_threshold_ = bytes;
}

void TrafficAggregator::ingest(const FlowSample& sample) {
  const auto match = prefix_table_.longest_match(sample.dst);
  if (!match) {
    ++unmatched_;
    return;
  }
  if (size_threshold_ > 0.0) {
    // Smart sampling: an elephant (b >= z, sampled surely) is credited
    // exactly; a mouse (b < z, sampled w.p. b/z) is credited z, making
    // the contribution unbiased at b with variance <= z*b.
    window_bytes_[*match->second] += static_cast<std::uint64_t>(
        std::max(static_cast<double>(sample.packet_bytes), size_threshold_));
    return;
  }
  window_bytes_[*match->second] += sample.packet_bytes;
}

DemandMatrix TrafficAggregator::finalize_window(net::SimTime now) {
  DemandMatrix demand;
  const double secs = (now - window_start_).seconds_value();
  if (secs > 0) {
    // Smart-sampling windows are already per-sample scaled at ingest;
    // uniform windows scale back up by the sampling rate here.
    const double scale =
        size_threshold_ > 0.0 ? 1.0 : static_cast<double>(sample_rate_);
    for (const auto& [prefix, bytes] : window_bytes_) {
      const double bps = static_cast<double>(bytes) * scale * 8.0 / secs;
      demand.set(prefix, net::Bandwidth::bps(bps));
    }
  }
  window_bytes_.clear();
  window_start_ = now;
  return demand;
}

}  // namespace ef::telemetry
