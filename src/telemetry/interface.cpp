#include "telemetry/interface.h"

#include "net/log.h"

namespace ef::telemetry {

void InterfaceRegistry::add(InterfaceId id, net::Bandwidth capacity) {
  EF_CHECK(!interfaces_.contains(id),
           "duplicate interface id " << id.value());
  interfaces_[id] = InterfaceState{capacity, false};
  dense_ids_.clear();
  dense_index_.clear();
  dense_ids_.reserve(interfaces_.size());
  for (const auto& [existing, state] : interfaces_) {
    dense_index_[existing] = dense_ids_.size();
    dense_ids_.push_back(existing);
  }
}

std::size_t InterfaceRegistry::index_of(InterfaceId id) const {
  auto it = dense_index_.find(id);
  EF_CHECK(it != dense_index_.end(), "unknown interface " << id.value());
  return it->second;
}

InterfaceId InterfaceRegistry::id_at(std::size_t index) const {
  EF_CHECK(index < dense_ids_.size(),
           "interface index " << index << " out of range");
  return dense_ids_[index];
}

bool InterfaceRegistry::contains(InterfaceId id) const {
  return interfaces_.contains(id);
}

const InterfaceState& InterfaceRegistry::get(InterfaceId id) const {
  auto it = interfaces_.find(id);
  EF_CHECK(it != interfaces_.end(), "unknown interface " << id.value());
  return it->second;
}

net::Bandwidth InterfaceRegistry::capacity(InterfaceId id) const {
  return get(id).capacity;
}

net::Bandwidth InterfaceRegistry::usable_capacity(InterfaceId id) const {
  const InterfaceState& state = get(id);
  return state.drained ? net::Bandwidth::zero() : state.capacity;
}

void InterfaceRegistry::set_drained(InterfaceId id, bool drained) {
  auto it = interfaces_.find(id);
  EF_CHECK(it != interfaces_.end(), "unknown interface " << id.value());
  it->second.drained = drained;
}

bool InterfaceRegistry::drained(InterfaceId id) const {
  return get(id).drained;
}

void InterfaceRegistry::for_each(
    const std::function<void(InterfaceId, const InterfaceState&)>& fn) const {
  for (const auto& [id, state] : interfaces_) fn(id, state);
}

void InterfaceCounters::record(InterfaceId iface, std::uint64_t bytes) {
  counters_[iface].bytes += bytes;
}

void InterfaceCounters::record_drop(InterfaceId iface, std::uint64_t bytes) {
  counters_[iface].dropped += bytes;
}

std::map<InterfaceId, InterfaceCounters::Rates> InterfaceCounters::poll(
    net::SimTime now) {
  std::map<InterfaceId, Rates> rates;
  const double secs = (now - last_poll_).seconds_value();
  for (auto& [iface, counter] : counters_) {
    Rates r;
    if (secs > 0) {
      r.tx = net::Bandwidth::bps(
          static_cast<double>(counter.bytes - counter.bytes_at_poll) * 8.0 /
          secs);
      r.dropped = net::Bandwidth::bps(
          static_cast<double>(counter.dropped - counter.dropped_at_poll) *
          8.0 / secs);
    }
    counter.bytes_at_poll = counter.bytes;
    counter.dropped_at_poll = counter.dropped;
    rates[iface] = r;
  }
  last_poll_ = now;
  return rates;
}

std::uint64_t InterfaceCounters::total_bytes(InterfaceId iface) const {
  auto it = counters_.find(iface);
  return it == counters_.end() ? 0 : it->second.bytes;
}

std::uint64_t InterfaceCounters::total_dropped(InterfaceId iface) const {
  auto it = counters_.find(iface);
  return it == counters_.end() ? 0 : it->second.dropped;
}

}  // namespace ef::telemetry
