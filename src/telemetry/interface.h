// Egress interface identities, capacity/drain registry, and SNMP-style
// byte counters.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/units.h"

namespace ef::telemetry {

/// Identifies one physical egress interface (a PNI port, an IXP-fabric
/// port, or a transit port) within a PoP.
class InterfaceId {
 public:
  constexpr InterfaceId() = default;
  explicit constexpr InterfaceId(std::uint32_t value) : value_(value) {}
  constexpr std::uint32_t value() const { return value_; }
  friend constexpr auto operator<=>(InterfaceId, InterfaceId) = default;

 private:
  std::uint32_t value_ = 0;
};

struct InterfaceState {
  net::Bandwidth capacity;
  /// Drained interfaces accept no new traffic (maintenance); the
  /// controller must steer everything away from them.
  bool drained = false;
};

/// Hasher usable before the std::hash<InterfaceId> specialization at the
/// bottom of this header is declared.
struct InterfaceIdHash {
  std::size_t operator()(InterfaceId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

/// Capacity and drain state for every egress interface in a PoP; the
/// stand-in for the SNMP/config pipeline the paper's controller reads.
class InterfaceRegistry {
 public:
  void add(InterfaceId id, net::Bandwidth capacity);
  bool contains(InterfaceId id) const;

  /// Raw configured capacity. Requires the interface to exist.
  net::Bandwidth capacity(InterfaceId id) const;

  /// Capacity available for allocation: zero when drained.
  net::Bandwidth usable_capacity(InterfaceId id) const;

  void set_drained(InterfaceId id, bool drained);
  bool drained(InterfaceId id) const;

  std::size_t size() const { return interfaces_.size(); }

  /// Dense index of `id` in [0, size()), in ascending-id order — the
  /// addressing scheme for the allocator's flat per-interface load
  /// tables. Stable until the next add(). Requires the interface to
  /// exist.
  std::size_t index_of(InterfaceId id) const;

  /// Inverse of index_of. Requires index < size().
  InterfaceId id_at(std::size_t index) const;

  void for_each(
      const std::function<void(InterfaceId, const InterfaceState&)>& fn)
      const;

 private:
  const InterfaceState& get(InterfaceId id) const;
  std::map<InterfaceId, InterfaceState> interfaces_;
  // Dense-index sidecar, rebuilt on add (adds happen at PoP build time,
  // not in the allocation loop).
  std::vector<InterfaceId> dense_ids_;
  std::unordered_map<InterfaceId, std::size_t, InterfaceIdHash> dense_index_;
};

/// Per-interface transmit counters with periodic rate polling, mimicking
/// an SNMP if-MIB poller.
class InterfaceCounters {
 public:
  /// Accounts `bytes` transmitted on `iface`.
  void record(InterfaceId iface, std::uint64_t bytes);

  /// Accounts traffic that could not be transmitted (offered load beyond
  /// capacity); surfaced by the overload analyses.
  void record_drop(InterfaceId iface, std::uint64_t bytes);

  struct Rates {
    net::Bandwidth tx;
    net::Bandwidth dropped;
  };

  /// Computes rates since the previous poll and advances the poll epoch.
  /// The first poll returns rates over (now - SimTime{0}).
  std::map<InterfaceId, Rates> poll(net::SimTime now);

  std::uint64_t total_bytes(InterfaceId iface) const;
  std::uint64_t total_dropped(InterfaceId iface) const;

 private:
  struct Counter {
    std::uint64_t bytes = 0;
    std::uint64_t dropped = 0;
    std::uint64_t bytes_at_poll = 0;
    std::uint64_t dropped_at_poll = 0;
  };
  std::map<InterfaceId, Counter> counters_;
  net::SimTime last_poll_;
};

}  // namespace ef::telemetry

template <>
struct std::hash<ef::telemetry::InterfaceId> {
  std::size_t operator()(const ef::telemetry::InterfaceId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
