// sFlow-style packet sampling and the collector that turns samples back
// into per-prefix rate estimates.
//
// Edge Fabric reads traffic demand from sampled flow records rather than
// exact counters; the 1-in-N sampling plus scale-up below reproduces the
// estimation error the controller lives with in production (and the
// telemetry tests quantify it).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/ip.h"
#include "net/prefix.h"
#include "net/prefix_trie.h"
#include "net/rng.h"
#include "net/units.h"
#include "telemetry/interface.h"
#include "telemetry/traffic.h"

namespace ef::telemetry {

/// One sampled packet header, as an sFlow agent would export it.
struct FlowSample {
  net::IpAddr src;
  net::IpAddr dst;
  InterfaceId egress;
  std::uint32_t packet_bytes = 0;
  std::uint8_t dscp = 0;
  net::SimTime when;
};

/// Deterministic 1-in-N packet sampler.
class SflowSampler {
 public:
  using EmitFn = std::function<void(const FlowSample&)>;

  SflowSampler(std::uint32_t sample_rate, std::uint64_t seed, EmitFn emit);

  /// Offers one forwarded packet; emits a sample with probability 1/rate.
  void offer(const FlowSample& packet);

  std::uint32_t sample_rate() const { return sample_rate_; }
  std::uint64_t packets_offered() const { return offered_; }
  std::uint64_t samples_emitted() const { return emitted_; }

 private:
  std::uint32_t sample_rate_;
  net::Rng rng_;
  EmitFn emit_;
  std::uint64_t offered_ = 0;
  std::uint64_t emitted_ = 0;
};

/// Aggregates flow samples into per-destination-prefix demand estimates
/// over fixed windows, scaling by the sampling rate.
class TrafficAggregator {
 public:
  /// `prefix_table` maps a destination address to its routed prefix
  /// (longest match); the aggregator keeps a reference, so the table must
  /// outlive it.
  TrafficAggregator(const net::PrefixTrie<net::Prefix>& prefix_table,
                    std::uint32_t sample_rate);

  void ingest(const FlowSample& sample);

  /// Closes the window [window_start, now) and returns estimated demand.
  /// Samples whose destination matches no prefix are counted in
  /// unmatched_samples() and excluded.
  DemandMatrix finalize_window(net::SimTime now);

  std::uint64_t unmatched_samples() const { return unmatched_; }

 private:
  const net::PrefixTrie<net::Prefix>& prefix_table_;
  std::uint32_t sample_rate_;
  std::unordered_map<net::Prefix, std::uint64_t> window_bytes_;
  net::SimTime window_start_;
  std::uint64_t unmatched_ = 0;
};

}  // namespace ef::telemetry
