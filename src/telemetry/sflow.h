// sFlow-style packet sampling and the collector that turns samples back
// into per-prefix rate estimates.
//
// Edge Fabric reads traffic demand from sampled flow records rather than
// exact counters; the 1-in-N sampling plus scale-up below reproduces the
// estimation error the controller lives with in production (and the
// telemetry tests quantify it).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/ip.h"
#include "net/prefix.h"
#include "net/prefix_trie.h"
#include "net/rng.h"
#include "net/units.h"
#include "telemetry/interface.h"
#include "telemetry/traffic.h"

namespace ef::telemetry {

/// One sampled packet header, as an sFlow agent would export it.
struct FlowSample {
  net::IpAddr src;
  net::IpAddr dst;
  InterfaceId egress;
  std::uint32_t packet_bytes = 0;
  std::uint8_t dscp = 0;
  net::SimTime when;
};

/// Deterministic 1-in-N packet sampler, with an optional size-dependent
/// ("smart sampling") mode for heavy-tailed packet sizes.
class SflowSampler {
 public:
  using EmitFn = std::function<void(const FlowSample&)>;

  SflowSampler(std::uint32_t sample_rate, std::uint64_t seed, EmitFn emit);

  /// Switches to size-dependent sampling with byte threshold z > 0:
  /// a packet of b bytes is sampled with probability min(1, b/z), and
  /// the aggregator credits max(b, z) per sample (set the same z
  /// there). The estimator stays unbiased —
  /// E[contribution] = p·max(b,z) = b — but unlike uniform 1-in-N its
  /// per-packet variance is bounded by z·b, so elephant packets (always
  /// sampled, credited exactly) no longer dominate the estimation
  /// error. This is the classic threshold/"smart" sampling scheme used
  /// by NetFlow-style collectors for heavy-tailed traffic.
  void set_size_threshold(double bytes);
  double size_threshold() const { return size_threshold_; }

  /// Offers one forwarded packet; emits a sample with probability 1/rate
  /// (uniform mode) or min(1, bytes/threshold) (smart mode).
  void offer(const FlowSample& packet);

  std::uint32_t sample_rate() const { return sample_rate_; }
  std::uint64_t packets_offered() const { return offered_; }
  std::uint64_t samples_emitted() const { return emitted_; }

 private:
  std::uint32_t sample_rate_;
  double size_threshold_ = 0.0;  // 0 = uniform 1-in-N
  net::Rng rng_;
  EmitFn emit_;
  std::uint64_t offered_ = 0;
  std::uint64_t emitted_ = 0;
};

/// Aggregates flow samples into per-destination-prefix demand estimates
/// over fixed windows, scaling by the sampling rate.
class TrafficAggregator {
 public:
  /// `prefix_table` maps a destination address to its routed prefix
  /// (longest match); the aggregator keeps a reference, so the table must
  /// outlive it.
  TrafficAggregator(const net::PrefixTrie<net::Prefix>& prefix_table,
                    std::uint32_t sample_rate);

  /// Mirror of SflowSampler::set_size_threshold — must match the
  /// feed's sampler, exactly like sample_rate. With z set, each sample
  /// credits max(bytes, z) and finalize skips the 1-in-N scale-up.
  void set_size_threshold(double bytes);
  double size_threshold() const { return size_threshold_; }

  void ingest(const FlowSample& sample);

  /// Closes the window [window_start, now) and returns estimated demand.
  /// Samples whose destination matches no prefix are counted in
  /// unmatched_samples() and excluded.
  DemandMatrix finalize_window(net::SimTime now);

  std::uint64_t unmatched_samples() const { return unmatched_; }

 private:
  const net::PrefixTrie<net::Prefix>& prefix_table_;
  std::uint32_t sample_rate_;
  double size_threshold_ = 0.0;  // 0 = scale by sample_rate
  std::unordered_map<net::Prefix, std::uint64_t> window_bytes_;
  net::SimTime window_start_;
  std::uint64_t unmatched_ = 0;
};

}  // namespace ef::telemetry
