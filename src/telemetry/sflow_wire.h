// EFS1: the sFlow-style datagram format the live ingest path speaks.
//
// Real sFlow v5 carries sampled packet headers from agents to a collector
// over UDP. This codec keeps that shape — one datagram, many records,
// loss-tolerant — but encodes exactly the fields our estimation pipeline
// consumes, plus two control records the simulator-to-daemon adapter
// needs: a window-close marker (the agent's statement that a collection
// window ended at time T) and a precomputed demand rate (so recorded
// audit journals, which store demand rather than raw samples, can also be
// replayed into a live daemon).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "net/prefix.h"
#include "net/units.h"
#include "telemetry/sflow.h"

namespace ef::telemetry::wire {

inline constexpr std::uint8_t kMagic[4] = {'E', 'F', 'S', '1'};

/// The sending agent closed a sampling window. `window_end` is the
/// instant the window covers up to (what the aggregator finalizes
/// against); `cycle_now` is the feed's current time (what a controller
/// cycle triggered by this marker runs at). The simulator finalizes the
/// window at now+step but cycles at now, so the two differ by one step.
struct WindowClose {
  net::SimTime window_end;
  net::SimTime cycle_now;

  friend bool operator==(const WindowClose&, const WindowClose&) = default;
};

/// Precomputed per-prefix demand (journal replay path). `direct` demand
/// bypasses the sampling scale-up: it is already a rate, not samples.
struct DemandRate {
  net::Prefix prefix;
  net::Bandwidth rate;

  friend bool operator==(const DemandRate& a, const DemandRate& b) {
    return a.prefix == b.prefix &&
           a.rate.bits_per_sec() == b.rate.bits_per_sec();
  }
};

using SflowRecord = std::variant<FlowSample, WindowClose, DemandRate>;

/// Largest datagram encode_datagram will build; callers batching records
/// should flush below this. Loopback UDP comfortably carries it.
inline constexpr std::size_t kMaxDatagramBytes = 32768;

std::vector<std::uint8_t> encode_datagram(
    std::span<const SflowRecord> records);

struct DatagramDecode {
  std::vector<SflowRecord> records;
  /// Records skipped inside an otherwise well-formed datagram (unknown
  /// type or bad payload). Unknown record types are how the format
  /// versions forward.
  std::size_t skipped = 0;
  bool ok = false;  // false: not an EFS1 datagram at all (dropped whole)
  std::string reason;
};

DatagramDecode decode_datagram(std::span<const std::uint8_t> data);

}  // namespace ef::telemetry::wire
