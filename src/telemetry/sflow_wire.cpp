#include "telemetry/sflow_wire.h"

#include <cstring>

#include "net/bytes.h"
#include "net/log.h"

namespace ef::telemetry::wire {

namespace {

constexpr std::uint8_t kRecordFlowSample = 1;
constexpr std::uint8_t kRecordWindowClose = 2;
constexpr std::uint8_t kRecordDemandRate = 3;

void encode_addr(net::BufWriter& w, const net::IpAddr& addr) {
  w.u8(addr.is_v6() ? 1 : 0);
  w.bytes(addr.bytes().data(), 16);
}

net::IpAddr decode_addr(net::BufReader& r) {
  const std::uint8_t v6 = r.u8();
  std::array<std::uint8_t, 16> bytes{};
  r.bytes(bytes.data(), bytes.size());
  if (v6 != 0) return net::IpAddr::v6(bytes);
  return net::IpAddr::v4((static_cast<std::uint32_t>(bytes[0]) << 24) |
                         (static_cast<std::uint32_t>(bytes[1]) << 16) |
                         (static_cast<std::uint32_t>(bytes[2]) << 8) |
                         static_cast<std::uint32_t>(bytes[3]));
}

void encode_record(net::BufWriter& w, const SflowRecord& record) {
  net::BufWriter payload;
  std::uint8_t type = 0;
  if (const auto* sample = std::get_if<FlowSample>(&record)) {
    type = kRecordFlowSample;
    encode_addr(payload, sample->src);
    encode_addr(payload, sample->dst);
    payload.u32(sample->egress.value());
    payload.u32(sample->packet_bytes);
    payload.u8(sample->dscp);
    payload.u64(static_cast<std::uint64_t>(sample->when.millis_value()));
  } else if (const auto* close = std::get_if<WindowClose>(&record)) {
    type = kRecordWindowClose;
    payload.u64(static_cast<std::uint64_t>(close->window_end.millis_value()));
    payload.u64(static_cast<std::uint64_t>(close->cycle_now.millis_value()));
  } else if (const auto* demand = std::get_if<DemandRate>(&record)) {
    type = kRecordDemandRate;
    encode_addr(payload, demand->prefix.address());
    payload.u8(demand->prefix.length());
    // Bandwidth is a double internally; ship the bit pattern so replayed
    // demand is bit-identical to the recorded value.
    std::uint64_t bits = 0;
    const double bps = demand->rate.bits_per_sec();
    static_assert(sizeof bits == sizeof bps);
    std::memcpy(&bits, &bps, sizeof bits);
    payload.u64(bits);
  }
  w.u8(type);
  w.u16(static_cast<std::uint16_t>(payload.size()));
  w.bytes(payload.take());
}

bool decode_record(std::uint8_t type, net::BufReader& r,
                   std::vector<SflowRecord>& out) {
  switch (type) {
    case kRecordFlowSample: {
      FlowSample sample;
      sample.src = decode_addr(r);
      sample.dst = decode_addr(r);
      sample.egress = InterfaceId(r.u32());
      sample.packet_bytes = r.u32();
      sample.dscp = r.u8();
      sample.when =
          net::SimTime::millis(static_cast<std::int64_t>(r.u64()));
      if (!r.ok()) return false;
      out.emplace_back(sample);
      return true;
    }
    case kRecordWindowClose: {
      WindowClose close;
      close.window_end =
          net::SimTime::millis(static_cast<std::int64_t>(r.u64()));
      close.cycle_now =
          net::SimTime::millis(static_cast<std::int64_t>(r.u64()));
      if (!r.ok()) return false;
      out.emplace_back(close);
      return true;
    }
    case kRecordDemandRate: {
      const net::IpAddr addr = decode_addr(r);
      const std::uint8_t length = r.u8();
      const std::uint64_t bits = r.u64();
      if (!r.ok()) return false;
      if (length > net::address_bits(addr.family())) return false;
      double bps = 0;
      std::memcpy(&bps, &bits, sizeof bps);
      out.emplace_back(DemandRate{net::Prefix(addr, length),
                                  net::Bandwidth::bps(bps)});
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

std::vector<std::uint8_t> encode_datagram(
    std::span<const SflowRecord> records) {
  net::BufWriter w;
  w.bytes(kMagic, sizeof kMagic);
  w.u16(static_cast<std::uint16_t>(records.size()));
  for (const SflowRecord& record : records) encode_record(w, record);
  EF_CHECK(w.size() <= kMaxDatagramBytes,
           "EFS1 datagram of " << w.size() << " bytes exceeds cap; batch "
                               << "fewer records per datagram");
  return w.take();
}

DatagramDecode decode_datagram(std::span<const std::uint8_t> data) {
  DatagramDecode result;
  if (data.size() < sizeof kMagic + 2 ||
      std::memcmp(data.data(), kMagic, sizeof kMagic) != 0) {
    result.reason = "missing EFS1 magic";
    return result;
  }
  net::BufReader r(data.data() + sizeof kMagic,
                   data.size() - sizeof kMagic);
  const std::uint16_t count = r.u16();
  result.ok = true;
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::uint8_t type = r.u8();
    const std::uint16_t len = r.u16();
    net::BufReader payload = r.sub(len);
    if (!r.ok()) {
      // Truncated datagram: keep what already decoded, drop the rest.
      result.skipped += static_cast<std::size_t>(count - i);
      result.reason = "datagram truncated mid-record";
      break;
    }
    if (!decode_record(type, payload, result.records)) ++result.skipped;
  }
  return result;
}

}  // namespace ef::telemetry::wire
