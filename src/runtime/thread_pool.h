// Fixed-size thread pool for embarrassingly-parallel fleet work.
//
// Deliberately work-stealing-free: one shared FIFO queue behind one mutex.
// Every task the fleet submits is a whole per-PoP simulation step —
// milliseconds of work — so queue contention is noise and a deque-per-worker
// stealing scheme would buy nothing but nondeterministic memory traffic.
// See docs/PARALLELISM.md for the full threading model.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ef::runtime {

class ThreadPool {
 public:
  /// Hard ceiling on worker threads, explicit requests included. High
  /// enough for any realistic fleet host, low enough that a typo'd
  /// `--threads 100000` cannot exhaust the process.
  static constexpr unsigned kMaxThreads = 256;

  /// Maps a user-facing thread request to a worker count:
  /// 0 (auto) -> std::thread::hardware_concurrency (at least 1);
  /// explicit values are clamped to [1, kMaxThreads]. Explicit requests
  /// above the hardware width are honoured (useful for oversubscription
  /// experiments and for exercising the pool on small machines).
  static unsigned resolve_threads(unsigned requested);

  /// Spawns `resolve_threads(threads)` workers. Workers live until
  /// destruction; the pool is reusable across any number of submit /
  /// parallel_for rounds.
  explicit ThreadPool(unsigned threads = 0);

  /// Drains: already-queued tasks still run, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues one task. The future resolves when the task finishes and
  /// carries any exception it threw.
  std::future<void> submit(std::function<void()> task);

  /// Runs body(0) .. body(n-1) on the workers and blocks until every call
  /// has finished — the caller returns only after the join barrier, so all
  /// writes made by the bodies happen-before the return. Indices are
  /// claimed dynamically (atomic counter), so completion order is
  /// unspecified; bodies must not depend on it. If a body throws, remaining
  /// unclaimed indices are skipped and the first captured exception is
  /// rethrown here after the barrier.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace ef::runtime
