#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace ef::runtime {

unsigned ThreadPool::resolve_threads(unsigned requested) {
  if (requested == 0) {
    requested = std::max(1u, std::thread::hardware_concurrency());
  }
  return std::clamp(requested, 1u, kMaxThreads);
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = resolve_threads(threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  work_available_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into its future
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;

  // Shared by the runner tasks. Runners claim indices from `next` until it
  // runs dry; the last runner to finish releases the caller. Heap-free and
  // wait-free on the happy path beyond the queue push.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto run_indices = [&] {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const std::size_t runners = std::min<std::size_t>(size(), n);
  std::vector<std::future<void>> joins;
  joins.reserve(runners);
  for (std::size_t r = 0; r < runners; ++r) joins.push_back(submit(run_indices));
  for (std::future<void>& join : joins) join.get();  // the per-call barrier

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ef::runtime
