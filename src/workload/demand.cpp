#include "workload/demand.h"

#include <algorithm>
#include <cmath>

#include "net/log.h"

namespace ef::workload {

DemandGenerator::DemandGenerator(const topology::World& world,
                                 std::size_t pop_index, DemandConfig config)
    : world_(&world),
      pop_index_(pop_index),
      config_(config),
      rng_(config.seed ^ (0x9e3779b97f4a7c15ull * (pop_index + 1))) {
  EF_CHECK(pop_index < world.pops().size(), "pop index out of range");
  const std::size_t C = world.clients().size();
  noise_.assign(C, 0.0);

  // Per-prefix weights within each client: Zipf over a shuffled rank order
  // so the heavy prefix is not always the numerically first one.
  prefix_weights_.resize(C);
  for (std::size_t c = 0; c < C; ++c) {
    const std::size_t n = world.clients()[c].prefixes.size();
    net::ZipfDistribution zipf(n, config_.prefix_zipf_exponent);
    std::vector<double> weights(n);
    for (std::size_t j = 0; j < n; ++j) weights[j] = zipf.pmf(j + 1);
    for (std::size_t j = n; j > 1; --j) {
      const std::size_t k = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(j) - 1));
      std::swap(weights[j - 1], weights[k]);
    }
    prefix_weights_[c] = std::move(weights);
  }
}

double DemandGenerator::diurnal(net::SimTime now) const {
  const double phase_hours =
      static_cast<double>(pop_index_) * config_.pop_phase_spread_hours;
  const double hours = now.seconds_value() / 3600.0 - phase_hours;
  // Peak at hour 0 mod 24; smooth cosine between peak and trough.
  const double unit = 0.5 * (1.0 + std::cos(2.0 * M_PI * hours / 24.0));
  return config_.diurnal_trough_fraction +
         (1.0 - config_.diurnal_trough_fraction) * unit;
}

void DemandGenerator::advance_processes(net::SimTime now) {
  const double dt_minutes =
      started_ ? (now - last_step_).seconds_value() / 60.0 : 0.0;
  last_step_ = now;
  started_ = true;
  if (dt_minutes <= 0) return;

  // AR(1) noise in log space, step-scaled.
  const double a = std::pow(config_.noise_ar_coefficient, dt_minutes);
  const double innovation_sigma =
      config_.noise_sigma * std::sqrt(std::max(0.0, 1.0 - a * a));
  for (double& state : noise_) {
    state = a * state + rng_.normal(0.0, innovation_sigma);
  }

  if (!config_.enable_events) return;
  // Expire finished events.
  std::erase_if(events_, [&](const Event& e) { return e.until <= now; });
  // New arrivals: Poisson with rate events_per_hour.
  const double expected = config_.events_per_hour * dt_minutes / 60.0;
  int arrivals = 0;
  double threshold = std::exp(-expected);
  double product = rng_.next_double();
  while (product > threshold && arrivals < 8) {
    ++arrivals;
    product *= rng_.next_double();
  }
  for (int i = 0; i < arrivals; ++i) {
    Event event;
    event.client = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(world_->clients().size()) - 1));
    event.multiplier = rng_.uniform(config_.event_multiplier_min,
                                    config_.event_multiplier_max);
    event.until =
        now + net::SimTime::minutes(rng_.uniform(
                  config_.event_duration_minutes_min,
                  config_.event_duration_minutes_max));
    events_.push_back(event);
  }
}

telemetry::DemandMatrix DemandGenerator::build(net::SimTime now,
                                               bool stochastic) const {
  const topology::PopDef& pop = world_->pops()[pop_index_];
  const double day_factor = diurnal(now);
  const net::Bandwidth pop_peak = net::Bandwidth::gbps(pop.peak_gbps);

  telemetry::DemandMatrix demand;
  for (std::size_t c = 0; c < world_->clients().size(); ++c) {
    double multiplier = day_factor * pop.client_share[c];
    if (stochastic) {
      multiplier *= std::exp(noise_[c]);
      for (const Event& event : events_) {
        if (event.client == c) multiplier *= event.multiplier;
      }
    }
    const net::Bandwidth client_rate = pop_peak * multiplier;
    const auto& prefixes = world_->clients()[c].prefixes;
    for (std::size_t j = 0; j < prefixes.size(); ++j) {
      demand.set(prefixes[j], client_rate * prefix_weights_[c][j]);
    }
  }
  return demand;
}

telemetry::DemandMatrix DemandGenerator::step(net::SimTime now) {
  advance_processes(now);
  return build(now, /*stochastic=*/true);
}

telemetry::DemandMatrix DemandGenerator::baseline(net::SimTime now) const {
  return build(now, /*stochastic=*/false);
}

}  // namespace ef::workload
