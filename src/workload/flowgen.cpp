#include "workload/flowgen.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace ef::workload {

void FlowGenerator::generate(const telemetry::DemandMatrix& demand,
                             net::SimTime start, net::SimTime dt,
                             const ResolveEgress& resolve, const Sink& sink) {
  const double window_secs = dt.seconds_value();
  if (window_secs <= 0) return;

  const double total_bytes =
      demand.total().bits_per_sec() * window_secs / 8.0;
  if (total_bytes <= 0) return;

  // Scale packet size up if the natural packet count would exceed the cap.
  const double natural_packets =
      total_bytes / static_cast<double>(config_.packet_bytes);
  const double scale = std::max(
      1.0, natural_packets / static_cast<double>(config_.max_packets_per_step));
  const double macro_packet_bytes =
      static_cast<double>(config_.packet_bytes) * scale;

  demand.for_each([&](const net::Prefix& prefix, net::Bandwidth rate) {
    const double bytes = rate.bits_per_sec() * window_secs / 8.0;
    if (bytes <= 0) return;
    const auto egress = resolve(prefix);
    if (!egress) {
      unroutable_bytes_ += static_cast<std::uint64_t>(bytes);
      return;
    }
    // Number of macro packets: round stochastically so small prefixes
    // still contribute the right bytes in expectation.
    const double exact = bytes / macro_packet_bytes;
    std::uint64_t count = static_cast<std::uint64_t>(exact);
    if (rng_.bernoulli(exact - static_cast<double>(count))) ++count;

    // Heavy-tailed mode: split this prefix's bytes across the `count`
    // packets by Pareto weights instead of equally. Byte totals are
    // preserved; per-packet variance is not — which is the point.
    std::vector<double> weights;
    double weight_sum = 0.0;
    if (config_.heavy_tailed && count > 1) {
      weights.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        weights.push_back(rng_.pareto(1.0, config_.pareto_alpha));
        weight_sum += weights.back();
      }
    }

    telemetry::FlowSample packet;
    packet.src = config_.source;
    packet.egress = *egress;
    packet.packet_bytes = static_cast<std::uint32_t>(
        std::min(macro_packet_bytes, 4e9));
    const double prefix_bytes =
        macro_packet_bytes * static_cast<double>(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      // Spread destinations over the /24's hosts (or a hash for v6).
      const std::uint32_t host =
          static_cast<std::uint32_t>(rng_.uniform_int(1, 254));
      packet.dst = prefix.family() == net::Family::kV4
                       ? net::IpAddr::v4(prefix.address().v4_value() | host)
                       : prefix.address();
      if (!weights.empty()) {
        packet.packet_bytes = static_cast<std::uint32_t>(std::min(
            prefix_bytes * weights[i] / weight_sum, 4e9));
        if (packet.packet_bytes == 0) continue;
      }
      packet.when =
          start + net::SimTime::seconds(rng_.uniform(0.0, window_secs));
      ++packets_;
      sink(packet);
    }
  });
}

}  // namespace ef::workload
