// Packet/flow synthesis: turns a demand matrix into a stream of packets
// for the sFlow sampling path.
//
// Generating every real packet of a multi-Gbps PoP is infeasible, so the
// generator emits a bounded number of "macro packets" per step whose byte
// totals match the demand; the sFlow estimation math is unaffected
// because both the sampler and the aggregator work in bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "net/rng.h"
#include "telemetry/sflow.h"
#include "telemetry/traffic.h"

namespace ef::workload {

struct FlowGenConfig {
  std::uint64_t seed = 11;
  /// Upper bound on packets generated per step (across all prefixes).
  std::uint64_t max_packets_per_step = 200'000;
  /// Preferred wire packet size; used when demand is small enough that no
  /// scaling is needed.
  std::uint32_t packet_bytes = 1200;
  /// Source address of generated traffic (the PoP's serving address).
  net::IpAddr source = net::IpAddr::v4(0xc0000200);  // 192.0.2.0

  /// Heavy-tailed macro-packet sizes: instead of equal-sized macro
  /// packets, each prefix's bytes are split by Pareto(alpha) weights —
  /// a few elephant packets carry most bytes. Per-prefix byte totals
  /// are unchanged; what changes is the per-packet size *variance* the
  /// sampling estimator has to survive (see telemetry tests).
  bool heavy_tailed = false;
  double pareto_alpha = 1.2;
};

class FlowGenerator {
 public:
  explicit FlowGenerator(FlowGenConfig config) : config_(config), rng_(config.seed) {}

  using ResolveEgress =
      std::function<std::optional<telemetry::InterfaceId>(const net::Prefix&)>;
  using Sink = std::function<void(const telemetry::FlowSample&)>;

  /// Emits packets carrying `demand` over the window [start, start+dt).
  /// Destination addresses are spread across each prefix's hosts; packets
  /// for unroutable prefixes (resolver returns nullopt) are skipped and
  /// counted in unroutable_bytes().
  void generate(const telemetry::DemandMatrix& demand, net::SimTime start,
                net::SimTime dt, const ResolveEgress& resolve,
                const Sink& sink);

  std::uint64_t packets_emitted() const { return packets_; }
  std::uint64_t unroutable_bytes() const { return unroutable_bytes_; }

 private:
  FlowGenConfig config_;
  net::Rng rng_;
  std::uint64_t packets_ = 0;
  std::uint64_t unroutable_bytes_ = 0;
};

}  // namespace ef::workload
