// Heavy-tailed flow population: the elephant/mice mix the dataplane
// hashes onto egress interfaces.
//
// CDN egress traffic is elephant-dominated — a small fraction of
// long-lived flows (video segments to well-connected clients) carries
// most bytes, over a churning sea of short mice (per the Open Connect
// traffic characterization). FlowMix maintains, per destination prefix,
// a persistent set of 5-tuple flows with Pareto-distributed byte
// shares: elephants persist across steps (so their placement history is
// meaningful and reordering is observable), mice churn, and a
// flash-crowd demand jump spawns a fresh cohort of mice.
//
// Determinism: each prefix owns an Rng seeded from
// (seed ^ std::hash<Prefix>), so flow populations are independent of
// map iteration order and identical across record/replay runs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "net/ip.h"
#include "net/prefix.h"
#include "net/rng.h"
#include "net/units.h"
#include "telemetry/traffic.h"

namespace ef::workload {

struct FlowMixConfig {
  std::uint64_t seed = 11;
  /// Mean per-flow rate used to size the population: a prefix carrying
  /// rate R holds ~R/avg_flow_rate flows (clamped below).
  double avg_flow_rate_bps = 25e6;
  std::uint32_t min_flows_per_prefix = 4;
  std::uint32_t max_flows_per_prefix = 64;
  /// Fraction of a prefix's flows that are elephants…
  double elephant_fraction = 0.08;
  /// …and the share of the prefix's bytes those elephants carry.
  double elephant_byte_share = 0.6;
  /// Pareto shape for intra-class byte-share spread (lower = heavier).
  double pareto_alpha = 1.2;
  /// Fraction of mice replaced by fresh 5-tuples each step.
  double mice_churn_fraction = 0.25;
  /// Demand ratio (new/old) beyond which a flash crowd is declared and
  /// the mice cohort regenerates wholesale (new clients arriving).
  double flash_crowd_ramp = 1.5;
  /// Fraction of flows DSCP-marked for the alternate path (the paper's
  /// §6 per-flow steering experiments).
  double altpath_fraction = 0.05;
  std::uint8_t altpath_dscp = 34;  // AF41
  net::IpAddr source = net::IpAddr::v4(0xc0000200);  // 192.0.2.0
};

/// One live 5-tuple flow with its share of the owning prefix's bytes.
struct FlowSpec {
  net::IpAddr src;
  net::IpAddr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 443;
  std::uint8_t protocol = 6;
  std::uint8_t dscp = 0;
  /// This flow's share of its prefix's bytes this step; shares over one
  /// prefix's flows sum to 1.
  double byte_share = 0.0;
  bool elephant = false;
};

class FlowMix {
 public:
  explicit FlowMix(FlowMixConfig config) : config_(config) {}

  const FlowMixConfig& config() const { return config_; }

  using Visitor = std::function<void(
      const net::Prefix&, net::Bandwidth, std::span<const FlowSpec>)>;

  /// Advances every prefix's flow population one step to track `demand`
  /// and visits them in sorted prefix order (deterministic regardless of
  /// the demand matrix's internal ordering). Prefixes that left the
  /// demand matrix are dropped.
  void step(const telemetry::DemandMatrix& demand, const Visitor& visit);

  std::uint64_t flows_created() const { return flows_created_; }
  std::uint64_t mice_churned() const { return mice_churned_; }
  std::uint64_t flash_regens() const { return flash_regens_; }
  std::size_t tracked_prefixes() const { return prefixes_.size(); }

 private:
  struct PrefixState {
    net::Rng rng;
    double last_rate_bps = 0.0;
    std::vector<FlowSpec> flows;
    explicit PrefixState(std::uint64_t seed) : rng(seed) {}
  };

  void rebuild(const net::Prefix& prefix, PrefixState& state,
               std::size_t count);
  void churn_mice(const net::Prefix& prefix, PrefixState& state);
  void renormalize(PrefixState& state);
  FlowSpec make_flow(const net::Prefix& prefix, PrefixState& state,
                     bool elephant);

  FlowMixConfig config_;
  std::map<net::Prefix, PrefixState> prefixes_;
  std::uint64_t flows_created_ = 0;
  std::uint64_t mice_churned_ = 0;
  std::uint64_t flash_regens_ = 0;
};

}  // namespace ef::workload
