// Traffic demand generation: per-prefix egress demand for one PoP over
// simulated time.
//
// The shape matters more than absolute numbers: demand is Zipf-skewed
// across clients (a few eyeball networks dominate), follows a diurnal
// curve with a per-PoP phase (PoPs peak at local evening), carries smooth
// multiplicative noise, and occasionally spikes (flash crowds / events) —
// the peaks that push under-provisioned PNIs past capacity.
#pragma once

#include <cstdint>
#include <vector>

#include "net/rng.h"
#include "net/units.h"
#include "telemetry/traffic.h"
#include "topology/world.h"

namespace ef::workload {

struct DemandConfig {
  std::uint64_t seed = 7;

  /// Trough demand as a fraction of peak (diurnal amplitude).
  double diurnal_trough_fraction = 0.3;
  /// Hours between successive PoPs' daily peaks.
  double pop_phase_spread_hours = 6.0;

  /// AR(1) multiplicative noise on each client's demand.
  double noise_sigma = 0.05;
  double noise_ar_coefficient = 0.9;

  /// Flash-crowd events: Poisson arrivals per hour (per PoP); each event
  /// multiplies one client's demand for a bounded duration.
  double events_per_hour = 0.6;
  double event_multiplier_min = 1.4;
  double event_multiplier_max = 2.2;
  double event_duration_minutes_min = 10;
  double event_duration_minutes_max = 45;
  bool enable_events = true;

  /// Skew of traffic across a client's own prefixes.
  double prefix_zipf_exponent = 0.8;
};

class DemandGenerator {
 public:
  DemandGenerator(const topology::World& world, std::size_t pop_index,
                  DemandConfig config);

  /// Demand at simulated time `now`. Call with non-decreasing times; the
  /// noise and event processes advance with the clock.
  telemetry::DemandMatrix step(net::SimTime now);

  /// Deterministic demand with noise and events disabled — used by tests
  /// that need exact expectations.
  telemetry::DemandMatrix baseline(net::SimTime now) const;

  /// Diurnal multiplier in [trough_fraction, 1] for this PoP at `now`.
  double diurnal(net::SimTime now) const;

  std::size_t active_events() const { return events_.size(); }

 private:
  struct Event {
    std::size_t client;
    double multiplier;
    net::SimTime until;
  };

  telemetry::DemandMatrix build(net::SimTime now, bool stochastic) const;
  void advance_processes(net::SimTime now);

  const topology::World* world_;
  std::size_t pop_index_;
  DemandConfig config_;
  net::Rng rng_;
  // Per-client: noise state and per-prefix weight split.
  std::vector<double> noise_;  // log-space AR(1) state
  std::vector<std::vector<double>> prefix_weights_;
  std::vector<Event> events_;
  net::SimTime last_step_;
  bool started_ = false;
};

}  // namespace ef::workload
