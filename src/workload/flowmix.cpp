#include "workload/flowmix.h"

#include <algorithm>
#include <cmath>

namespace ef::workload {
namespace {

// Deterministic per-prefix seed: std::hash<Prefix> is the repo's FNV
// over masked address bytes + length — stable across runs and builds on
// the same platform, which is the determinism domain record/replay
// promises (same binary, same machine).
std::uint64_t prefix_seed(std::uint64_t base, const net::Prefix& prefix) {
  return base ^ (0x9e3779b97f4a7c15ull * (std::hash<net::Prefix>{}(prefix) | 1));
}

}  // namespace

FlowSpec FlowMix::make_flow(const net::Prefix& prefix, PrefixState& state,
                            bool elephant) {
  FlowSpec flow;
  flow.src = config_.source;
  const std::uint32_t host =
      static_cast<std::uint32_t>(state.rng.uniform_int(1, 254));
  flow.dst = prefix.family() == net::Family::kV4
                 ? net::IpAddr::v4(prefix.address().v4_value() | host)
                 : prefix.address();
  flow.src_port =
      static_cast<std::uint16_t>(state.rng.uniform_int(32768, 60999));
  flow.dst_port = 443;
  flow.protocol = 6;
  flow.dscp = state.rng.bernoulli(config_.altpath_fraction)
                  ? config_.altpath_dscp
                  : std::uint8_t{0};
  flow.elephant = elephant;
  // Raw Pareto weight; renormalize() turns weights into shares.
  flow.byte_share = state.rng.pareto(1.0, config_.pareto_alpha);
  ++flows_created_;
  return flow;
}

void FlowMix::renormalize(PrefixState& state) {
  double elephant_weight = 0.0;
  double mice_weight = 0.0;
  std::size_t elephants = 0;
  for (const auto& flow : state.flows) {
    if (flow.elephant) {
      elephant_weight += flow.byte_share;
      ++elephants;
    } else {
      mice_weight += flow.byte_share;
    }
  }
  // Elephants split elephant_byte_share of the prefix's bytes between
  // them (pro-rata by Pareto weight); mice split the rest. A class with
  // no members cedes its share to the other.
  double e_share = config_.elephant_byte_share;
  if (elephants == 0) e_share = 0.0;
  if (elephants == state.flows.size()) e_share = 1.0;
  for (auto& flow : state.flows) {
    if (flow.elephant) {
      flow.byte_share = e_share * flow.byte_share / elephant_weight;
    } else {
      flow.byte_share = (1.0 - e_share) * flow.byte_share / mice_weight;
    }
  }
}

void FlowMix::rebuild(const net::Prefix& prefix, PrefixState& state,
                      std::size_t count) {
  state.flows.clear();
  state.flows.reserve(count);
  const auto elephants = static_cast<std::size_t>(
      std::ceil(config_.elephant_fraction * static_cast<double>(count)));
  for (std::size_t i = 0; i < count; ++i) {
    state.flows.push_back(make_flow(prefix, state, i < elephants));
  }
  renormalize(state);
}

void FlowMix::churn_mice(const net::Prefix& prefix, PrefixState& state) {
  bool churned = false;
  for (auto& flow : state.flows) {
    if (flow.elephant) continue;
    if (!state.rng.bernoulli(config_.mice_churn_fraction)) continue;
    flow = make_flow(prefix, state, false);
    ++mice_churned_;
    churned = true;
  }
  if (churned) renormalize(state);
}

void FlowMix::step(const telemetry::DemandMatrix& demand,
                   const Visitor& visit) {
  // Collect + sort so per-prefix work and the visit order never depend
  // on the demand matrix's hash-table ordering.
  std::vector<std::pair<net::Prefix, net::Bandwidth>> entries;
  entries.reserve(demand.prefix_count());
  demand.for_each([&](const net::Prefix& prefix, net::Bandwidth rate) {
    if (rate.bits_per_sec() > 0) entries.emplace_back(prefix, rate);
  });
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Drop state for prefixes that vanished from demand. Both sequences
  // are sorted, so this is a linear merge.
  {
    auto live = entries.begin();
    for (auto it = prefixes_.begin(); it != prefixes_.end();) {
      while (live != entries.end() && live->first < it->first) ++live;
      if (live != entries.end() && live->first == it->first) {
        ++it;
      } else {
        it = prefixes_.erase(it);
      }
    }
  }

  for (const auto& [prefix, rate] : entries) {
    auto [it, inserted] = prefixes_.try_emplace(
        prefix, prefix_seed(config_.seed, prefix));
    PrefixState& state = it->second;

    const double rate_bps = rate.bits_per_sec();
    const auto want = static_cast<std::size_t>(std::clamp(
        rate_bps / std::max(config_.avg_flow_rate_bps, 1.0),
        static_cast<double>(config_.min_flows_per_prefix),
        static_cast<double>(config_.max_flows_per_prefix)));

    if (inserted || state.flows.empty()) {
      rebuild(prefix, state, want);
    } else if (state.last_rate_bps > 0.0 &&
               rate_bps >= state.last_rate_bps * config_.flash_crowd_ramp) {
      // Flash crowd: a new client population arrives. Elephants (the
      // long-lived sessions) persist; the mice cohort regenerates and
      // the population grows to the new target size.
      ++flash_regens_;
      std::vector<FlowSpec> kept;
      for (const auto& flow : state.flows) {
        if (flow.elephant) kept.push_back(flow);
      }
      state.flows = std::move(kept);
      while (state.flows.size() < std::max<std::size_t>(want, 1)) {
        state.flows.push_back(make_flow(prefix, state, false));
        ++mice_churned_;
      }
      renormalize(state);
    } else {
      // Steady state: population drifts toward the target, mice churn.
      while (state.flows.size() < want) {
        state.flows.push_back(make_flow(prefix, state, false));
      }
      if (state.flows.size() > want) {
        // Shed newest mice first (elephants live at the front).
        std::size_t keep = want;
        std::stable_partition(state.flows.begin(), state.flows.end(),
                              [](const FlowSpec& f) { return f.elephant; });
        if (keep < state.flows.size()) state.flows.resize(std::max<std::size_t>(keep, 1));
      }
      churn_mice(prefix, state);
      renormalize(state);
    }
    state.last_rate_bps = rate_bps;

    visit(prefix, rate, std::span<const FlowSpec>(state.flows));
  }
}

}  // namespace ef::workload
