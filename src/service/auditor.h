// The enforcement auditor: closes the loop the paper leaves open.
//
// Edge Fabric *emits* overrides and assumes the peering routers honor
// them. That assumption is exactly what breaks in the field: a filter
// swallows a withdraw, a flapped session loses an UPDATE, a restarted
// controller inherits router state it never announced. The auditor
// turns the assumption into a checked invariant — each audit pass it is
// handed the controller's intended override set and the router's actual
// controller-learned routes (prd Adj-RIB-In read-back over the live BGP
// channel, or the PoP routers' RIBs in in-process mode), diffs them,
// and classifies every divergent prefix:
//
//   missing      intended but absent at the router (lost UPDATE)
//   extra-stale  present but no longer intended (swallowed withdraw,
//                pre-restart leftovers)
//   wrong-attrs  present but with the wrong NEXT_HOP / LOCAL_PREF /
//                override community (mangled or outdated UPDATE)
//
// Remediation is bounded and deterministic: the lowest-prefix
// `max_repairs` divergent entries are repaired this pass (re-announce
// for missing/wrong, unconditional withdraw for extra), the rest wait
// for the next pass — so a mass divergence converges in a predictable
// number of audits instead of one unbounded burst. Repeated divergence
// (streak) escalates into the failsafe ladder via
// InputHealth::audit_divergent_streak.
//
// The auditor itself is pure diff+policy: no I/O, no clocks. EfdService
// owns the read-back plumbing and executes the repairs; that split is
// what makes the logic unit-testable and the chaos runs replayable.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "bgp/rib.h"
#include "core/allocator.h"
#include "net/units.h"

namespace ef::service {

struct AuditorConfig {
  bool enabled = false;
  /// Audit every Nth guarded cycle (1 = every cycle). Must be >= 1.
  std::uint32_t interval_cycles = 1;
  /// Per-pass remediation budget across all divergence classes.
  std::uint64_t max_repairs = 64;
  /// LOCAL_PREF every enforced override must carry at the router
  /// (ControllerConfig/Announcer::Config override_local_pref).
  std::uint32_t override_local_pref = 1000;
};

/// One audit pass's findings and the bounded repair plan.
struct AuditReport {
  net::SimTime when;
  std::uint64_t intended = 0;  // size of the intended override set
  std::uint64_t observed = 0;  // distinct controller-learned prefixes
  // Divergence, classified. Sorted by prefix (deterministic).
  std::vector<net::Prefix> missing;
  std::vector<net::Prefix> extra;
  std::vector<net::Prefix> wrong_attrs;
  // The bounded repair plan: what the owner should re-announce /
  // force-withdraw this pass. missing+wrong first (restoring intent
  // beats purging leftovers), then extras, lowest prefix first, cut at
  // max_repairs.
  std::vector<net::Prefix> repair_announce;
  std::vector<net::Prefix> repair_withdraw;
  std::uint64_t unrepaired = 0;  // divergent entries past the budget
  /// Consecutive divergent audits including this one; 0 = convergent.
  std::uint32_t divergent_streak = 0;

  bool divergent() const {
    return !missing.empty() || !extra.empty() || !wrong_attrs.empty();
  }
};

class EnforcementAuditor {
 public:
  explicit EnforcementAuditor(AuditorConfig config);

  /// Call once per guarded cycle; true when this cycle should audit
  /// (every interval_cycles-th call, starting with the first).
  bool note_cycle();

  /// Diffs intent against observation. `observed` is the router-side
  /// read-back; routes that are not controller-learned
  /// (PeerType::kController) are ignored, so callers may pass a full
  /// Adj-RIB-In snapshot unfiltered.
  AuditReport audit(const std::map<net::Prefix, core::Override>& intended,
                    const std::vector<bgp::Route>& observed,
                    net::SimTime now);

  /// Streak as of the last audit (what InputHealth carries forward on
  /// non-audit cycles).
  std::uint32_t divergent_streak() const { return streak_; }

  struct Stats {
    std::uint64_t audits = 0;
    std::uint64_t divergent_audits = 0;
    std::uint64_t missing_total = 0;
    std::uint64_t extra_total = 0;
    std::uint64_t wrong_attrs_total = 0;
    std::uint64_t repairs_announce = 0;
    std::uint64_t repairs_withdraw = 0;
    std::uint64_t unrepaired_total = 0;
  };
  const Stats& stats() const { return stats_; }

  const AuditorConfig& config() const { return config_; }

 private:
  AuditorConfig config_;
  std::uint64_t cycles_seen_ = 0;
  std::uint32_t streak_ = 0;
  Stats stats_;
};

}  // namespace ef::service
