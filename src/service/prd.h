// prd: the peering-router daemon — a BgpSpeaker behind a TCP listener.
//
// The receiving half of the BGP enforcement plane: controller-injected
// override routes arrive over real sockets, pass the same import policy
// a PoP peering router applies (controller sessions keep their high
// LOCAL_PREF), and land in a real Adj-RIB-In. The fail-safe that the
// paper gets for free from BGP lives here too: every accepted session
// runs a wall-clock hold timer, so a controller that dies silently has
// its routes flushed within the negotiated hold time with no extra
// mechanism.
//
// Same service shape as EfdService: one event loop owns every socket and
// the speaker; the only cross-thread surface is the atomic counters (and
// routes(), which hops onto the loop thread via run_sync).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "bgp/session_driver.h"
#include "bgp/speaker.h"
#include "io/event_loop.h"

namespace ef::service {

class PeeringRouterService {
 public:
  struct Config {
    std::uint16_t bgp_port = 0;  // 0 = ephemeral (see bgp_port())
    /// The PoP's AS: controller sessions are iBGP, so both ends share it.
    bgp::AsNumber local_as{65000};
    bgp::RouterId router_id{0x7f0000fe};
    bgp::AsNumber peer_as;  // expected in the peer's OPEN; 0 = any
    /// Hold-time offer; the negotiated minimum bounds how long a dead
    /// controller's overrides survive. 0 disables timers (RFC 4271 §4.2).
    std::uint16_t hold_time_secs = 90;
    std::chrono::milliseconds tick_period{200};
  };

  explicit PeeringRouterService(Config config);
  ~PeeringRouterService();
  PeeringRouterService(const PeeringRouterService&) = delete;
  PeeringRouterService& operator=(const PeeringRouterService&) = delete;

  /// Opens the listener and spawns the loop thread. Call once.
  void start();
  /// Stops the loop and joins; idempotent. Sockets close here.
  void stop();
  /// Blocks until the loop exits (signal or cross-thread stop).
  void wait();
  bool running() const { return thread_.joinable(); }

  /// Routes SIGINT/SIGTERM into stop() via the loop's signalfd; the
  /// caller must have blocked them process-wide before any thread.
  void shutdown_on_signals();

  std::uint16_t bgp_port() const;

  struct Snapshot {
    std::uint64_t connections = 0;     // transports accepted
    std::uint64_t disconnects = 0;     // transports torn down
    std::uint64_t sessions_established = 0;  // lifetime establishments
    std::uint64_t session_drops = 0;
    std::uint64_t hold_expirations = 0;
    std::uint64_t updates_received = 0;  // UPDATE messages, all sessions
    std::uint64_t prefixes = 0;          // current Adj-RIB-In
    std::uint64_t routes = 0;
  };
  Snapshot snapshot() const;

  /// Blocks until `pred(snapshot())` holds or `timeout` passes.
  bool wait_until(const std::function<bool(const Snapshot&)>& pred,
                  std::chrono::milliseconds timeout) const;

  /// Cross-thread copy of the full Adj-RIB-In (hops to the loop thread).
  std::vector<bgp::Route> routes();

  /// Loop-thread-owned; only touch from the loop thread or while the
  /// service is provably idle.
  bgp::BgpSpeaker& speaker() { return speaker_; }
  io::EventLoop& loop() { return loop_; }

 private:
  struct Session {
    std::unique_ptr<bgp::SessionDriver> driver;
    bgp::PeerId id;
  };

  void on_accept(io::Fd fd);
  void on_session_down(std::uint64_t key, const std::string& reason);
  void publish();

  Config config_;
  io::EventLoop loop_;
  std::thread thread_;
  bgp::BgpSpeaker speaker_;
  std::unique_ptr<bgp::BgpListener> listener_;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::uint64_t next_session_key_ = 1;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> disconnects_{0};
  std::atomic<std::uint64_t> sessions_established_{0};
  std::atomic<std::uint64_t> session_drops_{0};
  std::atomic<std::uint64_t> hold_expirations_{0};
  std::atomic<std::uint64_t> updates_received_{0};
  std::atomic<std::uint64_t> updates_acc_{0};  // from removed sessions
  std::atomic<std::uint64_t> prefixes_{0};
  std::atomic<std::uint64_t> routes_{0};
};

}  // namespace ef::service
