#include "service/http.h"

#include <cstring>
#include <sstream>

#include "net/log.h"

namespace ef::service {

namespace {

/// A header block larger than this is not a status probe; drop it.
constexpr std::size_t kMaxHeaderBytes = 16384;

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Error";
  }
}

}  // namespace

HttpServer::HttpServer(io::EventLoop& loop, std::uint16_t port,
                       HttpHandler handler)
    : loop_(loop), handler_(std::move(handler)) {
  auto listener = io::TcpListener::open(port);
  EF_CHECK(listener.has_value(),
           "http: cannot listen on 127.0.0.1:" << port);
  listener_ = std::move(*listener);
  loop_.watch(listener_.fd(), io::kRead,
              [this](std::uint32_t) { on_accept(); });
}

HttpServer::~HttpServer() {
  for (auto& [fd, conn] : conns_) loop_.unwatch(fd);
  conns_.clear();  // TcpConn dtors close the fds
  if (listener_.fd() >= 0) loop_.unwatch(listener_.fd());
}

void HttpServer::on_accept() {
  for (;;) {
    io::Fd fd = listener_.accept_one();
    if (!fd.valid()) return;
    const int raw = fd.get();
    conns_.emplace(raw, std::make_unique<Conn>(std::move(fd)));
    loop_.watch(raw, io::kRead, [this, raw](std::uint32_t ready) {
      on_conn_event(raw, ready);
    });
  }
}

void HttpServer::on_conn_event(int fd, std::uint32_t ready) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;

  if (ready & io::kWrite) {
    conn.tcp.flush();
    // EPIPE/ECONNRESET mid-response: the client is gone, and a broken
    // conn will never drain. Without this close the fd (and its
    // level-triggered readiness) leaks until shutdown.
    if (conn.tcp.broken()) {
      abort_conn(fd);
      return;
    }
    if (conn.responded && !conn.tcp.wants_write()) {
      close_conn(fd);
      return;
    }
  }
  if (!(ready & (io::kRead | io::kHangup | io::kError))) return;

  const bool open = conn.tcp.read_some();
  if (conn.responded) {
    // One GET per connection: after responding, readable events only
    // matter as connection state. A reset client is gone — abort. An
    // EOF (half-close) client may still be reading the response, but
    // its level-triggered EPOLLIN would spin forever: drop read
    // interest and let the write path finish (drain → close) or fail
    // (EPIPE/ECONNRESET → abort).
    if (conn.tcp.broken()) {
      abort_conn(fd);
      return;
    }
    if (!open) {
      if (!conn.tcp.wants_write()) {
        close_conn(fd);
      } else {
        loop_.rearm(fd, io::kWrite);
      }
      return;
    }
  }
  if (!conn.responded) {
    const auto data = conn.tcp.readable();
    const char* begin = reinterpret_cast<const char*>(data.data());
    const std::string_view view(begin, data.size());
    const std::size_t header_end = view.find("\r\n\r\n");
    if (header_end == std::string_view::npos) {
      if (!open || data.size() > kMaxHeaderBytes) close_conn(fd);
      return;
    }

    // Request line: METHOD SP PATH SP VERSION.
    const std::string_view line = view.substr(0, view.find("\r\n"));
    HttpResponse response;
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
      response.status = 400;
      response.body = "malformed request line\n";
    } else if (line.substr(0, sp1) != "GET") {
      response.status = 405;
      response.body = "only GET is served here\n";
    } else {
      std::string path(line.substr(sp1 + 1, sp2 - sp1 - 1));
      const std::size_t query = path.find('?');
      if (query != std::string::npos) path.resize(query);
      response = handler_(path);
    }
    conn.tcp.consume(header_end + 4);
    ++requests_served_;

    std::ostringstream head;
    head << "HTTP/1.1 " << response.status << ' '
         << status_text(response.status) << "\r\n"
         << "Content-Type: " << response.content_type << "\r\n"
         << "Content-Length: " << response.body.size() << "\r\n"
         << "Connection: close\r\n\r\n";
    const std::string reply = head.str() + response.body;
    conn.tcp.send(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(reply.data()), reply.size()));
    conn.responded = true;
  }

  if (conn.tcp.broken()) {
    abort_conn(fd);
    return;
  }
  if (conn.responded && !conn.tcp.wants_write()) {
    close_conn(fd);
    return;
  }
  if (conn.tcp.wants_write()) {
    // If the request arrived with an EOF in the same event, keeping read
    // interest would spin on the level-triggered EOF forever.
    loop_.rearm(fd, open ? (io::kRead | io::kWrite) : io::kWrite);
  }
}

void HttpServer::close_conn(int fd) {
  loop_.unwatch(fd);
  conns_.erase(fd);
}

void HttpServer::abort_conn(int fd) {
  aborted_conns_.fetch_add(1, std::memory_order_release);
  close_conn(fd);
}

}  // namespace ef::service
