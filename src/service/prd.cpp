#include "service/prd.h"

#include <csignal>

#include "net/log.h"

namespace ef::service {

PeeringRouterService::PeeringRouterService(Config config)
    : config_(config), speaker_([&config] {
        bgp::BgpSpeaker::Config speaker_config;
        speaker_config.local_as = config.local_as;
        speaker_config.router_id = config.router_id;
        speaker_config.import_policy.local_as = config.local_as;
        return speaker_config;
      }()) {
  speaker_.set_monitor([this](const bgp::MonitorEvent& event) {
    if (event.kind == bgp::MonitorEvent::Kind::kPeerUp) {
      sessions_established_.fetch_add(1, std::memory_order_release);
    } else if (event.kind == bgp::MonitorEvent::Kind::kPeerDown) {
      session_drops_.fetch_add(1, std::memory_order_release);
    }
    publish();
  });
}

PeeringRouterService::~PeeringRouterService() { stop(); }

void PeeringRouterService::start() {
  EF_CHECK(!thread_.joinable(), "prd already started");
  listener_ = bgp::BgpListener::open(
      loop_, config_.bgp_port, [this](io::Fd fd) { on_accept(std::move(fd)); });
  EF_CHECK(listener_ != nullptr,
           "prd: cannot listen for BGP on 127.0.0.1:" << config_.bgp_port);
  // Advance the speaker clock (route timestamps, monitor events) and
  // keep the published counters fresh even while sessions are quiet.
  loop_.call_every(config_.tick_period, [this] {
    speaker_.tick(bgp::wall_now());
    publish();
  });
  thread_ = std::thread([this] { loop_.run(); });
}

void PeeringRouterService::stop() {
  if (!thread_.joinable()) return;
  loop_.stop();
  wait();
}

void PeeringRouterService::wait() {
  if (!thread_.joinable()) return;
  thread_.join();
  // Loop is down; tear down from this thread. Driver destructors
  // unwatch, Fd RAII closes every socket.
  for (auto& [key, session] : sessions_) {
    speaker_.remove_neighbor(session->id, bgp::wall_now());
  }
  sessions_.clear();
  listener_.reset();
}

void PeeringRouterService::shutdown_on_signals() {
  loop_.watch_signals({SIGINT, SIGTERM}, [this](int sig) {
    EF_LOG_INFO("prd: signal " << sig << ", shutting down");
    loop_.stop();
  });
}

std::uint16_t PeeringRouterService::bgp_port() const {
  return listener_ ? listener_->port() : 0;
}

void PeeringRouterService::on_accept(io::Fd fd) {
  const std::uint64_t key = next_session_key_++;
  auto session = std::make_unique<Session>();

  bgp::SessionDriver::Config driver_config;
  driver_config.tick_period = config_.tick_period;
  session->driver = std::make_unique<bgp::SessionDriver>(
      loop_, std::move(fd), driver_config);

  bgp::SessionConfig session_config;
  session_config.peer_as = config_.peer_as;
  session_config.peer_type = bgp::PeerType::kController;
  session_config.hold_time_secs = config_.hold_time_secs;

  bgp::SessionDriver* driver = session->driver.get();
  session->id = speaker_.add_neighbor(
      session_config, [driver](std::vector<std::uint8_t> bytes) {
        driver->transmit(std::move(bytes));
      });
  driver->bind(*speaker_.session(session->id));
  driver->set_down_handler([this, key](const std::string& reason) {
    on_session_down(key, reason);
  });
  sessions_[key] = std::move(session);

  // Symmetric OPEN exchange: the accepting side sends its OPEN too.
  speaker_.start_session(sessions_[key]->id, bgp::wall_now());
  connections_.fetch_add(1, std::memory_order_release);
  publish();
}

void PeeringRouterService::on_session_down(std::uint64_t key,
                                           const std::string& reason) {
  disconnects_.fetch_add(1, std::memory_order_release);
  if (reason == "hold timer expired") {
    hold_expirations_.fetch_add(1, std::memory_order_release);
  }
  EF_LOG_INFO("prd: session " << key << " down: " << reason);
  // The driver reported its own death; reap it after its callback
  // unwinds. The speaker session goes first so no session ever holds a
  // SendFn into a destroyed driver.
  loop_.post([this, key] {
    auto it = sessions_.find(key);
    if (it == sessions_.end()) return;
    if (const bgp::BgpSession* s = speaker_.session(it->second->id)) {
      updates_acc_.fetch_add(s->stats().updates_received,
                             std::memory_order_relaxed);
    }
    speaker_.remove_neighbor(it->second->id, bgp::wall_now());
    sessions_.erase(it);
    publish();
  });
}

void PeeringRouterService::publish() {
  std::uint64_t updates = updates_acc_.load(std::memory_order_relaxed);
  for (const auto& [key, session] : sessions_) {
    if (const bgp::BgpSession* s = speaker_.session(session->id)) {
      updates += s->stats().updates_received;
    }
  }
  updates_received_.store(updates, std::memory_order_release);
  prefixes_.store(speaker_.rib().prefix_count(), std::memory_order_release);
  routes_.store(speaker_.rib().route_count(), std::memory_order_release);
}

PeeringRouterService::Snapshot PeeringRouterService::snapshot() const {
  Snapshot snap;
  snap.connections = connections_.load(std::memory_order_acquire);
  snap.disconnects = disconnects_.load(std::memory_order_acquire);
  snap.sessions_established =
      sessions_established_.load(std::memory_order_acquire);
  snap.session_drops = session_drops_.load(std::memory_order_acquire);
  snap.hold_expirations = hold_expirations_.load(std::memory_order_acquire);
  snap.updates_received = updates_received_.load(std::memory_order_acquire);
  snap.prefixes = prefixes_.load(std::memory_order_acquire);
  snap.routes = routes_.load(std::memory_order_acquire);
  return snap;
}

bool PeeringRouterService::wait_until(
    const std::function<bool(const Snapshot&)>& pred,
    std::chrono::milliseconds timeout) const {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred(snapshot())) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

std::vector<bgp::Route> PeeringRouterService::routes() {
  std::vector<bgp::Route> out;
  loop_.run_sync([this, &out] {
    speaker_.rib().for_each(
        [&out](const net::Prefix&, std::span<const bgp::Route> candidates) {
          out.insert(out.end(), candidates.begin(), candidates.end());
        });
  });
  return out;
}

}  // namespace ef::service
